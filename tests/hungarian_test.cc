#include "solver/hungarian.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qcap {
namespace {

TEST(HungarianTest, SingleElement) {
  auto r = SolveAssignment({{7.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(r->total_cost, 7.0);
}

TEST(HungarianTest, TwoByTwo) {
  // Diagonal is cheaper.
  auto r = SolveAssignment({{1.0, 10.0}, {10.0, 1.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment, (std::vector<size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
}

TEST(HungarianTest, ClassicExample) {
  auto r = SolveAssignment({{4.0, 1.0, 3.0},
                            {2.0, 0.0, 5.0},
                            {3.0, 2.0, 2.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, 5.0);  // (0,1)+(1,0)+(2,2) = 1+2+2.
}

TEST(HungarianTest, AssignmentIsPermutation) {
  Rng rng(5);
  const size_t n = 8;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.NextDouble() * 100.0;
  }
  auto r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  std::vector<size_t> sorted = r->assignment;
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

TEST(HungarianTest, HandlesNegativeCosts) {
  auto r = SolveAssignment({{-5.0, 0.0}, {0.0, -5.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_cost, -10.0);
}

TEST(HungarianTest, RejectsEmptyAndNonSquare) {
  EXPECT_FALSE(SolveAssignment({}).ok());
  EXPECT_FALSE(SolveAssignment({{1.0, 2.0}}).ok());
}

/// Random matrices cross-checked against brute-force permutation search.
class HungarianSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HungarianSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const size_t n = 6;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = std::floor(rng.NextDouble() * 50.0);
  }
  auto r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());

  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e18;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(r->total_cost, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace qcap
