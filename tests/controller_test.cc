#include "cluster/controller.h"

#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "workloads/tpcapp.h"

namespace qcap {
namespace {

engine::Catalog SmallSchema() {
  engine::Catalog catalog;
  engine::TableDef a{"A", {{"k", engine::ColumnType::kInt64, 0, true}}, 1000};
  engine::TableDef b{"B", {{"k", engine::ColumnType::kInt64, 0, true}}, 1000};
  EXPECT_TRUE(catalog.AddTable(a).ok());
  EXPECT_TRUE(catalog.AddTable(b).ok());
  return catalog;
}

TEST(ControllerTest, RequiresAllocationBeforeProcessing) {
  engine::Catalog catalog = SmallSchema();
  Controller controller(catalog);
  SimulationConfig config;
  EXPECT_FALSE(controller.ProcessClosed(100, 4, config).ok());
  EXPECT_FALSE(controller.ProcessOpen(10.0, 5.0, config).ok());
  EXPECT_FALSE(controller.has_allocation());
}

TEST(ControllerTest, ReallocateThenProcess) {
  engine::Catalog catalog = SmallSchema();
  Controller controller(catalog);
  controller.RecordQuery(Query::Read("qa", {"A"}, 0.01), 100);
  controller.RecordQuery(Query::Read("qb", {"B"}, 0.01), 100);
  GreedyAllocator greedy;
  auto report =
      controller.Reallocate(&greedy, HomogeneousBackends(2),
                            {Granularity::kTable, 4, true});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(controller.has_allocation());
  EXPECT_NEAR(report->model_speedup, 2.0, 1e-6);
  EXPECT_NEAR(report->degree_of_replication, 1.0, 1e-6);
  EXPECT_GT(report->transition.total_bytes, 0.0);  // Initial load.

  SimulationConfig config;
  config.seed = 3;
  auto stats = controller.ProcessClosed(500, 4, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->completed_total(), 500u);
}

TEST(ControllerTest, SecondReallocationUsesMatching) {
  engine::Catalog catalog = SmallSchema();
  Controller controller(catalog);
  controller.RecordQuery(Query::Read("qa", {"A"}, 0.01), 100);
  controller.RecordQuery(Query::Read("qb", {"B"}, 0.01), 100);
  GreedyAllocator greedy;
  auto first = controller.Reallocate(&greedy, HomogeneousBackends(2),
                                     {Granularity::kTable, 4, true});
  ASSERT_TRUE(first.ok());
  // Same history, same cluster: nothing should move.
  auto second = controller.Reallocate(&greedy, HomogeneousBackends(2),
                                      {Granularity::kTable, 4, true});
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->transition.total_bytes, 0.0);
}

TEST(ControllerTest, RejectsNullAllocator) {
  engine::Catalog catalog = SmallSchema();
  Controller controller(catalog);
  controller.RecordQuery(Query::Read("qa", {"A"}), 1);
  EXPECT_FALSE(controller
                   .Reallocate(nullptr, HomogeneousBackends(1),
                               {Granularity::kTable, 4, true})
                   .ok());
}

TEST(ControllerTest, RecordSqlParsesAgainstSchema) {
  // SQL identifiers are case-folded, so the schema must use lowercase
  // names (as the shipped workload catalogs do).
  engine::Catalog catalog;
  engine::TableDef a{"a", {{"k", engine::ColumnType::kInt64, 0, true}}, 1000};
  engine::TableDef b{"b", {{"k", engine::ColumnType::kInt64, 0, true}}, 1000};
  ASSERT_TRUE(catalog.AddTable(a).ok());
  ASSERT_TRUE(catalog.AddTable(b).ok());
  Controller controller(catalog);
  ASSERT_TRUE(controller.RecordSql("SELECT k FROM a", 0.01, 50).ok());
  ASSERT_TRUE(
      controller.RecordSql("INSERT INTO b (k) VALUES (1)", 0.001, 200).ok());
  EXPECT_EQ(controller.history().NumDistinct(), 2u);
  EXPECT_EQ(controller.history().TotalExecutions(), 250u);
  EXPECT_TRUE(controller.history().queries()[1].is_update);
  // Unknown table rejected and not recorded.
  EXPECT_FALSE(controller.RecordSql("SELECT x FROM ghost", 0.01).ok());
  EXPECT_EQ(controller.history().NumDistinct(), 2u);

  GreedyAllocator greedy;
  auto report = controller.Reallocate(&greedy, HomogeneousBackends(2),
                                      {Granularity::kTable, 4, true});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->classification.reads.size(), 1u);
  EXPECT_EQ(report->classification.updates.size(), 1u);
}

TEST(ControllerTest, SetHistoryReplacesJournal) {
  engine::Catalog catalog = workloads::TpcAppCatalog(10.0);
  Controller controller(catalog);
  controller.SetHistory(workloads::TpcAppJournal(2000));
  EXPECT_GT(controller.history().TotalExecutions(), 1000u);
  FullReplicationAllocator full;
  auto report = controller.Reallocate(&full, HomogeneousBackends(3),
                                      {Granularity::kTable, 4, true});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NEAR(report->degree_of_replication, 3.0, 1e-6);
}

}  // namespace
}  // namespace qcap
