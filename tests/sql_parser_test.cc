#include "workload/sql_parser.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/classifier.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : catalog_(workloads::TpchCatalog(1.0)), parser_(catalog_) {}

  const TableAccess* FindAccess(const Query& q, const std::string& table) {
    for (const auto& a : q.accesses) {
      if (a.table == table) return &a;
    }
    return nullptr;
  }

  bool HasColumn(const TableAccess& a, const std::string& col) {
    return std::find(a.columns.begin(), a.columns.end(), col) !=
           a.columns.end();
  }

  engine::Catalog catalog_;
  SqlParser parser_;
};

TEST_F(SqlParserTest, SimpleSelect) {
  auto q = parser_.Parse(
      "SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_shipdate < "
      "'1998-09-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->is_update);
  ASSERT_EQ(q->accesses.size(), 1u);
  EXPECT_EQ(q->accesses[0].table, "lineitem");
  EXPECT_TRUE(HasColumn(q->accesses[0], "l_quantity"));
  EXPECT_TRUE(HasColumn(q->accesses[0], "l_extendedprice"));
  EXPECT_TRUE(HasColumn(q->accesses[0], "l_shipdate"));
  EXPECT_EQ(q->accesses[0].columns.size(), 3u);
}

TEST_F(SqlParserTest, SelectStarMeansAllColumns) {
  auto q = parser_.Parse("SELECT * FROM nation");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->accesses.size(), 1u);
  // Empty column list = all columns, matching TableAccess semantics.
  EXPECT_TRUE(q->accesses[0].columns.empty());
}

TEST_F(SqlParserTest, JoinWithAliases) {
  auto q = parser_.Parse(
      "SELECT c.c_name, o.o_totalprice FROM customer c JOIN orders o ON "
      "c.c_custkey = o.o_custkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->accesses.size(), 2u);
  const TableAccess* customer = FindAccess(*q, "customer");
  const TableAccess* orders = FindAccess(*q, "orders");
  ASSERT_NE(customer, nullptr);
  ASSERT_NE(orders, nullptr);
  EXPECT_TRUE(HasColumn(*customer, "c_name"));
  EXPECT_TRUE(HasColumn(*customer, "c_custkey"));
  EXPECT_TRUE(HasColumn(*orders, "o_totalprice"));
  EXPECT_TRUE(HasColumn(*orders, "o_custkey"));
}

TEST_F(SqlParserTest, CommaJoinWithAsAliases) {
  auto q = parser_.Parse(
      "SELECT s.s_name, n.n_name FROM supplier AS s, nation AS n WHERE "
      "s.s_nationkey = n.n_nationkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->accesses.size(), 2u);
}

TEST_F(SqlParserTest, BareColumnsResolvedAgainstSchema) {
  auto q = parser_.Parse(
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey "
      "AND c_mktsegment = 'BUILDING'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const TableAccess* orders = FindAccess(*q, "orders");
  const TableAccess* customer = FindAccess(*q, "customer");
  ASSERT_NE(orders, nullptr);
  ASSERT_NE(customer, nullptr);
  EXPECT_TRUE(HasColumn(*orders, "o_orderkey"));
  EXPECT_TRUE(HasColumn(*orders, "o_custkey"));
  EXPECT_TRUE(HasColumn(*customer, "c_custkey"));
  EXPECT_TRUE(HasColumn(*customer, "c_mktsegment"));
}

TEST_F(SqlParserTest, AggregatesAndGroupBy) {
  auto q = parser_.Parse(
      "SELECT l_returnflag, sum(l_quantity), avg(l_discount) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag DESC");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->accesses[0].columns.size(), 3u);
}

TEST_F(SqlParserTest, CountStarIsNotAllColumns) {
  auto q = parser_.Parse("SELECT count(*) FROM orders WHERE o_custkey = 7");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->accesses.size(), 1u);
  EXPECT_EQ(q->accesses[0].columns.size(), 1u);  // Only o_custkey.
}

TEST_F(SqlParserTest, InsertWithColumnList) {
  auto q = parser_.Parse(
      "INSERT INTO orders (o_orderkey, o_custkey, o_totalprice) VALUES (1, "
      "2, 3.5)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_update);
  ASSERT_EQ(q->accesses.size(), 1u);
  EXPECT_EQ(q->accesses[0].columns.size(), 3u);
}

TEST_F(SqlParserTest, InsertWithoutColumnListIsWholeRow) {
  auto q = parser_.Parse("INSERT INTO region VALUES (1, 'EUROPE', 'x')");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_update);
  EXPECT_TRUE(q->accesses[0].columns.empty());
}

TEST_F(SqlParserTest, UpdateStatement) {
  auto q = parser_.Parse(
      "UPDATE supplier SET s_acctbal = s_acctbal + 100 WHERE s_suppkey = 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_update);
  ASSERT_EQ(q->accesses.size(), 1u);
  EXPECT_TRUE(HasColumn(q->accesses[0], "s_acctbal"));
  EXPECT_TRUE(HasColumn(q->accesses[0], "s_suppkey"));
}

TEST_F(SqlParserTest, DeleteReferencesWholeRow) {
  auto q = parser_.Parse("DELETE FROM orders WHERE o_orderdate < '1995-01-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_update);
  EXPECT_TRUE(q->accesses[0].columns.empty());  // All columns.
}

TEST_F(SqlParserTest, QualifiedStar) {
  auto q = parser_.Parse(
      "SELECT n.*, r.r_name FROM nation n JOIN region r ON n.n_regionkey = "
      "r.r_regionkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const TableAccess* nation = FindAccess(*q, "nation");
  ASSERT_NE(nation, nullptr);
  EXPECT_TRUE(nation->columns.empty());  // n.* = all nation columns.
  const TableAccess* region = FindAccess(*q, "region");
  ASSERT_NE(region, nullptr);
  EXPECT_FALSE(region->columns.empty());
}

TEST_F(SqlParserTest, CostIsCarried) {
  auto q = parser_.Parse("SELECT * FROM nation", 3.25);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->cost, 3.25);
  EXPECT_EQ(q->text, "SELECT * FROM nation");
}

TEST_F(SqlParserTest, ErrorsOnUnknownTable) {
  auto q = parser_.Parse("SELECT x FROM ghost_table");
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(SqlParserTest, ErrorsOnUnknownColumn) {
  auto q = parser_.Parse("SELECT ghost_col FROM nation");
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(SqlParserTest, ErrorsOnUnknownAlias) {
  auto q = parser_.Parse("SELECT z.n_name FROM nation n");
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST_F(SqlParserTest, ErrorsOnUnsupportedStatement) {
  EXPECT_EQ(parser_.Parse("CREATE TABLE foo (x int)").status().code(),
            StatusCode::kUnimplemented);
  EXPECT_FALSE(parser_.Parse("").ok());
}

TEST_F(SqlParserTest, ErrorsOnUnterminatedString) {
  EXPECT_FALSE(parser_.Parse("SELECT * FROM nation WHERE n_name = 'oops").ok());
}

TEST_F(SqlParserTest, ParsedJournalClassifies) {
  // End to end: a journal built from SQL text classifies at column
  // granularity like hand-built access lists.
  QueryJournal journal;
  SqlParser parser(catalog_);
  auto q1 = parser.Parse(
      "SELECT l_returnflag, sum(l_quantity) FROM lineitem GROUP BY "
      "l_returnflag",
      5.0);
  auto q2 = parser.Parse("SELECT c_name, c_acctbal FROM customer", 1.0);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  journal.Record(q1.value(), 100);
  journal.Record(q2.value(), 300);
  Classifier classifier(catalog_, {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(journal);
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  EXPECT_EQ(cls->reads.size(), 2u);
  EXPECT_NEAR(cls->reads[0].weight, 500.0 / 800.0, 1e-9);
}

}  // namespace
}  // namespace qcap
