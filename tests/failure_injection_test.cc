// Failure injection: backends crashing mid-run, and what k-safety buys.
#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/simulator.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

namespace qcap {
namespace {

struct Fixture {
  engine::Catalog catalog = workloads::TpcAppCatalog(100.0);
  Classification cls;
  std::vector<BackendSpec> backends = HomogeneousBackends(5);

  Fixture() {
    Classifier classifier(catalog, {Granularity::kTable, 4, true});
    auto result = classifier.Classify(workloads::TpcAppJournal(20000));
    EXPECT_TRUE(result.ok());
    cls = std::move(result).value();
  }

  Result<SimStats> Run(const Allocation& alloc,
                       std::vector<BackendFailure> failures) {
    SimulationConfig config;
    config.seed = 9;
    config.failures = std::move(failures);
    QCAP_ASSIGN_OR_RETURN(
        ClusterSimulator sim,
        ClusterSimulator::Create(cls, alloc, backends, config));
    return sim.RunOpen(30.0, 400.0);
  }
};

TEST(FailureInjectionTest, NoFailuresNoLosses) {
  Fixture fx;
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok());
  auto stats = fx.Run(alloc.value(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->failed_requests, 0u);
  EXPECT_EQ(stats->rejected_requests, 0u);
  EXPECT_GT(stats->completed_total(), 10000u);
}

TEST(FailureInjectionTest, UnprotectedAllocationRejectsAfterCrash) {
  Fixture fx;
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok());
  // Kill every backend holding some class exclusively: find a fragment
  // with exactly one replica and kill its backend.
  size_t victim = fx.backends.size();
  for (FragmentId f = 0; f < alloc->num_fragments() && victim == 5; ++f) {
    if (alloc->ReplicaCount(f) == 1) {
      for (size_t b = 0; b < 5; ++b) {
        if (alloc->IsPlaced(b, f)) victim = b;
      }
    }
  }
  ASSERT_LT(victim, 5u) << "expected at least one exclusive fragment";
  auto stats = fx.Run(alloc.value(), {{10.0, victim}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Work in flight on the victim is lost and later requests for its
  // exclusive classes are rejected.
  EXPECT_GT(stats->rejected_requests, 0u);
}

TEST(FailureInjectionTest, KSafeAllocationSurvivesSingleCrash) {
  Fixture fx;
  KSafeGreedyAllocator ksafe({1, 1e-12, 0});
  auto alloc = ksafe.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  for (size_t victim = 0; victim < 5; ++victim) {
    auto stats = fx.Run(alloc.value(), {{10.0, victim}});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->rejected_requests, 0u) << "victim " << victim;
    // In-flight losses at the crash instant are expected; rejections not.
    EXPECT_GT(stats->completed_total(), 8000u);
  }
}

TEST(FailureInjectionTest, ThroughputDegradesGracefully) {
  Fixture fx;
  KSafeGreedyAllocator ksafe({1, 1e-12, 0});
  auto alloc = ksafe.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok());
  auto healthy = fx.Run(alloc.value(), {});
  auto degraded = fx.Run(alloc.value(), {{5.0, 2}});
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(degraded.ok());
  // Conservation: every arrival is completed, failed, or rejected — and the
  // arrival stream is identical across the two runs.
  EXPECT_EQ(degraded->completed_total() + degraded->failed_requests +
                degraded->rejected_requests,
            healthy->completed_total());
  // Still serving the vast majority of the offered load.
  EXPECT_GT(degraded->completed_total(),
            static_cast<uint64_t>(0.6 * healthy->completed_total()));
}

TEST(FailureInjectionTest, DoubleCrashNeedsKTwo) {
  Fixture fx;
  KSafeGreedyAllocator k1({1, 1e-12, 0});
  KSafeGreedyAllocator k2({2, 1e-12, 0});
  auto a1 = k1.Allocate(fx.cls, fx.backends);
  auto a2 = k2.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  // Find two backends whose joint loss strands a class under k=1: try all
  // pairs and record worst-case rejections.
  uint64_t worst_k1 = 0, worst_k2 = 0;
  for (size_t x = 0; x < 5; ++x) {
    for (size_t y = x + 1; y < 5; ++y) {
      auto s1 = fx.Run(a1.value(), {{5.0, x}, {6.0, y}});
      auto s2 = fx.Run(a2.value(), {{5.0, x}, {6.0, y}});
      ASSERT_TRUE(s1.ok());
      ASSERT_TRUE(s2.ok());
      worst_k1 = std::max(worst_k1, s1->rejected_requests);
      worst_k2 = std::max(worst_k2, s2->rejected_requests);
    }
  }
  EXPECT_GT(worst_k1, 0u);   // Some pair strands a class under k=1.
  EXPECT_EQ(worst_k2, 0u);   // k=2 survives every pair.
}

TEST(FailureInjectionTest, ClosedLoopSurvivesCrashAndRecover) {
  Fixture fx;
  KSafeGreedyAllocator ksafe({1, 1e-12, 0});
  auto alloc = ksafe.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok());
  SimulationConfig config;
  config.seed = 9;
  config.fault_plan.Crash(0.5, 2);
  config.fault_plan.Recover(2.0, 2);
  auto sim =
      ClusterSimulator::Create(fx.cls, alloc.value(), fx.backends, config);
  ASSERT_TRUE(sim.ok());
  auto stats = sim->RunClosed(20000, 16);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // A k=1-safe layout serves the whole closed-loop run across the outage:
  // every request is eventually completed (conservation), none rejected.
  EXPECT_EQ(stats->rejected_requests, 0u);
  EXPECT_EQ(stats->failed_requests, 0u);
  EXPECT_EQ(stats->completed_total(), 20000u);
}

TEST(FailureInjectionTest, BadFailureIndexRejected) {
  Fixture fx;
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(fx.cls, fx.backends);
  ASSERT_TRUE(alloc.ok());
  SimulationConfig config;
  config.failures = {{1.0, 99}};
  auto sim = ClusterSimulator::Create(fx.cls, alloc.value(), fx.backends,
                                      config);
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim->RunOpen(10.0, 10.0).ok());
}

}  // namespace
}  // namespace qcap
