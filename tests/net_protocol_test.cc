// Wire-protocol framing tests (docs/SERVING.md, "Framing"): round-trips,
// fragmented delivery, truncated streams, oversized and garbage length
// prefixes, plus a real loopback socket round-trip through
// WriteFrame/ReadFrame.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"

namespace qcap::net {
namespace {

std::string Encode(std::string_view payload) {
  std::string wire;
  AppendFrame(&wire, payload);
  return wire;
}

TEST(FrameTest, HeaderIsBigEndianLength) {
  const std::string wire = Encode("ping");
  ASSERT_EQ(wire.size(), 8u);
  EXPECT_EQ(wire[0], '\0');
  EXPECT_EQ(wire[1], '\0');
  EXPECT_EQ(wire[2], '\0');
  EXPECT_EQ(wire[3], '\x04');
  EXPECT_EQ(wire.substr(4), "ping");
}

TEST(FrameTest, RoundTripSingleFrame) {
  FrameDecoder decoder;
  const std::string wire = Encode("SUBMIT R0");
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "SUBMIT R0");
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadIsAValidFrame) {
  FrameDecoder decoder;
  const std::string wire = Encode("");
  decoder.Feed(wire.data(), wire.size());
  std::string payload = "sentinel";
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "");
}

TEST(FrameTest, MultipleFramesInOneChunk) {
  FrameDecoder decoder;
  std::string wire = Encode("STATS");
  AppendFrame(&wire, "HEALTH");
  AppendFrame(&wire, "QUIT");
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "STATS");
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "HEALTH");
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "QUIT");
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kNeedMore);
}

TEST(FrameTest, ByteByByteDeliveryReassembles) {
  FrameDecoder decoder;
  const std::string wire = Encode("SUBMIT U2");
  std::string payload;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(&wire[i], 1);
    EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kNeedMore)
        << "byte " << i;
  }
  decoder.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload, "SUBMIT U2");
}

TEST(FrameTest, TruncatedFrameStaysPending) {
  FrameDecoder decoder;
  const std::string wire = Encode("0123456789");
  decoder.Feed(wire.data(), wire.size() - 3);  // header + 7 of 10 bytes
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kNeedMore);
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered_bytes(), wire.size() - 3);
}

TEST(FrameTest, OversizedLengthPoisonsPermanently) {
  FrameDecoder decoder(/*max_payload_bytes=*/16);
  const std::string wire = Encode(std::string(17, 'x'));
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kError);
  EXPECT_TRUE(decoder.poisoned());
  // Poisoning is sticky: even a subsequently valid frame is not decoded
  // (framing cannot resynchronize once a declared length was a lie).
  const std::string good = Encode("ok");
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kError);
}

TEST(FrameTest, MaxSizePayloadIsAccepted) {
  FrameDecoder decoder(/*max_payload_bytes=*/16);
  const std::string wire = Encode(std::string(16, 'y'));
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  EXPECT_EQ(payload.size(), 16u);
}

TEST(FrameTest, GarbageLengthPrefixIsRejected) {
  FrameDecoder decoder;  // default 64 KiB ceiling
  const char garbage[] = {'\xff', '\xff', '\xff', '\xff', 'j', 'u', 'n', 'k'};
  decoder.Feed(garbage, sizeof(garbage));
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kError);
}

TEST(FrameTest, LongSessionCompactsItsBuffer) {
  FrameDecoder decoder;
  std::string payload;
  // Stream many frames; the buffer must stay O(one frame), not O(stream).
  for (int i = 0; i < 2000; ++i) {
    const std::string wire = Encode("SUBMIT R" + std::to_string(i % 4));
    decoder.Feed(wire.data(), wire.size());
    ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Pop::kFrame);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(SocketFrameTest, LoopbackEchoRoundTrip) {
  auto listener = Listener::BindTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();
  ASSERT_GT(port, 0);

  std::thread echo([&listener] {
    auto session = listener->Accept();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    FrameDecoder decoder;
    for (int i = 0; i < 3; ++i) {
      auto request = ReadFrame(&session.value(), &decoder);
      ASSERT_TRUE(request.ok()) << request.status().ToString();
      ASSERT_TRUE(WriteFrame(&session.value(), "echo:" + *request).ok());
    }
  });

  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 3; ++i) {
    auto reply = client->Call("msg" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "echo:msg" + std::to_string(i));
  }
  echo.join();
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind an ephemeral port, then close it: connecting must fail cleanly.
  uint16_t port = 0;
  {
    auto listener = Listener::BindTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    port = listener->port();
  }
  auto client = Socket::ConnectTcp("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(SocketTest, RejectsNonIpv4Host) {
  EXPECT_FALSE(Socket::ConnectTcp("not-a-host", 1).ok());
  EXPECT_FALSE(Listener::BindTcp("bad address", 0).ok());
}

}  // namespace
}  // namespace qcap::net
