#include "workload/journal_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

void ExpectJournalsEqual(const QueryJournal& a, const QueryJournal& b) {
  ASSERT_EQ(a.NumDistinct(), b.NumDistinct());
  ASSERT_EQ(a.TotalExecutions(), b.TotalExecutions());
  for (size_t i = 0; i < a.NumDistinct(); ++i) {
    const Query& qa = a.queries()[i];
    const Query& qb = b.queries()[i];
    EXPECT_EQ(qa.text, qb.text);
    EXPECT_EQ(qa.is_update, qb.is_update);
    EXPECT_DOUBLE_EQ(qa.cost, qb.cost);
    EXPECT_EQ(a.count(i), b.count(i));
    ASSERT_EQ(qa.accesses.size(), qb.accesses.size());
    for (size_t j = 0; j < qa.accesses.size(); ++j) {
      EXPECT_EQ(qa.accesses[j].table, qb.accesses[j].table);
      EXPECT_EQ(qa.accesses[j].columns, qb.accesses[j].columns);
      EXPECT_EQ(qa.accesses[j].partitions, qb.accesses[j].partitions);
    }
  }
}

TEST(JournalIoTest, RoundTripSimple) {
  QueryJournal journal;
  journal.Record(Query::Read("q1", {"a", "b"}, 2.5), 10);
  journal.Record(Query::Update("u1", {"a"}, 0.25), 70);
  auto loaded = DeserializeJournal(SerializeJournal(journal));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectJournalsEqual(journal, loaded.value());
}

TEST(JournalIoTest, RoundTripColumnsAndPartitions) {
  QueryJournal journal;
  Query q;
  q.text = "partition scan";
  q.cost = 1.5;
  q.accesses.push_back({"t1", {"c1", "c2"}, {0, 3}});
  q.accesses.push_back({"t2", {}, {}});
  journal.Record(q, 5);
  auto loaded = DeserializeJournal(SerializeJournal(journal));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectJournalsEqual(journal, loaded.value());
}

TEST(JournalIoTest, RoundTripSpecialCharactersInText) {
  QueryJournal journal;
  journal.Record(
      Query::Read("SELECT *\tFROM \"t\"\nWHERE x = '\\path'", {"a"}, 1.0), 3);
  auto loaded = DeserializeJournal(SerializeJournal(journal));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectJournalsEqual(journal, loaded.value());
}

TEST(JournalIoTest, RoundTripRealWorkloads) {
  for (const QueryJournal& journal :
       {workloads::TpchJournal(1000), workloads::TpcAppJournal(2000)}) {
    auto loaded = DeserializeJournal(SerializeJournal(journal));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectJournalsEqual(journal, loaded.value());
  }
}

TEST(JournalIoTest, EmptyJournalRoundTrips) {
  QueryJournal journal;
  auto loaded = DeserializeJournal(SerializeJournal(journal));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(JournalIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(DeserializeJournal("").ok());
  EXPECT_FALSE(DeserializeJournal("not a journal\n").ok());
}

TEST(JournalIoTest, RejectsMalformedLines) {
  const std::string header = "qcap-journal v1\n";
  EXPECT_FALSE(DeserializeJournal(header + "only\tthree\tfields\n").ok());
  EXPECT_FALSE(
      DeserializeJournal(header + "x\t1.0\tR\tq\ttable\n").ok());  // Bad count.
  EXPECT_FALSE(
      DeserializeJournal(header + "1\t1.0\tZ\tq\ttable\n").ok());  // Bad kind.
  EXPECT_FALSE(
      DeserializeJournal(header + "1\t1.0\tR\t\ttable\n").ok());  // No text.
  EXPECT_FALSE(DeserializeJournal(header + "1\t1.0\tR\tq\t:c1\n").ok());
  EXPECT_FALSE(DeserializeJournal(header + "1\t1.0\tR\tq\tt@x\n").ok());
}

TEST(JournalIoTest, SaveAndLoadFile) {
  const std::string path = "/tmp/qcap_journal_io_test.journal";
  QueryJournal journal = workloads::TpchJournal(500);
  ASSERT_TRUE(SaveJournal(journal, path).ok());
  auto loaded = LoadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectJournalsEqual(journal, loaded.value());
  std::remove(path.c_str());
  EXPECT_TRUE(LoadJournal("/tmp/definitely-missing-qcap").status().IsNotFound());
}

}  // namespace
}  // namespace qcap
