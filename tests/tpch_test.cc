#include "workloads/tpch.h"

#include <gtest/gtest.h>

#include "workload/classifier.h"

namespace qcap {
namespace {

using workloads::TpchCatalog;
using workloads::TpchJournal;
using workloads::TpchQueries;

TEST(TpchTest, CatalogHasEightTables) {
  const engine::Catalog catalog = TpchCatalog();
  EXPECT_EQ(catalog.NumTables(), 8u);
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog.HasTable(name)) << name;
  }
}

TEST(TpchTest, Sf1IsAboutOneGigabyte) {
  const engine::Catalog catalog = TpchCatalog(1.0);
  const double gb = catalog.TotalBytes() / (1024.0 * 1024.0 * 1024.0);
  EXPECT_GT(gb, 0.7);
  EXPECT_LT(gb, 1.4);
}

TEST(TpchTest, FactTablesDominate) {
  // The paper: lineitem + orders amount to ~80% of the data.
  const engine::Catalog catalog = TpchCatalog(1.0);
  const double fact = catalog.TableBytes("lineitem").value() +
                      catalog.TableBytes("orders").value();
  EXPECT_GT(fact / catalog.TotalBytes(), 0.75);
}

TEST(TpchTest, NineteenTemplates) {
  const auto queries = TpchQueries();
  EXPECT_EQ(queries.size(), 19u);  // 22 minus Q17, Q20, Q21.
  for (const auto& q : queries) {
    EXPECT_FALSE(q.is_update);
    EXPECT_GT(q.cost, 0.0);
    EXPECT_FALSE(q.accesses.empty());
  }
}

TEST(TpchTest, TemplatesReferenceValidColumns) {
  const engine::Catalog catalog = TpchCatalog();
  for (const auto& q : TpchQueries()) {
    for (const auto& access : q.accesses) {
      auto table = catalog.FindTable(access.table);
      ASSERT_TRUE(table.ok()) << q.text << " references " << access.table;
      for (const auto& col : access.columns) {
        EXPECT_GE(table.value()->ColumnIndex(col), 0)
            << q.text << " references " << access.table << "." << col;
      }
    }
  }
}

TEST(TpchTest, JournalUniformCounts) {
  const QueryJournal journal = TpchJournal(10000);
  EXPECT_EQ(journal.NumDistinct(), 19u);
  EXPECT_EQ(journal.TotalExecutions(), 10000u);
  for (size_t i = 0; i < journal.NumDistinct(); ++i) {
    EXPECT_NEAR(static_cast<double>(journal.count(i)), 10000.0 / 19.0, 1.0);
  }
}

TEST(TpchTest, TableClassificationIsReadOnly) {
  const engine::Catalog catalog = TpchCatalog();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpchJournal(10000));
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  EXPECT_TRUE(cls->updates.empty());
  EXPECT_EQ(cls->catalog.size(), 8u);
  // 19 templates with distinct table sets... some may merge; expect >= 12.
  EXPECT_GE(cls->reads.size(), 12u);
  EXPECT_TRUE(cls->Validate().ok());
}

TEST(TpchTest, ColumnClassificationHas61Fragments) {
  const engine::Catalog catalog = TpchCatalog();
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(TpchJournal(10000));
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(cls->catalog.size(), 61u);  // Total TPC-H columns.
  EXPECT_GE(cls->reads.size(), 18u);    // Column sets are nearly all distinct.
}

TEST(TpchTest, WeightsAreSkewed) {
  // "query classes differ considerably in their weight" -- the heaviest
  // class should be at least 3x the lightest.
  const engine::Catalog catalog = TpchCatalog();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpchJournal(10000));
  ASSERT_TRUE(cls.ok());
  double min_w = 1.0, max_w = 0.0;
  for (const auto& c : cls->reads) {
    min_w = std::min(min_w, c.weight);
    max_w = std::max(max_w, c.weight);
  }
  EXPECT_GT(max_w / min_w, 3.0);
}

}  // namespace
}  // namespace qcap
