// Regression tests for the shared percentile machinery in
// cluster/stats.h. The serving layer's METRICS endpoint reads these
// helpers on an *idle* server (zero samples), which previously leaned on
// every caller guarding emptiness themselves; the helpers are now total:
// no sample-vector underflow, no NaN propagation into the double→size_t
// cast, no division by a zero performance share.
#include "cluster/stats.h"
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace qcap {
namespace {

TEST(ResponseAccumulatorTest, EmptyAccumulatorIsZeroEverywhere) {
  ResponseAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.Percentile(0.5), 0.0);
  EXPECT_EQ(acc.Percentile(0.99), 0.0);
  std::vector<double> scratch;
  double p50 = -1.0;
  double p95 = -1.0;
  double p99 = -1.0;
  acc.Percentiles(&scratch, &p50, &p95, &p99);
  EXPECT_EQ(p50, 0.0);
  EXPECT_EQ(p95, 0.0);
  EXPECT_EQ(p99, 0.0);
}

TEST(ResponseAccumulatorTest, EmptyAccumulatorSurvivesDegenerateP) {
  ResponseAccumulator acc;
  // Out-of-range and non-finite percentile requests on no samples must
  // return 0, not crash or produce NaN.
  EXPECT_EQ(acc.Percentile(0.0), 0.0);
  EXPECT_EQ(acc.Percentile(-1.0), 0.0);
  EXPECT_EQ(acc.Percentile(2.0), 0.0);
  EXPECT_EQ(acc.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(ResponseAccumulatorTest, NanPercentileSelectsTheMaximum) {
  ResponseAccumulator acc;
  acc.Add(0.3);
  acc.Add(0.1);
  acc.Add(0.2);
  // NaN p previously made the double→size_t cast undefined; it now selects
  // the maximum sample (the defensive reading of "quantile unknown").
  const double v = acc.Percentile(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::isnan(v));
  EXPECT_DOUBLE_EQ(v, 0.3);
}

TEST(ResponseAccumulatorTest, SingleSampleIsEveryPercentile) {
  ResponseAccumulator acc;
  acc.Add(0.042);
  EXPECT_DOUBLE_EQ(acc.Percentile(0.01), 0.042);
  EXPECT_DOUBLE_EQ(acc.Percentile(0.5), 0.042);
  EXPECT_DOUBLE_EQ(acc.Percentile(1.0), 0.042);
  std::vector<double> scratch;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  acc.Percentiles(&scratch, &p50, &p95, &p99);
  EXPECT_DOUBLE_EQ(p50, 0.042);
  EXPECT_DOUBLE_EQ(p95, 0.042);
  EXPECT_DOUBLE_EQ(p99, 0.042);
}

TEST(ResponseAccumulatorTest, PercentilesMatchSingleCallsAfterReset) {
  ResponseAccumulator acc;
  // Fill, reset, refill: the scratch-reuse path must behave like fresh.
  for (int i = 0; i < 100; ++i) acc.Add(1.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.Percentile(0.95), 0.0);
  for (int i = 1; i <= 100; ++i) acc.Add(static_cast<double>(i));
  std::vector<double> scratch;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  acc.Percentiles(&scratch, &p50, &p95, &p99);
  EXPECT_DOUBLE_EQ(p50, acc.Percentile(0.50));
  EXPECT_DOUBLE_EQ(p95, acc.Percentile(0.95));
  EXPECT_DOUBLE_EQ(p99, acc.Percentile(0.99));
  EXPECT_DOUBLE_EQ(p50, 50.0);
  EXPECT_DOUBLE_EQ(p95, 95.0);
  EXPECT_DOUBLE_EQ(p99, 99.0);
}

TEST(SimStatsTest, BusyBalanceDeviationGuardsZeroLoadShares) {
  SimStats stats;
  stats.backend_busy_seconds = {1.0, 2.0, 3.0};
  // A zero performance share previously divided to inf and poisoned the
  // deviation with NaN; it now contributes zero normalized load.
  const double dev = stats.BusyBalanceDeviation({0.5, 0.0, 0.5});
  EXPECT_TRUE(std::isfinite(dev));
  EXPECT_GE(dev, 0.0);
  // All-zero shares: average is zero, deviation is defined as zero.
  EXPECT_EQ(stats.BusyBalanceDeviation({0.0, 0.0, 0.0}), 0.0);
}

TEST(SimStatsTest, BusyBalanceDeviationEmptyAndMismatchedInputs) {
  SimStats stats;
  EXPECT_EQ(stats.BusyBalanceDeviation({}), 0.0);
  stats.backend_busy_seconds = {1.0, 2.0};
  EXPECT_EQ(stats.BusyBalanceDeviation({1.0}), 0.0);  // size mismatch
}

}  // namespace
}  // namespace qcap
