#include "alloc/robustness.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

/// The paper's Figure 2 four-backend allocation: B1={A} C1 25%,
/// B2={A,B} C1 5% + C4 20%, B3={B} C2 25%, B4={C} C3 25%.
Allocation Figure2FourBackends(const Classification& /*cls*/) {
  Allocation a(4, 3, 4, 0);
  a.Place(0, 0);
  a.PlaceSet(1, {0, 1});
  a.Place(2, 1);
  a.Place(3, 2);
  a.set_read_assign(0, 0, 0.25);
  a.set_read_assign(1, 0, 0.05);
  a.set_read_assign(1, 3, 0.20);
  a.set_read_assign(2, 1, 0.25);
  a.set_read_assign(3, 2, 0.25);
  return a;
}

TEST(RobustnessTest, PaperExampleC3To27PercentDropsSpeedupTo3_7) {
  // Section 5: "if the weight of Query Class C is increased to 27%, the
  // maximum achievable speedup is reduced to 3.7 instead of 4. This is the
  // worst case since C is the only class allocated on B4."
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2FourBackends(cls);
  const auto backends = HomogeneousBackends(4);
  ASSERT_NEAR(Speedup(a, backends), 4.0, 1e-9);

  auto perturbed = PerturbedSpeedup(cls, a, backends, /*C3=*/2, 0.27, false);
  ASSERT_TRUE(perturbed.ok()) << perturbed.status().ToString();
  EXPECT_NEAR(perturbed.value(), 4.0 / (0.27 / 0.25), 1e-9);  // ~3.7.
  EXPECT_NEAR(perturbed.value(), 3.7, 0.01);
  // Shifting cannot help: C lives only on B4.
  auto shifted = PerturbedSpeedup(cls, a, backends, 2, 0.27, true);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(shifted.value(), 3.7, 0.01);
}

TEST(RobustnessTest, ReplicatedClassAbsorbsPerturbationByShifting) {
  // C1 lives on B1 and B2; raising C1's weight can be absorbed by shifting
  // weight between them... but both are full, so check a class sharing
  // capacity: raise C1 to 32% -> B2's C4 cannot move (only on B2), but C1
  // can move toward B1; without shifting B1 is at 25%+2% extra.
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2FourBackends(cls);
  const auto backends = HomogeneousBackends(4);
  auto rigid = PerturbedSpeedup(cls, a, backends, /*C1=*/0, 0.32, false);
  auto shifted = PerturbedSpeedup(cls, a, backends, 0, 0.32, true);
  ASSERT_TRUE(rigid.ok());
  ASSERT_TRUE(shifted.ok());
  EXPECT_GE(shifted.value() + 1e-9, rigid.value());
}

TEST(RobustnessTest, WeightToleranceZeroForExclusiveFullBackend) {
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2FourBackends(cls);
  const auto backends = HomogeneousBackends(4);
  // C3 is alone on a full backend: no headroom at scale 1.
  auto tolerance = WeightTolerance(cls, a, backends, 2);
  ASSERT_TRUE(tolerance.ok()) << tolerance.status().ToString();
  EXPECT_NEAR(tolerance.value(), 0.0, 1e-9);
}

TEST(RobustnessTest, HeadroomRestoresTolerance) {
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2FourBackends(cls);
  const auto backends = HomogeneousBackends(4);
  RobustnessOptions options;
  options.required_headroom = 0.08;  // Tolerate +8% of each class's weight.
  auto robust = AddRobustnessHeadroom(cls, a, backends, options);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  // More replicas than before...
  EXPECT_GT(DegreeOfReplication(robust.value(), cls.catalog),
            DegreeOfReplication(a, cls.catalog));
  // ...and the paper's worst case is now absorbed by shifting: the only
  // remaining loss is the +2% of total work itself (4 / 1.02).
  auto shifted = PerturbedSpeedup(cls, robust.value(), backends, 2, 0.27, true);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(shifted.value(), 4.0 / 1.02, 1e-6);
}

TEST(RobustnessTest, RebalanceKeepsValidity) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  auto rebalanced = RebalanceReads(cls, alloc.value(), backends);
  ASSERT_TRUE(rebalanced.ok()) << rebalanced.status().ToString();
  Status valid = ValidateAllocation(cls, rebalanced.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  // The LP never yields a worse scale than the heuristic's distribution.
  EXPECT_LE(Scale(rebalanced.value(), backends),
            Scale(alloc.value(), backends) + 1e-9);
}

TEST(RobustnessTest, RejectsBadIndexAndWeight) {
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2FourBackends(cls);
  const auto backends = HomogeneousBackends(4);
  EXPECT_FALSE(PerturbedSpeedup(cls, a, backends, 99, 0.3, false).ok());
  EXPECT_FALSE(PerturbedSpeedup(cls, a, backends, 0, -0.1, false).ok());
  EXPECT_FALSE(WeightTolerance(cls, a, backends, 99).ok());
}

class RobustnessPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessPropertySweep, ToleranceIsHonest) {
  // For random workloads: perturbing a class by its reported tolerance must
  // not degrade the (rebalanced) speedup; perturbing well beyond must not
  // improve it.
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(4);
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(cls.value(), backends);
  ASSERT_TRUE(alloc.ok());
  const double base = Speedup(alloc.value(), backends);
  for (size_t r = 0; r < std::min<size_t>(3, cls->reads.size()); ++r) {
    auto tolerance = WeightTolerance(cls.value(), alloc.value(), backends, r);
    ASSERT_TRUE(tolerance.ok());
    ASSERT_GE(tolerance.value(), -1e-9);
    const double within = cls->reads[r].weight + tolerance.value();
    auto ok_speedup =
        PerturbedSpeedup(cls.value(), alloc.value(), backends, r, within, true);
    ASSERT_TRUE(ok_speedup.ok());
    EXPECT_GE(ok_speedup.value() + 1e-6, base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessPropertySweep,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace qcap
