#include "model/allocation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace qcap {
namespace {

TEST(AllocationTest, EmptyAllocation) {
  Allocation a(2, 3, 4, 1);
  EXPECT_EQ(a.num_backends(), 2u);
  EXPECT_EQ(a.num_fragments(), 3u);
  EXPECT_EQ(a.num_reads(), 4u);
  EXPECT_EQ(a.num_updates(), 1u);
  EXPECT_FALSE(a.IsPlaced(0, 0));
  EXPECT_DOUBLE_EQ(a.AssignedLoad(0), 0.0);
  EXPECT_TRUE(a.BackendFragments(0).empty());
}

TEST(AllocationTest, PlaceIsIdempotent) {
  Allocation a(2, 3, 1, 0);
  a.Place(0, 1);
  a.Place(0, 1);
  EXPECT_TRUE(a.IsPlaced(0, 1));
  EXPECT_EQ(a.BackendFragments(0), (FragmentSet{1}));
  EXPECT_EQ(a.ReplicaCount(1), 1u);
}

TEST(AllocationTest, PlaceSetAndHoldsAll) {
  Allocation a(2, 4, 1, 0);
  a.PlaceSet(1, {0, 2, 3});
  EXPECT_TRUE(a.HoldsAll(1, {0, 2}));
  EXPECT_FALSE(a.HoldsAll(1, {0, 1}));
  EXPECT_TRUE(a.HoldsAll(1, {}));  // Vacuous truth.
  EXPECT_EQ(a.BackendFragments(1), (FragmentSet{0, 2, 3}));
}

TEST(AllocationTest, ReplicaCountAcrossBackends) {
  Allocation a(3, 2, 1, 0);
  a.Place(0, 0);
  a.Place(1, 0);
  a.Place(2, 0);
  a.Place(1, 1);
  EXPECT_EQ(a.ReplicaCount(0), 3u);
  EXPECT_EQ(a.ReplicaCount(1), 1u);
}

TEST(AllocationTest, BackendBytes) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1});
  a.Place(1, 2);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 2.0);
  EXPECT_DOUBLE_EQ(a.BackendBytes(1, cls.catalog), 1.0);
}

TEST(AllocationTest, ReadAssignAccessors) {
  Allocation a(2, 3, 2, 1);
  a.set_read_assign(0, 1, 0.25);
  a.add_read_assign(0, 1, 0.05);
  EXPECT_DOUBLE_EQ(a.read_assign(0, 1), 0.30);
  EXPECT_DOUBLE_EQ(a.TotalReadAssign(1), 0.30);
  a.set_read_assign(1, 1, 0.10);
  EXPECT_DOUBLE_EQ(a.TotalReadAssign(1), 0.40);
}

TEST(AllocationTest, AssignedLoadSumsReadsAndUpdates) {
  Allocation a(2, 3, 2, 2);
  a.set_read_assign(0, 0, 0.2);
  a.set_read_assign(0, 1, 0.1);
  a.set_update_assign(0, 0, 0.05);
  a.set_update_assign(0, 1, 0.15);
  EXPECT_DOUBLE_EQ(a.AssignedReadLoad(0), 0.3);
  EXPECT_DOUBLE_EQ(a.AssignedUpdateLoad(0), 0.2);
  EXPECT_DOUBLE_EQ(a.AssignedLoad(0), 0.5);
  EXPECT_DOUBLE_EQ(a.AssignedLoad(1), 0.0);
}

TEST(AllocationTest, BindSizesMakesBytesIncremental) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, cls.catalog, 4, 0);
  EXPECT_TRUE(a.sizes_bound());
  a.PlaceSet(0, {0, 1});
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 2.0);
  a.Place(0, 2);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 3.0);
  // Binding after the fact recomputes the same totals.
  Allocation late(2, 3, 4, 0);
  late.PlaceSet(0, {0, 1});
  late.Place(0, 2);
  late.BindSizes(cls.catalog);
  EXPECT_DOUBLE_EQ(late.BackendBytes(0, cls.catalog), 3.0);
}

TEST(AllocationTest, PlaceBitsAndRetainFragments) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, cls.catalog, 4, 0);
  DenseBitset bits(3);
  bits.Set(0);
  bits.Set(2);
  a.PlaceBits(0, bits);
  EXPECT_TRUE(a.IsPlaced(0, 0));
  EXPECT_FALSE(a.IsPlaced(0, 1));
  EXPECT_TRUE(a.IsPlaced(0, 2));
  EXPECT_TRUE(a.HoldsAllBits(0, bits));
  EXPECT_TRUE(a.RowIntersects(0, bits));
  EXPECT_EQ(a.ReplicaCount(0), 1u);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 2.0);

  DenseBitset keep(3);
  keep.Set(2);
  a.RetainFragments(0, keep);
  EXPECT_FALSE(a.IsPlaced(0, 0));
  EXPECT_TRUE(a.IsPlaced(0, 2));
  EXPECT_EQ(a.ReplicaCount(0), 0u);
  EXPECT_EQ(a.ReplicaCount(2), 1u);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 1.0);
}

TEST(AllocationTest, MissingBytesSumsAbsentFragments) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(1, cls.catalog, 4, 0);
  a.Place(0, 1);
  DenseBitset want(3);
  want.Set(0);
  want.Set(1);
  want.Set(2);
  EXPECT_DOUBLE_EQ(a.MissingBytes(0, want), 2.0);
}

TEST(AllocationTest, ClearBackendRowResetsRowAndAggregates) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, cls.catalog, 4, 1);
  a.PlaceSet(0, {0, 1, 2});
  a.PlaceSet(1, {0});
  a.set_read_assign(0, 0, 0.4);
  a.set_update_assign(0, 0, 0.1);
  a.ClearBackendRow(0);
  EXPECT_TRUE(a.BackendFragments(0).empty());
  EXPECT_DOUBLE_EQ(a.AssignedLoad(0), 0.0);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 0.0);
  EXPECT_DOUBLE_EQ(a.read_assign(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.update_assign(0, 0), 0.0);
  // Backend 1 is untouched, and replica counts see the removals.
  EXPECT_EQ(a.ReplicaCount(0), 1u);
  EXPECT_EQ(a.ReplicaCount(1), 0u);
  EXPECT_DOUBLE_EQ(a.BackendBytes(1, cls.catalog), 1.0);
}

TEST(AllocationTest, SnapshotRowRoundTrips) {
  Allocation a(2, 70, 1, 0);  // >64 fragments: exercises the second word.
  a.Place(0, 3);
  a.Place(0, 69);
  DenseBitset row;
  a.SnapshotRow(0, &row);
  EXPECT_TRUE(row.Test(3));
  EXPECT_TRUE(row.Test(69));
  EXPECT_EQ(row.Count(), 2u);
  EXPECT_EQ(row.ToFragmentSet(), (FragmentSet{3, 69}));
}

TEST(AllocationTest, ToStringMentionsAssignmentsAndFragments) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1});
  a.set_read_assign(0, 0, 0.30);
  const std::string s = a.ToString(cls);
  EXPECT_NE(s.find("C1"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("30.0%"), std::string::npos);
}

}  // namespace
}  // namespace qcap
