#include "model/allocation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace qcap {
namespace {

TEST(AllocationTest, EmptyAllocation) {
  Allocation a(2, 3, 4, 1);
  EXPECT_EQ(a.num_backends(), 2u);
  EXPECT_EQ(a.num_fragments(), 3u);
  EXPECT_EQ(a.num_reads(), 4u);
  EXPECT_EQ(a.num_updates(), 1u);
  EXPECT_FALSE(a.IsPlaced(0, 0));
  EXPECT_DOUBLE_EQ(a.AssignedLoad(0), 0.0);
  EXPECT_TRUE(a.BackendFragments(0).empty());
}

TEST(AllocationTest, PlaceIsIdempotent) {
  Allocation a(2, 3, 1, 0);
  a.Place(0, 1);
  a.Place(0, 1);
  EXPECT_TRUE(a.IsPlaced(0, 1));
  EXPECT_EQ(a.BackendFragments(0), (FragmentSet{1}));
  EXPECT_EQ(a.ReplicaCount(1), 1u);
}

TEST(AllocationTest, PlaceSetAndHoldsAll) {
  Allocation a(2, 4, 1, 0);
  a.PlaceSet(1, {0, 2, 3});
  EXPECT_TRUE(a.HoldsAll(1, {0, 2}));
  EXPECT_FALSE(a.HoldsAll(1, {0, 1}));
  EXPECT_TRUE(a.HoldsAll(1, {}));  // Vacuous truth.
  EXPECT_EQ(a.BackendFragments(1), (FragmentSet{0, 2, 3}));
}

TEST(AllocationTest, ReplicaCountAcrossBackends) {
  Allocation a(3, 2, 1, 0);
  a.Place(0, 0);
  a.Place(1, 0);
  a.Place(2, 0);
  a.Place(1, 1);
  EXPECT_EQ(a.ReplicaCount(0), 3u);
  EXPECT_EQ(a.ReplicaCount(1), 1u);
}

TEST(AllocationTest, BackendBytes) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1});
  a.Place(1, 2);
  EXPECT_DOUBLE_EQ(a.BackendBytes(0, cls.catalog), 2.0);
  EXPECT_DOUBLE_EQ(a.BackendBytes(1, cls.catalog), 1.0);
}

TEST(AllocationTest, ReadAssignAccessors) {
  Allocation a(2, 3, 2, 1);
  a.set_read_assign(0, 1, 0.25);
  a.add_read_assign(0, 1, 0.05);
  EXPECT_DOUBLE_EQ(a.read_assign(0, 1), 0.30);
  EXPECT_DOUBLE_EQ(a.TotalReadAssign(1), 0.30);
  a.set_read_assign(1, 1, 0.10);
  EXPECT_DOUBLE_EQ(a.TotalReadAssign(1), 0.40);
}

TEST(AllocationTest, AssignedLoadSumsReadsAndUpdates) {
  Allocation a(2, 3, 2, 2);
  a.set_read_assign(0, 0, 0.2);
  a.set_read_assign(0, 1, 0.1);
  a.set_update_assign(0, 0, 0.05);
  a.set_update_assign(0, 1, 0.15);
  EXPECT_DOUBLE_EQ(a.AssignedReadLoad(0), 0.3);
  EXPECT_DOUBLE_EQ(a.AssignedUpdateLoad(0), 0.2);
  EXPECT_DOUBLE_EQ(a.AssignedLoad(0), 0.5);
  EXPECT_DOUBLE_EQ(a.AssignedLoad(1), 0.0);
}

TEST(AllocationTest, ToStringMentionsAssignmentsAndFragments) {
  Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1});
  a.set_read_assign(0, 0, 0.30);
  const std::string s = a.ToString(cls);
  EXPECT_NE(s.find("C1"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("30.0%"), std::string::npos);
}

}  // namespace
}  // namespace qcap
