#include "workloads/trace.h"

#include <gtest/gtest.h>

#include "workload/classifier.h"

namespace qcap {
namespace {

using workloads::DiurnalClassMix;
using workloads::DiurnalRate;
using workloads::kTraceClasses;
using workloads::SampleDay;
using workloads::TraceCatalog;
using workloads::TraceJournal;
using workloads::TraceQueries;

constexpr double kHour = 3600.0;

TEST(TraceTest, NightTroughDayPeak) {
  const double night = DiurnalRate(4.0 * kHour);
  const double noon = DiurnalRate(12.0 * kHour);
  const double evening = DiurnalRate(19.0 * kHour);
  EXPECT_LT(night, 500.0);
  EXPECT_GT(noon, 3000.0);
  EXPECT_GT(evening, noon);       // Evening peak.
  EXPECT_GT(evening, 4000.0);
  EXPECT_LT(evening, 5000.0);
}

TEST(TraceTest, MixSumsToOne) {
  for (double h = 0.0; h < 24.0; h += 1.5) {
    const auto mix = DiurnalClassMix(h * kHour);
    ASSERT_EQ(mix.size(), kTraceClasses);
    double total = 0.0;
    for (double m : mix) total += m;
    EXPECT_NEAR(total, 1.0, 1e-9) << "hour " << h;
  }
}

TEST(TraceTest, ClassBDominatesAtNight) {
  const auto night = DiurnalClassMix(5.0 * kHour);
  for (size_t c = 0; c < kTraceClasses; ++c) {
    if (c != 1) {
      EXPECT_GT(night[1], night[c]);
    }
  }
  // During the day, B has the lowest share (paper: "lowest weight during
  // the day").
  const auto day = DiurnalClassMix(14.0 * kHour);
  for (size_t c = 0; c < kTraceClasses; ++c) {
    if (c != 1) {
      EXPECT_LT(day[1], day[c]);
    }
  }
}

TEST(TraceTest, SampleDayDeterministic) {
  const auto a = SampleDay(11);
  const auto b = SampleDay(11);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 144u);  // 24h in 10-minute buckets.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].requests_per_10min, b[i].requests_per_10min);
  }
}

TEST(TraceTest, QueriesMatchSchema) {
  const engine::Catalog catalog = TraceCatalog();
  const auto queries = TraceQueries();
  ASSERT_EQ(queries.size(), kTraceClasses);
  for (const auto& q : queries) {
    for (const auto& access : q.accesses) {
      EXPECT_TRUE(catalog.HasTable(access.table))
          << q.text << " -> " << access.table;
    }
  }
  // Exactly one update class (session logging).
  size_t updates = 0;
  for (const auto& q : queries) {
    if (q.is_update) ++updates;
  }
  EXPECT_EQ(updates, 1u);
}

TEST(TraceTest, JournalIsTimestampedAndDiurnal) {
  const QueryJournal journal = TraceJournal(20000, 5);
  double begin = 0, end = 0;
  ASSERT_TRUE(journal.TimeRange(&begin, &end));
  EXPECT_GE(begin, 0.0);
  EXPECT_LT(end, 86400.0);
  EXPECT_NEAR(static_cast<double>(journal.TotalExecutions()), 20000.0, 400.0);
  // Night slice is much quieter than the evening slice.
  const auto night = journal.Slice(3.0 * kHour, 6.0 * kHour);
  const auto evening = journal.Slice(17.0 * kHour, 20.0 * kHour);
  EXPECT_GT(evening.TotalExecutions(), 3 * night.TotalExecutions());
}

TEST(TraceTest, JournalClassifies) {
  const engine::Catalog catalog = TraceCatalog();
  const QueryJournal journal = TraceJournal(10000, 5);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  EXPECT_EQ(cls->reads.size(), 4u);
  EXPECT_EQ(cls->updates.size(), 1u);
}

}  // namespace
}  // namespace qcap
