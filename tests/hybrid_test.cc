// Hybrid granularity (Section 3.1: "a mixture of the above"): large tables
// split into column fragments, small tables stay whole.
#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

ClassifierOptions HybridOptions(double threshold_bytes) {
  ClassifierOptions options;
  options.granularity = Granularity::kHybrid;
  options.hybrid_column_threshold_bytes = threshold_bytes;
  return options;
}

TEST(HybridTest, LargeTablesSplitSmallTablesStayWhole) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  // Threshold between nation (~3 KB) and lineitem (~800 MB): the fact
  // tables split, the dimensions stay whole.
  Classifier classifier(catalog, HybridOptions(10.0 * 1024 * 1024));
  auto cls = classifier.Classify(workloads::TpchJournal(1900));
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  EXPECT_TRUE(cls->catalog.Find("lineitem.l_quantity").ok());
  EXPECT_FALSE(cls->catalog.Find("nation.n_name").ok());
  EXPECT_TRUE(cls->catalog.Find("nation").ok());
  // lineitem itself is not a whole-table fragment.
  EXPECT_FALSE(cls->catalog.Find("lineitem").ok());
}

TEST(HybridTest, ThresholdExtremesMatchPureGranularities) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(1900);
  Classifier all_column(catalog, HybridOptions(0.0));
  Classifier all_table(catalog, HybridOptions(1e18));
  Classifier pure_column(catalog, {Granularity::kColumn, 4, true});
  Classifier pure_table(catalog, {Granularity::kTable, 4, true});
  auto hc = all_column.Classify(journal);
  auto ht = all_table.Classify(journal);
  auto pc = pure_column.Classify(journal);
  auto pt = pure_table.Classify(journal);
  ASSERT_TRUE(hc.ok());
  ASSERT_TRUE(ht.ok());
  ASSERT_TRUE(pc.ok());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(hc->catalog.size(), pc->catalog.size());
  EXPECT_EQ(ht->catalog.size(), pt->catalog.size());
  EXPECT_EQ(hc->reads.size(), pc->reads.size());
  EXPECT_EQ(ht->reads.size(), pt->reads.size());
}

TEST(HybridTest, FragmentCountBetweenTableAndColumn) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  Classifier hybrid(catalog, HybridOptions(10.0 * 1024 * 1024));
  auto cls = hybrid.Classify(workloads::TpchJournal(1900));
  ASSERT_TRUE(cls.ok());
  EXPECT_GT(cls->catalog.size(), 8u);   // More than table-granular.
  EXPECT_LT(cls->catalog.size(), 61u);  // Fewer than column-granular.
}

TEST(HybridTest, AllocatesValidlyAndSavesStorageVersusTable) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(1900);
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(8);

  Classifier hybrid(catalog, HybridOptions(10.0 * 1024 * 1024));
  Classifier table(catalog, {Granularity::kTable, 4, true});
  auto hc = hybrid.Classify(journal);
  auto tc = table.Classify(journal);
  ASSERT_TRUE(hc.ok());
  ASSERT_TRUE(tc.ok());

  auto ha = greedy.Allocate(hc.value(), backends);
  auto ta = greedy.Allocate(tc.value(), backends);
  ASSERT_TRUE(ha.ok()) << ha.status().ToString();
  ASSERT_TRUE(ta.ok());
  Status valid = ValidateAllocation(hc.value(), ha.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  // Splitting the fact tables is where nearly all the storage saving
  // lives; hybrid should capture most of the column-granular benefit.
  const double r_hybrid = DegreeOfReplication(ha.value(), hc->catalog);
  const double r_table = DegreeOfReplication(ta.value(), tc->catalog);
  EXPECT_LT(r_hybrid, 0.7 * r_table);
}

TEST(HybridTest, CandidateKeysStillIncludedOnSplitTables) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  Classifier classifier(catalog, HybridOptions(10.0 * 1024 * 1024));
  QueryJournal journal;
  Query q = Query::Read("q", {}, 1.0);
  q.accesses.push_back({"lineitem", {"l_quantity"}, {}});
  journal.Record(q, 1);
  auto cls = classifier.Classify(journal);
  ASSERT_TRUE(cls.ok());
  // The split table's key columns ride along.
  bool has_orderkey = false;
  for (FragmentId f : cls->reads[0].fragments) {
    if (cls->catalog.Get(f).name == "lineitem.l_orderkey") has_orderkey = true;
  }
  EXPECT_TRUE(has_orderkey);
}

}  // namespace
}  // namespace qcap
