// Pins for the adaptive control loop and the live routing hot-swap:
//  - a Dispatcher::SwapRouting mid-stream drops nothing and keeps routing
//    decisions bit-identical (same-table swap ≡ no swap; new-table swap ≡
//    a reference Scheduler that inherited the rotation and pending state);
//  - a crash mid-migration aborts the in-flight plan and self-heals
//    without ever violating k-safety at the end of the day;
//  - a full day replay is bit-deterministic for a fixed seed.
#include "autonomic/control_loop.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/pending_index.h"
#include "cluster/scheduler.h"
#include "model/validation.h"
#include "net/dispatcher.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/trace.h"

namespace qcap {
namespace {

// --- Dispatcher hot-swap parity ------------------------------------------

/// Appendix A placement on 4 backends (backend 0 holds everything).
Allocation SmallAllocation() {
  Allocation alloc(4, 3, 4, 3);
  alloc.PlaceSet(0, {0, 1, 2});
  alloc.PlaceSet(1, {0});
  alloc.PlaceSet(2, {1});
  alloc.PlaceSet(3, {2});
  return alloc;
}

/// Scale-out of SmallAllocation: a fifth backend that holds everything.
Allocation ScaledOutAllocation() {
  Allocation alloc(5, 3, 4, 3);
  alloc.PlaceSet(0, {0, 1, 2});
  alloc.PlaceSet(1, {0});
  alloc.PlaceSet(2, {1});
  alloc.PlaceSet(3, {2});
  alloc.PlaceSet(4, {0, 1, 2});
  return alloc;
}

std::unique_ptr<net::Dispatcher> MakeDispatcher(const Classification& cls,
                                                const Allocation& alloc) {
  auto dispatcher = net::Dispatcher::Create(cls, alloc, net::ServingLimits{});
  EXPECT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
  return std::move(dispatcher).value();
}

TEST(RoutingSwapTest, SwapToIdenticalTableIsInvisible) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation alloc = SmallAllocation();
  auto swapped = MakeDispatcher(cls, alloc);
  auto reference = MakeDispatcher(cls, alloc);

  for (int i = 0; i < 200; ++i) {
    if (i == 100) {
      ASSERT_TRUE(swapped->SwapRouting(cls, alloc).ok());
    }
    const std::string request = "SUBMIT R" + std::to_string(i % 4);
    const auto a = swapped->Execute(request, static_cast<double>(i));
    const auto b = reference->Execute(request, static_cast<double>(i));
    // Nothing dropped, nothing misrouted: every reply routes, and the
    // decision matches the never-swapped dispatcher bit for bit.
    ASSERT_EQ(a.text.rfind("OK BACKEND ", 0), 0u) << i << ": " << a.text;
    ASSERT_EQ(a.text, b.text) << "decision diverged at request " << i;
  }

  const net::ServingCounters counters = swapped->Snapshot();
  EXPECT_EQ(counters.reads_routed, 200u);
  EXPECT_EQ(counters.unservable, 0u);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.bad_requests, 0u);
  EXPECT_EQ(counters.reloads, 1u);
  EXPECT_EQ(counters.routing_generation, 2u);
  EXPECT_EQ(reference->routing_generation(), 1u);
}

TEST(RoutingSwapTest, SwapToNewTableCarriesSchedulerState) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation before = SmallAllocation();
  const Allocation after = ScaledOutAllocation();
  auto dispatcher = MakeDispatcher(cls, before);

  // Reference: drive a Scheduler by hand, mirroring the dispatcher's
  // pending bookkeeping (reads only, no DONEs — depths only grow).
  auto ref = Scheduler::Build(cls, before);
  ASSERT_TRUE(ref.ok());
  Scheduler reference = std::move(ref).value();
  std::vector<size_t> pending(4, 0);

  for (int i = 0; i < 100; ++i) {
    const size_t cls_index = static_cast<size_t>(i % 4);
    const auto reply =
        dispatcher->Execute("SUBMIT R" + std::to_string(cls_index), 0.0);
    const size_t expect = reference.PickReadBackend(cls_index, pending);
    ++pending[expect];
    ASSERT_EQ(reply.text, "OK BACKEND " + std::to_string(expect)) << i;
  }

  ASSERT_TRUE(dispatcher->SwapRouting(cls, after).ok());
  EXPECT_EQ(dispatcher->num_backends(), 5u);

  // The reference swaps too: a new scheduler that inherits the rotation
  // counter, over the pending depths carried by index (new backend idle).
  auto ref2 = Scheduler::Build(cls, after);
  ASSERT_TRUE(ref2.ok());
  Scheduler reference_after = std::move(ref2).value();
  reference_after.set_rotation(reference.rotation());
  pending.resize(5, 0);

  for (int i = 0; i < 100; ++i) {
    const size_t cls_index = static_cast<size_t>(i % 4);
    const auto reply =
        dispatcher->Execute("SUBMIT R" + std::to_string(cls_index), 0.0);
    const size_t expect = reference_after.PickReadBackend(cls_index, pending);
    ++pending[expect];
    ASSERT_EQ(reply.text, "OK BACKEND " + std::to_string(expect))
        << "post-swap decision diverged at request " << i;
  }

  const net::ServingCounters counters = dispatcher->Snapshot();
  EXPECT_EQ(counters.reads_routed, 200u);
  EXPECT_EQ(counters.unservable, 0u);
  EXPECT_EQ(counters.routing_generation, 2u);
}

TEST(RoutingSwapTest, ReloadVerbDrivesTheProvider) {
  const Classification cls = testutil::AppendixAClassification();
  auto dispatcher = MakeDispatcher(cls, SmallAllocation());

  // Without a provider the verb reports, the table stays.
  EXPECT_EQ(dispatcher->Execute("RELOAD", 0.0).text.rfind("ERR NO_PROVIDER", 0),
            0u);

  dispatcher->SetReloadProvider(
      [&cls](std::string_view tag) -> Result<net::RoutingTable> {
        if (tag == "fail") return Status::InvalidArgument("boom");
        return net::RoutingTable{cls, ScaledOutAllocation()};
      });
  EXPECT_EQ(dispatcher->Execute("RELOAD fail", 0.0).text,
            "ERR RELOAD_FAILED boom");
  EXPECT_EQ(dispatcher->routing_generation(), 1u);

  const auto reply = dispatcher->Execute("RELOAD scale5", 0.0);
  EXPECT_EQ(reply.text,
            "OK RELOAD generation=2 backends=5 read_classes=4 "
            "update_classes=3");
  EXPECT_EQ(dispatcher->num_backends(), 5u);
  // The swapped table serves immediately.
  EXPECT_EQ(dispatcher->Execute("SUBMIT R0", 0.0).text.rfind("OK BACKEND ", 0),
            0u);
}

// --- Adaptive controller -------------------------------------------------

struct LoopFixture {
  engine::Catalog catalog = workloads::TraceCatalog();
  QueryJournal journal = workloads::TraceJournal(20000, 3);
  Classification cls;
  /// Per classification class (reads then updates): index of the trace
  /// class (A..E) its member queries belong to.
  std::vector<size_t> trace_class_of;

  LoopFixture() {
    Classifier classifier(catalog, {Granularity::kTable, 4, true});
    auto result = classifier.Classify(journal);
    EXPECT_TRUE(result.ok());
    cls = std::move(result).value();

    const std::vector<Query> templates = workloads::TraceQueries();
    auto trace_index = [&](const QueryClass& qc) -> size_t {
      EXPECT_FALSE(qc.members.empty());
      const std::string& text = journal.queries()[qc.members.front()].text;
      for (size_t t = 0; t < templates.size(); ++t) {
        if (templates[t].text == text) return t;
      }
      ADD_FAILURE() << "unknown trace query: " << text;
      return 0;
    };
    for (const QueryClass& qc : cls.reads) {
      trace_class_of.push_back(trace_index(qc));
    }
    for (const QueryClass& qc : cls.updates) {
      trace_class_of.push_back(trace_index(qc));
    }
  }

  /// Weight multipliers that push the offered mix toward trace class
  /// \p heavy (0 = A .. 4 = E).
  std::vector<double> MixShiftToward(size_t heavy, double factor) const {
    std::vector<double> scale(cls.NumClasses(), 1.0);
    for (size_t c = 0; c < scale.size(); ++c) {
      scale[c] = trace_class_of[c] == heavy ? factor : 1.0 / factor;
    }
    return scale;
  }
};

AdaptiveOptions FastOptions() {
  AdaptiveOptions options;
  options.slice_seconds = 4.0;
  options.window_buckets = 1;
  options.drift_threshold = 0.3;
  options.cooldown_buckets = 0;
  options.resegment_after = 100;  // keep these tests on the realloc path
  options.k_safety = 1;
  options.slo_p99_ms = 1e9;           // disable the scale-out path
  options.scale_down_utilization = -1.0;  // and the scale-in path
  options.min_nodes = 3;
  options.sim.servers_per_backend = 2;
  options.sim.cost_params.memory_bytes = 1e12;
  // Fast ETL so swaps land within a bucket or two of the decision.
  options.etl = EtlCostModel{2e10, 2e10, 2e10, 1.0};
  options.migration.min_catchup_seconds = 30.0;
  return options;
}

BucketDemand Bucket(double tod, double qps, std::vector<double> scale = {}) {
  BucketDemand demand;
  demand.tod_seconds = tod;
  demand.offered_qps = qps;
  demand.class_weight_scale = std::move(scale);
  return demand;
}

TEST(AdaptiveControllerTest, DriftTriggersALiveReallocationWithoutLoss) {
  LoopFixture fx;
  GreedyAllocator greedy;
  AdaptiveController controller(fx.cls, &greedy, FastOptions());
  ASSERT_TRUE(controller.Install(3).ok());

  // Bucket 0: night mix, far from the base weights → drift decision.
  const std::vector<double> night = fx.MixShiftToward(1, 6.0);
  std::vector<BucketDemand> day;
  for (int i = 0; i < 4; ++i) {
    day.push_back(Bucket(600.0 * i, 250.0, night));
  }
  auto report = controller.ReplayDay(day, FaultPlan{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GE(report->reallocations, 1u);
  ASSERT_FALSE(report->transitions.empty());
  const TransitionRecord& first = report->transitions.front();
  EXPECT_EQ(first.action, AdaptiveAction::kReallocate);
  EXPECT_TRUE(first.completed);
  EXPECT_GT(first.moved_bytes, 0.0);
  EXPECT_GT(first.swap_seconds, first.decided_seconds);

  // Zero dropped or misrouted queries across the live swap: every offered
  // request completed in every bucket, including the split swap bucket.
  bool saw_swap = false;
  for (const AdaptiveStep& step : report->steps) {
    EXPECT_EQ(step.failed, 0u) << "at tod " << step.tod_seconds;
    EXPECT_EQ(step.rejected, 0u) << "at tod " << step.tod_seconds;
    EXPECT_GT(step.completed, 0u);
    saw_swap = saw_swap || step.swapped;
  }
  EXPECT_TRUE(saw_swap);

  // After the swap the layout serves the night mix: drift is back under
  // the threshold in the last bucket.
  EXPECT_LT(report->steps.back().drift, 0.3);
}

TEST(AdaptiveControllerTest, CrashMidMigrationAbortsAndSelfHeals) {
  LoopFixture fx;
  // The k-safety target and the allocator must agree: Algorithm 4 layouts
  // are what keep the cluster servable through the crash.
  KSafeGreedyAllocator greedy(KSafetyOptions{1, 1e-12, 0});
  AdaptiveOptions options = FastOptions();
  // Stretch the catch-up so the drift migration is still in flight when
  // the crash is detected one bucket later.
  options.migration.min_catchup_seconds = 700.0;
  AdaptiveController controller(fx.cls, &greedy, options);
  ASSERT_TRUE(controller.Install(3).ok());

  const std::vector<double> night = fx.MixShiftToward(1, 6.0);
  std::vector<BucketDemand> day;
  for (int i = 0; i < 8; ++i) {
    day.push_back(Bucket(600.0 * i, 250.0, night));
  }
  // Bucket 0 decides the drift reallocation at t=600 (swap ≈ t=1300);
  // the crash at t=700 lands mid-COPY.
  FaultPlan faults;
  faults.Crash(700.0, 1);

  auto report = controller.ReplayDay(day, faults);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The drift plan was overtaken by events; the self-heal replaced it.
  ASSERT_GE(report->transitions.size(), 2u);
  EXPECT_EQ(report->transitions[0].action, AdaptiveAction::kReallocate);
  EXPECT_TRUE(report->transitions[0].aborted);
  EXPECT_FALSE(report->transitions[0].completed);
  EXPECT_EQ(report->transitions[1].action, AdaptiveAction::kSelfHeal);
  EXPECT_TRUE(report->transitions[1].completed);
  EXPECT_EQ(report->self_heals, 1u);

  // The repaired cluster is whole again and k-safe.
  for (bool alive : controller.alive()) EXPECT_TRUE(alive);
  EXPECT_TRUE(CheckKSafety(controller.base(), controller.allocation(),
                           controller.alive(), options.k_safety)
                  .ok());
  // Queries kept flowing throughout (the crash strands some in-flight
  // work, but nothing is rejected as unservable: k-safety held).
  for (const AdaptiveStep& step : report->steps) {
    EXPECT_EQ(step.rejected, 0u) << "at tod " << step.tod_seconds;
    EXPECT_GT(step.completed, 0u);
  }
}

TEST(AdaptiveControllerTest, DayReplayIsBitDeterministic) {
  LoopFixture fx;
  GreedyAllocator greedy;

  std::vector<BucketDemand> day;
  for (int i = 0; i < 6; ++i) {
    day.push_back(Bucket(600.0 * i, 250.0,
                         i < 3 ? std::vector<double>{}
                               : fx.MixShiftToward(1, 6.0)));
  }
  FaultPlan faults;
  faults.Crash(1500.0, 2).Recover(1900.0, 2);

  auto run = [&]() {
    AdaptiveController controller(fx.cls, &greedy, FastOptions());
    EXPECT_TRUE(controller.Install(3).ok());
    auto report = controller.ReplayDay(day, faults);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  };
  const AdaptiveReport a = run();
  const AdaptiveReport b = run();

  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].p99_ms, b.steps[i].p99_ms) << i;
    EXPECT_EQ(a.steps[i].avg_ms, b.steps[i].avg_ms) << i;
    EXPECT_EQ(a.steps[i].completed, b.steps[i].completed) << i;
    EXPECT_EQ(a.steps[i].failed, b.steps[i].failed) << i;
    EXPECT_EQ(a.steps[i].nodes, b.steps[i].nodes) << i;
    EXPECT_EQ(a.steps[i].decision, b.steps[i].decision) << i;
    EXPECT_EQ(a.steps[i].drift, b.steps[i].drift) << i;
  }
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].action, b.transitions[i].action) << i;
    EXPECT_EQ(a.transitions[i].swap_seconds, b.transitions[i].swap_seconds)
        << i;
    EXPECT_EQ(a.transitions[i].moved_bytes, b.transitions[i].moved_bytes) << i;
  }
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.worst_p99_ms, b.worst_p99_ms);
}

}  // namespace
}  // namespace qcap
