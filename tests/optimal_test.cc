#include "alloc/optimal.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"

namespace qcap {
namespace {

TEST(OptimalTest, SingleBackend) {
  const Classification cls = testutil::Figure2Classification();
  OptimalAllocator optimal;
  auto result = optimal.Allocate(cls, HomogeneousBackends(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(
      ValidateAllocation(cls, result.value(), HomogeneousBackends(1)).ok());
  EXPECT_NEAR(optimal.last_scale(), 1.0, 1e-6);
}

TEST(OptimalTest, Figure2TwoBackendsMinimalReplication) {
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(2);
  OptimalAllocator optimal;
  auto result = optimal.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Status valid = ValidateAllocation(cls, result.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  // Optimal: speedup 2, only B replicated -> 4 units stored.
  EXPECT_NEAR(Speedup(result.value(), backends), 2.0, 1e-6);
  EXPECT_NEAR(DegreeOfReplication(result.value(), cls.catalog), 4.0 / 3.0,
              1e-6);
}

TEST(OptimalTest, ReadOnlyScaleIsOne) {
  const Classification cls = testutil::Figure2Classification();
  OptimalAllocator optimal;
  auto result = optimal.Allocate(cls, HomogeneousBackends(3));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(optimal.last_scale(), 1.0, 1e-6);
}

TEST(OptimalTest, NeverWorseScaleThanGreedy) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(2);
  GreedyAllocator greedy;
  auto g = greedy.Allocate(cls, backends);
  ASSERT_TRUE(g.ok());
  OptimalAllocator optimal;
  auto o = optimal.Allocate(cls, backends);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, o.value(), backends).ok());
  EXPECT_LE(Scale(o.value(), backends), Scale(g.value(), backends) + 1e-6);
}

TEST(OptimalTest, UpdatesArePinnedByLp) {
  // Two backends, one update class: the LP must pin the update everywhere
  // its data lands.
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.45, 1.0, false, "Q1", {}},
               QueryClass{{1}, 0.45, 1.0, false, "Q2", {}}};
  cls.updates = {QueryClass{{0}, 0.10, 1.0, true, "U1", {}}};
  const auto backends = HomogeneousBackends(2);
  OptimalAllocator optimal;
  auto result = optimal.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Status valid = ValidateAllocation(cls, result.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  // Optimal separates A and B: scale = max(0.55, 0.45)/0.5 = 1.1.
  EXPECT_NEAR(optimal.last_scale(), 1.1, 1e-6);
}

TEST(OptimalTest, ScaleOnlyModeSkipsStorageStage) {
  const Classification cls = testutil::Figure2Classification();
  OptimalOptions opts;
  opts.scale_only = true;
  OptimalAllocator optimal(opts);
  auto result = optimal.Allocate(cls, HomogeneousBackends(2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      ValidateAllocation(cls, result.value(), HomogeneousBackends(2)).ok());
}

TEST(OptimalTest, HeterogeneousBackends) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.7, 1.0, false, "Q1", {}},
               QueryClass{{1}, 0.3, 1.0, false, "Q2", {}}};
  auto backends = HeterogeneousBackends({0.7, 0.3});
  ASSERT_TRUE(backends.ok());
  OptimalAllocator optimal;
  auto result = optimal.Allocate(cls, backends.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends.value()).ok());
  // Classes fit the backend shares exactly: scale 1, no replication.
  EXPECT_NEAR(optimal.last_scale(), 1.0, 1e-6);
  EXPECT_NEAR(DegreeOfReplication(result.value(), cls.catalog), 1.0, 1e-6);
}

}  // namespace
}  // namespace qcap
