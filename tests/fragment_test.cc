#include "workload/fragment.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace qcap {
namespace {

TEST(FragmentCatalogTest, AddAndLookup) {
  FragmentCatalog catalog;
  auto a = catalog.Add("t1", "t1", FragmentKind::kTable, 100.0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 0u);
  auto b = catalog.Add("t2", "t2", FragmentKind::kTable, 50.0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Get(0).name, "t1");
  EXPECT_EQ(catalog.Get(1).size_bytes, 50.0);
  EXPECT_EQ(catalog.Find("t2").value(), 1u);
}

TEST(FragmentCatalogTest, RejectsDuplicates) {
  FragmentCatalog catalog;
  ASSERT_TRUE(catalog.Add("x", "x", FragmentKind::kTable, 1.0).ok());
  auto dup = catalog.Add("x", "x", FragmentKind::kTable, 2.0);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(FragmentCatalogTest, RejectsEmptyNameAndNegativeSize) {
  FragmentCatalog catalog;
  EXPECT_FALSE(catalog.Add("", "t", FragmentKind::kTable, 1.0).ok());
  EXPECT_FALSE(catalog.Add("y", "t", FragmentKind::kTable, -1.0).ok());
}

TEST(FragmentCatalogTest, FindMissing) {
  FragmentCatalog catalog;
  EXPECT_TRUE(catalog.Find("ghost").status().IsNotFound());
}

TEST(FragmentCatalogTest, SetAndTotalBytes) {
  FragmentCatalog catalog;
  ASSERT_TRUE(catalog.Add("a", "a", FragmentKind::kTable, 10.0).ok());
  ASSERT_TRUE(catalog.Add("b", "b", FragmentKind::kTable, 20.0).ok());
  ASSERT_TRUE(catalog.Add("c", "c", FragmentKind::kTable, 30.0).ok());
  EXPECT_DOUBLE_EQ(catalog.TotalBytes(), 60.0);
  EXPECT_DOUBLE_EQ(catalog.SetBytes({0, 2}), 40.0);
  EXPECT_DOUBLE_EQ(catalog.SetBytes({}), 0.0);
}

TEST(FragmentSetTest, NormalizeSortsAndDedups) {
  FragmentSet s = {3, 1, 2, 1, 3};
  NormalizeSet(&s);
  EXPECT_EQ(s, (FragmentSet{1, 2, 3}));
}

TEST(FragmentSetTest, Union) {
  EXPECT_EQ(SetUnion({1, 3}, {2, 3, 4}), (FragmentSet{1, 2, 3, 4}));
  EXPECT_EQ(SetUnion({}, {1}), (FragmentSet{1}));
  EXPECT_EQ(SetUnion({}, {}), FragmentSet{});
}

TEST(FragmentSetTest, Intersection) {
  EXPECT_EQ(SetIntersection({1, 2, 3}, {2, 3, 4}), (FragmentSet{2, 3}));
  EXPECT_EQ(SetIntersection({1}, {2}), FragmentSet{});
}

TEST(FragmentSetTest, Difference) {
  EXPECT_EQ(SetDifference({1, 2, 3}, {2}), (FragmentSet{1, 3}));
  EXPECT_EQ(SetDifference({1, 2}, {1, 2, 3}), FragmentSet{});
}

TEST(FragmentSetTest, SubsetAndIntersects) {
  EXPECT_TRUE(IsSubset({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_FALSE(IsSubset({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(Intersects({1, 5}, {5, 9}));
  EXPECT_FALSE(Intersects({1, 3}, {2, 4}));
  EXPECT_FALSE(Intersects({}, {1}));
}

TEST(FragmentSetTest, Contains) {
  EXPECT_TRUE(Contains({1, 3, 5}, 3));
  EXPECT_FALSE(Contains({1, 3, 5}, 4));
  EXPECT_FALSE(Contains({}, 0));
}

// Property sweep: the set algebra obeys the usual identities on random sets.
class SetAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetAlgebraProperty, Identities) {
  Rng rng(GetParam());
  auto random_set = [&]() {
    FragmentSet s;
    for (FragmentId f = 0; f < 24; ++f) {
      if (rng.NextBernoulli(0.4)) s.push_back(f);
    }
    return s;
  };
  for (int iter = 0; iter < 50; ++iter) {
    const FragmentSet a = random_set();
    const FragmentSet b = random_set();
    // |A ∪ B| = |A| + |B| - |A ∩ B|.
    EXPECT_EQ(SetUnion(a, b).size(),
              a.size() + b.size() - SetIntersection(a, b).size());
    // A \ B and A ∩ B partition A.
    EXPECT_EQ(SetDifference(a, b).size() + SetIntersection(a, b).size(),
              a.size());
    // A ⊆ A ∪ B; A ∩ B ⊆ A.
    EXPECT_TRUE(IsSubset(a, SetUnion(a, b)));
    EXPECT_TRUE(IsSubset(SetIntersection(a, b), a));
    // Intersects consistent with intersection emptiness.
    EXPECT_EQ(Intersects(a, b), !SetIntersection(a, b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgebraProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qcap
