// Cross-module invariants on random workloads: simulation conservation
// laws, physical-allocation optimality properties, and serialization
// round-trips under the full pipeline.
#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/simulator.h"
#include "common/random.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "physical/physical_allocator.h"
#include "workload/classifier.h"
#include "workload/journal_io.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

struct Instance {
  workloads::RandomWorkload workload;
  Classification cls;
  std::vector<BackendSpec> backends;
  Allocation alloc;
};

Instance MakeInstance(uint64_t seed, size_t nodes) {
  Instance inst;
  inst.workload = workloads::MakeRandomWorkload(seed);
  Classifier classifier(inst.workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(inst.workload.journal);
  EXPECT_TRUE(cls.ok());
  inst.cls = std::move(cls).value();
  inst.backends = HomogeneousBackends(nodes);
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(inst.cls, inst.backends);
  EXPECT_TRUE(alloc.ok());
  inst.alloc = std::move(alloc).value();
  return inst;
}

class SimulationConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulationConservation, ClosedLoopCompletesExactlyRequested) {
  const Instance inst = MakeInstance(GetParam(), 4);
  SimulationConfig config;
  config.seed = GetParam();
  auto sim = ClusterSimulator::Create(inst.cls, inst.alloc, inst.backends,
                                      config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  auto stats = sim->RunClosed(2500, 12);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed_total(), 2500u);
  EXPECT_EQ(stats->failed_requests, 0u);
  EXPECT_EQ(stats->rejected_requests, 0u);
  EXPECT_GT(stats->throughput, 0.0);
  EXPECT_GE(stats->max_response_seconds, stats->avg_response_seconds);
  // Busy time is positive on at least one backend and none exceeds the
  // simulated duration times the server count.
  double total_busy = 0.0;
  for (double b : stats->backend_busy_seconds) {
    EXPECT_LE(b, stats->duration_seconds *
                     static_cast<double>(config.servers_per_backend) + 1e-6);
    total_busy += b;
  }
  EXPECT_GT(total_busy, 0.0);
}

TEST_P(SimulationConservation, OpenLoopAccountsEveryArrival) {
  const Instance inst = MakeInstance(GetParam(), 4);
  SimulationConfig config;
  config.seed = GetParam() * 7 + 1;
  auto sim = ClusterSimulator::Create(inst.cls, inst.alloc, inst.backends,
                                      config);
  ASSERT_TRUE(sim.ok());
  auto stats = sim->RunOpen(20.0, 200.0);
  ASSERT_TRUE(stats.ok());
  // ~4000 arrivals expected; all must complete with no failures injected.
  EXPECT_GT(stats->completed_total(), 3000u);
  EXPECT_EQ(stats->failed_requests, 0u);
  EXPECT_EQ(stats->rejected_requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationConservation,
                         ::testing::Range<uint64_t>(1, 7));

class PhysicalInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PhysicalInvariants, SelfTransitionIsFree) {
  const Instance inst = MakeInstance(GetParam(), 5);
  PhysicalAllocator physical;
  auto plan = physical.Plan(inst.alloc, inst.alloc, inst.cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_bytes, 0.0);
}

TEST_P(PhysicalInvariants, PermutedTargetIsFree) {
  const Instance inst = MakeInstance(GetParam(), 5);
  // Shuffle the backends; matching must rediscover the permutation.
  std::vector<size_t> perm = {4, 2, 0, 3, 1};
  Allocation permuted(5, inst.alloc.num_fragments(), inst.alloc.num_reads(),
                      inst.alloc.num_updates());
  for (size_t b = 0; b < 5; ++b) {
    permuted.PlaceSet(b, inst.alloc.BackendFragments(perm[b]));
  }
  PhysicalAllocator physical;
  auto plan = physical.Plan(inst.alloc, permuted, inst.cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_bytes, 0.0);
}

TEST_P(PhysicalInvariants, MatchingNeverWorseThanIdentity) {
  const Instance old_inst = MakeInstance(GetParam(), 5);
  const Instance new_inst = MakeInstance(GetParam() + 100, 5);
  // Same catalog dimensions are required; rebuild the new allocation over
  // the old classification for comparability.
  GreedyAllocator greedy;
  Classifier classifier(old_inst.workload.catalog,
                        {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(old_inst.workload.journal);
  ASSERT_TRUE(cls.ok());
  auto a1 = greedy.Allocate(cls.value(), HomogeneousBackends(5));
  auto a2 = greedy.Allocate(cls.value(), HomogeneousBackends(5));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  PhysicalAllocator physical;
  auto plan = physical.Plan(a1.value(), a2.value(), cls->catalog);
  ASSERT_TRUE(plan.ok());
  // Identity assignment cost:
  double identity = 0.0;
  for (size_t b = 0; b < 5; ++b) {
    identity += cls->catalog.SetBytes(SetDifference(
        a2->BackendFragments(b), a1->BackendFragments(b)));
  }
  EXPECT_LE(plan->total_bytes, identity + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicalInvariants,
                         ::testing::Range<uint64_t>(1, 7));

class JournalRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalRoundTrip, RandomJournalsSurviveSerialization) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  auto loaded = DeserializeJournal(SerializeJournal(workload.journal));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Classifying the round-tripped journal yields identical weights.
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto before = classifier.Classify(workload.journal);
  auto after = classifier.Classify(loaded.value());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->reads.size(), after->reads.size());
  for (size_t r = 0; r < before->reads.size(); ++r) {
    EXPECT_NEAR(before->reads[r].weight, after->reads[r].weight, 1e-12);
    EXPECT_EQ(before->reads[r].fragments, after->reads[r].fragments);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalRoundTrip,
                         ::testing::Range<uint64_t>(1, 9));

class KSafetyDominance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KSafetyDominance, ReplicationFloorsAndValidityHoldPerK) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(5);
  for (int k : {0, 1, 2}) {
    KSafeGreedyAllocator allocator({k, 1e-12, 0});
    auto alloc = allocator.Allocate(cls.value(), backends);
    ASSERT_TRUE(alloc.ok()) << "k=" << k;
    // Every fragment at least k+1 times => r >= k+1; plus full k-safe
    // validation. (The heuristic is not strictly monotone in k — different
    // replica placements cascade — so only the floors are invariant.)
    const double r = DegreeOfReplication(alloc.value(), cls->catalog);
    EXPECT_GE(r, static_cast<double>(k + 1) - 1e-9) << "k=" << k;
    ValidationOptions opts;
    opts.k_safety = k;
    Status valid = ValidateAllocation(cls.value(), alloc.value(), backends, opts);
    EXPECT_TRUE(valid.ok()) << "k=" << k << ": " << valid.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KSafetyDominance,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace qcap
