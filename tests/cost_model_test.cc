#include "exec/cost_model.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

TEST(CatalogTest, TableAndColumnBytes) {
  engine::Catalog catalog = workloads::TpchCatalog(1.0);
  auto lineitem = catalog.TableBytes("lineitem");
  ASSERT_TRUE(lineitem.ok());
  // 6M rows x ~140 B/row: several hundred MB.
  EXPECT_GT(lineitem.value(), 5e8);
  auto col = catalog.ColumnBytes("lineitem", "l_quantity");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ(col.value(), 6000000.0 * 8.0);
  EXPECT_FALSE(catalog.TableBytes("ghost").ok());
  EXPECT_FALSE(catalog.ColumnBytes("lineitem", "ghost").ok());
}

TEST(CatalogTest, ScaleFactorScalesLinearly) {
  engine::Catalog sf1 = workloads::TpchCatalog(1.0);
  engine::Catalog sf10 = workloads::TpchCatalog(10.0);
  EXPECT_NEAR(sf10.TotalBytes(), 10.0 * sf1.TotalBytes(), 1.0);
}

TEST(CatalogTest, RejectsDuplicatesAndEmpty) {
  engine::Catalog catalog;
  engine::TableDef t{"t", {{"c", engine::ColumnType::kInt32, 0, true}}, 10};
  ASSERT_TRUE(catalog.AddTable(t).ok());
  EXPECT_FALSE(catalog.AddTable(t).ok());
  engine::TableDef empty{"e", {}, 10};
  EXPECT_FALSE(catalog.AddTable(empty).ok());
}

TEST(TypesTest, Widths) {
  using engine::ColumnType;
  using engine::TypeWidth;
  EXPECT_EQ(TypeWidth(ColumnType::kInt32, 0), 4u);
  EXPECT_EQ(TypeWidth(ColumnType::kInt64, 0), 8u);
  EXPECT_EQ(TypeWidth(ColumnType::kDecimal, 0), 8u);
  EXPECT_EQ(TypeWidth(ColumnType::kDate, 0), 4u);
  EXPECT_EQ(TypeWidth(ColumnType::kChar, 17), 17u);
  EXPECT_EQ(TypeWidth(ColumnType::kVarchar, 55), 55u);
}

TEST(TypesTest, Names) {
  using engine::ColumnType;
  using engine::TypeName;
  EXPECT_EQ(TypeName(ColumnType::kInt32, 0), "int32");
  EXPECT_EQ(TypeName(ColumnType::kVarchar, 55), "varchar(55)");
}

TEST(CostModelTest, CachePenaltyGrowsWithResidentBytes) {
  engine::CostModelParams params;
  params.memory_bytes = 1000.0;
  engine::CostModel model(params);
  const Classification cls = testutil::Figure2Classification();
  const QueryClass& c = cls.reads[0];
  const double fits = model.ServiceSeconds(cls, c, 500.0, 1.0);
  const double spills = model.ServiceSeconds(cls, c, 4000.0, 1.0);
  EXPECT_GT(spills, fits);
  // Bounded by the max penalty.
  const double huge = model.ServiceSeconds(cls, c, 1e15, 1.0);
  EXPECT_LE(huge, fits * params.max_cache_penalty + 1e-12);
}

TEST(CostModelTest, FasterBackendIsFaster) {
  engine::CostModel model;
  const Classification cls = testutil::Figure2Classification();
  const QueryClass& c = cls.reads[0];
  EXPECT_LT(model.ServiceSeconds(cls, c, 0.0, 2.0),
            model.ServiceSeconds(cls, c, 0.0, 1.0));
}

TEST(CostModelTest, ColumnGranularityReducesServiceTime) {
  // Classify one TPC-H query at table vs column granularity: the column
  // variant touches fewer bytes, so its service time must be smaller.
  engine::Catalog catalog = workloads::TpchCatalog(1.0);
  QueryJournal journal;
  journal.Record(workloads::TpchQueries()[0], 100);  // Q1: lineitem subset.

  Classifier table_cls(catalog, {Granularity::kTable, 4, true});
  Classifier column_cls(catalog, {Granularity::kColumn, 4, true});
  auto table_result = table_cls.Classify(journal);
  auto column_result = column_cls.Classify(journal);
  ASSERT_TRUE(table_result.ok());
  ASSERT_TRUE(column_result.ok());

  engine::CostModel model;
  const double t_table = model.ServiceSeconds(
      table_result.value(), table_result->reads[0], 0.0, 1.0);
  const double t_column = model.ServiceSeconds(
      column_result.value(), column_result->reads[0], 0.0, 1.0);
  EXPECT_LT(t_column, t_table);
}

TEST(CostModelTest, ServiceMatrixShape) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(3);
  Allocation a(3, 3, 4, 3);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  engine::CostModel model;
  const auto matrix = model.ServiceMatrix(cls, a, backends);
  ASSERT_EQ(matrix.size(), 7u);
  for (const auto& row : matrix) {
    ASSERT_EQ(row.size(), 3u);
    for (double v : row) EXPECT_GT(v, 0.0);
  }
}

TEST(CostModelTest, MeanCostScalesServiceTime) {
  const Classification cls = testutil::Figure2Classification();
  engine::CostModel model;
  QueryClass cheap = cls.reads[0];
  cheap.mean_cost = 1.0;
  QueryClass pricey = cls.reads[0];
  pricey.mean_cost = 10.0;
  EXPECT_NEAR(model.ServiceSeconds(cls, pricey, 0.0, 1.0),
              10.0 * model.ServiceSeconds(cls, cheap, 0.0, 1.0), 1e-12);
}

}  // namespace
}  // namespace qcap
