#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qcap {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto forty_two = pool.Submit([]() { return 42; });
  auto text = pool.Submit([]() { return std::string("ok"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "ok");
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitPropagatesWorkerExceptions) {
  ThreadPool pool(2);
  auto failing = pool.Submit(
      []() -> int { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "worker boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ZeroThreadPoolIsInert) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  // ParallelFor falls back to the calling thread.
  std::vector<int> hit(16, 0);
  ParallelFor(&pool, hit.size(), [&](size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 16);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSerialWhenPoolIsNull) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkerExceptions) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(&pool, 64,
                  [&](size_t i) {
                    ++ran;
                    if (i == 13) throw std::runtime_error("index 13");
                  }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer index issues an inner ParallelFor on the same (small) pool;
  // the waiters must help drain the queue instead of blocking it.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace qcap
