#include "workloads/tpcapp.h"

#include <gtest/gtest.h>

#include "workload/classifier.h"

namespace qcap {
namespace {

using workloads::TpcAppCatalog;
using workloads::TpcAppJournal;
using workloads::TpcAppLargeJournal;
using workloads::TpcAppQueries;

TEST(TpcAppTest, CatalogSizeMatchesPaperEb300) {
  const engine::Catalog catalog = TpcAppCatalog(300.0);
  const double mb = catalog.TotalBytes() / (1024.0 * 1024.0);
  // The paper reports ~280 MB at EB=300.
  EXPECT_GT(mb, 180.0);
  EXPECT_LT(mb, 380.0);
}

TEST(TpcAppTest, LargeScaleAboutEightGigabytes) {
  const engine::Catalog catalog = TpcAppCatalog(12000.0);
  const double gb = catalog.TotalBytes() / (1024.0 * 1024.0 * 1024.0);
  EXPECT_GT(gb, 6.0);
  EXPECT_LT(gb, 12.0);
}

TEST(TpcAppTest, TemplatesReferenceValidColumns) {
  const engine::Catalog catalog = TpcAppCatalog();
  for (const auto& q : TpcAppQueries()) {
    for (const auto& access : q.accesses) {
      auto table = catalog.FindTable(access.table);
      ASSERT_TRUE(table.ok()) << q.text << " references " << access.table;
      for (const auto& col : access.columns) {
        EXPECT_GE(table.value()->ColumnIndex(col), 0)
            << q.text << ": " << access.table << "." << col;
      }
    }
  }
}

TEST(TpcAppTest, ReadWriteCountRatioOneToSeven) {
  const QueryJournal journal = TpcAppJournal(200000);
  uint64_t reads = 0, writes = 0;
  for (size_t i = 0; i < journal.NumDistinct(); ++i) {
    if (journal.queries()[i].is_update) {
      writes += journal.count(i);
    } else {
      reads += journal.count(i);
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reads), 7.0,
              0.2);
}

TEST(TpcAppTest, UpdateWeightIsQuarter) {
  const engine::Catalog catalog = TpcAppCatalog();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpcAppJournal());
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  double update_weight = 0.0;
  for (const auto& u : cls->updates) update_weight += u.weight;
  EXPECT_NEAR(update_weight, 0.25, 0.01);
}

TEST(TpcAppTest, BestSellersIsHalfTheWorkload) {
  const engine::Catalog catalog = TpcAppCatalog();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpcAppJournal());
  ASSERT_TRUE(cls.ok());
  // Heaviest read class: 50% of the weight from 1.5% of the queries.
  const QueryClass& heavy = cls->reads[0];
  EXPECT_NEAR(heavy.weight, 0.50, 0.01);
}

TEST(TpcAppTest, OrderLineWritesThirteenPercent) {
  const engine::Catalog catalog = TpcAppCatalog();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpcAppJournal());
  ASSERT_TRUE(cls.ok());
  double max_update = 0.0;
  for (const auto& u : cls->updates) max_update = std::max(max_update, u.weight);
  EXPECT_NEAR(max_update, 0.13, 0.01);
}

TEST(TpcAppTest, EightTableClassesTenColumnClasses) {
  const engine::Catalog catalog = TpcAppCatalog();
  Classifier table_cls(catalog, {Granularity::kTable, 4, true});
  auto t = table_cls.Classify(TpcAppJournal());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumClasses(), 8u);
  Classifier column_cls(catalog, {Granularity::kColumn, 4, true});
  auto c = column_cls.Classify(TpcAppJournal());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClasses(), 10u);
}

TEST(TpcAppTest, UpdatedTablesFullyAllocatedAtColumnGranularity) {
  // "All tables that are queried were also updated, therefore the
  // column-based allocation always allocated the complete tables" -- update
  // classes reference every column of their table.
  const engine::Catalog catalog = TpcAppCatalog();
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(TpcAppJournal());
  ASSERT_TRUE(cls.ok());
  for (const auto& u : cls->updates) {
    ASSERT_FALSE(u.fragments.empty());
    const std::string table = cls->catalog.Get(u.fragments[0]).table;
    auto def = catalog.FindTable(table);
    ASSERT_TRUE(def.ok());
    EXPECT_EQ(u.fragments.size(), def.value()->columns.size())
        << "update on " << table;
  }
}

TEST(TpcAppTest, LargeJournalBalancedWeights) {
  const engine::Catalog catalog = TpcAppCatalog(12000.0);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(TpcAppLargeJournal());
  ASSERT_TRUE(cls.ok());
  double update_weight = 0.0;
  for (const auto& u : cls->updates) update_weight += u.weight;
  // Fig. 4i variant: ~1:1 read-to-update weight.
  EXPECT_NEAR(update_weight, 0.50, 0.02);
}

TEST(TpcAppTest, JournalScalesByTotal) {
  const QueryJournal small = TpcAppJournal(20000);
  EXPECT_NEAR(static_cast<double>(small.TotalExecutions()), 20000.0, 100.0);
}

}  // namespace
}  // namespace qcap
