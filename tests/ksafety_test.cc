#include "alloc/ksafety.h"

#include <gtest/gtest.h>

#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

TEST(KSafetyTest, KZeroBehavesLikeValidGreedy) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  KSafeGreedyAllocator alloc({0, 1e-12, 0});
  auto result = alloc.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends).ok());
}

TEST(KSafetyTest, KOneEveryClassOnTwoBackends) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(4);
  KSafeGreedyAllocator alloc({1, 1e-12, 0});
  auto result = alloc.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ValidationOptions opts;
  opts.k_safety = 1;
  Status valid = ValidateAllocation(cls, result.value(), backends, opts);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(KSafetyTest, KTwoFragmentsTriplicated) {
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(5);
  KSafeGreedyAllocator alloc({2, 1e-12, 0});
  auto result = alloc.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (FragmentId f = 0; f < cls.catalog.size(); ++f) {
    EXPECT_GE(result->ReplicaCount(f), 3u) << "fragment " << f;
  }
  ValidationOptions opts;
  opts.k_safety = 2;
  EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends, opts).ok());
}

TEST(KSafetyTest, ReadOnlySpeedupUnaffectedByReplicas) {
  // Appendix C: in the read-only case the theoretical speedup is unaffected
  // by k-safety.
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(4);
  KSafeGreedyAllocator alloc({1, 1e-12, 0});
  auto result = alloc.Allocate(cls, backends);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Speedup(result.value(), backends), 4.0, 1e-6);
}

TEST(KSafetyTest, UpdateReplicationReducesSpeedup) {
  // With updates, k=1 forces replicated update classes, so the model
  // speedup degrades relative to k=0.
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(4);
  KSafeGreedyAllocator k0({0, 1e-12, 0});
  KSafeGreedyAllocator k1({1, 1e-12, 0});
  auto r0 = k0.Allocate(cls, backends);
  auto r1 = k1.Allocate(cls, backends);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LE(Speedup(r1.value(), backends),
            Speedup(r0.value(), backends) + 1e-9);
}

TEST(KSafetyTest, RejectsImpossibleK) {
  const Classification cls = testutil::Figure2Classification();
  KSafeGreedyAllocator alloc({2, 1e-12, 0});
  EXPECT_FALSE(alloc.Allocate(cls, HomogeneousBackends(2)).ok());
  KSafeGreedyAllocator neg({-1, 1e-12, 0});
  EXPECT_FALSE(neg.Allocate(cls, HomogeneousBackends(2)).ok());
}

TEST(KSafetyTest, NameReflectsK) {
  EXPECT_EQ(KSafeGreedyAllocator({1, 1e-12, 0}).name(), "greedy-k1");
  EXPECT_EQ(KSafeGreedyAllocator({2, 1e-12, 0}).name(), "greedy-k2");
}

class KSafetyPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(KSafetyPropertySweep, RandomWorkloadsStayKSafe) {
  const auto [seed, k] = GetParam();
  const auto workload = workloads::MakeRandomWorkload(seed);
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const size_t n = static_cast<size_t>(k) + 3;
  const auto backends = HomogeneousBackends(n);
  KSafeGreedyAllocator alloc({k, 1e-12, 0});
  auto result = alloc.Allocate(cls.value(), backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ValidationOptions opts;
  opts.k_safety = k;
  Status valid = ValidateAllocation(cls.value(), result.value(), backends, opts);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, KSafetyPropertySweep,
                         ::testing::Combine(::testing::Range<uint64_t>(1, 7),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace qcap
