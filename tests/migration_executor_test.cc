#include "cluster/migration_executor.h"

#include <gtest/gtest.h>

#include "model/backend.h"

namespace qcap {
namespace {

TransitionPlan TwoBackendPlan() {
  TransitionPlan plan;
  plan.source_of = {0, 1};
  plan.move_bytes = {100e6, 0.0};
  plan.total_bytes = 100e6;
  plan.duration_seconds = 10.0;
  return plan;
}

Allocation TwoBackendAllocation() {
  Allocation alloc(2, 4, 1, 1);
  for (size_t b = 0; b < 2; ++b) {
    for (FragmentId f = 0; f < 4; ++f) alloc.Place(b, f);
  }
  return alloc;
}

TEST(MigrationExecutorTest, StagesAndTimesFollowThePlan) {
  MigrationExecutor executor;
  MigrationOptions options;  // slowdown 1.25, catchup 10%, floor 0.5s
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                         TwoBackendPlan(), 100.0, options)
                  .ok());
  ASSERT_TRUE(executor.active());

  // Copy: 10s plan duration stretched by 1.25 while serving = 12.5s;
  // catch-up: 10% of that = 1.25s.
  EXPECT_DOUBLE_EQ(executor.start_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(executor.copy_end_seconds(), 112.5);
  EXPECT_DOUBLE_EQ(executor.swap_seconds(), 113.75);
  EXPECT_DOUBLE_EQ(executor.etl_seconds(), 13.75);
  EXPECT_DOUBLE_EQ(executor.moved_bytes(), 100e6);

  EXPECT_EQ(executor.PhaseAt(99.0), MigrationPhase::kIdle);
  EXPECT_EQ(executor.PhaseAt(100.0), MigrationPhase::kCopy);
  EXPECT_EQ(executor.PhaseAt(112.0), MigrationPhase::kCopy);
  EXPECT_EQ(executor.PhaseAt(113.0), MigrationPhase::kCatchup);
  EXPECT_EQ(executor.PhaseAt(113.75), MigrationPhase::kDone);

  // Backend 0 receives all the bytes; backend 1 is ready immediately.
  ASSERT_EQ(executor.backend_ready_seconds().size(), 2u);
  EXPECT_DOUBLE_EQ(executor.backend_ready_seconds()[0], 113.75);
  EXPECT_DOUBLE_EQ(executor.backend_ready_seconds()[1], 100.0);

  // Only the receiving serving node degrades.
  ASSERT_EQ(executor.participants().size(), 1u);
  EXPECT_EQ(executor.participants()[0], 0u);
}

TEST(MigrationExecutorTest, InterferenceWindowsClipToCopyPhase) {
  MigrationExecutor executor;
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                         TwoBackendPlan(), 100.0, MigrationOptions{})
                  .ok());

  // Window fully inside COPY.
  auto inside = executor.InterferenceIn(101.0, 105.0);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0].backend, 0u);
  EXPECT_DOUBLE_EQ(inside[0].begin_seconds, 101.0);
  EXPECT_DOUBLE_EQ(inside[0].end_seconds, 105.0);
  EXPECT_DOUBLE_EQ(inside[0].factor, 1.3);

  // Window straddling copy end clips to it; catch-up does not interfere.
  auto straddle = executor.InterferenceIn(110.0, 120.0);
  ASSERT_EQ(straddle.size(), 1u);
  EXPECT_DOUBLE_EQ(straddle[0].end_seconds, 112.5);

  // Entirely before / after the copy: nothing.
  EXPECT_TRUE(executor.InterferenceIn(0.0, 100.0).empty());
  EXPECT_TRUE(executor.InterferenceIn(112.5, 200.0).empty());

  // Interference disabled.
  MigrationExecutor quiet;
  MigrationOptions options;
  options.etl_interference = 1.0;
  ASSERT_TRUE(quiet
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                         TwoBackendPlan(), 100.0, options)
                  .ok());
  EXPECT_TRUE(quiet.InterferenceIn(100.0, 120.0).empty());
}

TEST(MigrationExecutorTest, FreshNodesAreNotServingParticipants) {
  TransitionPlan plan;
  plan.source_of = {0, -1};  // backend 1 lands on freshly provisioned metal
  plan.move_bytes = {0.0, 50e6};
  plan.total_bytes = 50e6;
  plan.duration_seconds = 5.0;

  MigrationExecutor executor;
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2), plan,
                         0.0, MigrationOptions{})
                  .ok());
  EXPECT_TRUE(executor.participants().empty());
  EXPECT_TRUE(executor.InterferenceIn(0.0, 100.0).empty());
}

TEST(MigrationExecutorTest, NoOpPlanStillTakesACatchupWindow) {
  TransitionPlan plan;
  plan.source_of = {0, 1};
  plan.move_bytes = {0.0, 0.0};
  plan.total_bytes = 0.0;
  plan.duration_seconds = 0.0;

  MigrationExecutor executor;
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2), plan,
                         10.0, MigrationOptions{})
                  .ok());
  EXPECT_GT(executor.swap_seconds(), 10.0);
  EXPECT_EQ(executor.PhaseAt(10.1), MigrationPhase::kCatchup);
}

TEST(MigrationExecutorTest, TakeTargetCompletesAndAbortCancels) {
  MigrationExecutor executor;
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                         TwoBackendPlan(), 0.0, MigrationOptions{})
                  .ok());

  // A second Begin while active is refused.
  EXPECT_FALSE(executor
                   .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                          TwoBackendPlan(), 50.0, MigrationOptions{})
                   .ok());

  Allocation target = executor.TakeTarget();
  EXPECT_EQ(target.num_backends(), 2u);
  EXPECT_FALSE(executor.active());
  EXPECT_EQ(executor.PhaseAt(1000.0), MigrationPhase::kIdle);

  // Reusable after completion; Abort also frees it.
  ASSERT_TRUE(executor
                  .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                         TwoBackendPlan(), 200.0, MigrationOptions{})
                  .ok());
  executor.Abort();
  EXPECT_FALSE(executor.active());
}

TEST(MigrationExecutorTest, RejectsInvalidInputs) {
  MigrationExecutor executor;
  TransitionPlan plan = TwoBackendPlan();
  plan.move_bytes.pop_back();  // dimension mismatch
  EXPECT_FALSE(executor
                   .Begin(TwoBackendAllocation(), HomogeneousBackends(2), plan,
                          0.0, MigrationOptions{})
                   .ok());

  MigrationOptions bad;
  bad.live_copy_slowdown = 0.5;
  EXPECT_FALSE(executor
                   .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                          TwoBackendPlan(), 0.0, bad)
                   .ok());
  bad = MigrationOptions{};
  bad.etl_interference = -1.0;
  EXPECT_FALSE(executor
                   .Begin(TwoBackendAllocation(), HomogeneousBackends(2),
                          TwoBackendPlan(), 0.0, bad)
                   .ok());
}

}  // namespace
}  // namespace qcap
