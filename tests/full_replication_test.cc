#include "alloc/full_replication.h"

#include <gtest/gtest.h>

#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"

namespace qcap {
namespace {

TEST(FullReplicationTest, EverythingEverywhere) {
  const Classification cls = testutil::AppendixAClassification();
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(3);
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, alloc.value(), backends).ok());
  for (FragmentId f = 0; f < cls.catalog.size(); ++f) {
    EXPECT_EQ(alloc->ReplicaCount(f), 3u);
  }
  EXPECT_NEAR(DegreeOfReplication(alloc.value(), cls.catalog), 3.0, 1e-12);
}

TEST(FullReplicationTest, EveryUpdatePinnedEverywhere) {
  const Classification cls = testutil::AppendixAClassification();
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(4);
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  for (size_t b = 0; b < 4; ++b) {
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      EXPECT_DOUBLE_EQ(alloc->update_assign(b, u), cls.updates[u].weight);
    }
  }
}

TEST(FullReplicationTest, HomogeneousLoadsEqualizeWithUpdates) {
  const Classification cls = testutil::AppendixAClassification();
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(4);
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  // Every backend: all updates (20%) + an equal read share (80%/4).
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(alloc->AssignedUpdateLoad(b), 0.20, 1e-9);
    EXPECT_NEAR(alloc->AssignedReadLoad(b), 0.20, 1e-9);
  }
  EXPECT_NEAR(BalanceDeviation(alloc.value(), backends), 0.0, 1e-9);
}

TEST(FullReplicationTest, SpeedupMatchesAmdahl) {
  const Classification cls = testutil::AppendixAClassification();
  FullReplicationAllocator full;
  for (size_t n : {1, 2, 4, 8}) {
    const auto backends = HomogeneousBackends(n);
    auto alloc = full.Allocate(cls, backends);
    ASSERT_TRUE(alloc.ok());
    // Model speedup of full replication equals the Amdahl prediction
    // (serial = total update weight 20%).
    EXPECT_NEAR(Speedup(alloc.value(), backends),
                AmdahlFullReplicationSpeedup(cls, n), 1e-9)
        << "n=" << n;
  }
}

TEST(FullReplicationTest, HeterogeneousSharesProportionalToCapacity) {
  const Classification cls = testutil::Figure2Classification();
  FullReplicationAllocator full;
  const auto backends = testutil::AppendixABackends();  // 30/30/20/20.
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(ValidateAllocation(cls, alloc.value(), backends).ok());
  // Read-only: every backend loaded exactly at its share.
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(alloc->AssignedLoad(b), backends[b].relative_load, 1e-9);
  }
  EXPECT_NEAR(Speedup(alloc.value(), backends), 4.0, 1e-9);
}

TEST(FullReplicationTest, HeterogeneousWithUpdatesEqualizesScaledLoad) {
  const Classification cls = testutil::AppendixAClassification();
  FullReplicationAllocator full;
  const auto backends = testutil::AppendixABackends();
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(ValidateAllocation(cls, alloc.value(), backends).ok());
  // Scaled loads (assigned/capacity) should be equal across backends: the
  // waterfill compensates for the constant update load.
  const double s0 = alloc->AssignedLoad(0) / backends[0].relative_load;
  for (size_t b = 1; b < 4; ++b) {
    EXPECT_NEAR(alloc->AssignedLoad(b) / backends[b].relative_load, s0, 1e-9);
  }
}

TEST(FullReplicationTest, RejectsInvalidInput) {
  const Classification cls = testutil::Figure2Classification();
  FullReplicationAllocator full;
  EXPECT_FALSE(full.Allocate(cls, {}).ok());
  Classification bad = cls;
  bad.reads[0].weight = 99.0;
  EXPECT_FALSE(full.Allocate(bad, HomogeneousBackends(2)).ok());
}

}  // namespace
}  // namespace qcap
