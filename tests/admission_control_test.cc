// Admission-control unit tests (docs/SERVING.md, "Admission control"):
// the token bucket takes time as an explicit parameter, so refill
// behaviour is exactly deterministic — these tests replay fixed timestamp
// sequences and pin the admit/deny pattern.
#include "net/token_bucket.h"

#include <gtest/gtest.h>

#include "cluster/scheduler.h"
#include "model/allocation.h"
#include "net/dispatcher.h"
#include "test_util.h"

namespace qcap::net {
namespace {

TEST(TokenBucketTest, BurstThenDeny) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/3.0);
  // Starts full: the whole burst is admitted instantly.
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  // 0.999 s later: still less than one token.
  EXPECT_FALSE(bucket.TryAcquire(0.999));
  // At exactly 1 s a full token has accrued.
  EXPECT_TRUE(bucket.TryAcquire(1.0));
  EXPECT_FALSE(bucket.TryAcquire(1.0));
}

TEST(TokenBucketTest, FractionalRefillAccumulates) {
  TokenBucket bucket(/*rate_per_second=*/2.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  // Two quarter-second refills of 0.5 tokens each add up to one admit.
  EXPECT_FALSE(bucket.TryAcquire(0.25));
  EXPECT_TRUE(bucket.TryAcquire(0.5));
  EXPECT_FALSE(bucket.TryAcquire(0.5));
}

TEST(TokenBucketTest, IdleTimeCapsAtBurst) {
  TokenBucket bucket(/*rate_per_second=*/100.0, /*burst=*/2.0);
  // A long idle period banks at most `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(3600.0), 2.0);
  EXPECT_TRUE(bucket.TryAcquire(3600.0));
  EXPECT_TRUE(bucket.TryAcquire(3600.0));
  EXPECT_FALSE(bucket.TryAcquire(3600.0));
}

TEST(TokenBucketTest, SustainedRateConverges) {
  TokenBucket bucket(/*rate_per_second=*/8.0, /*burst=*/1.0);
  // Offer 2x the sustained rate for 10 seconds; timestamps step by 1/16 s
  // (exactly representable), so every refill adds exactly half a token and
  // precisely every other offer is admitted.
  int admitted = 0;
  for (int i = 0; i < 160; ++i) {
    if (bucket.TryAcquire(static_cast<double>(i) * 0.0625)) ++admitted;
  }
  EXPECT_EQ(admitted, 80);
}

TEST(TokenBucketTest, TimeMovingBackwardsRefillsNothing) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  // A caller bug handing in an earlier timestamp must not mint tokens.
  EXPECT_FALSE(bucket.TryAcquire(5.0));
  EXPECT_FALSE(bucket.TryAcquire(10.5));
  // Forward progress from the high-water mark resumes normal refill.
  EXPECT_TRUE(bucket.TryAcquire(11.0));
}

TEST(TokenBucketTest, BurstClampsToOneToken) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/0.01);
  // A sub-1 burst would deadlock the bucket; it is clamped to 1.
  EXPECT_DOUBLE_EQ(bucket.burst(), 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
}

// The dispatcher applies one bucket per class: exhausting R0's budget must
// not affect R1's, and the reject counter tracks denials.
TEST(DispatcherAdmissionTest, PerClassBucketsAreIndependent) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation alloc(4, 3, 4, 3);
  alloc.PlaceSet(0, {0, 1, 2});
  alloc.PlaceSet(1, {0});
  alloc.PlaceSet(2, {1});
  alloc.PlaceSet(3, {2});
  ServingLimits limits;
  limits.rate_limit_qps = 1.0;
  limits.rate_limit_burst = 2.0;
  auto dispatcher = Dispatcher::Create(cls, alloc, limits);
  ASSERT_TRUE(dispatcher.ok()) << dispatcher.status().ToString();
  Dispatcher& d = **dispatcher;

  // R0's burst of 2, all at t=0.
  EXPECT_EQ(d.Execute("SUBMIT R0", 0.0).text.substr(0, 10), "OK BACKEND");
  EXPECT_EQ(d.Execute("SUBMIT R0", 0.0).text.substr(0, 10), "OK BACKEND");
  EXPECT_EQ(d.Execute("SUBMIT R0", 0.0).text, "ERR RATE_LIMITED class=R0");
  // R1 and U0 have their own untouched buckets.
  EXPECT_EQ(d.Execute("SUBMIT R1", 0.0).text.substr(0, 10), "OK BACKEND");
  EXPECT_EQ(d.Execute("SUBMIT U0", 0.0).text.substr(0, 11), "OK BACKENDS");
  // One second later R0 has accrued one token.
  EXPECT_EQ(d.Execute("SUBMIT R0", 1.0).text.substr(0, 10), "OK BACKEND");
  EXPECT_EQ(d.Execute("SUBMIT R0", 1.0).text, "ERR RATE_LIMITED class=R0");

  const ServingCounters counters = d.Snapshot();
  EXPECT_EQ(counters.rejected, 2u);
  EXPECT_EQ(counters.reads_routed, 4u);
  EXPECT_EQ(counters.updates_routed, 1u);
}

TEST(DispatcherAdmissionTest, ZeroRateDisablesAdmissionControl) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation alloc(4, 3, 4, 3);
  alloc.PlaceSet(0, {0, 1, 2});
  alloc.PlaceSet(1, {0});
  alloc.PlaceSet(2, {1});
  alloc.PlaceSet(3, {2});
  auto dispatcher = Dispatcher::Create(cls, alloc, ServingLimits{});
  ASSERT_TRUE(dispatcher.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ((*dispatcher)->Execute("SUBMIT R0", 0.0).text.substr(0, 10),
              "OK BACKEND");
  }
  EXPECT_EQ((*dispatcher)->Snapshot().rejected, 0u);
}

}  // namespace
}  // namespace qcap::net
