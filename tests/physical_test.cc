#include "physical/physical_allocator.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/validation.h"
#include "physical/scaling.h"
#include "test_util.h"

namespace qcap {
namespace {

TEST(EtlCostModelTest, ZeroBytesZeroSeconds) {
  EtlCostModel model;
  EXPECT_DOUBLE_EQ(model.BackendSeconds(0.0, true), 0.0);
}

TEST(EtlCostModelTest, PrepareStageOnlyWhenRequested) {
  EtlCostModel model;
  const double bytes = 1e9;
  EXPECT_GT(model.BackendSeconds(bytes, true),
            model.BackendSeconds(bytes, false));
}

TEST(EtlCostModelTest, MonotonicInBytes) {
  EtlCostModel model;
  EXPECT_LT(model.BackendSeconds(1e6, true), model.BackendSeconds(1e9, true));
}

TEST(PhysicalTest, IdenticalAllocationsCostNothing) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1});
  a.PlaceSet(1, {1, 2});
  PhysicalAllocator physical;
  auto plan = physical.Plan(a, a, cls.catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_DOUBLE_EQ(plan->total_bytes, 0.0);
  EXPECT_DOUBLE_EQ(plan->duration_seconds, 0.0);
  EXPECT_TRUE(plan->decommissioned.empty());
}

TEST(PhysicalTest, MatchingAvoidsNeedlessMoves) {
  // New allocation is the old one with backends swapped; matching should
  // discover the permutation and move zero bytes.
  const Classification cls = testutil::Figure2Classification();
  Allocation old_alloc(2, 3, 4, 0);
  old_alloc.PlaceSet(0, {0, 1});
  old_alloc.PlaceSet(1, {2});
  Allocation new_alloc(2, 3, 4, 0);
  new_alloc.PlaceSet(0, {2});
  new_alloc.PlaceSet(1, {0, 1});
  PhysicalAllocator physical;
  auto plan = physical.Plan(old_alloc, new_alloc, cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_bytes, 0.0);
  EXPECT_EQ(plan->source_of[0], 1);
  EXPECT_EQ(plan->source_of[1], 0);
}

TEST(PhysicalTest, Eq27CostIsMissingBytesOnly) {
  const Classification cls = testutil::Figure2Classification();
  Allocation old_alloc(1, 3, 4, 0);
  old_alloc.PlaceSet(0, {0});
  Allocation new_alloc(1, 3, 4, 0);
  new_alloc.PlaceSet(0, {0, 1, 2});
  PhysicalAllocator physical;
  auto plan = physical.Plan(old_alloc, new_alloc, cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_bytes, 2.0);  // B and C move; A stays.
}

TEST(PhysicalTest, ScaleOutUsesFreshNodes) {
  const Classification cls = testutil::Figure2Classification();
  Allocation old_alloc(1, 3, 4, 0);
  old_alloc.PlaceSet(0, {0, 1, 2});
  Allocation new_alloc(3, 3, 4, 0);
  new_alloc.PlaceSet(0, {0, 1, 2});
  new_alloc.PlaceSet(1, {0});
  new_alloc.PlaceSet(2, {2});
  PhysicalAllocator physical;
  auto plan = physical.Plan(old_alloc, new_alloc, cls.catalog);
  ASSERT_TRUE(plan.ok());
  // The full-image backend should keep the existing node (cost 0).
  EXPECT_EQ(plan->source_of[0], 0);
  EXPECT_EQ(plan->source_of[1], -1);
  EXPECT_EQ(plan->source_of[2], -1);
  EXPECT_DOUBLE_EQ(plan->total_bytes, 2.0);
  EXPECT_TRUE(plan->decommissioned.empty());
}

TEST(PhysicalTest, ScaleInDecommissionsSurplus) {
  const Classification cls = testutil::Figure2Classification();
  Allocation old_alloc(3, 3, 4, 0);
  old_alloc.PlaceSet(0, {0});
  old_alloc.PlaceSet(1, {1});
  old_alloc.PlaceSet(2, {2});
  Allocation new_alloc(2, 3, 4, 0);
  new_alloc.PlaceSet(0, {0, 1});
  new_alloc.PlaceSet(1, {2});
  PhysicalAllocator physical;
  auto plan = physical.Plan(old_alloc, new_alloc, cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->decommissioned.size(), 1u);
  // Only one byte-unit (A or B joining the other) needs to move.
  EXPECT_DOUBLE_EQ(plan->total_bytes, 1.0);
}

TEST(PhysicalTest, InitialLoadMovesEverything) {
  const Classification cls = testutil::Figure2Classification();
  Allocation new_alloc(2, 3, 4, 0);
  new_alloc.PlaceSet(0, {0, 1});
  new_alloc.PlaceSet(1, {1, 2});
  PhysicalAllocator physical;
  auto plan = physical.InitialLoad(new_alloc, cls.catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_bytes, 4.0);
  EXPECT_GT(plan->duration_seconds, 0.0);
}

TEST(PhysicalTest, RejectsMismatchedCatalogs) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(1, 2, 0, 0);
  Allocation b(1, 3, 0, 0);
  PhysicalAllocator physical;
  EXPECT_FALSE(physical.Plan(a, b, cls.catalog).ok());
}

TEST(ScalingTest, PermuteBackends) {
  Allocation a(2, 2, 1, 1);
  a.Place(0, 0);
  a.Place(1, 1);
  a.set_read_assign(0, 0, 0.6);
  a.set_update_assign(1, 0, 0.4);
  const Allocation p = PermuteBackends(a, {1, 0});
  EXPECT_TRUE(p.IsPlaced(0, 1));
  EXPECT_TRUE(p.IsPlaced(1, 0));
  EXPECT_DOUBLE_EQ(p.read_assign(1, 0), 0.6);
  EXPECT_DOUBLE_EQ(p.update_assign(0, 0), 0.4);
}

TEST(ScalingTest, ElasticTransitionPlansScaleOut) {
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  auto current = greedy.Allocate(cls, HomogeneousBackends(2));
  ASSERT_TRUE(current.ok());
  PhysicalAllocator physical;
  auto plan = PlanElasticTransition(cls, current.value(),
                                    HomogeneousBackends(4), &greedy, physical);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->new_allocation.num_backends(), 4u);
  EXPECT_TRUE(ValidateAllocation(cls, plan->new_allocation,
                                 HomogeneousBackends(4))
                  .ok());
}

TEST(ScalingTest, MergeAllocationsCoversAllSegments) {
  const Classification cls = testutil::Figure2Classification();
  Allocation s1(2, 3, 4, 0);
  s1.PlaceSet(0, {0});
  s1.PlaceSet(1, {1, 2});
  Allocation s2(2, 3, 4, 0);
  s2.PlaceSet(0, {1});  // Aligned backend should reuse overlap.
  s2.PlaceSet(1, {0, 2});
  auto merged = MergeAllocations({s1, s2}, cls.catalog);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Every segment's per-backend fragment set is contained in some merged
  // backend.
  for (const Allocation* seg : {&s1, &s2}) {
    for (size_t b = 0; b < 2; ++b) {
      bool covered = false;
      for (size_t m = 0; m < 2; ++m) {
        if (merged->HoldsAll(m, seg->BackendFragments(b))) covered = true;
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST(ScalingTest, MergeRejectsMismatchedSegments) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0), b(3, 3, 4, 0);
  EXPECT_FALSE(MergeAllocations({a, b}, cls.catalog).ok());
  EXPECT_FALSE(MergeAllocations({}, cls.catalog).ok());
}

}  // namespace
}  // namespace qcap
