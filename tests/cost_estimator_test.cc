#include "exec/cost_estimator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/classifier.h"
#include "workloads/tpch.h"

namespace qcap::engine {
namespace {

class CostEstimatorTest : public ::testing::Test {
 protected:
  CostEstimatorTest()
      : catalog_(workloads::TpchCatalog(1.0)), estimator_(catalog_) {}

  engine::Catalog catalog_;
  CostEstimator estimator_;
};

TEST_F(CostEstimatorTest, BigScanCostsMoreThanSmallScan) {
  const Query big = Query::Read("big", {"lineitem"}, 1.0);
  const Query small = Query::Read("small", {"nation"}, 1.0);
  auto cb = estimator_.EstimateSeconds(big);
  auto cs = estimator_.EstimateSeconds(small);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(cs.ok());
  EXPECT_GT(cb.value(), 100.0 * cs.value());
}

TEST_F(CostEstimatorTest, NarrowColumnsCheaperThanWholeRow) {
  Query narrow = Query::Read("narrow", {}, 1.0);
  narrow.accesses.push_back({"lineitem", {"l_quantity"}, {}});
  const Query wide = Query::Read("wide", {"lineitem"}, 1.0);
  auto cn = estimator_.EstimateSeconds(narrow);
  auto cw = estimator_.EstimateSeconds(wide);
  ASSERT_TRUE(cn.ok());
  ASSERT_TRUE(cw.ok());
  EXPECT_LT(cn.value(), cw.value());
}

TEST_F(CostEstimatorTest, JoinsAmplifyCost) {
  const Query single = Query::Read("s", {"orders"}, 1.0);
  const Query join = Query::Read("j", {"orders", "customer"}, 1.0);
  auto cs = estimator_.EstimateSeconds(single);
  auto cj = estimator_.EstimateSeconds(join);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(cj.ok());
  EXPECT_GT(cj.value(), cs.value());
}

TEST_F(CostEstimatorTest, PartitionPredicatesReduceCost) {
  Query all = Query::Read("all", {}, 1.0);
  all.accesses.push_back({"lineitem", {}, {}});
  Query part = Query::Read("part", {}, 1.0);
  part.accesses.push_back({"lineitem", {}, {0, 7}});  // 2 of >= 8 ranges.
  auto ca = estimator_.EstimateSeconds(all);
  auto cp = estimator_.EstimateSeconds(part);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cp.ok());
  EXPECT_LT(cp.value(), 0.5 * ca.value());
}

TEST_F(CostEstimatorTest, UpdatesAreCheapPointWrites) {
  const Query update = Query::Update("u", {"orders"}, 1.0);
  const Query scan = Query::Read("r", {"orders"}, 1.0);
  auto cu = estimator_.EstimateSeconds(update);
  auto cr = estimator_.EstimateSeconds(scan);
  ASSERT_TRUE(cu.ok());
  ASSERT_TRUE(cr.ok());
  EXPECT_LT(cu.value(), 0.01 * cr.value());
  EXPECT_GT(cu.value(), 0.0);
}

TEST_F(CostEstimatorTest, ErrorsOnUnknownReferences) {
  EXPECT_FALSE(estimator_.EstimateSeconds(Query::Read("g", {"ghost"})).ok());
  Query q = Query::Read("q", {}, 1.0);
  EXPECT_FALSE(estimator_.EstimateSeconds(q).ok());  // No accesses.
  Query bad_col = Query::Read("b", {}, 1.0);
  bad_col.accesses.push_back({"nation", {"ghost"}, {}});
  EXPECT_FALSE(estimator_.EstimateSeconds(bad_col).ok());
}

TEST_F(CostEstimatorTest, ReweightPreservesCountsAndOrdering) {
  QueryJournal journal = workloads::TpchJournal(1900);
  auto reweighted = estimator_.Reweight(journal);
  ASSERT_TRUE(reweighted.ok()) << reweighted.status().ToString();
  EXPECT_EQ(reweighted->TotalExecutions(), journal.TotalExecutions());
  EXPECT_EQ(reweighted->NumDistinct(), journal.NumDistinct());
  // Costs replaced by estimates.
  for (const auto& q : reweighted->queries()) {
    EXPECT_GT(q.cost, 0.0);
  }
}

TEST_F(CostEstimatorTest, EstimatesCorrelateWithCalibratedCosts) {
  // The estimator is coarse (it cannot see aggregation/HAVING costs), but
  // its per-query estimates must rank the TPC-H templates broadly like the
  // calibrated measured costs: Spearman rank correlation > 0.5.
  const auto queries = workloads::TpchQueries();
  std::vector<double> measured, estimated;
  for (const auto& q : queries) {
    auto est = estimator_.EstimateSeconds(q);
    ASSERT_TRUE(est.ok()) << q.text;
    measured.push_back(q.cost);
    estimated.push_back(est.value());
  }
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> rank(v.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      rank[idx[i]] = static_cast<double>(i);
    }
    return rank;
  };
  const auto rm = ranks(measured);
  const auto re = ranks(estimated);
  const double n = static_cast<double>(rm.size());
  double d2 = 0.0;
  for (size_t i = 0; i < rm.size(); ++i) {
    d2 += (rm[i] - re[i]) * (rm[i] - re[i]);
  }
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  EXPECT_GT(spearman, 0.5) << "rank correlation too weak: " << spearman;
}

}  // namespace
}  // namespace qcap::engine
