// Update-propagation protocols: ROWA vs primary copy vs lazy replication.
#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "cluster/simulator.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

namespace qcap {
namespace {

/// An update-heavy single-class workload on a fully replicated cluster:
/// the protocols differ most here.
struct Fixture {
  Classification cls;
  Allocation alloc;
  std::vector<BackendSpec> backends = HomogeneousBackends(4);

  Fixture() {
    EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
    cls.reads = {QueryClass{{0}, 0.5, 0.01, false, "Q1", {}}};
    cls.updates = {QueryClass{{0}, 0.5, 0.01, true, "U1", {}}};
    FullReplicationAllocator full;
    auto result = full.Allocate(cls, backends);
    EXPECT_TRUE(result.ok());
    alloc = std::move(result).value();
  }

  Result<SimStats> Run(UpdatePropagation propagation, uint64_t seed = 1) {
    SimulationConfig config;
    config.cost_params.memory_bytes = 1e15;
    config.servers_per_backend = 1;
    config.seed = seed;
    config.propagation = propagation;
    QCAP_ASSIGN_OR_RETURN(
        ClusterSimulator sim,
        ClusterSimulator::Create(cls, alloc, backends, config));
    return sim.RunClosed(3000, 8);
  }

  /// Open-loop run at moderate utilization: queueing is mild, so the
  /// response-time difference between waiting for all replicas (ROWA) and
  /// waiting for the primary only is visible.
  Result<SimStats> RunModerate(UpdatePropagation propagation) {
    SimulationConfig config;
    config.cost_params.memory_bytes = 1e15;
    config.servers_per_backend = 1;
    config.seed = 3;
    config.propagation = propagation;
    QCAP_ASSIGN_OR_RETURN(
        ClusterSimulator sim,
        ClusterSimulator::Create(cls, alloc, backends, config));
    return sim.RunOpen(60.0, 60.0);
  }
};

TEST(PropagationTest, PrimaryCopyImprovesUpdateLatency) {
  Fixture fx;
  auto rowa = fx.RunModerate(UpdatePropagation::kRowa);
  auto primary = fx.RunModerate(UpdatePropagation::kPrimaryCopy);
  ASSERT_TRUE(rowa.ok()) << rowa.status().ToString();
  ASSERT_TRUE(primary.ok());
  // The client no longer waits for the slowest replica. The two runs have
  // identical queue trajectories (background tasks load the backends the
  // same way), so primary-copy responses dominate pointwise; the margin is
  // small because the replicas' queues are highly correlated (they all
  // process the same update stream).
  EXPECT_LT(primary->avg_response_seconds, rowa->avg_response_seconds);
}

TEST(PropagationTest, LazyReducesReplicaWork) {
  Fixture fx;
  auto primary = fx.Run(UpdatePropagation::kPrimaryCopy);
  auto lazy = fx.Run(UpdatePropagation::kLazy);
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(lazy.ok());
  double busy_primary = 0.0, busy_lazy = 0.0;
  for (double b : primary->backend_busy_seconds) busy_primary += b;
  for (double b : lazy->backend_busy_seconds) busy_lazy += b;
  // Batched application halves the secondaries' update work.
  EXPECT_LT(busy_lazy, busy_primary * 0.95);
  EXPECT_GE(lazy->throughput, primary->throughput * 0.99);
}

TEST(PropagationTest, TotalWorkIdenticalRowaVsPrimaryCopy) {
  Fixture fx;
  auto rowa = fx.Run(UpdatePropagation::kRowa);
  auto primary = fx.Run(UpdatePropagation::kPrimaryCopy);
  ASSERT_TRUE(rowa.ok());
  ASSERT_TRUE(primary.ok());
  double busy_rowa = 0.0, busy_primary = 0.0;
  for (double b : rowa->backend_busy_seconds) busy_rowa += b;
  for (double b : primary->backend_busy_seconds) busy_primary += b;
  // Primary copy defers work but does not remove it. Background tasks may
  // still be in flight at the measurement edge, so allow a margin.
  EXPECT_NEAR(busy_primary, busy_rowa, 0.15 * busy_rowa);
}

TEST(PropagationTest, ReadOnlyWorkloadUnaffected) {
  const Classification cls = testutil::Figure2Classification();
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(3);
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  SimStats results[2];
  int i = 0;
  for (UpdatePropagation p :
       {UpdatePropagation::kRowa, UpdatePropagation::kLazy}) {
    SimulationConfig config;
    config.cost_params.memory_bytes = 1e15;
    config.seed = 7;
    config.propagation = p;
    auto sim = ClusterSimulator::Create(cls, alloc.value(), backends, config);
    ASSERT_TRUE(sim.ok());
    auto stats = sim->RunClosed(1000, 6);
    ASSERT_TRUE(stats.ok());
    results[i++] = stats.value();
  }
  EXPECT_DOUBLE_EQ(results[0].throughput, results[1].throughput);
}

TEST(PropagationTest, TpcAppThroughputOrdering) {
  // On the real update-heavy workload, lazy >= primary-copy >= rowa in
  // throughput (lazy strictly saves replica work).
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(50000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  ASSERT_TRUE(cls.ok());
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(6);
  auto alloc = full.Allocate(cls.value(), backends);
  ASSERT_TRUE(alloc.ok());

  auto run = [&](UpdatePropagation p) {
    SimulationConfig config;
    config.seed = 5;
    config.propagation = p;
    auto sim =
        ClusterSimulator::Create(cls.value(), alloc.value(), backends, config);
    EXPECT_TRUE(sim.ok());
    auto stats = sim->RunClosed(20000, 24);
    EXPECT_TRUE(stats.ok());
    return stats->throughput;
  };
  const double t_rowa = run(UpdatePropagation::kRowa);
  const double t_lazy = run(UpdatePropagation::kLazy);
  EXPECT_GT(t_lazy, t_rowa);
}

}  // namespace
}  // namespace qcap
