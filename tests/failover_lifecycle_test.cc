// Failure/recovery lifecycle: edge-case fault schedules, retry/backoff
// determinism, straggler degradation, percentiles, and the self-healing
// controller.
#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/controller.h"
#include "cluster/simulator.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

namespace qcap {
namespace {

struct Fixture {
  engine::Catalog catalog = workloads::TpcAppCatalog(100.0);
  Classification cls;
  std::vector<BackendSpec> backends = HomogeneousBackends(5);

  Fixture() {
    Classifier classifier(catalog, {Granularity::kTable, 4, true});
    auto result = classifier.Classify(workloads::TpcAppJournal(20000));
    EXPECT_TRUE(result.ok());
    cls = std::move(result).value();
  }

  Result<SimStats> RunOpen(const Allocation& alloc, SimulationConfig config,
                           double duration = 30.0, double rate = 400.0) {
    config.seed = 9;
    QCAP_ASSIGN_OR_RETURN(
        ClusterSimulator sim,
        ClusterSimulator::Create(cls, alloc, backends, config));
    return sim.RunOpen(duration, rate);
  }

  Allocation Greedy() {
    GreedyAllocator greedy;
    auto alloc = greedy.Allocate(cls, backends);
    EXPECT_TRUE(alloc.ok());
    return std::move(alloc).value();
  }

  Allocation KSafe(int k) {
    KSafeGreedyAllocator ksafe({k, 1e-12, 0});
    auto alloc = ksafe.Allocate(cls, backends);
    EXPECT_TRUE(alloc.ok()) << alloc.status().ToString();
    return std::move(alloc).value();
  }
};

bool SameStats(const SimStats& a, const SimStats& b) {
  return a.duration_seconds == b.duration_seconds &&
         a.completed_reads == b.completed_reads &&
         a.completed_updates == b.completed_updates &&
         a.failed_requests == b.failed_requests &&
         a.rejected_requests == b.rejected_requests &&
         a.retried_requests == b.retried_requests &&
         a.redispatched_requests == b.redispatched_requests &&
         a.lag_tasks_drained == b.lag_tasks_drained &&
         a.throughput == b.throughput &&
         a.avg_response_seconds == b.avg_response_seconds &&
         a.max_response_seconds == b.max_response_seconds &&
         a.p50_response_seconds == b.p50_response_seconds &&
         a.p95_response_seconds == b.p95_response_seconds &&
         a.p99_response_seconds == b.p99_response_seconds &&
         a.availability == b.availability &&
         a.backend_busy_seconds == b.backend_busy_seconds &&
         a.timeline_completions == b.timeline_completions;
}

TEST(FailoverLifecycleTest, CrashAtTimeZero) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.fault_plan.Crash(0.0, 0);
  auto stats = fx.RunOpen(alloc, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The backend dies before serving anything; the k=1-safe layout carries
  // the full load on the survivors.
  EXPECT_EQ(stats->rejected_requests, 0u);
  EXPECT_EQ(stats->failed_requests, 0u);
  EXPECT_NEAR(stats->backend_busy_seconds[0], 0.0, 1e-12);
  EXPECT_GT(stats->completed_total(), 10000u);
}

TEST(FailoverLifecycleTest, CrashAfterHorizonIsInert) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig healthy_config;
  SimulationConfig late_config;
  late_config.fault_plan.Crash(1e6, 0);
  auto healthy = fx.RunOpen(alloc, healthy_config);
  auto late = fx.RunOpen(alloc, late_config);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(late.ok());
  // A crash scheduled beyond the last arrival's completion changes nothing
  // except the recorded horizon.
  EXPECT_EQ(healthy->completed_total(), late->completed_total());
  EXPECT_EQ(late->rejected_requests, 0u);
  EXPECT_EQ(healthy->avg_response_seconds, late->avg_response_seconds);
}

TEST(FailoverLifecycleTest, AllBackendsDownTerminatesWithAllReadsRejected) {
  Fixture fx;
  Allocation alloc = fx.Greedy();
  SimulationConfig config;
  config.seed = 9;
  for (size_t b = 0; b < 5; ++b) config.fault_plan.Crash(0.0, b);
  auto sim = ClusterSimulator::Create(fx.cls, alloc, fx.backends, config);
  ASSERT_TRUE(sim.ok());
  // Closed loop: with every backend down at t=0 no request can ever be
  // served, but the run must still terminate (rejections count as terminal
  // states that admit the next request).
  auto stats = sim->RunClosed(5000, 8);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->completed_total(), 0u);
  EXPECT_EQ(stats->rejected_requests + stats->failed_requests, 5000u);
  EXPECT_EQ(stats->availability, 0.0);
}

TEST(FailoverLifecycleTest, KCrashesUnderKSafeAllocationServeEverything) {
  Fixture fx;
  for (int k = 1; k <= 2; ++k) {
    Allocation alloc = fx.KSafe(k);
    SimulationConfig config;
    for (int i = 0; i < k; ++i) {
      config.fault_plan.Crash(5.0 + i, static_cast<size_t>(i));
    }
    auto stats = fx.RunOpen(alloc, config);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // k crashes under a k-safe allocation: reads always have a surviving
    // candidate, and the retry policy re-dispatches stranded work, so no
    // request is rejected or abandoned.
    EXPECT_EQ(stats->rejected_requests, 0u) << "k=" << k;
    EXPECT_EQ(stats->failed_requests, 0u) << "k=" << k;
    EXPECT_EQ(stats->availability, 1.0) << "k=" << k;
  }
}

TEST(FailoverLifecycleTest, CrashProducesRetriesAndRecoveryDrainsLag) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.seed = 9;
  // Saturated closed loop: the crash is guaranteed to strand queued or
  // in-flight work.
  config.fault_plan.Crash(0.5, 1).Recover(2.0, 1);
  auto sim = ClusterSimulator::Create(fx.cls, alloc, fx.backends, config);
  ASSERT_TRUE(sim.ok());
  auto stats = sim->RunClosed(20000, 16);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Stranded work was re-dispatched, and updates missed during the outage
  // were applied as replica lag when the backend rejoined.
  EXPECT_GT(stats->retried_requests, 0u);
  EXPECT_GT(stats->redispatched_requests, 0u);
  EXPECT_GT(stats->lag_tasks_drained, 0u);
  EXPECT_EQ(stats->rejected_requests, 0u);
  EXPECT_EQ(stats->failed_requests, 0u);
}

TEST(FailoverLifecycleTest, DisabledRetriesFailStrandedWork) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.seed = 9;
  config.retry.max_attempts = 1;  // pre-FaultPlan behaviour
  config.fault_plan.Crash(0.5, 1);
  auto sim = ClusterSimulator::Create(fx.cls, alloc, fx.backends, config);
  ASSERT_TRUE(sim.ok());
  auto stats = sim->RunClosed(20000, 16);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->failed_requests, 0u);
  EXPECT_EQ(stats->retried_requests, 0u);
  EXPECT_LT(stats->availability, 1.0);
}

TEST(FailoverLifecycleTest, DegradedStragglerRaisesTailLatency) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig healthy_config;
  SimulationConfig straggler_config;
  straggler_config.fault_plan.Degrade(0.0, 0, 8.0);
  auto healthy = fx.RunOpen(alloc, healthy_config);
  auto degraded = fx.RunOpen(alloc, straggler_config);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(degraded.ok());
  // An 8x straggler serves the same requests more slowly: latency grows
  // (mean and worst case; percentiles never shrink), and nothing is
  // rejected (the node is slow, not dead).
  EXPECT_GT(degraded->avg_response_seconds, healthy->avg_response_seconds);
  EXPECT_GT(degraded->max_response_seconds, healthy->max_response_seconds);
  EXPECT_GE(degraded->p99_response_seconds, healthy->p99_response_seconds);
  EXPECT_GT(degraded->backend_busy_seconds[0], healthy->backend_busy_seconds[0]);
  EXPECT_EQ(degraded->rejected_requests, 0u);
  EXPECT_EQ(degraded->completed_total(), healthy->completed_total());
}

TEST(FailoverLifecycleTest, PercentilesAreOrdered) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.fault_plan.Crash(10.0, 1).Recover(15.0, 1);
  auto stats = fx.RunOpen(alloc, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->p50_response_seconds, 0.0);
  EXPECT_LE(stats->p50_response_seconds, stats->p95_response_seconds);
  EXPECT_LE(stats->p95_response_seconds, stats->p99_response_seconds);
  EXPECT_LE(stats->p99_response_seconds, stats->max_response_seconds);
  EXPECT_LE(stats->avg_response_seconds, stats->max_response_seconds);
}

TEST(FailoverLifecycleTest, RetriesAreBitDeterministic) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.seed = 9;
  config.fault_plan.Crash(0.5, 0).Recover(2.0, 0).Degrade(3.0, 1, 3.0);
  config.timeline_bin_seconds = 1.0;
  const auto run = [&]() {
    auto sim = ClusterSimulator::Create(fx.cls, alloc, fx.backends, config);
    EXPECT_TRUE(sim.ok());
    return sim->RunClosed(20000, 16);
  };
  auto first = run();
  auto second = run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->retried_requests, 0u);
  EXPECT_TRUE(SameStats(*first, *second));
}

TEST(FailoverLifecycleTest, TimelineBinsCountEveryCompletion) {
  Fixture fx;
  Allocation alloc = fx.KSafe(1);
  SimulationConfig config;
  config.timeline_bin_seconds = 1.0;
  config.fault_plan.Crash(10.0, 1).Recover(20.0, 1);
  auto stats = fx.RunOpen(alloc, config);
  ASSERT_TRUE(stats.ok());
  uint64_t binned = 0;
  for (uint64_t c : stats->timeline_completions) binned += c;
  EXPECT_EQ(binned, stats->completed_total());
  EXPECT_EQ(stats->timeline_bin_seconds, 1.0);
}

struct ControllerFixture {
  engine::Catalog catalog = workloads::TpcAppCatalog(100.0);
  Controller controller{catalog};
  std::vector<BackendSpec> backends = HomogeneousBackends(5);
  KSafeGreedyAllocator ksafe{{1, 1e-12, 0}};

  ControllerFixture() {
    controller.SetHistory(workloads::TpcAppJournal(20000));
    auto report = controller.Reallocate(&ksafe, backends,
                                        {Granularity::kTable, 4, true});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }
};

TEST(SelfHealingControllerTest, RepairsKSafetyViolationWithFiniteRecovery) {
  ControllerFixture fx;
  SimulationConfig config;
  config.seed = 9;
  config.fault_plan.Crash(10.0, 2);
  SelfHealingOptions options;
  options.allocator = &fx.ksafe;
  options.k_safety = 1;
  auto report = fx.controller.ProcessOpenSelfHealing(60.0, 400.0, config,
                                                     options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // One crash under k=1 drops the margin to zero: Algorithm 3 flags it and
  // the controller repairs by re-allocating onto a virtual replacement.
  ASSERT_EQ(report->repairs.size(), 1u);
  const RepairAction& repair = report->repairs[0];
  EXPECT_EQ(repair.backend, 2u);
  EXPECT_GT(repair.recover_seconds, repair.crash_seconds);
  EXPECT_GT(repair.plan.duration_seconds, 0.0);
  EXPECT_GT(repair.plan.total_bytes, 0.0);
  EXPECT_FALSE(repair.violation.empty());
  EXPECT_GT(report->stats.recovery_seconds, 0.0);
  EXPECT_EQ(report->stats.recovery_seconds,
            repair.recover_seconds - repair.crash_seconds);
  // The k=1-safe layout plus the repair serve the whole offered load.
  EXPECT_EQ(report->stats.rejected_requests, 0u);
  EXPECT_EQ(report->stats.failed_requests, 0u);
  EXPECT_EQ(report->stats.availability, 1.0);
  // The rejoined backend drains the updates it missed during the outage.
  EXPECT_GT(report->stats.lag_tasks_drained, 0u);
}

TEST(SelfHealingControllerTest, NoViolationNoRepair) {
  ControllerFixture fx;
  SimulationConfig config;
  config.seed = 9;
  config.fault_plan.Crash(10.0, 2);
  SelfHealingOptions options;
  options.allocator = &fx.ksafe;
  options.k_safety = 0;  // one crash of a k=1-safe layout keeps every class
  auto report = fx.controller.ProcessOpenSelfHealing(30.0, 400.0, config,
                                                     options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->repairs.empty());
  EXPECT_EQ(report->stats.recovery_seconds, 0.0);
  EXPECT_EQ(report->stats.rejected_requests, 0u);
}

TEST(SelfHealingControllerTest, SelfHealingIsDeterministic) {
  ControllerFixture fx;
  SimulationConfig config;
  config.seed = 9;
  config.timeline_bin_seconds = 1.0;
  config.fault_plan.Crash(10.0, 2);
  SelfHealingOptions options;
  options.allocator = &fx.ksafe;
  options.k_safety = 1;
  auto first = fx.controller.ProcessOpenSelfHealing(60.0, 400.0, config,
                                                    options);
  auto second = fx.controller.ProcessOpenSelfHealing(60.0, 400.0, config,
                                                     options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->repairs.size(), second->repairs.size());
  for (size_t i = 0; i < first->repairs.size(); ++i) {
    EXPECT_EQ(first->repairs[i].recover_seconds,
              second->repairs[i].recover_seconds);
  }
  EXPECT_TRUE(SameStats(first->stats, second->stats));
  EXPECT_EQ(first->stats.recovery_seconds, second->stats.recovery_seconds);
}

TEST(SelfHealingControllerTest, RequiresAllocatorAndAllocation) {
  engine::Catalog catalog = workloads::TpcAppCatalog(100.0);
  Controller fresh(catalog);
  SelfHealingOptions options;  // allocator == nullptr
  EXPECT_FALSE(fresh.ProcessOpenSelfHealing(1.0, 1.0, {}, options).ok());
  ControllerFixture fx;
  EXPECT_FALSE(
      fx.controller.ProcessOpenSelfHealing(1.0, 1.0, {}, options).ok());
}

}  // namespace
}  // namespace qcap
