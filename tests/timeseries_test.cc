#include "workloads/timeseries.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"

namespace qcap {
namespace {

using workloads::kTimeSeriesPartitions;
using workloads::TimeSeriesCatalog;
using workloads::TimeSeriesJournal;
using workloads::TimeSeriesQueries;

TEST(TimeSeriesTest, SchemaAndTemplates) {
  const engine::Catalog catalog = TimeSeriesCatalog();
  EXPECT_EQ(catalog.NumTables(), 3u);
  const auto queries = TimeSeriesQueries();
  ASSERT_EQ(queries.size(), 5u);
  // Exactly one update class, appending to the newest partition only.
  size_t updates = 0;
  for (const auto& q : queries) {
    if (q.is_update) {
      ++updates;
      ASSERT_EQ(q.accesses.size(), 1u);
      EXPECT_EQ(q.accesses[0].partitions, (std::vector<int>{7}));
    }
    for (const auto& access : q.accesses) {
      EXPECT_TRUE(catalog.HasTable(access.table));
      for (int p : access.partitions) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, kTimeSeriesPartitions);
      }
    }
  }
  EXPECT_EQ(updates, 1u);
}

TEST(TimeSeriesTest, JournalWeights) {
  const engine::Catalog catalog = TimeSeriesCatalog();
  Classifier classifier(
      catalog, {Granularity::kHorizontal, kTimeSeriesPartitions, true});
  auto cls = classifier.Classify(TimeSeriesJournal());
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  ASSERT_EQ(cls->updates.size(), 1u);
  EXPECT_NEAR(cls->updates[0].weight, 0.15, 0.01);
  EXPECT_EQ(cls->reads.size(), 4u);
}

TEST(TimeSeriesTest, HorizontalIsolatesIngest) {
  const engine::Catalog catalog = TimeSeriesCatalog();
  const QueryJournal journal = TimeSeriesJournal();
  Classifier hor(catalog,
                 {Granularity::kHorizontal, kTimeSeriesPartitions, true});
  Classifier tbl(catalog, {Granularity::kTable, kTimeSeriesPartitions, true});
  auto h = hor.Classify(journal);
  auto t = tbl.Classify(journal);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(t.ok());
  // Horizontally, no read class overlaps the ingest partition; at table
  // granularity every read class drags the ingest class.
  for (const auto& r : h->reads) {
    EXPECT_TRUE(h->OverlappingUpdates(r).empty()) << r.label;
  }
  for (const auto& r : t->reads) {
    EXPECT_EQ(t->OverlappingUpdates(r).size(), 1u) << r.label;
  }
  // Eq. 17: the table bound is the same 1/0.15 (the ingest class bounds
  // both), but the *achievable* allocation differs (see below).
  EXPECT_NEAR(TheoreticalMaxSpeedup(h.value()), 1.0 / 0.15, 0.05);
}

TEST(TimeSeriesTest, HorizontalAllocationBeatsTable) {
  const engine::Catalog catalog = TimeSeriesCatalog();
  const QueryJournal journal = TimeSeriesJournal();
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(8);

  Classifier hor(catalog,
                 {Granularity::kHorizontal, kTimeSeriesPartitions, true});
  Classifier tbl(catalog, {Granularity::kTable, kTimeSeriesPartitions, true});
  auto h = hor.Classify(journal);
  auto t = tbl.Classify(journal);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(t.ok());

  auto ha = greedy.Allocate(h.value(), backends);
  auto ta = greedy.Allocate(t.value(), backends);
  ASSERT_TRUE(ha.ok()) << ha.status().ToString();
  ASSERT_TRUE(ta.ok()) << ta.status().ToString();
  EXPECT_TRUE(ValidateAllocation(h.value(), ha.value(), backends).ok());
  EXPECT_TRUE(ValidateAllocation(t.value(), ta.value(), backends).ok());

  const double speedup_h = Speedup(ha.value(), backends);
  const double speedup_t = Speedup(ta.value(), backends);
  EXPECT_GT(speedup_h, 1.3 * speedup_t);
  // Table granularity: every backend pays the 15% ingest ->
  // speedup <= n / (0.15 n + 0.85).
  EXPECT_LE(speedup_t, 8.0 / (0.15 * 8.0 + 0.85) + 0.2);
}

TEST(TimeSeriesTest, PartitionFragmentsSized) {
  const engine::Catalog catalog = TimeSeriesCatalog();
  Classifier classifier(
      catalog, {Granularity::kHorizontal, kTimeSeriesPartitions, true});
  auto cls = classifier.Classify(TimeSeriesJournal());
  ASSERT_TRUE(cls.ok());
  // events split into 8 fragments + sensors/sites into 8 each.
  EXPECT_EQ(cls->catalog.size(), 24u);
  auto events = catalog.TableBytes("events");
  ASSERT_TRUE(events.ok());
  auto frag = cls->catalog.Find("events#0");
  ASSERT_TRUE(frag.ok());
  EXPECT_NEAR(cls->catalog.Get(frag.value()).size_bytes,
              events.value() / kTimeSeriesPartitions, 1.0);
}

}  // namespace
}  // namespace qcap
