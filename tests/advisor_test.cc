#include "alloc/advisor.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "common/thread_pool.h"
#include "workloads/timeseries.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

TEST(AdvisorTest, TpchPrefersColumnarGranularity) {
  // Read-only TPC-H: every granularity reaches full speedup, so the
  // storage tiebreak picks the column (or hybrid) classification.
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  GreedyAllocator greedy;
  PartitioningAdvisor advisor(catalog, &greedy);
  auto choice = advisor.Advise(workloads::TpchJournal(1900),
                               HomogeneousBackends(8));
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice->evaluated.size(), 3u);
  EXPECT_TRUE(choice->best.granularity == Granularity::kColumn ||
              choice->best.granularity == Granularity::kHybrid);
  // Every candidate hits the read-only speedup.
  for (const auto& candidate : choice->evaluated) {
    EXPECT_NEAR(candidate.model_speedup, 8.0, 1e-6);
  }
  // The winner stores less than table granularity.
  double table_replication = 0.0;
  for (const auto& candidate : choice->evaluated) {
    if (candidate.granularity == Granularity::kTable) {
      table_replication = candidate.degree_of_replication;
    }
  }
  EXPECT_LT(choice->best.degree_of_replication, table_replication);
}

TEST(AdvisorTest, TimeSeriesPrefersHorizontal) {
  const engine::Catalog catalog = workloads::TimeSeriesCatalog(1.0);
  GreedyAllocator greedy;
  AdvisorOptions options;
  options.candidates = {Granularity::kTable, Granularity::kColumn,
                        Granularity::kHorizontal};
  options.horizontal_partitions = workloads::kTimeSeriesPartitions;
  PartitioningAdvisor advisor(catalog, &greedy, options);
  auto choice = advisor.Advise(workloads::TimeSeriesJournal(50000),
                               HomogeneousBackends(8));
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice->best.granularity, Granularity::kHorizontal);
  EXPECT_GT(choice->best.model_speedup, 6.0);
}

TEST(AdvisorTest, SingleCandidateWorks) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  GreedyAllocator greedy;
  AdvisorOptions options;
  options.candidates = {Granularity::kTable};
  PartitioningAdvisor advisor(catalog, &greedy, options);
  auto choice = advisor.Advise(workloads::TpchJournal(1900),
                               HomogeneousBackends(4));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->best.granularity, Granularity::kTable);
  EXPECT_EQ(choice->evaluated.size(), 1u);
}

TEST(AdvisorTest, NullAllocatorFallsBackToOwnedMemetic) {
  // With no external allocator, the advisor runs its own MemeticAllocator
  // configured from AdvisorOptions::memetic.
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  AdvisorOptions options;
  options.candidates = {Granularity::kTable};
  options.memetic.population_size = 9;
  options.memetic.iterations = 6;
  PartitioningAdvisor advisor(catalog, nullptr, options);
  auto choice =
      advisor.Advise(workloads::TpchJournal(1900), HomogeneousBackends(4));
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_NEAR(choice->best.model_speedup, 4.0, 1e-6);
}

TEST(AdvisorTest, PoolDoesNotChangeTheChoice) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  GreedyAllocator greedy;
  PartitioningAdvisor serial_advisor(catalog, &greedy);
  auto serial = serial_advisor.Advise(workloads::TpchJournal(1900),
                                      HomogeneousBackends(6));
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  AdvisorOptions options;
  options.pool = &pool;
  PartitioningAdvisor parallel_advisor(catalog, &greedy, options);
  auto parallel = parallel_advisor.Advise(workloads::TpchJournal(1900),
                                          HomogeneousBackends(6));
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(parallel->best.granularity, serial->best.granularity);
  EXPECT_DOUBLE_EQ(parallel->best.model_speedup, serial->best.model_speedup);
  EXPECT_DOUBLE_EQ(parallel->best.degree_of_replication,
                   serial->best.degree_of_replication);
  ASSERT_EQ(parallel->evaluated.size(), serial->evaluated.size());
  for (size_t i = 0; i < serial->evaluated.size(); ++i) {
    EXPECT_EQ(parallel->evaluated[i].granularity,
              serial->evaluated[i].granularity);
  }
}

TEST(AdvisorTest, RejectsBadInput) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  GreedyAllocator greedy;
  AdvisorOptions empty;
  empty.candidates = {};
  PartitioningAdvisor no_candidates(catalog, &greedy, empty);
  EXPECT_FALSE(no_candidates
                   .Advise(workloads::TpchJournal(100), HomogeneousBackends(2))
                   .ok());
  // Empty journal: every candidate fails to classify.
  PartitioningAdvisor advisor(catalog, &greedy);
  QueryJournal empty_journal;
  EXPECT_FALSE(advisor.Advise(empty_journal, HomogeneousBackends(2)).ok());
}

TEST(AdvisorTest, EvaluatedCandidatesCarryConsistentMetrics) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  GreedyAllocator greedy;
  PartitioningAdvisor advisor(catalog, &greedy);
  auto choice = advisor.Advise(workloads::TpchJournal(1900),
                               HomogeneousBackends(5));
  ASSERT_TRUE(choice.ok());
  for (const auto& candidate : choice->evaluated) {
    EXPECT_GT(candidate.model_speedup, 0.0);
    EXPECT_GE(candidate.degree_of_replication, 1.0 - 1e-9);
    EXPECT_EQ(candidate.allocation.num_backends(), 5u);
    EXPECT_EQ(candidate.allocation.num_fragments(),
              candidate.classification.catalog.size());
  }
}

}  // namespace
}  // namespace qcap
