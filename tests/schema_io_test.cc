#include "engine/schema_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "workloads/tpch.h"

namespace qcap::engine {
namespace {

void ExpectCatalogsEqual(const Catalog& a, const Catalog& b) {
  ASSERT_EQ(a.NumTables(), b.NumTables());
  EXPECT_DOUBLE_EQ(a.scale_factor(), b.scale_factor());
  for (size_t t = 0; t < a.tables().size(); ++t) {
    const TableDef& ta = a.tables()[t];
    const TableDef& tb = b.tables()[t];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.base_rows, tb.base_rows);
    ASSERT_EQ(ta.columns.size(), tb.columns.size()) << ta.name;
    for (size_t c = 0; c < ta.columns.size(); ++c) {
      EXPECT_EQ(ta.columns[c].name, tb.columns[c].name);
      EXPECT_EQ(ta.columns[c].type, tb.columns[c].type);
      EXPECT_EQ(ta.columns[c].width(), tb.columns[c].width());
      EXPECT_EQ(ta.columns[c].primary_key, tb.columns[c].primary_key);
    }
  }
  EXPECT_DOUBLE_EQ(a.TotalBytes(), b.TotalBytes());
}

TEST(SchemaIoTest, RoundTripTpch) {
  const Catalog catalog = workloads::TpchCatalog(3.0);
  auto loaded = DeserializeCatalog(SerializeCatalog(catalog));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCatalogsEqual(catalog, loaded.value());
}

TEST(SchemaIoTest, ParsesHandWrittenSchema) {
  const char* text = R"(# my schema
scale 2.0
table users 1000
col id int64 pk
col name varchar 40
col joined date
table events 50000
col id int64 pk
col user int64
col kind char 8
col amount decimal
)";
  auto catalog = DeserializeCatalog(text);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(catalog->NumTables(), 2u);
  EXPECT_DOUBLE_EQ(catalog->scale_factor(), 2.0);
  auto users = catalog->FindTable("users");
  ASSERT_TRUE(users.ok());
  EXPECT_EQ(users.value()->columns.size(), 3u);
  EXPECT_TRUE(users.value()->columns[0].primary_key);
  auto rows = catalog->TableRows("events");
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(rows.value(), 100000.0);  // 50000 x scale 2.
}

TEST(SchemaIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeCatalog("").ok());
  EXPECT_FALSE(DeserializeCatalog("col orphan int64\n").ok());
  EXPECT_FALSE(DeserializeCatalog("table t\n").ok());  // Missing rows.
  EXPECT_FALSE(
      DeserializeCatalog("table t 10\ncol c ghosttype\n").ok());
  EXPECT_FALSE(
      DeserializeCatalog("table t 10\ncol c varchar\n").ok());  // No width.
  EXPECT_FALSE(
      DeserializeCatalog("table t 10\ncol c int64 banana\n").ok());
  EXPECT_FALSE(DeserializeCatalog("bogus line\n").ok());
  EXPECT_FALSE(DeserializeCatalog("scale -1\ntable t 1\ncol c int64\n").ok());
}

TEST(SchemaIoTest, SaveAndLoadFile) {
  const std::string path = "/tmp/qcap_schema_io_test.schema";
  const Catalog catalog = workloads::TpchCatalog(1.0);
  ASSERT_TRUE(SaveCatalog(catalog, path).ok());
  auto loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCatalogsEqual(catalog, loaded.value());
  std::remove(path.c_str());
  EXPECT_TRUE(LoadCatalog("/tmp/missing-qcap-schema").status().IsNotFound());
}

}  // namespace
}  // namespace qcap::engine
