#include "workload/classifier.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

engine::Catalog SmallSchema() {
  engine::Catalog catalog;
  engine::TableDef a{"A",
                     {{"a_key", engine::ColumnType::kInt64, 0, true},
                      {"a_val", engine::ColumnType::kVarchar, 40, false}},
                     1000};
  engine::TableDef b{"B",
                     {{"b_key", engine::ColumnType::kInt64, 0, true},
                      {"b_x", engine::ColumnType::kInt32, 0, false},
                      {"b_y", engine::ColumnType::kDecimal, 0, false}},
                     1000};
  engine::TableDef c{"C",
                     {{"c_key", engine::ColumnType::kInt64, 0, true},
                      {"c_val", engine::ColumnType::kChar, 20, false}},
                     1000};
  EXPECT_TRUE(catalog.AddTable(a).ok());
  EXPECT_TRUE(catalog.AddTable(b).ok());
  EXPECT_TRUE(catalog.AddTable(c).ok());
  return catalog;
}

/// The running example of Section 3 / Figure 2: C1={A} 30%, C2={B} 25%,
/// C3={C} 25%, C4={A,B} 20%.
QueryJournal Figure2Journal() {
  QueryJournal j;
  j.Record(Query::Read("c1", {"A"}), 30);
  j.Record(Query::Read("c2", {"B"}), 25);
  j.Record(Query::Read("c3", {"C"}), 25);
  j.Record(Query::Read("c4", {"A", "B"}), 20);
  return j;
}

TEST(ClassifierTest, TableGranularityFigure2) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto result = classifier.Classify(Figure2Journal());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Classification& cls = result.value();
  EXPECT_EQ(cls.catalog.size(), 3u);  // One fragment per table.
  EXPECT_EQ(cls.reads.size(), 4u);
  EXPECT_EQ(cls.updates.size(), 0u);
  // Labels are assigned in descending weight order.
  EXPECT_EQ(cls.reads[0].label, "Q1");
  EXPECT_NEAR(cls.reads[0].weight, 0.30, 1e-12);
  EXPECT_NEAR(cls.reads[1].weight, 0.25, 1e-12);
  EXPECT_NEAR(cls.reads[2].weight, 0.25, 1e-12);
  EXPECT_NEAR(cls.reads[3].weight, 0.20, 1e-12);
  EXPECT_TRUE(cls.Validate().ok());
}

TEST(ClassifierTest, WeightsUseCostTimesCount) {
  engine::Catalog catalog = SmallSchema();
  QueryJournal j;
  j.Record(Query::Read("cheap", {"A"}, 1.0), 90);   // cost 90
  j.Record(Query::Read("pricey", {"B"}, 10.0), 1);  // cost 10
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->reads[0].weight, 0.9, 1e-12);
  EXPECT_NEAR(result->reads[1].weight, 0.1, 1e-12);
  // Mean per-execution costs preserved.
  EXPECT_NEAR(result->reads[0].mean_cost, 1.0, 1e-12);
  EXPECT_NEAR(result->reads[1].mean_cost, 10.0, 1e-12);
}

TEST(ClassifierTest, IdenticalFragmentSetsMerge) {
  engine::Catalog catalog = SmallSchema();
  QueryJournal j;
  j.Record(Query::Read("x", {"A"}), 10);
  j.Record(Query::Read("y", {"A"}), 10);  // Same table set -> same class.
  j.Record(Query::Read("z", {"B"}), 10);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads.size(), 2u);
  EXPECT_NEAR(result->reads[0].weight, 2.0 / 3.0, 1e-9);
}

TEST(ClassifierTest, ReadsAndUpdatesSeparateClasses) {
  engine::Catalog catalog = SmallSchema();
  QueryJournal j;
  j.Record(Query::Read("r", {"A"}), 10);
  j.Record(Query::Update("u", {"A"}), 10);  // Same set, but update.
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads.size(), 1u);
  EXPECT_EQ(result->updates.size(), 1u);
  EXPECT_TRUE(result->updates[0].is_update);
  EXPECT_NEAR(result->TotalWeight(), 1.0, 1e-12);
}

TEST(ClassifierTest, ColumnGranularityBuildsColumnFragments) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  QueryJournal j;
  Query q = Query::Read("q", {});
  q.accesses.push_back({"B", {"b_x"}, {}});
  j.Record(q, 1);
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  // 2 + 3 + 2 columns in the schema.
  EXPECT_EQ(result->catalog.size(), 7u);
  // Candidate key b_key added to the referenced column set.
  const QueryClass& c = result->reads[0];
  EXPECT_EQ(c.fragments.size(), 2u);
  EXPECT_EQ(result->catalog.Get(c.fragments[0]).name, "B.b_key");
  EXPECT_EQ(result->catalog.Get(c.fragments[1]).name, "B.b_x");
}

TEST(ClassifierTest, ColumnGranularityWithoutCandidateKeys) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kColumn, 4, false});
  QueryJournal j;
  Query q = Query::Read("q", {});
  q.accesses.push_back({"B", {"b_x"}, {}});
  j.Record(q, 1);
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads[0].fragments.size(), 1u);
}

TEST(ClassifierTest, EmptyColumnListMeansAllColumns) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  QueryJournal j;
  j.Record(Query::Read("q", {"B"}), 1);  // Whole table.
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads[0].fragments.size(), 3u);
}

TEST(ClassifierTest, HorizontalGranularity) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kHorizontal, 4, true});
  QueryJournal j;
  Query q = Query::Read("q", {});
  q.accesses.push_back({"A", {}, {0, 2}});
  j.Record(q, 1);
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->catalog.size(), 12u);  // 3 tables x 4 partitions.
  EXPECT_EQ(result->reads[0].fragments.size(), 2u);
  EXPECT_EQ(result->catalog.Get(result->reads[0].fragments[0]).name, "A#0");
  // Partition fragments carry 1/4 of the table size each.
  auto full = catalog.TableBytes("A");
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(result->catalog.Get(result->reads[0].fragments[0]).size_bytes,
              full.value() / 4.0, 1e-6);
}

TEST(ClassifierTest, HorizontalEmptyPartitionListMeansAll) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kHorizontal, 3, true});
  QueryJournal j;
  j.Record(Query::Read("q", {"A"}), 1);
  auto result = classifier.Classify(j);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads[0].fragments.size(), 3u);
}

TEST(ClassifierTest, NoneGranularityCollapsesReads) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kNone, 4, true});
  auto result = classifier.Classify(Figure2Journal());
  ASSERT_TRUE(result.ok());
  // All reads in one class spanning every fragment => full replication.
  EXPECT_EQ(result->reads.size(), 1u);
  EXPECT_EQ(result->reads[0].fragments.size(), result->catalog.size());
  EXPECT_NEAR(result->reads[0].weight, 1.0, 1e-12);
}

TEST(ClassifierTest, ErrorsOnEmptyJournal) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {});
  QueryJournal j;
  EXPECT_FALSE(classifier.Classify(j).ok());
}

TEST(ClassifierTest, ErrorsOnUnknownTable) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {});
  QueryJournal j;
  j.Record(Query::Read("q", {"GHOST"}), 1);
  EXPECT_TRUE(classifier.Classify(j).status().IsNotFound());
}

TEST(ClassifierTest, ErrorsOnUnknownColumn) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  QueryJournal j;
  Query q = Query::Read("q", {});
  q.accesses.push_back({"A", {"ghost_col"}, {}});
  j.Record(q, 1);
  EXPECT_TRUE(classifier.Classify(j).status().IsNotFound());
}

TEST(ClassifierTest, ErrorsOnInvalidPartition) {
  engine::Catalog catalog = SmallSchema();
  Classifier classifier(catalog, {Granularity::kHorizontal, 2, true});
  QueryJournal j;
  Query q = Query::Read("q", {});
  q.accesses.push_back({"A", {}, {5}});
  j.Record(q, 1);
  EXPECT_EQ(classifier.Classify(j).status().code(), StatusCode::kOutOfRange);
}

TEST(ClassifierTest, ErrorsOnEmptySchema) {
  engine::Catalog catalog;
  Classifier classifier(catalog, {});
  QueryJournal j;
  j.Record(Query::Read("q", {"A"}), 1);
  EXPECT_FALSE(classifier.Classify(j).ok());
}

}  // namespace
}  // namespace qcap
