#include "workload/journal.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

TEST(JournalTest, EmptyJournal) {
  QueryJournal j;
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(j.NumDistinct(), 0u);
  EXPECT_EQ(j.TotalExecutions(), 0u);
  EXPECT_DOUBLE_EQ(j.TotalCost(), 0.0);
  double b, e;
  EXPECT_FALSE(j.TimeRange(&b, &e));
}

TEST(JournalTest, RecordAccumulatesByText) {
  QueryJournal j;
  j.Record(Query::Read("q1", {"t1"}, 2.0), 3);
  j.Record(Query::Read("q1", {"t1"}, 2.0), 2);
  j.Record(Query::Read("q2", {"t2"}, 1.0), 1);
  EXPECT_EQ(j.NumDistinct(), 2u);
  EXPECT_EQ(j.TotalExecutions(), 6u);
  EXPECT_EQ(j.count(0), 5u);
  EXPECT_EQ(j.count(1), 1u);
  // Σ j(q)·weight(q) = 5*2 + 1*1.
  EXPECT_DOUBLE_EQ(j.TotalCost(), 11.0);
}

TEST(JournalTest, RecordZeroCountIsNoop) {
  QueryJournal j;
  j.Record(Query::Read("q", {"t"}), 0);
  EXPECT_TRUE(j.empty());
}

TEST(JournalTest, FirstRegistrationWinsAccessInfo) {
  QueryJournal j;
  Query a = Query::Read("same-text", {"t1"});
  Query b = Query::Read("same-text", {"t2"});
  j.Record(a);
  j.Record(b);
  EXPECT_EQ(j.NumDistinct(), 1u);
  EXPECT_EQ(j.queries()[0].accesses[0].table, "t1");
}

TEST(JournalTest, ReadAndUpdateFactories) {
  const Query r = Query::Read("r", {"a", "b"}, 1.5);
  EXPECT_FALSE(r.is_update);
  EXPECT_EQ(r.accesses.size(), 2u);
  EXPECT_DOUBLE_EQ(r.cost, 1.5);
  const Query u = Query::Update("u", {"a"});
  EXPECT_TRUE(u.is_update);
}

TEST(JournalTest, TimestampedRecordsAndRange) {
  QueryJournal j;
  j.RecordAt(Query::Read("q1", {"t"}), 10.0);
  j.RecordAt(Query::Read("q2", {"t"}), 5.0);
  j.RecordAt(Query::Read("q1", {"t"}), 20.0);
  double b = 0, e = 0;
  ASSERT_TRUE(j.TimeRange(&b, &e));
  EXPECT_DOUBLE_EQ(b, 5.0);
  EXPECT_DOUBLE_EQ(e, 20.0);
  EXPECT_EQ(j.TotalExecutions(), 3u);
}

TEST(JournalTest, SliceFiltersHalfOpenInterval) {
  QueryJournal j;
  for (int i = 0; i < 10; ++i) {
    j.RecordAt(Query::Read("q" + std::to_string(i % 2), {"t"}),
               static_cast<double>(i));
  }
  const QueryJournal slice = j.Slice(2.0, 5.0);  // times 2,3,4
  EXPECT_EQ(slice.TotalExecutions(), 3u);
  const QueryJournal empty = j.Slice(100.0, 200.0);
  EXPECT_TRUE(empty.empty());
}

TEST(JournalTest, SliceExcludesUntimestamped) {
  QueryJournal j;
  j.Record(Query::Read("bulk", {"t"}), 100);
  j.RecordAt(Query::Read("live", {"t"}), 1.0);
  const QueryJournal slice = j.Slice(0.0, 10.0);
  EXPECT_EQ(slice.TotalExecutions(), 1u);
  EXPECT_EQ(slice.queries()[0].text, "live");
}

}  // namespace
}  // namespace qcap
