#include "common/strings.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, JoinSingle) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(StringsTest, JoinMany) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitEmptyStringYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StringsTest, SplitWithoutSeparatorYieldsWholeString) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(StringsTest, SplitPreservesEmptyFieldsBetweenRepeatedDelimiters) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",,", ','), (std::vector<std::string>{"", "", ""}));
}

TEST(StringsTest, SplitPreservesLeadingAndTrailingEmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(StringsTest, SplitDoesNotTrimFieldWhitespace) {
  EXPECT_EQ(Split("a, b", ','), (std::vector<std::string>{"a", " b"}));
}

TEST(StringsTest, SplitOnlySplitsOnTheGivenSeparator) {
  EXPECT_EQ(Split("a:b,c", ':'), (std::vector<std::string>{"a", "b,c"}));
}

TEST(StringsTest, TrimEmpty) { EXPECT_EQ(Trim(""), ""); }

TEST(StringsTest, TrimAllWhitespaceYieldsEmpty) {
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(" \t\r\n\v\f "), "");
}

TEST(StringsTest, TrimNoWhitespaceIsIdentity) { EXPECT_EQ(Trim("abc"), "abc"); }

TEST(StringsTest, TrimStripsBothEndsOnly) {
  EXPECT_EQ(Trim("  a b\t"), "a b");
  EXPECT_EQ(Trim("\n x \n"), "x");
}

TEST(StringsTest, TrimSingleCharacter) {
  EXPECT_EQ(Trim(" a"), "a");
  EXPECT_EQ(Trim("a "), "a");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.254, 1), "25.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0, 1), "0.0%");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatBytes(2.5 * 1024 * 1024 * 1024), "2.5 GiB");
}

TEST(StringsTest, PadLeft) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StringsTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace qcap
