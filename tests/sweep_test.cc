// Determinism tests for the replication-sweep harness: sweep results must
// be bit-identical to serial runs at the same seeds, at any thread count,
// with or without a fault plan.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/greedy.h"
#include "cluster/simulator.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace qcap {
namespace {

// Every field, including vectors, compared exactly: the contract is
// bitwise reproducibility, not approximate equality.
void ExpectSameStats(const SimStats& got, const SimStats& want) {
  EXPECT_EQ(got.duration_seconds, want.duration_seconds);
  EXPECT_EQ(got.completed_reads, want.completed_reads);
  EXPECT_EQ(got.completed_updates, want.completed_updates);
  EXPECT_EQ(got.failed_requests, want.failed_requests);
  EXPECT_EQ(got.rejected_requests, want.rejected_requests);
  EXPECT_EQ(got.retried_requests, want.retried_requests);
  EXPECT_EQ(got.redispatched_requests, want.redispatched_requests);
  EXPECT_EQ(got.lag_tasks_drained, want.lag_tasks_drained);
  EXPECT_EQ(got.throughput, want.throughput);
  EXPECT_EQ(got.avg_response_seconds, want.avg_response_seconds);
  EXPECT_EQ(got.max_response_seconds, want.max_response_seconds);
  EXPECT_EQ(got.p50_response_seconds, want.p50_response_seconds);
  EXPECT_EQ(got.p95_response_seconds, want.p95_response_seconds);
  EXPECT_EQ(got.p99_response_seconds, want.p99_response_seconds);
  EXPECT_EQ(got.availability, want.availability);
  EXPECT_EQ(got.backend_busy_seconds, want.backend_busy_seconds);
  EXPECT_EQ(got.timeline_bin_seconds, want.timeline_bin_seconds);
  EXPECT_EQ(got.timeline_completions, want.timeline_completions);
}

Result<ClusterSimulator> MakeSimulator(const Classification& cls,
                                       const Allocation& alloc,
                                       const std::vector<BackendSpec>& backends,
                                       bool with_faults) {
  SimulationConfig config;
  config.servers_per_backend = 2;
  config.seed = 11;
  config.timeline_bin_seconds = 1.0;
  if (with_faults) {
    config.fault_plan.events = {
        FaultEvent{FaultEvent::Kind::kCrash, 0.05, 1, 1.0},
        FaultEvent{FaultEvent::Kind::kRecover, 0.3, 1, 1.0},
    };
    config.retry.max_attempts = 3;
  }
  return ClusterSimulator::Create(cls, alloc, backends, config);
}

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cls_ = testutil::AppendixAClassification();
    backends_ = HomogeneousBackends(4);
    GreedyAllocator greedy;
    auto alloc = greedy.Allocate(cls_, backends_);
    ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
    alloc_ = std::move(alloc).value();
  }

  Classification cls_;
  std::vector<BackendSpec> backends_;
  Allocation alloc_;
};

TEST_F(SweepTest, ClosedSweepMatchesSerialRunsPerSeed) {
  auto sim = MakeSimulator(cls_, alloc_, backends_, false);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  SweepOptions sweep;
  sweep.repeat = 4;
  sweep.threads = 3;
  auto runs = sim->RunClosedSweep(400, 8, sweep);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs->size(), 4u);
  for (size_t i = 0; i < runs->size(); ++i) {
    auto serial = MakeSimulator(cls_, alloc_, backends_, false);
    ASSERT_TRUE(serial.ok());
    serial->set_seed(11 + i);
    auto want = serial->RunClosed(400, 8);
    ASSERT_TRUE(want.ok());
    ExpectSameStats((*runs)[i], want.value());
  }
}

TEST_F(SweepTest, OpenSweepIsThreadCountInvariant) {
  auto sim = MakeSimulator(cls_, alloc_, backends_, false);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ThreadPool shared(2);
  std::vector<SweepOptions> variants(4);
  variants[0].threads = 0;  // Serial.
  variants[1].threads = 1;
  variants[2].threads = 3;
  variants[3].pool = &shared;
  std::vector<std::vector<SimStats>> results;
  for (SweepOptions& sweep : variants) {
    sweep.repeat = 5;
    auto runs = sim->RunOpenSweep(0.5, 500.0, sweep);
    ASSERT_TRUE(runs.ok()) << runs.status().ToString();
    ASSERT_EQ(runs->size(), 5u);
    results.push_back(std::move(runs).value());
  }
  for (size_t v = 1; v < results.size(); ++v) {
    for (size_t i = 0; i < results[v].size(); ++i) {
      ExpectSameStats(results[v][i], results[0][i]);
    }
  }
}

TEST_F(SweepTest, FaultPlanSweepStaysDeterministicAcrossThreads) {
  auto sim = MakeSimulator(cls_, alloc_, backends_, true);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  SweepOptions serial;
  serial.repeat = 4;
  serial.threads = 0;
  SweepOptions threaded;
  threaded.repeat = 4;
  threaded.threads = 4;
  auto want = sim->RunOpenSweep(0.6, 400.0, serial);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  auto got = sim->RunOpenSweep(0.6, 400.0, threaded);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want->size());
  bool saw_fault_handling = false;
  for (size_t i = 0; i < got->size(); ++i) {
    ExpectSameStats((*got)[i], (*want)[i]);
    saw_fault_handling = saw_fault_handling ||
                         (*got)[i].retried_requests > 0 ||
                         (*got)[i].lag_tasks_drained > 0;
  }
  // The crash/recover schedule must actually exercise the retry and
  // lag-drain machinery, or this test is vacuous.
  EXPECT_TRUE(saw_fault_handling);
}

TEST_F(SweepTest, RepeatedSweepsAreReproducible) {
  auto sim = MakeSimulator(cls_, alloc_, backends_, false);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  SweepOptions sweep;
  sweep.repeat = 3;
  sweep.threads = 2;
  auto first = sim->RunClosedSweep(300, 6, sweep);
  ASSERT_TRUE(first.ok());
  // Re-running on the same simulator reuses its warm scratch; results must
  // not depend on that history.
  auto second = sim->RunClosedSweep(300, 6, sweep);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    ExpectSameStats((*second)[i], (*first)[i]);
  }
}

TEST_F(SweepTest, ZeroRepeatIsRejected) {
  auto sim = MakeSimulator(cls_, alloc_, backends_, false);
  ASSERT_TRUE(sim.ok());
  SweepOptions sweep;
  sweep.repeat = 0;
  auto closed = sim->RunClosedSweep(100, 4, sweep);
  EXPECT_FALSE(closed.ok());
  auto open = sim->RunOpenSweep(0.2, 100.0, sweep);
  EXPECT_FALSE(open.ok());
}

}  // namespace
}  // namespace qcap
