// Cross-allocator property sweeps on random workloads: every strategy must
// produce valid allocations whose metrics respect the analytical bounds.
#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "alloc/memetic.h"
#include "alloc/random_allocator.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

struct Instance {
  Classification cls;
  std::vector<BackendSpec> backends;
};

Instance MakeInstance(uint64_t seed, size_t nodes, Granularity granularity) {
  const auto workload = workloads::MakeRandomWorkload(seed);
  Classifier classifier(workload.catalog, {granularity, 4, true});
  auto cls = classifier.Classify(workload.journal);
  EXPECT_TRUE(cls.ok()) << cls.status().ToString();
  return Instance{std::move(cls).value(), HomogeneousBackends(nodes)};
}

void CheckInvariants(const Instance& inst, const Allocation& alloc,
                     const std::string& context) {
  Status valid = ValidateAllocation(inst.cls, alloc, inst.backends);
  ASSERT_TRUE(valid.ok()) << context << ": " << valid.ToString();

  const double scale = Scale(alloc, inst.backends);
  EXPECT_GE(scale, 1.0 - 1e-9) << context;

  const double speedup = Speedup(alloc, inst.backends);
  EXPECT_LE(speedup, static_cast<double>(inst.backends.size()) + 1e-9)
      << context;
  EXPECT_LE(speedup, TheoreticalMaxSpeedup(inst.cls) + 1e-6) << context;

  const double r = DegreeOfReplication(alloc, inst.cls.catalog);
  EXPECT_GE(r, 1.0 - 1e-9) << context;  // Complete data at least once.
  EXPECT_LE(r, static_cast<double>(inst.backends.size()) + 1e-9) << context;

  EXPECT_GE(BalanceDeviation(alloc, inst.backends), 0.0) << context;

  // Histogram accounts for every fragment.
  size_t total = 0;
  for (size_t count : ReplicationHistogram(alloc)) total += count;
  EXPECT_EQ(total, inst.cls.catalog.size()) << context;
}

class AllocatorPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(AllocatorPropertySweep, AllStrategiesSatisfyInvariants) {
  const auto [seed, nodes] = GetParam();
  for (Granularity g : {Granularity::kTable, Granularity::kColumn}) {
    const Instance inst = MakeInstance(seed, nodes, g);

    FullReplicationAllocator full;
    auto fa = full.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(fa.ok()) << fa.status().ToString();
    CheckInvariants(inst, fa.value(), "full");
    EXPECT_NEAR(DegreeOfReplication(fa.value(), inst.cls.catalog),
                static_cast<double>(nodes), 1e-9);

    GreedyAllocator greedy;
    auto ga = greedy.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(ga.ok()) << ga.status().ToString();
    CheckInvariants(inst, ga.value(), "greedy");

    RandomAllocator random(seed * 31 + nodes);
    auto ra = random.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    CheckInvariants(inst, ra.value(), "random");

    // Greedy never stores more than full replication.
    EXPECT_LE(DegreeOfReplication(ga.value(), inst.cls.catalog),
              DegreeOfReplication(fa.value(), inst.cls.catalog) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, AllocatorPropertySweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 16),
                       ::testing::Values<size_t>(2, 5, 9)));

class UpdateHeavySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateHeavySweep, UpdateHeavyWorkloadsStayValid) {
  workloads::RandomWorkloadOptions options;
  options.num_read_templates = 4;
  options.num_update_templates = 8;  // Update-heavy.
  const auto workload = workloads::MakeRandomWorkload(GetParam(), options);
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const Instance inst{std::move(cls).value(), HomogeneousBackends(4)};

  GreedyAllocator greedy;
  auto ga = greedy.Allocate(inst.cls, inst.backends);
  ASSERT_TRUE(ga.ok()) << ga.status().ToString();
  CheckInvariants(inst, ga.value(), "greedy-update-heavy");

  MemeticOptions mopts;
  mopts.population_size = 6;
  mopts.iterations = 6;
  mopts.seed = GetParam();
  MemeticAllocator memetic(mopts);
  auto ma = memetic.Improve(inst.cls, inst.backends, ga.value());
  ASSERT_TRUE(ma.ok()) << ma.status().ToString();
  CheckInvariants(inst, ma.value(), "memetic-update-heavy");
  EXPECT_LE(Scale(ma.value(), inst.backends),
            Scale(ga.value(), inst.backends) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateHeavySweep,
                         ::testing::Range<uint64_t>(1, 9));

class HeterogeneousSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeterogeneousSweep, HeterogeneousBackendsStayValid) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  auto backends = HeterogeneousBackends({4.0, 3.0, 2.0, 1.0});
  ASSERT_TRUE(backends.ok());
  const Instance inst{std::move(cls).value(), backends.value()};

  GreedyAllocator greedy;
  auto ga = greedy.Allocate(inst.cls, inst.backends);
  ASSERT_TRUE(ga.ok()) << ga.status().ToString();
  CheckInvariants(inst, ga.value(), "greedy-heterogeneous");
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterogeneousSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qcap
