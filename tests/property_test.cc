// Cross-allocator property sweeps on random workloads: every strategy must
// produce valid allocations whose metrics respect the analytical bounds.
#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "alloc/memetic.h"
#include "alloc/random_allocator.h"
#include "common/random.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

struct Instance {
  Classification cls;
  std::vector<BackendSpec> backends;
};

Instance MakeInstance(uint64_t seed, size_t nodes, Granularity granularity) {
  const auto workload = workloads::MakeRandomWorkload(seed);
  Classifier classifier(workload.catalog, {granularity, 4, true});
  auto cls = classifier.Classify(workload.journal);
  EXPECT_TRUE(cls.ok()) << cls.status().ToString();
  return Instance{std::move(cls).value(), HomogeneousBackends(nodes)};
}

void CheckInvariants(const Instance& inst, const Allocation& alloc,
                     const std::string& context) {
  Status valid = ValidateAllocation(inst.cls, alloc, inst.backends);
  ASSERT_TRUE(valid.ok()) << context << ": " << valid.ToString();

  const double scale = Scale(alloc, inst.backends);
  EXPECT_GE(scale, 1.0 - 1e-9) << context;

  const double speedup = Speedup(alloc, inst.backends);
  EXPECT_LE(speedup, static_cast<double>(inst.backends.size()) + 1e-9)
      << context;
  EXPECT_LE(speedup, TheoreticalMaxSpeedup(inst.cls) + 1e-6) << context;

  const double r = DegreeOfReplication(alloc, inst.cls.catalog);
  EXPECT_GE(r, 1.0 - 1e-9) << context;  // Complete data at least once.
  EXPECT_LE(r, static_cast<double>(inst.backends.size()) + 1e-9) << context;

  EXPECT_GE(BalanceDeviation(alloc, inst.backends), 0.0) << context;

  // Histogram accounts for every fragment.
  size_t total = 0;
  for (size_t count : ReplicationHistogram(alloc)) total += count;
  EXPECT_EQ(total, inst.cls.catalog.size()) << context;
}

class AllocatorPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(AllocatorPropertySweep, AllStrategiesSatisfyInvariants) {
  const auto [seed, nodes] = GetParam();
  for (Granularity g : {Granularity::kTable, Granularity::kColumn}) {
    const Instance inst = MakeInstance(seed, nodes, g);

    FullReplicationAllocator full;
    auto fa = full.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(fa.ok()) << fa.status().ToString();
    CheckInvariants(inst, fa.value(), "full");
    EXPECT_NEAR(DegreeOfReplication(fa.value(), inst.cls.catalog),
                static_cast<double>(nodes), 1e-9);

    GreedyAllocator greedy;
    auto ga = greedy.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(ga.ok()) << ga.status().ToString();
    CheckInvariants(inst, ga.value(), "greedy");

    RandomAllocator random(seed * 31 + nodes);
    auto ra = random.Allocate(inst.cls, inst.backends);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    CheckInvariants(inst, ra.value(), "random");

    // Greedy never stores more than full replication.
    EXPECT_LE(DegreeOfReplication(ga.value(), inst.cls.catalog),
              DegreeOfReplication(fa.value(), inst.cls.catalog) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, AllocatorPropertySweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 16),
                       ::testing::Values<size_t>(2, 5, 9)));

class UpdateHeavySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateHeavySweep, UpdateHeavyWorkloadsStayValid) {
  workloads::RandomWorkloadOptions options;
  options.num_read_templates = 4;
  options.num_update_templates = 8;  // Update-heavy.
  const auto workload = workloads::MakeRandomWorkload(GetParam(), options);
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const Instance inst{std::move(cls).value(), HomogeneousBackends(4)};

  GreedyAllocator greedy;
  auto ga = greedy.Allocate(inst.cls, inst.backends);
  ASSERT_TRUE(ga.ok()) << ga.status().ToString();
  CheckInvariants(inst, ga.value(), "greedy-update-heavy");

  MemeticOptions mopts;
  mopts.population_size = 6;
  mopts.iterations = 6;
  mopts.seed = GetParam();
  MemeticAllocator memetic(mopts);
  auto ma = memetic.Improve(inst.cls, inst.backends, ga.value());
  ASSERT_TRUE(ma.ok()) << ma.status().ToString();
  CheckInvariants(inst, ma.value(), "memetic-update-heavy");
  EXPECT_LE(Scale(ma.value(), inst.backends),
            Scale(ga.value(), inst.backends) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateHeavySweep,
                         ::testing::Range<uint64_t>(1, 9));

class HeterogeneousSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeterogeneousSweep, HeterogeneousBackendsStayValid) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  auto backends = HeterogeneousBackends({4.0, 3.0, 2.0, 1.0});
  ASSERT_TRUE(backends.ok());
  const Instance inst{std::move(cls).value(), backends.value()};

  GreedyAllocator greedy;
  auto ga = greedy.Allocate(inst.cls, inst.backends);
  ASSERT_TRUE(ga.ok()) << ga.status().ToString();
  CheckInvariants(inst, ga.value(), "greedy-heterogeneous");
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterogeneousSweep,
                         ::testing::Range<uint64_t>(1, 9));

// The Allocation's running aggregates (assigned loads, stored bytes, replica
// counts) are maintained incrementally by every mutator. After an arbitrary
// mutation sequence they must agree with a from-scratch recompute to within
// fp-drift tolerance (1e-9), and counts must match exactly.
class IncrementalAggregateSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalAggregateSweep, AggregatesMatchFromScratchRecompute) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls_or = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls_or.ok());
  const Classification cls = std::move(cls_or).value();
  const ClassificationIndex index(cls);
  const size_t n = 5;
  const size_t R = cls.reads.size();
  const size_t U = cls.updates.size();
  Allocation alloc(n, cls.catalog, R, U);

  Rng rng(GetParam() * 977 + 11);
  DenseBitset bits(cls.catalog.size());
  for (size_t step = 0; step < 400; ++step) {
    const size_t b = rng.NextBounded(n);
    switch (rng.NextBounded(7)) {
      case 0:
        alloc.Place(b, static_cast<FragmentId>(
                           rng.NextBounded(cls.catalog.size())));
        break;
      case 1:
        if (R > 0) alloc.PlaceBits(b, index.read_bits(rng.NextBounded(R)));
        break;
      case 2:
        if (U > 0) {
          alloc.PlaceSet(b, cls.updates[rng.NextBounded(U)].fragments);
        }
        break;
      case 3:
        if (R > 0) {
          alloc.set_read_assign(b, rng.NextBounded(R),
                                rng.NextDouble(0.0, 0.3));
        }
        break;
      case 4:
        if (R > 0) {
          alloc.add_read_assign(b, rng.NextBounded(R),
                                rng.NextDouble(-0.05, 0.1));
        }
        if (U > 0) {
          alloc.set_update_assign(b, rng.NextBounded(U),
                                  rng.NextDouble(0.0, 0.2));
        }
        break;
      case 5:
        if (R > 0) {
          bits.ClearAll();
          bits.UnionWith(index.read_closure_fragments(rng.NextBounded(R)));
          alloc.RetainFragments(b, bits);
        }
        break;
      case 6:
        if (rng.NextBernoulli(0.25)) {
          alloc.ClearBackendRow(b);
        } else if (R > 0) {
          alloc.PlaceBits(b, index.read_bundle_bits(rng.NextBounded(R)));
        }
        break;
    }
  }

  std::vector<size_t> replicas(cls.catalog.size(), 0);
  for (size_t b = 0; b < n; ++b) {
    double read_load = 0.0, update_load = 0.0;
    for (size_t r = 0; r < R; ++r) read_load += alloc.read_assign(b, r);
    for (size_t u = 0; u < U; ++u) update_load += alloc.update_assign(b, u);
    const double bytes = cls.catalog.SetBytes(alloc.BackendFragments(b));
    EXPECT_NEAR(alloc.AssignedReadLoad(b), read_load, 1e-9) << "backend " << b;
    EXPECT_NEAR(alloc.AssignedUpdateLoad(b), update_load, 1e-9)
        << "backend " << b;
    EXPECT_NEAR(alloc.AssignedLoad(b), read_load + update_load, 1e-9)
        << "backend " << b;
    EXPECT_NEAR(alloc.BackendBytes(b, cls.catalog), bytes, 1e-9)
        << "backend " << b;
    for (FragmentId f = 0; f < cls.catalog.size(); ++f) {
      if (alloc.IsPlaced(b, f)) ++replicas[f];
    }
  }
  for (FragmentId f = 0; f < cls.catalog.size(); ++f) {
    EXPECT_EQ(alloc.ReplicaCount(f), replicas[f]) << "fragment " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalAggregateSweep,
                         ::testing::Range<uint64_t>(1, 13));

// Regression for the delta-evaluation rewrite of the memetic search: a fixed
// {seed, num_islands} must yield the identical winner at every thread count.
class MemeticThreadDeterminismSweep
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemeticThreadDeterminismSweep, IdenticalWinnerAcrossThreadCounts) {
  const Instance inst = MakeInstance(GetParam(), 4, Granularity::kTable);
  GreedyAllocator greedy;
  auto seed_alloc = greedy.Allocate(inst.cls, inst.backends);
  ASSERT_TRUE(seed_alloc.ok());

  auto run = [&](size_t threads) {
    MemeticOptions opts;
    opts.population_size = 9;
    opts.iterations = 8;
    opts.num_islands = 3;
    opts.migration_interval = 3;
    opts.seed = GetParam() * 131;
    opts.threads = threads;
    MemeticAllocator memetic(opts);
    auto result = memetic.Improve(inst.cls, inst.backends, seed_alloc.value());
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const Allocation base = run(1);
  for (size_t threads : {2, 4}) {
    const Allocation other = run(threads);
    for (size_t b = 0; b < base.num_backends(); ++b) {
      for (FragmentId f = 0; f < base.num_fragments(); ++f) {
        ASSERT_EQ(base.IsPlaced(b, f), other.IsPlaced(b, f))
            << "threads=" << threads << " b=" << b << " f=" << f;
      }
      for (size_t r = 0; r < base.num_reads(); ++r) {
        ASSERT_EQ(base.read_assign(b, r), other.read_assign(b, r))
            << "threads=" << threads;
      }
      for (size_t u = 0; u < base.num_updates(); ++u) {
        ASSERT_EQ(base.update_assign(b, u), other.update_assign(b, u))
            << "threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemeticThreadDeterminismSweep,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace qcap
