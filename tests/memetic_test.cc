#include "alloc/memetic.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

MemeticOptions FastOptions(uint64_t seed = 7) {
  MemeticOptions opts;
  opts.population_size = 9;
  opts.iterations = 12;
  opts.seed = seed;
  return opts;
}

TEST(MemeticTest, ProducesValidAllocation) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  MemeticAllocator memetic(FastOptions());
  auto result = memetic.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Status valid = ValidateAllocation(cls, result.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(MemeticTest, NeverWorseThanGreedy) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  GreedyAllocator greedy;
  auto greedy_alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(greedy_alloc.ok());
  const double greedy_scale = Scale(greedy_alloc.value(), backends);

  MemeticAllocator memetic(FastOptions());
  auto improved = memetic.Allocate(cls, backends);
  ASSERT_TRUE(improved.ok());
  EXPECT_LE(Scale(improved.value(), backends), greedy_scale + 1e-9);
}

TEST(MemeticTest, DeterministicForSeed) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(3);
  MemeticAllocator a(FastOptions(42)), b(FastOptions(42));
  auto ra = a.Allocate(cls, backends);
  auto rb = b.Allocate(cls, backends);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t backend = 0; backend < 3; ++backend) {
    EXPECT_EQ(ra->BackendFragments(backend), rb->BackendFragments(backend));
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      EXPECT_DOUBLE_EQ(ra->read_assign(backend, r),
                       rb->read_assign(backend, r));
    }
  }
}

TEST(MemeticTest, ImproveAcceptsExternalSeed) {
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(2);
  GreedyAllocator greedy;
  auto seed_alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(seed_alloc.ok());
  MemeticAllocator memetic(FastOptions());
  auto improved = memetic.Improve(cls, backends, seed_alloc.value());
  ASSERT_TRUE(improved.ok());
  EXPECT_TRUE(ValidateAllocation(cls, improved.value(), backends).ok());
  // Figure 2 on two backends is already optimal: speedup stays 2.
  EXPECT_NEAR(Speedup(improved.value(), backends), 2.0, 1e-9);
}

TEST(MemeticTest, CanReduceReplicationOfPoorSeed) {
  // Seed with full replication; the memetic search should strictly reduce
  // stored bytes for the read-only Figure 2 workload at equal speedup.
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(2);
  Allocation full(2, 3, 4, 0);
  for (size_t b = 0; b < 2; ++b) full.PlaceSet(b, {0, 1, 2});
  full.set_read_assign(0, 0, 0.30);
  full.set_read_assign(0, 3, 0.20);
  full.set_read_assign(1, 1, 0.25);
  full.set_read_assign(1, 2, 0.25);

  MemeticOptions opts = FastOptions(3);
  opts.iterations = 30;
  MemeticAllocator memetic(opts);
  auto improved = memetic.Improve(cls, backends, full);
  ASSERT_TRUE(improved.ok());
  EXPECT_TRUE(ValidateAllocation(cls, improved.value(), backends).ok());
  EXPECT_NEAR(Speedup(improved.value(), backends), 2.0, 1e-9);
  EXPECT_LT(DegreeOfReplication(improved.value(), cls.catalog), 2.0 - 1e-9);
}

/// Exact equality of every matrix entry — the determinism contract is
/// bit-identical results, not "close".
void ExpectIdenticalAllocations(const Allocation& a, const Allocation& b,
                                const Classification& cls) {
  ASSERT_EQ(a.num_backends(), b.num_backends());
  for (size_t backend = 0; backend < a.num_backends(); ++backend) {
    EXPECT_EQ(a.BackendFragments(backend), b.BackendFragments(backend));
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      EXPECT_EQ(a.read_assign(backend, r), b.read_assign(backend, r))
          << "read class " << r << " on backend " << backend;
    }
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      EXPECT_EQ(a.update_assign(backend, u), b.update_assign(backend, u))
          << "update class " << u << " on backend " << backend;
    }
  }
}

TEST(MemeticTest, ThreadCountDoesNotChangeTheAllocation) {
  // Fixed {seed, num_islands}: islands only interact at the serial
  // migration barrier, so any thread count must give bit-identical results.
  const auto workload = workloads::MakeRandomWorkload(11);
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(4);

  MemeticOptions opts = FastOptions(5);
  opts.num_islands = 4;
  opts.migration_interval = 4;  // Several migration rounds in 12 iterations.
  opts.iterations = 12;

  opts.threads = 1;
  MemeticAllocator serial(opts);
  auto serial_result = serial.Allocate(cls.value(), backends);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();

  for (size_t threads : {2, 4}) {
    opts.threads = threads;
    MemeticAllocator parallel(opts);
    auto parallel_result = parallel.Allocate(cls.value(), backends);
    ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();
    ExpectIdenticalAllocations(serial_result.value(), parallel_result.value(),
                               cls.value());
  }
}

TEST(MemeticTest, ExternalPoolMatchesOwnedThreads) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  MemeticOptions opts = FastOptions(21);
  opts.num_islands = 3;
  opts.migration_interval = 5;

  opts.threads = 1;
  MemeticAllocator serial(opts);
  auto want = serial.Allocate(cls, backends);
  ASSERT_TRUE(want.ok());

  ThreadPool pool(4);
  opts.pool = &pool;
  MemeticAllocator pooled(opts);
  auto got = pooled.Allocate(cls, backends);
  ASSERT_TRUE(got.ok());
  ExpectIdenticalAllocations(want.value(), got.value(), cls);
}

TEST(MemeticTest, SearchProgressIsPopulated) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  SearchProgress progress;
  MemeticOptions opts = FastOptions(3);
  opts.num_islands = 2;
  opts.migration_interval = 4;
  opts.threads = 2;
  opts.progress = &progress;
  MemeticAllocator memetic(opts);
  auto result = memetic.Allocate(cls, backends);
  ASSERT_TRUE(result.ok());

  // Every island runs every generation.
  EXPECT_EQ(progress.generations.load(), opts.iterations * opts.num_islands);
  EXPECT_GT(progress.evaluations.load(), progress.generations.load());
  // The best of the population always survives selection, local search only
  // improves, and migration only replaces worst members — so the best scale
  // ever evaluated is the returned allocation's scale.
  EXPECT_NEAR(progress.best_scale(), Scale(result.value(), backends), 1e-6);
  EXPECT_NE(progress.ToString().find("generations="), std::string::npos);
}

TEST(MemeticTest, GarbageCollectLeavesOnlyNeededFragments) {
  // Regression for the GarbageCollect rewrite: starting from a fully
  // replicated seed of the read-only Figure 2 workload, every surviving
  // placement must be needed by a read class with positive share on that
  // backend (no leftover replicas survive the rebuild).
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(2);
  Allocation full(2, 3, 4, 0);
  for (size_t b = 0; b < 2; ++b) full.PlaceSet(b, {0, 1, 2});
  full.set_read_assign(0, 0, 0.30);
  full.set_read_assign(0, 3, 0.20);
  full.set_read_assign(1, 1, 0.25);
  full.set_read_assign(1, 2, 0.25);

  MemeticOptions opts = FastOptions(17);
  opts.iterations = 25;
  MemeticAllocator memetic(opts);
  auto improved = memetic.Improve(cls, backends, full);
  ASSERT_TRUE(improved.ok());
  ASSERT_TRUE(ValidateAllocation(cls, improved.value(), backends).ok());
  for (size_t b = 0; b < 2; ++b) {
    FragmentSet needed;
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (improved->read_assign(b, r) > 1e-15) {
        needed = SetUnion(needed, cls.reads[r].fragments);
      }
    }
    EXPECT_EQ(improved->BackendFragments(b), needed) << "backend " << b;
  }
}

class MemeticPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemeticPropertySweep, ValidAndNotWorseOnRandomWorkloads) {
  const auto workload = workloads::MakeRandomWorkload(GetParam());
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(4);

  GreedyAllocator greedy;
  auto base = greedy.Allocate(cls.value(), backends);
  ASSERT_TRUE(base.ok());

  MemeticAllocator memetic(FastOptions(GetParam()));
  auto improved = memetic.Improve(cls.value(), backends, base.value());
  ASSERT_TRUE(improved.ok()) << improved.status().ToString();
  Status valid = ValidateAllocation(cls.value(), improved.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_LE(Scale(improved.value(), backends),
            Scale(base.value(), backends) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemeticPropertySweep,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace qcap
