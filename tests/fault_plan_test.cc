// FaultPlan construction, strict validation, and spec parsing.
#include <gtest/gtest.h>

#include <limits>

#include "cluster/fault_plan.h"

namespace qcap {
namespace {

TEST(FaultPlanTest, EmptyPlanValidates) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.Validate(3).ok());
}

TEST(FaultPlanTest, CrashRecoverDegradeValidate) {
  FaultPlan plan;
  plan.Crash(1.0, 0);
  plan.Degrade(2.0, 1, 3.0);
  plan.Recover(5.0, 0);
  plan.Crash(6.0, 0);
  EXPECT_TRUE(plan.Validate(2).ok()) << plan.Validate(2).ToString();
}

TEST(FaultPlanTest, NegativeTimeRejected) {
  FaultPlan plan;
  plan.Crash(-1.0, 0);
  EXPECT_FALSE(plan.Validate(2).ok());
}

TEST(FaultPlanTest, NonFiniteTimeRejected) {
  FaultPlan plan;
  plan.Crash(std::numeric_limits<double>::infinity(), 0);
  EXPECT_FALSE(plan.Validate(2).ok());
}

TEST(FaultPlanTest, OutOfRangeBackendRejected) {
  FaultPlan plan;
  plan.Crash(1.0, 5);
  EXPECT_FALSE(plan.Validate(5).ok());
  EXPECT_TRUE(plan.Validate(6).ok());
}

TEST(FaultPlanTest, RecoverBeforeCrashRejected) {
  FaultPlan plan;
  plan.Recover(1.0, 0);
  auto status = plan.Validate(2);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("recover"), std::string::npos);
}

TEST(FaultPlanTest, DuplicateCrashOfDeadBackendRejected) {
  FaultPlan plan;
  plan.Crash(1.0, 0);
  plan.Crash(2.0, 0);
  EXPECT_FALSE(plan.Validate(2).ok());
}

TEST(FaultPlanTest, DegradeOfCrashedBackendRejected) {
  FaultPlan plan;
  plan.Crash(1.0, 0);
  plan.Degrade(2.0, 0, 2.0);
  EXPECT_FALSE(plan.Validate(2).ok());
}

TEST(FaultPlanTest, BadDegradeFactorRejected) {
  FaultPlan zero;
  zero.Degrade(1.0, 0, 0.0);
  EXPECT_FALSE(zero.Validate(2).ok());
  FaultPlan negative;
  negative.Degrade(1.0, 0, -2.0);
  EXPECT_FALSE(negative.Validate(2).ok());
}

TEST(FaultPlanTest, ReplayIsOrderIndependentOfInsertion) {
  // Events inserted out of order validate by timestamp order.
  FaultPlan plan;
  plan.Recover(5.0, 0);
  plan.Crash(1.0, 0);
  EXPECT_TRUE(plan.Validate(1).ok());
}

TEST(FaultPlanTest, ParseRoundTrip) {
  auto plan = ParseFaultPlan("crash:10:2; recover:25.5:2, degrade:3:0:4.5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->events.size(), 3u);
  auto reparsed = ParseFaultPlan(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->events.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reparsed->events[i].kind, plan->events[i].kind);
    EXPECT_DOUBLE_EQ(reparsed->events[i].time_seconds,
                     plan->events[i].time_seconds);
    EXPECT_EQ(reparsed->events[i].backend, plan->events[i].backend);
    EXPECT_DOUBLE_EQ(reparsed->events[i].factor, plan->events[i].factor);
  }
}

TEST(FaultPlanTest, ParseErrors) {
  EXPECT_FALSE(ParseFaultPlan("reboot:1:0").ok());         // unknown kind
  EXPECT_FALSE(ParseFaultPlan("crash:1").ok());            // missing backend
  EXPECT_FALSE(ParseFaultPlan("crash:abc:0").ok());        // bad time
  EXPECT_FALSE(ParseFaultPlan("crash:1:xyz").ok());        // bad backend
  EXPECT_FALSE(ParseFaultPlan("degrade:1:0").ok());        // missing factor
  EXPECT_FALSE(ParseFaultPlan("crash:1:0:9").ok());        // extra field
  EXPECT_FALSE(ParseFaultPlan("crash:1:-2").ok());         // negative backend
}

TEST(FaultPlanTest, ParseErrorsNameTheOffendingEvent) {
  auto bad_kind = ParseFaultPlan("crash:1:0,reboot:2:1");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("reboot"), std::string::npos);
  auto bad_number = ParseFaultPlan("crash:1:0,crash:later:1");
  ASSERT_FALSE(bad_number.ok());
  EXPECT_NE(bad_number.status().message().find("crash:later:1"),
            std::string::npos);
}

TEST(FaultPlanTest, ParseRejectsEmptyFields) {
  EXPECT_FALSE(ParseFaultPlan("crash::0").ok());      // empty time
  EXPECT_FALSE(ParseFaultPlan("crash:1:").ok());      // empty backend
  EXPECT_FALSE(ParseFaultPlan(":1:0").ok());          // empty kind
  EXPECT_FALSE(ParseFaultPlan("degrade:1:0:").ok());  // empty factor
  EXPECT_FALSE(ParseFaultPlan(":::").ok());
}

TEST(FaultPlanTest, ParseRejectsOutOfRangeNumbers) {
  // std::stol overflow on the backend index must surface as InvalidArgument,
  // not as an uncaught std::out_of_range.
  EXPECT_FALSE(ParseFaultPlan("crash:1:99999999999999999999999").ok());
  EXPECT_FALSE(ParseFaultPlan("crash:1e99999:0").ok());
}

TEST(FaultPlanTest, ParseRejectsTrailingGarbageInNumbers) {
  EXPECT_FALSE(ParseFaultPlan("crash:1.5x:0").ok());
  EXPECT_FALSE(ParseFaultPlan("crash:1:0zzz").ok());
  EXPECT_FALSE(ParseFaultPlan("degrade:1:0:2.5pts").ok());
}

TEST(FaultPlanTest, ParseAcceptsNonFiniteButValidateRejects) {
  // "inf"/"nan" are lexically valid doubles, so the parser takes them and
  // strict validation is what rejects the plan.
  auto inf = ParseFaultPlan("crash:inf:0");
  ASSERT_TRUE(inf.ok()) << inf.status().ToString();
  EXPECT_FALSE(inf->Validate(1).ok());
  auto nan = ParseFaultPlan("degrade:1:0:nan");
  ASSERT_TRUE(nan.ok()) << nan.status().ToString();
  EXPECT_FALSE(nan->Validate(1).ok());
}

TEST(FaultPlanTest, ParseTrimsWhitespaceAndSkipsEmptyEvents) {
  auto plan = ParseFaultPlan("  crash:1:0 ,, recover:2:0 ;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->events.size(), 2u);
  EXPECT_TRUE(plan->Validate(1).ok());
}

TEST(FaultPlanTest, ParseEmptySpecIsEmptyPlan) {
  auto plan = ParseFaultPlan("  ");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

}  // namespace
}  // namespace qcap
