#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace qcap {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.NextDiscrete(weights)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, DiscreteZeroWeightNeverChosen) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextDiscrete(weights), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, BoundedUniformityAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<int> buckets(8, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) buckets[rng.NextBounded(8)]++;
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 8, n / 20);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace qcap
