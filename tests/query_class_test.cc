#include "workload/query_class.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

/// Builds the Appendix A classification: Q1={A} 24%, Q2={B} 20%, Q3={C}
/// 20%, Q4={A,B} 16%; U1={A} 4%, U2={B} 10%, U3={C} 6%. Fragments A=0,
/// B=1, C=2, each of size 1.
Classification AppendixAClassification() {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).ok());
  cls.reads = {
      QueryClass{{0}, 0.24, 1.0, false, "Q1", {}},
      QueryClass{{1}, 0.20, 1.0, false, "Q2", {}},
      QueryClass{{2}, 0.20, 1.0, false, "Q3", {}},
      QueryClass{{0, 1}, 0.16, 1.0, false, "Q4", {}},
  };
  cls.updates = {
      QueryClass{{0}, 0.04, 1.0, true, "U1", {}},
      QueryClass{{1}, 0.10, 1.0, true, "U2", {}},
      QueryClass{{2}, 0.06, 1.0, true, "U3", {}},
  };
  return cls;
}

TEST(QueryClassTest, OverlappingUpdates) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[0]), (std::vector<size_t>{0}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[1]), (std::vector<size_t>{1}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[2]), (std::vector<size_t>{2}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[3]), (std::vector<size_t>{0, 1}));
  // An update class overlaps itself.
  EXPECT_EQ(cls.OverlappingUpdates(cls.updates[0]), (std::vector<size_t>{0}));
}

TEST(QueryClassTest, OverlappingUpdateWeight) {
  const Classification cls = AppendixAClassification();
  EXPECT_NEAR(cls.OverlappingUpdateWeight(cls.reads[0]), 0.04, 1e-12);
  // Q4 drags U1 + U2 = 14%.
  EXPECT_NEAR(cls.OverlappingUpdateWeight(cls.reads[3]), 0.14, 1e-12);
}

TEST(QueryClassTest, FragmentsWithUpdates) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.FragmentsWithUpdates(cls.reads[0]), (FragmentSet{0}));
  EXPECT_EQ(cls.FragmentsWithUpdates(cls.reads[3]), (FragmentSet{0, 1}));
}

TEST(QueryClassTest, NumClassesAndTotalWeight) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.NumClasses(), 7u);
  EXPECT_NEAR(cls.TotalWeight(), 1.0, 1e-12);
}

TEST(QueryClassTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(AppendixAClassification().Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsEmptyFragmentSet) {
  Classification cls = AppendixAClassification();
  cls.reads[0].fragments.clear();
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsBadWeightSum) {
  Classification cls = AppendixAClassification();
  cls.reads[0].weight = 0.5;
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsUnknownFragment) {
  Classification cls = AppendixAClassification();
  cls.reads[0].fragments = {99};
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsUnsortedFragments) {
  Classification cls = AppendixAClassification();
  cls.reads[3].fragments = {1, 0};
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsMisplacedUpdateFlag) {
  Classification cls = AppendixAClassification();
  cls.reads[0].is_update = true;
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(ClassificationIndexTest, MatchesNaiveHelpers) {
  const Classification cls = AppendixAClassification();
  const ClassificationIndex index(cls);
  ASSERT_EQ(index.num_reads(), cls.reads.size());
  ASSERT_EQ(index.num_updates(), cls.updates.size());
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    EXPECT_EQ(index.read_bits(r).ToFragmentSet(), cls.reads[r].fragments);
    EXPECT_EQ(index.read_overlapping_updates(r),
              cls.OverlappingUpdates(cls.reads[r]));
    EXPECT_DOUBLE_EQ(index.read_overlapping_update_weight(r),
                     cls.OverlappingUpdateWeight(cls.reads[r]));
    const FragmentSet bundle = cls.FragmentsWithUpdates(cls.reads[r]);
    EXPECT_EQ(index.read_bundle_bits(r).ToFragmentSet(), bundle);
    EXPECT_DOUBLE_EQ(index.read_bundle_bytes(r), cls.catalog.SetBytes(bundle));
  }
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    EXPECT_EQ(index.update_bits(u).ToFragmentSet(), cls.updates[u].fragments);
    EXPECT_EQ(index.update_overlapping_updates(u),
              cls.OverlappingUpdates(cls.updates[u]));
    EXPECT_DOUBLE_EQ(index.update_overlapping_update_weight(u),
                     cls.OverlappingUpdateWeight(cls.updates[u]));
  }
}

TEST(ClassificationIndexTest, InvertedIndexAndOverlappingReads) {
  const Classification cls = AppendixAClassification();
  const ClassificationIndex index(cls);
  // Fragment A=0 is referenced by Q1, Q4 and updated by U1.
  EXPECT_EQ(index.reads_of_fragment(0), (std::vector<size_t>{0, 3}));
  EXPECT_EQ(index.updates_of_fragment(0), (std::vector<size_t>{0}));
  EXPECT_TRUE(index.fragment_updated(0));
  // U1={A} overlaps Q1 and Q4; every update here has an overlapping read.
  EXPECT_EQ(index.reads_overlapping_update(0), (std::vector<size_t>{0, 3}));
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    EXPECT_FALSE(index.reads_overlapping_update(u).empty());
  }
}

TEST(ClassificationIndexTest, ClosureMatchesFixpoint) {
  // Chained updates: U1={A,B} and U2={B,C} overlap transitively, so a read
  // on {A} must keep the closure {A,B,C} and both update pins.
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("D", "D", FragmentKind::kTable, 1.0).ok());
  cls.reads = {
      QueryClass{{0}, 0.4, 1.0, false, "Q1", {}},
      QueryClass{{3}, 0.3, 1.0, false, "Q2", {}},
  };
  cls.updates = {
      QueryClass{{0, 1}, 0.2, 1.0, true, "U1", {}},
      QueryClass{{1, 2}, 0.1, 1.0, true, "U2", {}},
  };
  ASSERT_TRUE(cls.Validate().ok());
  const ClassificationIndex index(cls);
  EXPECT_EQ(index.read_closure_fragments(0).ToFragmentSet(),
            (FragmentSet{0, 1, 2}));
  EXPECT_TRUE(index.read_closure_updates(0).Test(0));
  EXPECT_TRUE(index.read_closure_updates(0).Test(1));
  // Q2={D} touches no update: closure is just its own fragments.
  EXPECT_EQ(index.read_closure_fragments(1).ToFragmentSet(), (FragmentSet{3}));
  EXPECT_TRUE(index.read_closure_updates(1).None());
  EXPECT_FALSE(index.fragment_updated(3));
}

}  // namespace
}  // namespace qcap
