#include "workload/query_class.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

/// Builds the Appendix A classification: Q1={A} 24%, Q2={B} 20%, Q3={C}
/// 20%, Q4={A,B} 16%; U1={A} 4%, U2={B} 10%, U3={C} 6%. Fragments A=0,
/// B=1, C=2, each of size 1.
Classification AppendixAClassification() {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).ok());
  cls.reads = {
      QueryClass{{0}, 0.24, 1.0, false, "Q1", {}},
      QueryClass{{1}, 0.20, 1.0, false, "Q2", {}},
      QueryClass{{2}, 0.20, 1.0, false, "Q3", {}},
      QueryClass{{0, 1}, 0.16, 1.0, false, "Q4", {}},
  };
  cls.updates = {
      QueryClass{{0}, 0.04, 1.0, true, "U1", {}},
      QueryClass{{1}, 0.10, 1.0, true, "U2", {}},
      QueryClass{{2}, 0.06, 1.0, true, "U3", {}},
  };
  return cls;
}

TEST(QueryClassTest, OverlappingUpdates) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[0]), (std::vector<size_t>{0}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[1]), (std::vector<size_t>{1}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[2]), (std::vector<size_t>{2}));
  EXPECT_EQ(cls.OverlappingUpdates(cls.reads[3]), (std::vector<size_t>{0, 1}));
  // An update class overlaps itself.
  EXPECT_EQ(cls.OverlappingUpdates(cls.updates[0]), (std::vector<size_t>{0}));
}

TEST(QueryClassTest, OverlappingUpdateWeight) {
  const Classification cls = AppendixAClassification();
  EXPECT_NEAR(cls.OverlappingUpdateWeight(cls.reads[0]), 0.04, 1e-12);
  // Q4 drags U1 + U2 = 14%.
  EXPECT_NEAR(cls.OverlappingUpdateWeight(cls.reads[3]), 0.14, 1e-12);
}

TEST(QueryClassTest, FragmentsWithUpdates) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.FragmentsWithUpdates(cls.reads[0]), (FragmentSet{0}));
  EXPECT_EQ(cls.FragmentsWithUpdates(cls.reads[3]), (FragmentSet{0, 1}));
}

TEST(QueryClassTest, NumClassesAndTotalWeight) {
  const Classification cls = AppendixAClassification();
  EXPECT_EQ(cls.NumClasses(), 7u);
  EXPECT_NEAR(cls.TotalWeight(), 1.0, 1e-12);
}

TEST(QueryClassTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(AppendixAClassification().Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsEmptyFragmentSet) {
  Classification cls = AppendixAClassification();
  cls.reads[0].fragments.clear();
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsBadWeightSum) {
  Classification cls = AppendixAClassification();
  cls.reads[0].weight = 0.5;
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsUnknownFragment) {
  Classification cls = AppendixAClassification();
  cls.reads[0].fragments = {99};
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsUnsortedFragments) {
  Classification cls = AppendixAClassification();
  cls.reads[3].fragments = {1, 0};
  EXPECT_FALSE(cls.Validate().ok());
}

TEST(QueryClassTest, ValidateRejectsMisplacedUpdateFlag) {
  Classification cls = AppendixAClassification();
  cls.reads[0].is_update = true;
  EXPECT_FALSE(cls.Validate().ok());
}

}  // namespace
}  // namespace qcap
