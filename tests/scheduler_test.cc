#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/pending_index.h"
#include "common/random.h"
#include "test_util.h"

namespace qcap {
namespace {

TEST(SchedulerTest, ReadCandidatesRequireAllFragments) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  a.PlaceSet(0, {0, 1});  // A, B.
  a.PlaceSet(1, {1, 2});  // B, C.
  a.Place(2, 0);          // A.
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();
  // C1 = {A}: backends 0 and 2.
  EXPECT_EQ(sched->ReadCandidates(0), (std::vector<size_t>{0, 2}));
  // C4 = {A, B}: backend 0 only.
  EXPECT_EQ(sched->ReadCandidates(3), (std::vector<size_t>{0}));
}

TEST(SchedulerTest, UpdateTargetsUseOverlap) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a(2, 3, 4, 3);
  a.PlaceSet(0, {0, 1});
  a.Place(1, 2);
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->UpdateTargets(0), (std::vector<size_t>{0}));  // U1 = {A}.
  EXPECT_EQ(sched->UpdateTargets(2), (std::vector<size_t>{1}));  // U3 = {C}.
}

TEST(SchedulerTest, BuildFailsWhenClassUnservable) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.Place(0, 0);  // Only A anywhere: C2={B} unservable.
  auto sched = Scheduler::Build(cls, a);
  EXPECT_FALSE(sched.ok());
}

TEST(SchedulerTest, BuildFailsWhenUpdateHomeless) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.8, 1.0, false, "Q1", {}}};
  cls.updates = {QueryClass{{1}, 0.2, 1.0, true, "U1", {}}};
  Allocation a(1, 2, 1, 1);
  a.Place(0, 0);  // B (and thus U1) nowhere.
  EXPECT_FALSE(Scheduler::Build(cls, a).ok());
}

TEST(SchedulerTest, LeastPendingWins) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->PickReadBackend(0, {5, 1, 9}), 1u);
  EXPECT_EQ(sched->PickReadBackend(0, {0, 1, 9}), 0u);
}

TEST(SchedulerTest, TiesRotateRoundRobin) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  std::vector<size_t> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(sched->PickReadBackend(0, {2, 2, 2}));
  }
  // All backends tie, so every backend must be chosen at least once.
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(SchedulerTest, CandidateWithStrictlyFewerPendingAlwaysBeatsRotation) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(sched->PickReadBackend(0, {4, 4, 2}), 2u);
  }
}

TEST(PendingIndexTest, PickMatchesBruteForceCyclicArgmin) {
  // Property: for randomized keys (including dead backends) and every
  // rotation offset, Pick returns the first candidate in cyclic order from
  // the offset whose key attains the group minimum — the exact tie-break
  // the linear scans it replaced implemented.
  const std::vector<std::vector<size_t>> candidates = {
      {0, 2, 4, 5}, {1, 3}, {0, 1, 2, 3, 4, 5, 6}, {6}};
  PendingIndex index;
  index.Build(candidates, 7);
  Rng rng(29);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint64_t> keys(7);
    for (size_t b = 0; b < keys.size(); ++b) {
      // Small key range provokes ties; ~1 in 5 backends is dead.
      keys[b] = rng.Next() % 5 == 0 ? PendingIndex::kDeadKey : rng.Next() % 4;
      index.SetKey(b, keys[b]);
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      const auto& cand = candidates[c];
      for (size_t start = 0; start < cand.size(); ++start) {
        uint64_t best = PendingIndex::kDeadKey;
        for (size_t b : cand) best = std::min(best, keys[b]);
        size_t want = PendingIndex::kNone;
        if (best != PendingIndex::kDeadKey) {
          for (size_t i = 0; i < cand.size(); ++i) {
            const size_t b = cand[(start + i) % cand.size()];
            if (keys[b] == best) {
              want = b;
              break;
            }
          }
        }
        EXPECT_EQ(index.Pick(c, start), want)
            << "trial " << trial << " class " << c << " start " << start;
      }
    }
  }
}

}  // namespace
}  // namespace qcap
