#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace qcap {
namespace {

TEST(SchedulerTest, ReadCandidatesRequireAllFragments) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  a.PlaceSet(0, {0, 1});  // A, B.
  a.PlaceSet(1, {1, 2});  // B, C.
  a.Place(2, 0);          // A.
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();
  // C1 = {A}: backends 0 and 2.
  EXPECT_EQ(sched->ReadCandidates(0), (std::vector<size_t>{0, 2}));
  // C4 = {A, B}: backend 0 only.
  EXPECT_EQ(sched->ReadCandidates(3), (std::vector<size_t>{0}));
}

TEST(SchedulerTest, UpdateTargetsUseOverlap) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a(2, 3, 4, 3);
  a.PlaceSet(0, {0, 1});
  a.Place(1, 2);
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->UpdateTargets(0), (std::vector<size_t>{0}));  // U1 = {A}.
  EXPECT_EQ(sched->UpdateTargets(2), (std::vector<size_t>{1}));  // U3 = {C}.
}

TEST(SchedulerTest, BuildFailsWhenClassUnservable) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.Place(0, 0);  // Only A anywhere: C2={B} unservable.
  auto sched = Scheduler::Build(cls, a);
  EXPECT_FALSE(sched.ok());
}

TEST(SchedulerTest, BuildFailsWhenUpdateHomeless) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.8, 1.0, false, "Q1", {}}};
  cls.updates = {QueryClass{{1}, 0.2, 1.0, true, "U1", {}}};
  Allocation a(1, 2, 1, 1);
  a.Place(0, 0);  // B (and thus U1) nowhere.
  EXPECT_FALSE(Scheduler::Build(cls, a).ok());
}

TEST(SchedulerTest, LeastPendingWins) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->PickReadBackend(0, {5, 1, 9}), 1u);
  EXPECT_EQ(sched->PickReadBackend(0, {0, 1, 9}), 0u);
}

TEST(SchedulerTest, TiesRotateRoundRobin) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  std::vector<size_t> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(sched->PickReadBackend(0, {2, 2, 2}));
  }
  // All backends tie, so every backend must be chosen at least once.
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(SchedulerTest, CandidateWithStrictlyFewerPendingAlwaysBeatsRotation) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  for (size_t b = 0; b < 3; ++b) a.PlaceSet(b, {0, 1, 2});
  auto sched = Scheduler::Build(cls, a);
  ASSERT_TRUE(sched.ok());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(sched->PickReadBackend(0, {4, 4, 2}), 2u);
  }
}

}  // namespace
}  // namespace qcap
