#include "cluster/event_queue.h"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/random.h"

namespace qcap {
namespace {

// Reference ordering: the std::priority_queue<SimEvent> the simulator used
// before the pooled queue, with the same (time, seq) min-first comparator.
struct After {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};
using ReferenceQueue =
    std::priority_queue<SimEvent, std::vector<SimEvent>, After>;

SimEvent MakeEvent(double time, uint64_t seq) {
  SimEvent ev;
  ev.time = time;
  ev.seq = seq;
  ev.kind = SimEvent::Kind::kRetry;
  ev.backend = static_cast<size_t>(seq % 7);
  ev.request_id = seq * 31;
  ev.epoch = seq % 5;
  ev.busy_seconds = time * 0.5;
  ev.base_service = time * 0.25;
  return ev;
}

void ExpectSameEvent(const SimEvent& got, const SimEvent& want) {
  EXPECT_EQ(got.time, want.time);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.backend, want.backend);
  EXPECT_EQ(got.request_id, want.request_id);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.busy_seconds, want.busy_seconds);
  EXPECT_EQ(got.base_service, want.base_service);
}

TEST(EventQueueTest, PopOrderMatchesPriorityQueueOnRandomStreams) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue queue;
    ReferenceQueue reference;
    // Coarse times force frequent exact ties, exercising the seq
    // tie-break; seq values stay unique as in the simulator.
    const size_t n = 1 + rng.Next() % 400;
    for (uint64_t seq = 0; seq < n; ++seq) {
      const double time =
          static_cast<double>(rng.Next() % 50) * 0.125;
      queue.Push(MakeEvent(time, seq));
      reference.push(MakeEvent(time, seq));
    }
    ASSERT_EQ(queue.size(), reference.size());
    SimEvent got;
    while (!reference.empty()) {
      queue.Pop(&got);
      ExpectSameEvent(got, reference.top());
      reference.pop();
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueueTest, InterleavedPushPopMatchesPriorityQueue) {
  Rng rng(13);
  EventQueue queue;
  ReferenceQueue reference;
  uint64_t seq = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool push = reference.empty() || rng.Next() % 3 != 0;
    if (push) {
      const double time = static_cast<double>(rng.Next() % 97) * 0.25;
      queue.Push(MakeEvent(time, seq));
      reference.push(MakeEvent(time, seq));
      ++seq;
    } else {
      SimEvent got;
      queue.Pop(&got);
      ExpectSameEvent(got, reference.top());
      reference.pop();
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
}

TEST(EventQueueTest, PayloadSurvivesArenaRecycling) {
  EventQueue queue;
  queue.Reserve(4);
  // Fill, drain (slots go to the free list), then refill: recycled slots
  // must return the new payloads, not stale ones.
  for (uint64_t seq = 0; seq < 4; ++seq) {
    queue.Push(MakeEvent(1.0 + static_cast<double>(seq), seq));
  }
  SimEvent got;
  for (uint64_t seq = 0; seq < 4; ++seq) {
    queue.Pop(&got);
    ExpectSameEvent(got, MakeEvent(1.0 + static_cast<double>(seq), seq));
  }
  for (uint64_t seq = 10; seq < 14; ++seq) {
    queue.Push(MakeEvent(2.0 + static_cast<double>(seq), seq));
  }
  for (uint64_t seq = 10; seq < 14; ++seq) {
    queue.Pop(&got);
    ExpectSameEvent(got, MakeEvent(2.0 + static_cast<double>(seq), seq));
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, ClearKeepsQueueUsable) {
  EventQueue queue;
  for (uint64_t seq = 0; seq < 100; ++seq) {
    queue.Push(MakeEvent(static_cast<double>(seq % 11), seq));
  }
  queue.Clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  queue.Push(MakeEvent(3.0, 1));
  queue.Push(MakeEvent(3.0, 0));
  SimEvent got;
  queue.Pop(&got);
  EXPECT_EQ(got.seq, 0u);
  queue.Pop(&got);
  EXPECT_EQ(got.seq, 1u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace qcap
