#include "model/report.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "test_util.h"

namespace qcap {
namespace {

TEST(ReportTest, ClassificationReportListsEveryClass) {
  const Classification cls = testutil::AppendixAClassification();
  const std::string report = RenderClassificationReport(cls);
  for (const char* label : {"Q1", "Q2", "Q3", "Q4", "U1", "U2", "U3"}) {
    EXPECT_NE(report.find(label), std::string::npos) << label;
  }
  EXPECT_NE(report.find("4 read classes"), std::string::npos);
  EXPECT_NE(report.find("3 update classes"), std::string::npos);
  // Q4 drags U1+U2 = 14%.
  EXPECT_NE(report.find("14.0%"), std::string::npos);
}

TEST(ReportTest, AllocationReportCarriesMetricsAndBackends) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  const std::string report =
      RenderAllocationReport(cls, alloc.value(), backends);
  EXPECT_NE(report.find("scale 1.240"), std::string::npos);
  EXPECT_NE(report.find("## B1"), std::string::npos);
  EXPECT_NE(report.find("## B4"), std::string::npos);
  EXPECT_NE(report.find("Replication histogram"), std::string::npos);
  // B1 carries 37.2%.
  EXPECT_NE(report.find("37.2%"), std::string::npos);
}

TEST(ReportTest, EmptyBackendRendered) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1, 2});
  for (size_t r = 0; r < 4; ++r) {
    a.set_read_assign(0, r, cls.reads[r].weight);
  }
  // Backend 2 is empty; the report must still render it.
  a.Place(1, 0);
  const auto backends = HomogeneousBackends(2);
  const std::string report = RenderAllocationReport(cls, a, backends);
  EXPECT_NE(report.find("## B2"), std::string::npos);
  EXPECT_NE(report.find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace qcap
