#include "common/status.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("thing").ToString(), "NotFound: thing");
  EXPECT_EQ(Status::Infeasible("no way").ToString(), "Infeasible: no way");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::Infeasible("").IsInfeasible());
  EXPECT_TRUE(Status::Unbounded("").IsUnbounded());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailingHelper() { return Status::OutOfRange("limit"); }

Status UsesReturnNotOk() {
  QCAP_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(MacroTest, ReturnNotOkPropagates) {
  Status st = UsesReturnNotOk();
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

Result<int> MakeSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  QCAP_ASSIGN_OR_RETURN(*out, MakeSeven());
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnAssigns) {
  int x = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&x).ok());
  EXPECT_EQ(x, 7);
}

Result<int> MakeError() { return Status::Infeasible("lp"); }

Status UsesAssignOrReturnError(int* out) {
  QCAP_ASSIGN_OR_RETURN(*out, MakeError());
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnPropagatesError) {
  int x = 123;
  Status st = UsesAssignOrReturnError(&x);
  EXPECT_TRUE(st.IsInfeasible());
  EXPECT_EQ(x, 123);
}

}  // namespace
}  // namespace qcap
