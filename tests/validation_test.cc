#include "model/validation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace qcap {
namespace {

/// A valid two-backend allocation of the Appendix A classification:
/// B1 = {A,B} with Q1,Q2,Q4,U1,U2; B2 = {C} with Q3,U3.
Allocation ValidTwoBackend(const Classification& cls) {
  Allocation a(2, cls.catalog.size(), cls.reads.size(), cls.updates.size());
  a.PlaceSet(0, {0, 1});
  a.Place(1, 2);
  a.set_read_assign(0, 0, 0.24);
  a.set_read_assign(0, 1, 0.20);
  a.set_read_assign(0, 3, 0.16);
  a.set_read_assign(1, 2, 0.20);
  a.set_update_assign(0, 0, 0.04);
  a.set_update_assign(0, 1, 0.10);
  a.set_update_assign(1, 2, 0.06);
  return a;
}

TEST(ValidationTest, AcceptsValidAllocation) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = ValidTwoBackend(cls);
  EXPECT_TRUE(
      ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsDimensionMismatch) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = ValidTwoBackend(cls);
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(3)).ok());
  Allocation wrong(2, 2, cls.reads.size(), cls.updates.size());
  EXPECT_FALSE(ValidateAllocation(cls, wrong, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsUnderAssignedRead) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_read_assign(0, 0, 0.10);  // Q1 no longer fully assigned.
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsReadAssignedWithoutData) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_read_assign(1, 0, 0.0);
  a.set_read_assign(0, 0, 0.14);
  a.set_read_assign(1, 0, 0.10);  // B2 lacks A.
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsNegativeAssignment) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_read_assign(0, 0, 0.30);
  a.set_read_assign(1, 0, -0.06);
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsUpdateNotPinnedWhereDataLives) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_update_assign(0, 0, 0.0);  // A lives on B1 but U1 not pinned there.
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsUpdateWithWrongWeight) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_update_assign(0, 0, 0.02);  // Must be exactly weight(U1)=0.04.
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsUpdateAssignedWithoutOverlap) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  a.set_update_assign(1, 0, 0.04);  // B2 has no fragment of U1.
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsPartialUpdateData) {
  // A backend storing only part of an update class's data violates ROWA.
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.5, 1.0, false, "Q1", {}},
               QueryClass{{1}, 0.3, 1.0, false, "Q2", {}}};
  cls.updates = {QueryClass{{0, 1}, 0.2, 1.0, true, "U1", {}}};
  Allocation a(2, 2, 2, 1);
  a.Place(0, 0);  // Only A on B1, but U1 references A and B.
  a.PlaceSet(1, {0, 1});
  a.set_read_assign(0, 0, 0.5);
  a.set_read_assign(1, 1, 0.3);
  a.set_update_assign(0, 0, 0.2);
  a.set_update_assign(1, 0, 0.2);
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(2)).ok());
}

TEST(ValidationTest, RejectsMissingFragment) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a = ValidTwoBackend(cls);
  // Rebuild without placing C anywhere: read/update for C unassigned too.
  Allocation b(2, 3, 4, 3);
  b.PlaceSet(0, {0, 1});
  b.set_read_assign(0, 0, 0.24);
  b.set_read_assign(0, 1, 0.20);
  b.set_read_assign(0, 3, 0.16);
  b.set_update_assign(0, 0, 0.04);
  b.set_update_assign(0, 1, 0.10);
  // Q3/U3 not assigned and C not placed.
  Status st = ValidateAllocation(cls, b, HomogeneousBackends(2));
  EXPECT_FALSE(st.ok());
}

TEST(ValidationTest, CompletenessCheckCanBeDisabled) {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("orphan", "O", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 1.0, false, "Q1", {}}};
  Allocation a(1, 2, 1, 0);
  a.Place(0, 0);
  a.set_read_assign(0, 0, 1.0);
  ValidationOptions strict;
  EXPECT_FALSE(ValidateAllocation(cls, a, HomogeneousBackends(1), strict).ok());
  ValidationOptions lax;
  lax.require_complete_data = false;
  EXPECT_TRUE(ValidateAllocation(cls, a, HomogeneousBackends(1), lax).ok());
}

TEST(ValidationTest, KSafetyRequiresReplicas) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = ValidTwoBackend(cls);
  ValidationOptions opts;
  opts.k_safety = 1;  // Each class on >= 2 backends: not satisfied here.
  EXPECT_FALSE(
      ValidateAllocation(cls, a, HomogeneousBackends(2), opts).ok());
}

TEST(ValidationTest, KSafetySatisfiedByFullReplication) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a(3, 3, 4, 3);
  for (size_t b = 0; b < 3; ++b) {
    a.PlaceSet(b, {0, 1, 2});
    for (size_t u = 0; u < 3; ++u) {
      a.set_update_assign(b, u, cls.updates[u].weight);
    }
  }
  for (size_t r = 0; r < 4; ++r) {
    a.set_read_assign(0, r, cls.reads[r].weight);
  }
  ValidationOptions opts;
  opts.k_safety = 2;
  EXPECT_TRUE(
      ValidateAllocation(cls, a, HomogeneousBackends(3), opts).ok());
}

/// A fully replicated three-backend allocation (every class everywhere).
Allocation FullThreeBackend(const Classification& cls) {
  Allocation a(3, 3, 4, 3);
  for (size_t b = 0; b < 3; ++b) {
    a.PlaceSet(b, {0, 1, 2});
    for (size_t u = 0; u < 3; ++u) {
      a.set_update_assign(b, u, cls.updates[u].weight);
    }
  }
  for (size_t r = 0; r < 4; ++r) {
    a.set_read_assign(0, r, cls.reads[r].weight);
  }
  return a;
}

TEST(CheckKSafetyTest, AllAliveFullReplicationIsKSafe) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = FullThreeBackend(cls);
  EXPECT_TRUE(CheckKSafety(cls, a, {true, true, true}, 2).ok());
  EXPECT_TRUE(CheckKSafety(cls, a, {true, true, true}, 0).ok());
}

TEST(CheckKSafetyTest, CrashShrinksTheMargin) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = FullThreeBackend(cls);
  // One dead backend: the survivors are 1-safe but no longer 2-safe
  // (Algorithm 3 over the alive sub-cluster).
  EXPECT_TRUE(CheckKSafety(cls, a, {true, false, true}, 1).ok());
  EXPECT_FALSE(CheckKSafety(cls, a, {true, false, true}, 2).ok());
  // Two dead: only servable, with zero margin.
  EXPECT_TRUE(CheckKSafety(cls, a, {false, false, true}, 0).ok());
  EXPECT_FALSE(CheckKSafety(cls, a, {false, false, true}, 1).ok());
}

TEST(CheckKSafetyTest, ZeroSafeAllocationFailsAfterExclusiveCrash) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = ValidTwoBackend(cls);
  // B2 exclusively holds fragment C: losing it makes Q3/U3 unservable even
  // at k = 0.
  auto status = CheckKSafety(cls, a, {true, false}, 0);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(CheckKSafety(cls, a, {true, true}, 0).ok());
}

TEST(CheckKSafetyTest, RejectsBadArguments) {
  const Classification cls = testutil::AppendixAClassification();
  const Allocation a = ValidTwoBackend(cls);
  EXPECT_FALSE(CheckKSafety(cls, a, {true}, 0).ok());        // mask size
  EXPECT_FALSE(CheckKSafety(cls, a, {true, true}, -1).ok()); // negative k
}

}  // namespace
}  // namespace qcap
