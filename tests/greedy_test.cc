#include "alloc/greedy.h"

#include <gtest/gtest.h>

#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/journal_synth.h"

namespace qcap {
namespace {

TEST(GreedyTest, SingleBackendGetsEverything) {
  const Classification cls = testutil::AppendixAClassification();
  GreedyAllocator greedy;
  auto result = greedy.Allocate(cls, HomogeneousBackends(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Allocation& a = result.value();
  EXPECT_TRUE(ValidateAllocation(cls, a, HomogeneousBackends(1)).ok());
  EXPECT_EQ(a.BackendFragments(0), (FragmentSet{0, 1, 2}));
  EXPECT_NEAR(a.AssignedLoad(0), 1.0, 1e-9);
}

TEST(GreedyTest, Figure2TwoBackendsOptimal) {
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(2);
  auto result = greedy.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Allocation& a = result.value();
  EXPECT_TRUE(ValidateAllocation(cls, a, backends).ok())
      << ValidateAllocation(cls, a, backends).ToString();
  // Perfect speedup of 2 with only one replicated relation (r = 4/3).
  EXPECT_NEAR(Speedup(a, backends), 2.0, 1e-9);
  EXPECT_NEAR(DegreeOfReplication(a, cls.catalog), 4.0 / 3.0, 1e-9);
}

TEST(GreedyTest, Figure2FourBackendsPerfectSpeedup) {
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(4);
  auto result = greedy.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Allocation& a = result.value();
  EXPECT_TRUE(ValidateAllocation(cls, a, backends).ok());
  EXPECT_NEAR(Speedup(a, backends), 4.0, 1e-9);
  // The paper's 4-backend solution replicates only two tables: r = 5/3.
  EXPECT_LE(DegreeOfReplication(a, cls.catalog), 5.0 / 3.0 + 1e-9);
}

TEST(GreedyTest, AppendixAHeterogeneousTrace) {
  // The worked example: final allocation matrix
  //   B1={A,B}, B2={B,C}, B3={A}, B4={C}
  // with loads 37.2 / 37.2 / 20.8 / 24.8 and scale 1.24.
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  GreedyAllocator greedy;
  auto result = greedy.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Allocation& a = result.value();
  EXPECT_TRUE(ValidateAllocation(cls, a, backends).ok())
      << ValidateAllocation(cls, a, backends).ToString();

  EXPECT_EQ(a.BackendFragments(0), (FragmentSet{0, 1}));  // B1 = {A,B}.
  EXPECT_EQ(a.BackendFragments(1), (FragmentSet{1, 2}));  // B2 = {B,C}.
  EXPECT_EQ(a.BackendFragments(2), (FragmentSet{0}));     // B3 = {A}.
  EXPECT_EQ(a.BackendFragments(3), (FragmentSet{2}));     // B4 = {C}.

  // Load matrix row sums from the appendix.
  EXPECT_NEAR(a.AssignedLoad(0), 0.372, 1e-9);
  EXPECT_NEAR(a.AssignedLoad(1), 0.372, 1e-9);
  EXPECT_NEAR(a.AssignedLoad(2), 0.208, 1e-9);
  EXPECT_NEAR(a.AssignedLoad(3), 0.248, 1e-9);

  // Individual entries: Q4 fully on B1; U2 on B1 and B2; Q1 split
  // 7.2%/16.8% over B1/B3; Q3 split 1.2%/18.8% over B2/B4.
  EXPECT_NEAR(a.read_assign(0, 3), 0.16, 1e-9);
  EXPECT_NEAR(a.update_assign(0, 1), 0.10, 1e-9);
  EXPECT_NEAR(a.update_assign(1, 1), 0.10, 1e-9);
  EXPECT_NEAR(a.read_assign(0, 0), 0.072, 1e-9);
  EXPECT_NEAR(a.read_assign(2, 0), 0.168, 1e-9);
  EXPECT_NEAR(a.read_assign(1, 2), 0.012, 1e-9);
  EXPECT_NEAR(a.read_assign(3, 2), 0.188, 1e-9);

  EXPECT_NEAR(Scale(a, backends), 1.24, 1e-9);
}

TEST(GreedyTest, UpdateOnlyClassAllocatedOnce) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.8, 1.0, false, "Q1", {}}};
  cls.updates = {QueryClass{{1}, 0.2, 1.0, true, "U1", {}}};  // No read on B.
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(3);
  auto result = greedy.Allocate(cls, backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends).ok());
  // The pure-update class lands on exactly one backend.
  size_t replicas = 0;
  for (size_t b = 0; b < 3; ++b) {
    if (result->update_assign(b, 0) > 0.0) ++replicas;
  }
  EXPECT_EQ(replicas, 1u);
}

TEST(GreedyTest, OrphanFragmentsArePlaced) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("unused", "U", FragmentKind::kTable, 5.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 1.0, false, "Q1", {}}};
  GreedyAllocator greedy;
  auto result = greedy.Allocate(cls, HomogeneousBackends(2));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->ReplicaCount(1), 1u);
  EXPECT_TRUE(
      ValidateAllocation(cls, result.value(), HomogeneousBackends(2)).ok());
}

TEST(GreedyTest, HeavyClassSpreadsAcrossBackends) {
  // One class with 100% weight must be replicated to use the cluster.
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 1.0, false, "Q1", {}}};
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(4);
  auto result = greedy.Allocate(cls, backends);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends).ok());
  EXPECT_NEAR(Speedup(result.value(), backends), 4.0, 1e-6);
  EXPECT_EQ(result->ReplicaCount(0), 4u);
}

TEST(GreedyTest, RejectsInvalidInput) {
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  EXPECT_FALSE(greedy.Allocate(cls, {}).ok());
  Classification bad = cls;
  bad.reads[0].weight = 2.0;
  EXPECT_FALSE(greedy.Allocate(bad, HomogeneousBackends(2)).ok());
}

TEST(GreedyTest, ReadOnlySpeedupAlwaysPerfect) {
  // Read-only workloads reach |B| speedup for any class structure, since
  // classes can be split freely (Section 3.2.1).
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  for (size_t n = 1; n <= 8; ++n) {
    const auto backends = HomogeneousBackends(n);
    auto result = greedy.Allocate(cls, backends);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_TRUE(ValidateAllocation(cls, result.value(), backends).ok())
        << "n=" << n;
    EXPECT_NEAR(Speedup(result.value(), backends), static_cast<double>(n),
                1e-6)
        << "n=" << n;
  }
}

TEST(GreedyTest, SpeedupRespectsTheoreticalBound) {
  const Classification cls = testutil::AppendixAClassification();
  GreedyAllocator greedy;
  const double bound = TheoreticalMaxSpeedup(cls);
  for (size_t n = 1; n <= 8; ++n) {
    const auto backends = HomogeneousBackends(n);
    auto result = greedy.Allocate(cls, backends);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(Speedup(result.value(), backends), bound + 1e-6);
  }
}

/// Property sweep: random workloads at several cluster sizes always yield
/// valid allocations.
class GreedyPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(GreedyPropertySweep, ProducesValidAllocations) {
  const auto [seed, n] = GetParam();
  const auto workload = workloads::MakeRandomWorkload(seed);
  Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(workload.journal);
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(n);
  auto result = greedy.Allocate(cls.value(), backends);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Status valid = ValidateAllocation(cls.value(), result.value(), backends);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_GE(Scale(result.value(), backends), 1.0 - 1e-12);
  EXPECT_LE(DegreeOfReplication(result.value(), cls->catalog),
            static_cast<double>(n) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Random, GreedyPropertySweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 11),
                       ::testing::Values<size_t>(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace qcap
