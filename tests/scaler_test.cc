#include "autonomic/scaler.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "workload/classifier.h"

namespace qcap {
namespace {

struct ScalerFixture {
  engine::Catalog catalog = workloads::TraceCatalog();
  Classification cls;

  ScalerFixture() {
    Classifier classifier(catalog, {Granularity::kTable, 4, true});
    QueryJournal journal = workloads::TraceJournal(20000, 3);
    auto result = classifier.Classify(journal);
    EXPECT_TRUE(result.ok());
    cls = std::move(result).value();
  }
};

AutonomicConfig FastConfig() {
  AutonomicConfig config;
  config.slice_seconds = 4.0;
  config.max_nodes = 5;
  // Simulated backends are fast: scale the trace up and react just above
  // the uncongested response time (same tuning as the bench).
  config.trace_multiplier = 150.0;
  config.scale_up_response_ms = 14.0;
  config.scale_down_utilization = 0.35;
  config.sim.cost_params.memory_bytes = 1e12;
  config.sim.servers_per_backend = 2;
  return config;
}

TEST(ScalerTest, ScalesUpUnderLoadAndDownAtNight) {
  ScalerFixture fx;
  GreedyAllocator greedy;
  AutonomicScaler scaler(fx.cls, &greedy, FastConfig());
  const auto day = workloads::SampleDay(3);
  auto result = scaler.Replay(day);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), day.size());

  size_t min_nodes = 100, max_nodes = 0;
  for (const auto& step : result->steps) {
    min_nodes = std::min(min_nodes, step.nodes);
    max_nodes = std::max(max_nodes, step.nodes);
  }
  EXPECT_EQ(min_nodes, 1u);  // Night trough runs on one node.
  EXPECT_GT(max_nodes, 2u);  // Daytime peak grows the cluster.

  // Night bucket (4 am) uses fewer nodes than the evening peak (7 pm).
  const auto& night = result->steps[4 * 6];
  const auto& evening = result->steps[19 * 6];
  EXPECT_LT(night.nodes, evening.nodes);
}

TEST(ScalerTest, FixedClusterDoesNotScale) {
  ScalerFixture fx;
  GreedyAllocator greedy;
  AutonomicScaler scaler(fx.cls, &greedy, FastConfig());
  const auto day = workloads::SampleDay(3);
  auto result = scaler.Replay(day, /*fixed_nodes=*/5);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_EQ(step.nodes, 5u);
    EXPECT_DOUBLE_EQ(step.moved_bytes, 0.0);
  }
}

TEST(ScalerTest, AutonomicUsesFewerNodeSecondsThanStaticMax) {
  ScalerFixture fx;
  GreedyAllocator greedy;
  AutonomicScaler scaler(fx.cls, &greedy, FastConfig());
  const auto day = workloads::SampleDay(3);
  auto autonomic = scaler.Replay(day);
  auto fixed = scaler.Replay(day, 5);
  ASSERT_TRUE(autonomic.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_LT(autonomic->node_seconds, 0.8 * fixed->node_seconds);
}

TEST(ScalerTest, ResizesReportMovedBytes) {
  ScalerFixture fx;
  GreedyAllocator greedy;
  AutonomicScaler scaler(fx.cls, &greedy, FastConfig());
  const auto day = workloads::SampleDay(3);
  auto result = scaler.Replay(day);
  ASSERT_TRUE(result.ok());
  double total_moved = 0.0;
  for (const auto& step : result->steps) total_moved += step.moved_bytes;
  EXPECT_GT(total_moved, 0.0);  // At least one resize happened.
}

TEST(ScalerTest, RejectsBadInput) {
  ScalerFixture fx;
  GreedyAllocator greedy;
  AutonomicScaler scaler(fx.cls, &greedy, FastConfig());
  EXPECT_FALSE(scaler.Replay({}).ok());
  AutonomicScaler null_scaler(fx.cls, nullptr, FastConfig());
  EXPECT_FALSE(null_scaler.Replay(workloads::SampleDay(1)).ok());
}

}  // namespace
}  // namespace qcap
