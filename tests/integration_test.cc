// End-to-end integration tests: classify -> allocate -> validate ->
// simulate, checking the qualitative results the paper reports.
#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "alloc/random_allocator.h"
#include "cluster/simulator.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

struct Pipeline {
  Classification cls;
  Allocation alloc;
  std::vector<BackendSpec> backends;
};

Result<Pipeline> RunPipeline(const engine::Catalog& catalog,
                             const QueryJournal& journal,
                             Granularity granularity, Allocator* allocator,
                             size_t nodes) {
  Classifier classifier(catalog, {granularity, 4, true});
  QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(journal));
  std::vector<BackendSpec> backends = HomogeneousBackends(nodes);
  QCAP_ASSIGN_OR_RETURN(Allocation alloc, allocator->Allocate(cls, backends));
  QCAP_RETURN_NOT_OK(ValidateAllocation(cls, alloc, backends));
  return Pipeline{std::move(cls), std::move(alloc), std::move(backends)};
}

Result<double> SimulatedThroughput(const Pipeline& p, uint64_t requests,
                                   uint64_t seed,
                                   double memory_bytes = 2.0e9) {
  SimulationConfig config;
  config.cost_params.memory_bytes = memory_bytes;
  config.seed = seed;
  config.servers_per_backend = 2;
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(p.cls, p.alloc, p.backends, config));
  QCAP_ASSIGN_OR_RETURN(SimStats stats,
                        sim.RunClosed(requests, 4 * p.backends.size()));
  return stats.throughput;
}

TEST(IntegrationTest, TpchAllStrategiesValidOn1To10Backends) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  FullReplicationAllocator full;
  GreedyAllocator greedy;
  RandomAllocator random(99);
  for (Allocator* a :
       std::initializer_list<Allocator*>{&full, &greedy, &random}) {
    for (size_t n : {1, 4, 10}) {
      auto p = RunPipeline(catalog, journal, Granularity::kColumn, a, n);
      ASSERT_TRUE(p.ok()) << a->name() << " n=" << n << ": "
                          << p.status().ToString();
    }
  }
}

TEST(IntegrationTest, TpchPartialReplicationSavesStorage) {
  // The headline claim: storage reduced by ~65% versus full replication at
  // 10 backends (r = 3.5 vs 10 for column-based allocation).
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  GreedyAllocator greedy;
  auto p = RunPipeline(catalog, journal, Granularity::kColumn, &greedy, 10);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const double r = DegreeOfReplication(p->alloc, p->cls.catalog);
  EXPECT_LT(r, 10.0 * 0.45);  // At least 55% below full replication.
  EXPECT_GE(r, 1.0);
  // Throughput-optimal: model speedup 10 on the read-only workload.
  EXPECT_NEAR(Speedup(p->alloc, p->backends), 10.0, 1e-6);
}

TEST(IntegrationTest, TpchTableBasedStoresMoreThanColumnBased) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  GreedyAllocator greedy;
  auto table = RunPipeline(catalog, journal, Granularity::kTable, &greedy, 10);
  auto column =
      RunPipeline(catalog, journal, Granularity::kColumn, &greedy, 10);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(column.ok());
  const double r_table = DegreeOfReplication(table->alloc, table->cls.catalog);
  const double r_column =
      DegreeOfReplication(column->alloc, column->cls.catalog);
  EXPECT_LT(r_column, r_table);
  // Table-based still uses > 80% of full replication's storage at TPC-H
  // (fact tables referenced everywhere).
  EXPECT_GT(r_table, 0.6 * 10.0);
}

TEST(IntegrationTest, TpchColumnBeatsFullReplicationInSimulation) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(5000);
  GreedyAllocator greedy;
  FullReplicationAllocator full;
  auto column =
      RunPipeline(catalog, journal, Granularity::kColumn, &greedy, 8);
  auto fullrep =
      RunPipeline(catalog, journal, Granularity::kTable, &full, 8);
  ASSERT_TRUE(column.ok());
  ASSERT_TRUE(fullrep.ok());
  auto t_column = SimulatedThroughput(column.value(), 3000, 1);
  auto t_full = SimulatedThroughput(fullrep.value(), 3000, 1);
  ASSERT_TRUE(t_column.ok());
  ASSERT_TRUE(t_full.ok());
  // Column-based specialization wins (better caching + smaller scans).
  EXPECT_GT(t_column.value(), t_full.value());
}

TEST(IntegrationTest, TpchRandomAllocationUnderperformsGreedy) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(5000);
  GreedyAllocator greedy;
  RandomAllocator random(1234);
  auto g = RunPipeline(catalog, journal, Granularity::kColumn, &greedy, 8);
  auto r = RunPipeline(catalog, journal, Granularity::kColumn, &random, 8);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(r.ok());
  auto tg = SimulatedThroughput(g.value(), 3000, 1);
  auto tr = SimulatedThroughput(r.value(), 3000, 1);
  ASSERT_TRUE(tg.ok());
  ASSERT_TRUE(tr.ok());
  EXPECT_GT(tg.value(), 1.5 * tr.value());
}

TEST(IntegrationTest, TpcAppPartialReplicationBeatsFullReplication) {
  // The update-heavy workload: the paper reports a 2.4x advantage at 10
  // backends; we require a clear win. The full allocation pipeline is
  // greedy + memetic improvement (Algorithm 1 seeding Algorithm 2).
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(50000);
  MemeticOptions mopts;
  mopts.iterations = 30;
  mopts.population_size = 9;
  MemeticAllocator memetic(mopts);
  FullReplicationAllocator full;
  auto g = RunPipeline(catalog, journal, Granularity::kTable, &memetic, 10);
  auto f = RunPipeline(catalog, journal, Granularity::kTable, &full, 10);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_TRUE(f.ok());
  // Model speedups: the partial allocation escapes the 25% serial bound.
  const double partial_speedup = Speedup(g->alloc, g->backends);
  const double full_amdahl = AmdahlFullReplicationSpeedup(g->cls, 10);
  EXPECT_GT(partial_speedup, 1.5 * full_amdahl);

  auto tg = SimulatedThroughput(g.value(), 20000, 1);
  auto tf = SimulatedThroughput(f.value(), 20000, 1);
  ASSERT_TRUE(tg.ok());
  ASSERT_TRUE(tf.ok());
  EXPECT_GT(tg.value(), 1.5 * tf.value());
}

TEST(IntegrationTest, TpcAppSpeedupNearTheoreticalBound) {
  // Eq. 30: order_line writes (~13%) bound the speedup at |B|/1.3 = 7.7.
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(50000);
  GreedyAllocator greedy;
  MemeticOptions mopts;
  mopts.iterations = 30;
  mopts.population_size = 9;
  MemeticAllocator memetic(mopts);
  auto g = RunPipeline(catalog, journal, Granularity::kTable, &greedy, 10);
  auto m = RunPipeline(catalog, journal, Granularity::kTable, &memetic, 10);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(m.ok());
  const double bound = TheoreticalMaxSpeedup(m->cls);
  const double memetic_speedup = Speedup(m->alloc, m->backends);
  EXPECT_LE(memetic_speedup, bound + 1e-6);
  EXPECT_GT(memetic_speedup, 0.70 * bound);  // "close to the theoretical max".
  // The greedy seed alone is weaker but must still beat the full
  // replication Amdahl ceiling.
  EXPECT_GT(Speedup(g->alloc, g->backends),
            AmdahlFullReplicationSpeedup(g->cls, 10));
}

}  // namespace
}  // namespace qcap
