#include "model/json_export.h"

#include <stack>

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "test_util.h"

namespace qcap {
namespace {

/// Structural sanity: braces/brackets balance and quotes pair up outside
/// of escapes. Not a full parser, but catches malformed output.
bool LooksLikeValidJson(const std::string& s) {
  std::stack<char> nesting;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip escaped character.
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': nesting.push('}'); break;
      case '[': nesting.push(']'); break;
      case '}':
      case ']':
        if (nesting.empty() || nesting.top() != c) return false;
        nesting.pop();
        break;
      default: break;
    }
  }
  return !in_string && nesting.empty();
}

TEST(JsonExportTest, EscapeHandlesSpecials) {
  using json_internal::Escape;
  EXPECT_EQ(Escape("plain"), "plain");
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonExportTest, ClassificationJsonIsWellFormed) {
  const Classification cls = testutil::AppendixAClassification();
  const std::string json = ClassificationToJson(cls);
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("\"label\":\"Q1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"update\""), std::string::npos);
  EXPECT_NE(json.find("\"weight\":0.24"), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\":3"), std::string::npos);
}

TEST(JsonExportTest, AllocationJsonCarriesMetricsAndBackends) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = testutil::AppendixABackends();
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  const std::string json = AllocationToJson(cls, alloc.value(), backends);
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("\"scale\":1.24"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"B1\""), std::string::npos);
  EXPECT_NE(json.find("\"replica_histogram\":["), std::string::npos);
  // Q4 fully assigned to B1 at 16%.
  EXPECT_NE(json.find("\"Q4\":0.16"), std::string::npos);
  // Update pinning serialized.
  EXPECT_NE(json.find("\"U2\":0.1"), std::string::npos);
}

TEST(JsonExportTest, EmptyAssignmentsSerializeAsEmptyObjects) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(2, 3, 4, 0);
  a.PlaceSet(0, {0, 1, 2});
  for (size_t r = 0; r < 4; ++r) a.set_read_assign(0, r, cls.reads[r].weight);
  a.Place(1, 0);
  const std::string json =
      AllocationToJson(cls, a, HomogeneousBackends(2));
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("\"read_assign\":{}"), std::string::npos);
}

}  // namespace
}  // namespace qcap
