#include "cluster/simulator.h"

#include <gtest/gtest.h>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "cluster/backend_node.h"
#include "test_util.h"

namespace qcap {
namespace {

SimulationConfig LightConfig(uint64_t seed = 1) {
  SimulationConfig config;
  config.cost_params.memory_bytes = 1e12;  // Disable cache effects.
  config.servers_per_backend = 1;
  config.seed = seed;
  return config;
}

TEST(BackendNodeTest, QueueAndServers) {
  BackendNode node(2);
  EXPECT_EQ(node.pending(), 0u);
  node.Enqueue(BackendTask{0, 1.0, 0.0});
  node.Enqueue(BackendTask{1, 1.0, 0.0});
  node.Enqueue(BackendTask{2, 1.0, 0.0});
  EXPECT_EQ(node.pending(), 3u);
  BackendTask task;
  double completion;
  ASSERT_TRUE(node.StartNext(0.0, &task, &completion));
  EXPECT_DOUBLE_EQ(completion, 1.0);
  ASSERT_TRUE(node.StartNext(0.0, &task, &completion));
  EXPECT_DOUBLE_EQ(completion, 1.0);  // Second server.
  EXPECT_FALSE(node.CanStart(0.0));   // Both busy.
  EXPECT_TRUE(node.CanStart(1.0));
  node.FinishOne(1.0);
  EXPECT_EQ(node.pending(), 2u);
  EXPECT_DOUBLE_EQ(node.busy_seconds(), 1.0);
}

TEST(SimulatorTest, SingleBackendThroughputMatchesServiceTime) {
  // One backend, one read class with mean cost 10ms and no io scaling:
  // throughput ~ 1/service.
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 0.010, false, "Q1", {}}};
  Allocation a(1, 1, 1, 0);
  a.Place(0, 0);
  a.set_read_assign(0, 0, 1.0);
  auto sim = ClusterSimulator::Create(cls, a, HomogeneousBackends(1),
                                      LightConfig());
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  auto stats = sim->RunClosed(2000, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed_total(), 2000u);
  EXPECT_NEAR(stats->throughput, 100.0, 5.0);
}

TEST(SimulatorTest, ReadOnlyFullReplicationScalesLinearly) {
  const Classification cls = testutil::Figure2Classification();
  FullReplicationAllocator full;
  std::vector<double> throughput;
  for (size_t n : {1, 4}) {
    const auto backends = HomogeneousBackends(n);
    auto alloc = full.Allocate(cls, backends);
    ASSERT_TRUE(alloc.ok());
    auto sim = ClusterSimulator::Create(cls, alloc.value(), backends,
                                        LightConfig());
    ASSERT_TRUE(sim.ok());
    auto stats = sim->RunClosed(4000, 4 * n);
    ASSERT_TRUE(stats.ok());
    throughput.push_back(stats->throughput);
  }
  EXPECT_NEAR(throughput[1] / throughput[0], 4.0, 0.4);
}

TEST(SimulatorTest, UpdatesFanOutButCountOnce) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.5, 0.01, false, "Q1", {}}};
  cls.updates = {QueryClass{{0}, 0.5, 0.01, true, "U1", {}}};
  // Two backends, both hold A -> every update runs on both.
  Allocation a(2, 1, 1, 1);
  a.Place(0, 0);
  a.Place(1, 0);
  a.set_read_assign(0, 0, 0.25);
  a.set_read_assign(1, 0, 0.25);
  a.set_update_assign(0, 0, 0.5);
  a.set_update_assign(1, 0, 0.5);
  const auto backends = HomogeneousBackends(2);
  auto sim = ClusterSimulator::Create(cls, a, backends, LightConfig());
  ASSERT_TRUE(sim.ok());
  auto stats = sim->RunClosed(1000, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed_total(), 1000u);
  EXPECT_GT(stats->completed_updates, 300u);
  // Updates ran on both backends: total busy time exceeds 1000 x 10ms.
  const double busy_total =
      stats->backend_busy_seconds[0] + stats->backend_busy_seconds[1];
  EXPECT_GT(busy_total, 1000 * 0.010 * 1.2);
}

TEST(SimulatorTest, SchedulerRejectsUnservableClass) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 0.01, false, "Q1", {}}};
  Allocation a(1, 1, 1, 0);  // A placed nowhere.
  auto sim =
      ClusterSimulator::Create(cls, a, HomogeneousBackends(1), LightConfig());
  EXPECT_FALSE(sim.ok());
}

TEST(SimulatorTest, DeterministicForSeed) {
  const Classification cls = testutil::Figure2Classification();
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(3);
  auto alloc = greedy.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  auto sim1 =
      ClusterSimulator::Create(cls, alloc.value(), backends, LightConfig(9));
  auto sim2 =
      ClusterSimulator::Create(cls, alloc.value(), backends, LightConfig(9));
  ASSERT_TRUE(sim1.ok());
  ASSERT_TRUE(sim2.ok());
  auto s1 = sim1->RunClosed(500, 6);
  auto s2 = sim2->RunClosed(500, 6);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_DOUBLE_EQ(s1->throughput, s2->throughput);
  EXPECT_DOUBLE_EQ(s1->avg_response_seconds, s2->avg_response_seconds);
}

TEST(SimulatorTest, OpenLoopLowLoadHasLowLatency) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 0.010, false, "Q1", {}}};
  Allocation a(1, 1, 1, 0);
  a.Place(0, 0);
  a.set_read_assign(0, 0, 1.0);
  auto sim = ClusterSimulator::Create(cls, a, HomogeneousBackends(1),
                                      LightConfig());
  ASSERT_TRUE(sim.ok());
  // 10% utilization: response ~ service time.
  auto stats = sim->RunOpen(100.0, 10.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->completed_total(), 800u);
  EXPECT_LT(stats->avg_response_seconds, 0.015);
}

TEST(SimulatorTest, OpenLoopOverloadDegradesLatency) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 1.0, 0.010, false, "Q1", {}}};
  Allocation a(1, 1, 1, 0);
  a.Place(0, 0);
  a.set_read_assign(0, 0, 1.0);
  auto make_sim = [&]() {
    return ClusterSimulator::Create(cls, a, HomogeneousBackends(1),
                                    LightConfig());
  };
  auto low = make_sim();
  auto high = make_sim();
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  auto low_stats = low->RunOpen(50.0, 20.0);
  auto high_stats = high->RunOpen(50.0, 300.0);  // 3x capacity.
  ASSERT_TRUE(low_stats.ok());
  ASSERT_TRUE(high_stats.ok());
  EXPECT_GT(high_stats->avg_response_seconds,
            5.0 * low_stats->avg_response_seconds);
}

TEST(SimulatorTest, RejectsBadRunArguments) {
  const Classification cls = testutil::Figure2Classification();
  FullReplicationAllocator full;
  const auto backends = HomogeneousBackends(2);
  auto alloc = full.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  auto sim =
      ClusterSimulator::Create(cls, alloc.value(), backends, LightConfig());
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim->RunClosed(0, 4).ok());
  EXPECT_FALSE(sim->RunClosed(10, 0).ok());
  EXPECT_FALSE(sim->RunOpen(-1.0, 10.0).ok());
  EXPECT_FALSE(sim->RunOpen(10.0, 0.0).ok());
}

TEST(SimulatorTest, RejectedDispatchDoesNotAdvanceTieRotation) {
  // Pins the tie-rotation fix: a dispatch that fails (every candidate of
  // the class dead) must not consume a rotation step, or each rejection
  // would silently shift every later tie-break. RA's two candidates tie
  // constantly; RB's only backend is crashed at t=0, so its requests are
  // all rejected. With rejections consuming rotation steps, RA's
  // alternation breaks and one backend collects about twice the work of
  // the other; with the fix the two stay within one service time.
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.5, 0.010, false, "RA", {}},
               QueryClass{{1}, 0.5, 0.010, false, "RB", {}}};
  Allocation a(3, 2, 2, 0);
  a.Place(0, 0);  // b0: A.
  a.Place(1, 0);  // b1: A.
  a.Place(2, 1);  // b2: B.
  SimulationConfig config = LightConfig();
  config.fault_plan.events = {FaultEvent{FaultEvent::Kind::kCrash, 0.0, 2}};
  config.retry.max_attempts = 1;
  auto sim =
      ClusterSimulator::Create(cls, a, HomogeneousBackends(3), config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  auto stats = sim->RunClosed(400, 1);
  ASSERT_TRUE(stats.ok());
  // The crashed class really was offered and rejected throughout the run.
  EXPECT_GT(stats->rejected_requests, 50u);
  ASSERT_EQ(stats->backend_busy_seconds.size(), 3u);
  EXPECT_NEAR(stats->backend_busy_seconds[0], stats->backend_busy_seconds[1],
              0.010 + 1e-12);
}

TEST(SimStatsTest, BusyBalanceDeviation) {
  SimStats stats;
  stats.backend_busy_seconds = {10.0, 10.0};
  EXPECT_NEAR(stats.BusyBalanceDeviation({0.5, 0.5}), 0.0, 1e-12);
  stats.backend_busy_seconds = {20.0, 0.0};
  EXPECT_NEAR(stats.BusyBalanceDeviation({0.5, 0.5}), 1.0, 1e-12);
}

TEST(SimStatsTest, ToStringMentionsThroughput) {
  SimStats stats;
  stats.throughput = 123.4;
  EXPECT_NE(stats.ToString().find("123.4"), std::string::npos);
}

}  // namespace
}  // namespace qcap
