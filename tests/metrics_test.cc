#include "model/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace qcap {
namespace {

/// Builds the paper's two-backend Figure 2 solution: B1={A,B} serving
/// C1+C4 (50%), B2={B,C} serving C2+C3 (50%).
Allocation Figure2TwoBackends(const Classification& cls) {
  Allocation a(2, cls.catalog.size(), cls.reads.size(), cls.updates.size());
  a.PlaceSet(0, {0, 1});
  a.PlaceSet(1, {1, 2});
  a.set_read_assign(0, 0, 0.30);  // C1.
  a.set_read_assign(0, 3, 0.20);  // C4.
  a.set_read_assign(1, 1, 0.25);  // C2.
  a.set_read_assign(1, 2, 0.25);  // C3.
  return a;
}

TEST(MetricsTest, Figure2TwoBackendSpeedupIsTwo) {
  const Classification cls = testutil::Figure2Classification();
  const Allocation a = Figure2TwoBackends(cls);
  const auto backends = HomogeneousBackends(2);
  EXPECT_NEAR(Scale(a, backends), 1.0, 1e-12);
  EXPECT_NEAR(Speedup(a, backends), 2.0, 1e-12);
  EXPECT_NEAR(BalanceDeviation(a, backends), 0.0, 1e-12);
  // Only B is replicated: 4 units stored over 3 units of data.
  EXPECT_NEAR(DegreeOfReplication(a, cls.catalog), 4.0 / 3.0, 1e-12);
}

TEST(MetricsTest, Figure2FourBackendSolution) {
  // B1: C1 25%; B2: C1 5% + C4 20%; B3: C2 25%; B4: C2 5% + C3 25%...
  // (the paper's table: B4 serves C2 5% and C3 25%? B4 overall is 25%+5%).
  const Classification cls = testutil::Figure2Classification();
  Allocation a(4, 3, 4, 0);
  a.Place(0, 0);            // B1: {A}
  a.PlaceSet(1, {0, 1});    // B2: {A,B}
  a.Place(2, 1);            // B3: {B}
  a.PlaceSet(3, {1, 2});    // B4: {B,C} (C2 spillover needs B).
  a.set_read_assign(0, 0, 0.25);
  a.set_read_assign(1, 0, 0.05);
  a.set_read_assign(1, 3, 0.20);
  a.set_read_assign(2, 1, 0.25);
  a.set_read_assign(3, 1, 0.05);
  a.set_read_assign(3, 2, 0.25);
  // B4 is at 30% > 25%: scale = 0.30/0.25 = 1.2 -> this variant is not
  // perfectly balanced; rebalance C3 weight to match the paper's table.
  a.set_read_assign(3, 2, 0.20);
  a.set_read_assign(2, 2, 0.0);
  // Remaining 5% of C3 has to go somewhere C lives; give B4's C2 share to
  // B3 and keep C3 fully on B4.
  a.set_read_assign(3, 1, 0.0);
  a.set_read_assign(2, 1, 0.25);
  a.set_read_assign(3, 2, 0.25);
  const auto backends = HomogeneousBackends(4);
  EXPECT_NEAR(Scale(a, backends), 1.0, 1e-9);
  EXPECT_NEAR(Speedup(a, backends), 4.0, 1e-9);
}

TEST(MetricsTest, ScaleFloorsAtOne) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(4, 3, 4, 0);
  a.PlaceSet(0, {0, 1, 2});
  a.set_read_assign(0, 0, 0.30);  // Underloaded cluster.
  const auto backends = HomogeneousBackends(4);
  EXPECT_DOUBLE_EQ(Scale(a, backends), 1.2);  // 0.3 / 0.25.
}

TEST(MetricsTest, HeterogeneousScale) {
  const Classification cls = testutil::AppendixAClassification();
  Allocation a(4, 3, 4, 3);
  a.PlaceSet(0, {0, 1});
  a.set_read_assign(0, 3, 0.16);
  a.set_update_assign(0, 0, 0.04);
  a.set_update_assign(0, 1, 0.10);
  const auto backends = testutil::AppendixABackends();
  // B1 carries 0.30 at load 0.30 -> scale 1.
  EXPECT_NEAR(Scale(a, backends), 1.0, 1e-12);
}

TEST(MetricsTest, AppendixAFinalAllocationSpeedup) {
  // The paper's final heterogeneous allocation reaches scaledLoad 0.372 on
  // B1/B2 -> scale 1.24 -> speedup 4 / 1.24.
  const Classification cls = testutil::AppendixAClassification();
  Allocation a(4, 3, 4, 3);
  a.PlaceSet(0, {0, 1});
  a.PlaceSet(1, {1, 2});
  a.Place(2, 0);
  a.Place(3, 2);
  // B1: Q1 7.2%, Q4 16%, U1 4%, U2 10%.
  a.set_read_assign(0, 0, 0.072);
  a.set_read_assign(0, 3, 0.16);
  a.set_update_assign(0, 0, 0.04);
  a.set_update_assign(0, 1, 0.10);
  // B2: Q2 20%, Q3 1.2%, U2 10%, U3 6%.
  a.set_read_assign(1, 1, 0.20);
  a.set_read_assign(1, 2, 0.012);
  a.set_update_assign(1, 1, 0.10);
  a.set_update_assign(1, 2, 0.06);
  // B3: Q1 16.8%, U1 4%.
  a.set_read_assign(2, 0, 0.168);
  a.set_update_assign(2, 0, 0.04);
  // B4: Q3 18.8%, U3 6%.
  a.set_read_assign(3, 2, 0.188);
  a.set_update_assign(3, 2, 0.06);
  const auto backends = testutil::AppendixABackends();
  EXPECT_NEAR(Scale(a, backends), 1.24, 1e-9);
  EXPECT_NEAR(Speedup(a, backends), 4.0 / 1.24, 1e-9);
}

TEST(MetricsTest, TheoreticalMaxSpeedupReadOnlyIsInfinite) {
  const Classification cls = testutil::Figure2Classification();
  EXPECT_TRUE(std::isinf(TheoreticalMaxSpeedup(cls)));
}

TEST(MetricsTest, TheoreticalMaxSpeedupAppendixA) {
  const Classification cls = testutil::AppendixAClassification();
  // Q4 overlaps U1+U2 = 14%, the maximum -> bound 1/0.14.
  EXPECT_NEAR(TheoreticalMaxSpeedup(cls), 1.0 / 0.14, 1e-9);
}

TEST(MetricsTest, AmdahlMatchesPaperEquation29) {
  // TPC-App: 25% update weight, 10 backends -> 3.07 (Eq. 29).
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("t", "t", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.75, 1.0, false, "R", {}}};
  cls.updates = {QueryClass{{0}, 0.25, 1.0, true, "U", {}}};
  EXPECT_NEAR(AmdahlFullReplicationSpeedup(cls, 10), 3.0769, 1e-3);
  EXPECT_NEAR(AmdahlFullReplicationSpeedup(cls, 1), 1.0, 1e-12);
}

TEST(MetricsTest, DegreeOfReplicationFullReplication) {
  const Classification cls = testutil::Figure2Classification();
  for (size_t n : {1, 2, 5}) {
    Allocation a(n, 3, 4, 0);
    for (size_t b = 0; b < n; ++b) a.PlaceSet(b, {0, 1, 2});
    EXPECT_NEAR(DegreeOfReplication(a, cls.catalog),
                static_cast<double>(n), 1e-12);
  }
}

TEST(MetricsTest, DegreeOfReplicationEmptyAllocation) {
  const Classification cls = testutil::Figure2Classification();
  Allocation a(3, 3, 4, 0);
  EXPECT_DOUBLE_EQ(DegreeOfReplication(a, cls.catalog), 0.0);
}

TEST(MetricsTest, BalanceDeviationIdleBackendNearOne) {
  Allocation a(2, 1, 1, 0);
  a.set_read_assign(0, 0, 1.0);
  const auto backends = HomogeneousBackends(2);
  // One loaded, one idle: avg = x/2, dev = x/2 / (x/2) = 1.
  EXPECT_NEAR(BalanceDeviation(a, backends), 1.0, 1e-12);
}

TEST(MetricsTest, ReplicationHistogram) {
  Allocation a(3, 4, 1, 0);
  a.Place(0, 0);
  a.Place(1, 0);
  a.Place(2, 0);  // Fragment 0: 3 replicas.
  a.Place(0, 1);  // Fragment 1: 1 replica.
  a.Place(1, 2);
  a.Place(2, 2);  // Fragment 2: 2 replicas.
  // Fragment 3: 0 replicas.
  const auto hist = ReplicationHistogram(a);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(MetricsTest, TableReplicationHistogramAggregates) {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("t.a", "t", FragmentKind::kColumn, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("t.b", "t", FragmentKind::kColumn, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("s.a", "s", FragmentKind::kColumn, 1.0).ok());
  Allocation a(2, 3, 0, 0);
  a.Place(0, 0);
  a.Place(1, 0);  // t.a on both.
  a.Place(0, 1);  // t.b on one.
  // s.a nowhere.
  const auto hist = TableReplicationHistogram(a, cls.catalog);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);  // s.
  EXPECT_EQ(hist[2], 1u);  // t (max over columns = 2).
}

}  // namespace
}  // namespace qcap
