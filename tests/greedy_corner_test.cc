// Corner cases of the greedy heuristic around the update-replication
// exclusion rule (the "misplacement" corner the paper reports in
// Section 4.2) and capacity-exceeding update classes.
#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "model/metrics.h"
#include "model/validation.h"

namespace qcap {
namespace {

/// One big updated table, a tiny read class on it, and independent reads.
/// The hot table must stay on few backends — replicating it a handful of
/// times can lower the peak (each replica shares the small read weight),
/// but uncontrolled spreading would pin the 15% update everywhere.
TEST(GreedyCornerTest, TinyReadClassConcentratesNextToHeavyUpdates) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("hot", "hot", FragmentKind::kTable, 2.0).ok());
  ASSERT_TRUE(cls.catalog.Add("cold", "cold", FragmentKind::kTable, 2.0).ok());
  cls.reads = {
      QueryClass{{1}, 0.82, 1.0, false, "Qcold", {}},
      QueryClass{{0}, 0.03, 1.0, false, "Qhot", {}},
  };
  cls.updates = {QueryClass{{0}, 0.15, 1.0, true, "Uhot", {}}};
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  auto a = greedy.Allocate(cls, backends);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, a.value(), backends).ok());
  // The hot table stays on a small subset of the cluster...
  EXPECT_LE(a->ReplicaCount(0), 4u);
  // ...and the hot backends bound the speedup near 1/0.15 = 6.67 (a single
  // exclusive replica would cap it at 1/0.18 = 5.6).
  EXPECT_GT(Speedup(a.value(), backends), 5.0);
}

/// When every read class is heavier than the update weight it drags, the
/// classes must spread (replicating updates is the price of parallelism),
/// not collapse onto one backend.
TEST(GreedyCornerTest, HeavyReadClassesSpreadDespiteUpdates) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("t", "t", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.85, 1.0, false, "Q", {}}};
  cls.updates = {QueryClass{{0}, 0.15, 1.0, true, "U", {}}};
  const auto backends = HomogeneousBackends(8);
  GreedyAllocator greedy;
  auto a = greedy.Allocate(cls, backends);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, a.value(), backends).ok());
  // The table must be replicated widely: a single backend would mean
  // speedup 1.
  EXPECT_GE(a->ReplicaCount(0), 4u);
  // Best possible: every backend pays 15%: speedup = 8 / (0.15*8 + 0.85).
  const double ideal = 8.0 / (0.15 * 8.0 + 0.85);
  EXPECT_GT(Speedup(a.value(), backends), 0.85 * ideal);
}

/// An update class whose weight alone exceeds one backend's fair share
/// still lands on exactly one backend (it can never be split).
TEST(GreedyCornerTest, OversizedUpdateClassStaysSingle) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("log", "log", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("data", "data", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{1}, 0.6, 1.0, false, "Q", {}}};
  cls.updates = {QueryClass{{0}, 0.4, 1.0, true, "U", {}}};
  const auto backends = HomogeneousBackends(6);
  GreedyAllocator greedy;
  auto a = greedy.Allocate(cls, backends);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, a.value(), backends).ok());
  EXPECT_EQ(a->ReplicaCount(0), 1u);
  // Speedup bound = 1 / 0.4.
  EXPECT_LE(Speedup(a.value(), backends), 2.5 + 1e-9);
  EXPECT_GT(Speedup(a.value(), backends), 2.0);
}

/// Zero-ish weight classes and many backends: no infinite loops, still
/// valid.
TEST(GreedyCornerTest, ManyTinyClassesTerminate) {
  Classification cls;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cls.catalog
                    .Add("t" + std::to_string(i), "t" + std::to_string(i),
                         FragmentKind::kTable, 0.5 + i)
                    .ok());
  }
  for (int i = 0; i < 20; ++i) {
    cls.reads.push_back(QueryClass{{static_cast<FragmentId>(i)},
                                   0.05, 1.0, false,
                                   "Q" + std::to_string(i), {}});
  }
  const auto backends = HomogeneousBackends(7);
  GreedyAllocator greedy;
  auto a = greedy.Allocate(cls, backends);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, a.value(), backends).ok());
  EXPECT_NEAR(Speedup(a.value(), backends), 7.0, 0.8);
}

/// Heterogeneous backends ordered ascending (opposite of the recommended
/// order) still produce valid allocations.
TEST(GreedyCornerTest, AscendingHeterogeneousStillValid) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.5, 1.0, false, "Q1", {}},
               QueryClass{{1}, 0.4, 1.0, false, "Q2", {}}};
  cls.updates = {QueryClass{{0}, 0.1, 1.0, true, "U1", {}}};
  auto backends = HeterogeneousBackends({0.1, 0.2, 0.3, 0.4});
  ASSERT_TRUE(backends.ok());
  GreedyAllocator greedy;
  auto a = greedy.Allocate(cls, backends.value());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(ValidateAllocation(cls, a.value(), backends.value()).ok());
}

}  // namespace
}  // namespace qcap
