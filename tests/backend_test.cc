#include "model/backend.h"

#include <gtest/gtest.h>

namespace qcap {
namespace {

TEST(BackendTest, HomogeneousSharesSumToOne) {
  for (size_t n : {1, 2, 3, 7, 10}) {
    const auto backends = HomogeneousBackends(n);
    ASSERT_EQ(backends.size(), n);
    double total = 0.0;
    for (const auto& b : backends) {
      EXPECT_DOUBLE_EQ(b.relative_load, 1.0 / static_cast<double>(n));
      total += b.relative_load;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_TRUE(ValidateBackends(backends).ok());
  }
}

TEST(BackendTest, HomogeneousNames) {
  const auto backends = HomogeneousBackends(3);
  EXPECT_EQ(backends[0].name, "B1");
  EXPECT_EQ(backends[2].name, "B3");
}

TEST(BackendTest, HeterogeneousNormalizes) {
  auto r = HeterogeneousBackends({3.0, 3.0, 2.0, 2.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value()[0].relative_load, 0.3, 1e-12);
  EXPECT_NEAR(r.value()[3].relative_load, 0.2, 1e-12);
  EXPECT_TRUE(ValidateBackends(r.value()).ok());
}

TEST(BackendTest, HeterogeneousRejectsEmpty) {
  EXPECT_FALSE(HeterogeneousBackends({}).ok());
}

TEST(BackendTest, HeterogeneousRejectsNonPositive) {
  EXPECT_FALSE(HeterogeneousBackends({1.0, 0.0}).ok());
  EXPECT_FALSE(HeterogeneousBackends({1.0, -2.0}).ok());
}

TEST(BackendTest, ValidateRejectsBadSum) {
  std::vector<BackendSpec> backends = {{0.5, "B1"}, {0.6, "B2"}};
  EXPECT_FALSE(ValidateBackends(backends).ok());
}

TEST(BackendTest, ValidateRejectsEmpty) {
  EXPECT_FALSE(ValidateBackends({}).ok());
}

TEST(BackendTest, ValidateRejectsZeroLoad) {
  std::vector<BackendSpec> backends = {{1.0, "B1"}, {0.0, "B2"}};
  EXPECT_FALSE(ValidateBackends(backends).ok());
}

}  // namespace
}  // namespace qcap
