#include "autonomic/segmentation.h"

#include <gtest/gtest.h>

#include "alloc/greedy.h"
#include "cluster/scheduler.h"
#include "workloads/trace.h"

namespace qcap {
namespace {

constexpr double kHour = 3600.0;

/// A synthetic two-phase day: query X dominates before noon, query Y after.
QueryJournal TwoPhaseJournal() {
  QueryJournal journal;
  const Query x = Query::Read("x", {"users"}, 0.01);
  const Query y = Query::Read("y", {"courses"}, 0.01);
  for (int h = 0; h < 12; ++h) {
    for (int i = 0; i < 90; ++i) journal.RecordAt(x, h * kHour + i * 40.0);
    for (int i = 0; i < 10; ++i)
      journal.RecordAt(y, h * kHour + i * 360.0 + 1.0);
  }
  for (int h = 12; h < 24; ++h) {
    for (int i = 0; i < 10; ++i)
      journal.RecordAt(x, h * kHour + i * 360.0 + 2.0);
    for (int i = 0; i < 90; ++i) journal.RecordAt(y, h * kHour + i * 40.0);
  }
  return journal;
}

TEST(SegmentationTest, WindowMixesShapes) {
  const QueryJournal journal = TwoPhaseJournal();
  auto mixes = WindowMixes(journal, kHour);
  ASSERT_TRUE(mixes.ok()) << mixes.status().ToString();
  ASSERT_GE(mixes->size(), 23u);
  // Early windows dominated by x (index 0), late by y (index 1).
  EXPECT_GT((*mixes)[2][0], 0.8);
  EXPECT_GT((*mixes)[20][1], 0.8);
}

TEST(SegmentationTest, TwoPhaseDayYieldsTwoSegments) {
  const QueryJournal journal = TwoPhaseJournal();
  SegmentationOptions options;
  auto segments = SegmentJournal(journal, options);
  ASSERT_TRUE(segments.ok()) << segments.status().ToString();
  EXPECT_EQ(segments->size(), 2u);
  EXPECT_NEAR((*segments)[0].end_seconds, 12.0 * kHour, kHour + 1.0);
}

TEST(SegmentationTest, StableMixOneSegment) {
  QueryJournal journal;
  const Query x = Query::Read("x", {"users"}, 0.01);
  for (int h = 0; h < 24; ++h) {
    for (int i = 0; i < 50; ++i) journal.RecordAt(x, h * kHour + i * 70.0);
  }
  auto segments = SegmentJournal(journal, {});
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 1u);
}

TEST(SegmentationTest, DiurnalTraceFindsFewSegments) {
  // The paper's example day decomposes into ~4 segments.
  const QueryJournal journal = workloads::TraceJournal(30000, 7);
  auto segments = SegmentJournal(journal, {});
  ASSERT_TRUE(segments.ok());
  EXPECT_GE(segments->size(), 2u);
  EXPECT_LE(segments->size(), 6u);
}

TEST(SegmentationTest, RequiresTimestamps) {
  QueryJournal journal;
  journal.Record(Query::Read("x", {"users"}), 100);
  EXPECT_FALSE(SegmentJournal(journal, {}).ok());
  EXPECT_FALSE(WindowMixes(journal, kHour).ok());
}

TEST(SegmentationTest, SegmentedAllocationServesEverySegment) {
  const engine::Catalog catalog = workloads::TraceCatalog();
  const QueryJournal journal = workloads::TraceJournal(30000, 7);
  auto segments = SegmentJournal(journal, {});
  ASSERT_TRUE(segments.ok());
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(3);
  const ClassifierOptions options{Granularity::kTable, 4, true};
  auto merged = SegmentedAllocation(journal, segments.value(), catalog,
                                    options, &greedy, backends);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Every segment's classification must be schedulable on the merged
  // placement without reallocation.
  Classifier classifier(catalog, options);
  for (const Segment& seg : segments.value()) {
    const QueryJournal slice = journal.Slice(seg.begin_seconds, seg.end_seconds);
    if (slice.empty()) continue;
    auto cls = classifier.Classify(slice);
    ASSERT_TRUE(cls.ok());
    auto reshaped = PlacementForClassification(merged.value(), cls.value());
    ASSERT_TRUE(reshaped.ok()) << reshaped.status().ToString();
    auto sched = Scheduler::Build(cls.value(), reshaped.value());
    EXPECT_TRUE(sched.ok()) << sched.status().ToString();
  }
}

TEST(SegmentationTest, PlacementReshapeSpreadsReads) {
  const engine::Catalog catalog = workloads::TraceCatalog();
  const QueryJournal journal = workloads::TraceJournal(10000, 3);
  const ClassifierOptions options{Granularity::kTable, 4, true};
  Classifier classifier(catalog, options);
  auto cls = classifier.Classify(journal);
  ASSERT_TRUE(cls.ok());
  // Full placement: every backend holds everything.
  Allocation full(2, cls->catalog.size(), cls->reads.size(),
                  cls->updates.size());
  for (size_t b = 0; b < 2; ++b) {
    for (FragmentId f = 0; f < cls->catalog.size(); ++f) full.Place(b, f);
  }
  auto reshaped = PlacementForClassification(full, cls.value());
  ASSERT_TRUE(reshaped.ok());
  for (size_t r = 0; r < cls->reads.size(); ++r) {
    EXPECT_NEAR(reshaped->TotalReadAssign(r), cls->reads[r].weight, 1e-9);
    EXPECT_NEAR(reshaped->read_assign(0, r), reshaped->read_assign(1, r),
                1e-9);
  }
}

}  // namespace
}  // namespace qcap
