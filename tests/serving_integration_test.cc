// End-to-end serving tests (docs/SERVING.md): spawn a real
// QueryRoutingServer on an ephemeral loopback port and exercise every
// documented verb and every documented error response over actual TCP
// sessions, check routing parity against direct Scheduler calls, and pin
// the STATS/METRICS accounting under concurrent clients.
#include "net/server.h"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "cluster/pending_index.h"
#include "cluster/scheduler.h"
#include "model/allocation.h"
#include "net/client.h"
#include "test_util.h"

namespace qcap::net {
namespace {

/// Appendix A workload on 4 backends: backend 0 holds everything,
/// backends 1..3 hold one relation each. Read candidates: R0{A}->{0,1},
/// R1{B}->{0,2}, R2{C}->{0,3}, R3{A,B}->{0}. Update targets mirror reads.
Allocation MakeAllocation() {
  Allocation alloc(4, 3, 4, 3);
  alloc.PlaceSet(0, {0, 1, 2});
  alloc.PlaceSet(1, {0});
  alloc.PlaceSet(2, {1});
  alloc.PlaceSet(3, {2});
  return alloc;
}

class ServingTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    cls_ = testutil::AppendixAClassification();
    alloc_ = MakeAllocation();
    auto server = QueryRoutingServer::Create(cls_, alloc_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static std::string Call(Client* client, const std::string& request) {
    auto reply = client->Call(request);
    EXPECT_TRUE(reply.ok()) << request << ": " << reply.status().ToString();
    return reply.ok() ? *reply : std::string();
  }

  Classification cls_;
  Allocation alloc_;
  std::unique_ptr<QueryRoutingServer> server_;
};

size_t ParseBackend(const std::string& reply) {
  EXPECT_EQ(reply.rfind("OK BACKEND ", 0), 0u) << reply;
  return static_cast<size_t>(std::stoul(reply.substr(11)));
}

TEST_F(ServingTest, HealthReportsTopology) {
  StartServer();
  Client client = Connect();
  const std::string reply = Call(&client, "HEALTH");
  EXPECT_EQ(reply.rfind("OK HEALTH backends=4 alive=4 read_classes=4 "
                        "update_classes=3 uptime_seconds=",
                        0),
            0u)
      << reply;
}

TEST_F(ServingTest, SubmitRoutesReadsLeastPendingFirst) {
  StartServer();
  Client client = Connect();
  // R3 = {A,B} is exclusively on backend 0.
  EXPECT_EQ(Call(&client, "SUBMIT R3"), "OK BACKEND 0");
  // Backend 0 now has depth 1, so R0 = {A} prefers the idle backend 1.
  EXPECT_EQ(Call(&client, "SUBMIT R0"), "OK BACKEND 1");
  // DONE drains the depth again.
  EXPECT_EQ(Call(&client, "DONE 0"), "OK DONE");
  EXPECT_EQ(Call(&client, "DONE 1"), "OK DONE");
  EXPECT_EQ(Call(&client, "DONE 1"), "OK DONE stale");
}

TEST_F(ServingTest, SubmitRoutesUpdatesToEveryReplica) {
  StartServer();
  Client client = Connect();
  // U0 = {A}: ROWA fan-out to backends 0 and 1.
  EXPECT_EQ(Call(&client, "SUBMIT U0"), "OK BACKENDS 0 1");
  EXPECT_EQ(Call(&client, "DONE 0"), "OK DONE");
  EXPECT_EQ(Call(&client, "DONE 1"), "OK DONE");
}

// The acceptance bar: the server's routing decisions are bit-identical to
// direct Scheduler calls for the same class sequence. Replays a 500-step
// deterministic SUBMIT/DONE mix through one session while mirroring the
// exact bookkeeping (pending depths, completion order) against a local
// Scheduler built from the same classification and allocation.
TEST_F(ServingTest, RoutingMatchesDirectSchedulerCalls) {
  StartServer();
  Client client = Connect();
  auto direct = Scheduler::Build(cls_, alloc_);
  ASSERT_TRUE(direct.ok());
  std::vector<size_t> pending(alloc_.num_backends(), 0);
  std::deque<size_t> outstanding;  // backends with un-acked work, FIFO
  for (int step = 0; step < 500; ++step) {
    const size_t r = static_cast<size_t>(step * 7 % 4);
    const size_t expected = direct->PickReadBackend(r, pending);
    ASSERT_NE(expected, PendingIndex::kNone);
    ++pending[expected];
    outstanding.push_back(expected);
    const size_t got =
        ParseBackend(Call(&client, "SUBMIT R" + std::to_string(r)));
    ASSERT_EQ(got, expected) << "diverged at step " << step;
    if (step % 3 == 2) {
      const size_t done = outstanding.front();
      outstanding.pop_front();
      --pending[done];
      ASSERT_EQ(Call(&client, "DONE " + std::to_string(done)), "OK DONE");
    }
  }
}

TEST_F(ServingTest, StatsCountersAddUpUnderConcurrentClients) {
  StartServer();
  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 200;
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([this, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(client.ok());
      for (size_t i = 0; i < kPerClient; ++i) {
        auto reply = client->Call("SUBMIT R" + std::to_string((c + i) % 4));
        ASSERT_TRUE(reply.ok());
        const size_t backend = ParseBackend(*reply);
        auto done = client->Call("DONE " + std::to_string(backend));
        ASSERT_TRUE(done.ok());
        ASSERT_EQ(done->rfind("OK DONE", 0), 0u);
      }
    });
  }
  for (auto& w : workers) w.join();

  // In-process snapshot and the STATS verb must agree with the offered load.
  const ServingCounters counters = server_->dispatcher().Snapshot();
  EXPECT_EQ(counters.reads_routed, kClients * kPerClient);
  EXPECT_EQ(counters.done_acks, kClients * kPerClient);
  for (size_t depth : counters.pending) EXPECT_EQ(depth, 0u);

  Client client = Connect();
  const std::string stats = Call(&client, "STATS");
  EXPECT_NE(stats.find(" reads=" + std::to_string(kClients * kPerClient)),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find(" pending=0,0,0,0"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" alive=1,1,1,1"), std::string::npos) << stats;
  EXPECT_EQ(server_->sessions_accepted(), kClients + 1);
}

TEST_F(ServingTest, FaultCrashRecoverLifecycle) {
  StartServer();
  Client client = Connect();
  // Crash backend 0: R3 = {A,B} lives only there.
  EXPECT_EQ(Call(&client, "FAULT CRASH 0"), "OK FAULT crashed 0");
  EXPECT_EQ(Call(&client, "SUBMIT R3"),
            "ERR UNSERVABLE no live backend holds R3's data");
  // R0 = {A} fails over to backend 1.
  EXPECT_EQ(Call(&client, "SUBMIT R0"), "OK BACKEND 1");
  // U0 = {A} commits on the surviving replica only.
  EXPECT_EQ(Call(&client, "SUBMIT U0"), "OK BACKENDS 1");
  // Crash the survivor too: now U0 has no live replica at all.
  EXPECT_EQ(Call(&client, "FAULT CRASH 1"), "OK FAULT crashed 1");
  EXPECT_EQ(Call(&client, "SUBMIT U0"),
            "ERR UNSERVABLE every replica of U0 is down");
  // Recovery rejoins with an empty queue and restores service.
  EXPECT_EQ(Call(&client, "FAULT RECOVER 0"), "OK FAULT recovered 0");
  EXPECT_EQ(Call(&client, "SUBMIT R3"), "OK BACKEND 0");
  const std::string health = Call(&client, "HEALTH");
  EXPECT_NE(health.find("alive=3"), std::string::npos) << health;
}

TEST_F(ServingTest, AdmissionControlRejectsOverBudgetSubmits) {
  ServerOptions options;
  options.limits.rate_limit_qps = 0.5;  // refills ~nothing within the test
  options.limits.rate_limit_burst = 2.0;
  StartServer(options);
  Client client = Connect();
  EXPECT_EQ(Call(&client, "SUBMIT R0"), "OK BACKEND 0");
  EXPECT_EQ(Call(&client, "SUBMIT R0"), "OK BACKEND 1");
  EXPECT_EQ(Call(&client, "SUBMIT R0"), "ERR RATE_LIMITED class=R0");
  // Other classes keep their own budget.
  EXPECT_EQ(Call(&client, "SUBMIT R1"), "OK BACKEND 2");
  const std::string stats = Call(&client, "STATS");
  EXPECT_NE(stats.find(" rejected=1"), std::string::npos) << stats;
}

TEST_F(ServingTest, EveryDocumentedErrorResponse) {
  StartServer();
  Client client = Connect();
  EXPECT_EQ(Call(&client, "FROBNICATE"),
            "ERR BAD_REQUEST unknown verb 'FROBNICATE'");
  EXPECT_EQ(Call(&client, ""), "ERR BAD_REQUEST empty request");
  EXPECT_EQ(Call(&client, "SUBMIT"), "ERR BAD_REQUEST usage: SUBMIT R<i>|U<j>");
  EXPECT_EQ(Call(&client, "SUBMIT X0"),
            "ERR BAD_REQUEST usage: SUBMIT R<i>|U<j>");
  EXPECT_EQ(Call(&client, "SUBMIT R99"),
            "ERR BAD_CLASS R99 out of range (have 4 reads, 3 updates)");
  EXPECT_EQ(Call(&client, "SUBMIT U3"),
            "ERR BAD_CLASS U3 out of range (have 4 reads, 3 updates)");
  EXPECT_EQ(Call(&client, "DONE"), "ERR BAD_REQUEST usage: DONE <backend>");
  EXPECT_EQ(Call(&client, "DONE 99"),
            "ERR BAD_BACKEND 99 out of range (have 4)");
  EXPECT_EQ(Call(&client, "FAULT CRASH"),
            "ERR BAD_REQUEST usage: FAULT CRASH|RECOVER <backend> | "
            "FAULT DEGRADE <backend> <factor>");
  EXPECT_EQ(Call(&client, "FAULT EXPLODE 1"),
            "ERR BAD_REQUEST usage: FAULT CRASH|RECOVER <backend> | "
            "FAULT DEGRADE <backend> <factor>");
  EXPECT_EQ(Call(&client, "FAULT CRASH 99"),
            "ERR BAD_BACKEND 99 out of range (have 4)");
  const std::string stats = Call(&client, "STATS");
  EXPECT_NE(stats.find(" bad=11"), std::string::npos) << stats;
}

TEST_F(ServingTest, OversizedFrameGetsErrorThenDisconnect) {
  ServerOptions options;
  options.max_frame_bytes = 64;
  StartServer(options);
  Client client = Connect();
  // Declare a 1 MiB payload without sending it: framing cannot recover
  // from a length lie, so the server errors and closes the session.
  const char header[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_TRUE(client.socket().SendAll(header, sizeof(header)).ok());
  auto reply = client.ReadResponse();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "ERR FRAME_TOO_LARGE max payload 64 bytes");
  auto eof = client.ReadResponse();
  EXPECT_TRUE(eof.status().IsNotFound());  // orderly close
}

TEST_F(ServingTest, QuitClosesTheSessionAfterReplying) {
  StartServer();
  Client client = Connect();
  EXPECT_EQ(Call(&client, "QUIT"), "OK BYE");
  auto eof = client.ReadResponse();
  EXPECT_TRUE(eof.status().IsNotFound());
  // The server keeps serving new sessions.
  Client next = Connect();
  EXPECT_EQ(Call(&next, "SUBMIT R0"), "OK BACKEND 0");
}

TEST_F(ServingTest, SessionCeilingAnswersBusy) {
  ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);
  Client first = Connect();
  // Completing a call proves the first session is established.
  Call(&first, "HEALTH");
  Client second = Connect();
  auto busy = second.ReadResponse();
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(*busy, "ERR BUSY session limit 1 reached");
  EXPECT_TRUE(second.ReadResponse().status().IsNotFound());
  // The first session is unaffected.
  EXPECT_EQ(Call(&first, "SUBMIT R0"), "OK BACKEND 0");
}

TEST_F(ServingTest, MetricsOnIdleServerAreZeroSafe) {
  StartServer();
  Client client = Connect();
  const std::string reply = Call(&client, "METRICS");
  ASSERT_EQ(reply.rfind("OK METRICS\n", 0), 0u) << reply;
  // No SUBMIT has happened: the percentile path runs on an empty sample
  // vector and must report clean zeros (the hardened stats helpers).
  EXPECT_NE(reply.find("qcap_routing_latency_seconds{quantile=\"0.50\"} 0\n"),
            std::string::npos)
      << reply;
  EXPECT_NE(reply.find("qcap_routing_latency_seconds{quantile=\"0.99\"} 0\n"),
            std::string::npos);
  EXPECT_NE(reply.find("qcap_routing_latency_samples 0\n"), std::string::npos);
  EXPECT_NE(reply.find("qcap_reads_routed_total 0\n"), std::string::npos);
  EXPECT_EQ(reply.find("nan"), std::string::npos) << reply;
}

TEST_F(ServingTest, MetricsTrackRoutedTraffic) {
  StartServer();
  Client client = Connect();
  for (int i = 0; i < 50; ++i) {
    const std::string reply = Call(&client, "SUBMIT R" + std::to_string(i % 4));
    ASSERT_EQ(reply.rfind("OK BACKEND ", 0), 0u);
    Call(&client, "DONE " + std::to_string(ParseBackend(reply)));
  }
  const std::string metrics = Call(&client, "METRICS");
  EXPECT_NE(metrics.find("qcap_reads_routed_total 50\n"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("qcap_routing_latency_samples 50\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("qcap_backend_pending{backend=\"0\"} 0\n"),
            std::string::npos);
}

TEST_F(ServingTest, PipelinedRequestsInOneWriteAreAnsweredInOrder) {
  StartServer();
  Client client = Connect();
  // Write three frames back-to-back before reading anything: the buffered
  // session must decode and answer all of them in order.
  std::string wire;
  AppendFrame(&wire, "SUBMIT R3");
  AppendFrame(&wire, "SUBMIT R3");
  AppendFrame(&wire, "STATS");
  ASSERT_TRUE(client.socket().SendAll(wire.data(), wire.size()).ok());
  auto first = client.ReadResponse();
  auto second = client.ReadResponse();
  auto third = client.ReadResponse();
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(*first, "OK BACKEND 0");
  EXPECT_EQ(*second, "OK BACKEND 0");
  EXPECT_EQ(third->rfind("OK STATS ", 0), 0u);
}

TEST_F(ServingTest, StopDisconnectsClientsAndIsIdempotent) {
  StartServer();
  Client client = Connect();
  Call(&client, "HEALTH");
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_EQ(server_->open_sessions(), 0u);
  auto eof = client.ReadResponse();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServingTest, StartTwiceFails) {
  StartServer();
  EXPECT_FALSE(server_->Start().ok());
}

}  // namespace
}  // namespace qcap::net
