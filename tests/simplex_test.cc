#include "solver/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qcap {
namespace {

TEST(SimplexTest, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -2.0};
  lp.AddConstraint({1.0, 1.0}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({1.0, 3.0}, Relation::kLessEqual, 6.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -12.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y s.t. x + y = 2, x - y = 0 -> x=y=1.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddConstraint({1.0, 1.0}, Relation::kEqual, 2.0);
  lp.AddConstraint({1.0, -1.0}, Relation::kEqual, 0.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4 (y=0), obj 8.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.AddConstraint({1.0, 1.0}, Relation::kGreaterEqual, 4.0);
  lp.AddVarBound(0, Relation::kGreaterEqual, 1.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 8.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.AddConstraint({-1.0}, Relation::kLessEqual, -3.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 3.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.AddVarBound(0, Relation::kLessEqual, 1.0);
  lp.AddVarBound(0, Relation::kGreaterEqual, 2.0);
  auto sol = SolveLp(lp);
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x with x only bounded below.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.AddVarBound(0, Relation::kGreaterEqual, 0.0);
  auto sol = SolveLp(lp);
  EXPECT_TRUE(sol.status().IsUnbounded());
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Klee-Minty-ish degenerate constraints still terminate via Bland.
  LinearProgram lp;
  lp.num_vars = 3;
  lp.objective = {-100.0, -10.0, -1.0};
  lp.AddConstraint({1.0, 0.0, 0.0}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({20.0, 1.0, 0.0}, Relation::kLessEqual, 100.0);
  lp.AddConstraint({200.0, 20.0, 1.0}, Relation::kLessEqual, 10000.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -10000.0, 1e-6);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.AddConstraint({1.0, 1.0}, Relation::kEqual, 2.0);
  lp.AddConstraint({1.0, 1.0}, Relation::kEqual, 2.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(SimplexTest, RejectsMalformedInput) {
  LinearProgram lp;
  lp.num_vars = 0;
  EXPECT_FALSE(SolveLp(lp).ok());
  lp.num_vars = 2;
  lp.objective = {1.0};  // Wrong length.
  EXPECT_FALSE(SolveLp(lp).ok());
}

TEST(SimplexTest, ZeroRhsEquality) {
  // min x + y s.t. x - y = 0, x + y >= 2.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddConstraint({1.0, -1.0}, Relation::kEqual, 0.0);
  lp.AddConstraint({1.0, 1.0}, Relation::kGreaterEqual, 2.0);
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
  EXPECT_NEAR(sol->x[0], sol->x[1], 1e-9);
}

/// Random transportation-style LPs: feasibility and optimality sanity via
/// weak duality bound checks (objective must be >= a trivial lower bound).
class SimplexRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomSweep, TransportationProblems) {
  Rng rng(GetParam());
  // Supplies and demands balanced; min-cost transportation is feasible and
  // bounded.
  const size_t m = 3, n = 4;
  std::vector<double> supply(m), demand(n);
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    supply[i] = 1.0 + rng.NextDouble() * 9.0;
    total += supply[i];
  }
  double left = total;
  for (size_t j = 0; j + 1 < n; ++j) {
    demand[j] = left * rng.NextDouble(0.1, 0.5);
    left -= demand[j];
  }
  demand[n - 1] = left;

  LinearProgram lp;
  lp.num_vars = m * n;
  lp.objective.resize(lp.num_vars);
  double min_cost = 1e18;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      lp.objective[i * n + j] = 1.0 + rng.NextDouble() * 9.0;
      min_cost = std::min(min_cost, lp.objective[i * n + j]);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(lp.num_vars, 0.0);
    for (size_t j = 0; j < n; ++j) row[i * n + j] = 1.0;
    lp.AddConstraint(std::move(row), Relation::kEqual, supply[i]);
  }
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> col(lp.num_vars, 0.0);
    for (size_t i = 0; i < m; ++i) col[i * n + j] = 1.0;
    lp.AddConstraint(std::move(col), Relation::kEqual, demand[j]);
  }
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  // Flow conservation holds in the solution.
  for (size_t i = 0; i < m; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) row_sum += sol->x[i * n + j];
    EXPECT_NEAR(row_sum, supply[i], 1e-7);
  }
  // Objective at least (total flow) x (cheapest edge).
  EXPECT_GE(sol->objective, total * min_cost - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace qcap
