#include <gtest/gtest.h>

#include "engine/datagen.h"
#include "exec/executor.h"
#include "engine/table.h"
#include "workloads/tpch.h"

namespace qcap::engine {
namespace {

TableDef SmallDef() {
  return TableDef{"t",
                  {{"id", ColumnType::kInt64, 0, true},
                   {"price", ColumnType::kDecimal, 0, false},
                   {"name", ColumnType::kVarchar, 20, false},
                   {"when", ColumnType::kDate, 0, false}},
                  100};
}

TEST(TableTest, AppendAndReadBack) {
  Table table(SmallDef());
  ASSERT_TRUE(table
                  .AppendRow({int64_t{7}, 3.5, std::string("widget"),
                              int64_t{8100}})
                  .ok());
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_EQ(std::get<int64_t>(table.column(0).Get(0)), 7);
  EXPECT_DOUBLE_EQ(std::get<double>(table.column(1).Get(0)), 3.5);
  EXPECT_EQ(std::get<std::string>(table.column(2).Get(0)), "widget");
}

TEST(TableTest, RejectsWrongArityAndType) {
  Table table(SmallDef());
  EXPECT_FALSE(table.AppendRow({int64_t{1}}).ok());
  EXPECT_FALSE(table
                   .AppendRow({3.5, 3.5, std::string("x"), int64_t{1}})
                   .ok());  // id must be int.
}

TEST(TableTest, FindColumn) {
  Table table(SmallDef());
  EXPECT_TRUE(table.FindColumn("price").ok());
  EXPECT_TRUE(table.FindColumn("ghost").status().IsNotFound());
}

TEST(TableTest, PayloadBytes) {
  Table table(SmallDef());
  ASSERT_TRUE(
      table.AppendRow({int64_t{1}, 1.0, std::string("abcd"), int64_t{2}})
          .ok());
  // id 8 + price 8 + "abcd" 4 + date 4.
  EXPECT_EQ(table.PayloadBytes(), 24u);
}

TEST(DataGenTest, GeneratesRequestedRows) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SmallDef()).ok());
  DataGenOptions options;
  options.row_fraction = 1.0;
  auto table = GenerateTable(catalog, "t", options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 100u);
}

TEST(DataGenTest, MinRowsFloor) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SmallDef()).ok());
  DataGenOptions options;
  options.row_fraction = 0.0001;
  options.min_rows = 32;
  auto table = GenerateTable(catalog, "t", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 32u);
}

TEST(DataGenTest, PrimaryKeysAreDense) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SmallDef()).ok());
  auto table = GenerateTable(catalog, "t", {});
  ASSERT_TRUE(table.ok());
  const auto& ids = table->column(0).ints();
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int64_t>(i));
  }
}

TEST(DataGenTest, DeterministicForSeed) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SmallDef()).ok());
  auto a = GenerateTable(catalog, "t", {1.0, 16, 42});
  auto b = GenerateTable(catalog, "t", {1.0, 16, 42});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto sa = ScanColumns(a.value());
  auto sb = ScanColumns(b.value());
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sa->checksum, sb->checksum);
}

TEST(DataGenTest, WholeDatabase) {
  Catalog catalog = workloads::TpchCatalog(1.0);
  DataGenOptions options;
  options.row_fraction = 0.0001;  // Tiny sample of SF 1.
  auto database = GenerateDatabase(catalog, options);
  ASSERT_TRUE(database.ok()) << database.status().ToString();
  EXPECT_EQ(database->size(), 8u);
  EXPECT_GE(database->at("lineitem").NumRows(), 600u);
}

TEST(ExecutorTest, ScanSubsetTouchesFewerBytes) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SmallDef()).ok());
  auto table = GenerateTable(catalog, "t", {});
  ASSERT_TRUE(table.ok());
  auto all = ScanColumns(table.value());
  auto narrow = ScanColumns(table.value(), {"id"});
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_LT(narrow->bytes, all->bytes);
  EXPECT_EQ(narrow->bytes, 100u * 8u);
  EXPECT_FALSE(ScanColumns(table.value(), {"ghost"}).ok());
}

TEST(ExecutorTest, CountAndSum) {
  Table table(SmallDef());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({i, static_cast<double>(i), std::string("x"),
                                int64_t{100}})
                    .ok());
  }
  auto below = CountIntBelow(table, "id", 4);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below.value(), 4u);
  auto sum = SumDecimal(table, "price");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value(), 45.0);
  EXPECT_FALSE(CountIntBelow(table, "price", 1).ok());
  EXPECT_FALSE(SumDecimal(table, "id").ok());
}

TEST(ExecutorTest, CalibrationProducesPlausibleParameters) {
  Catalog catalog = workloads::TpchCatalog(1.0);
  // Reference: a Q1-style scan over ~half of lineitem's bytes at ~12 s.
  auto lineitem = catalog.TableBytes("lineitem");
  ASSERT_TRUE(lineitem.ok());
  auto report =
      CalibrateCostModel(catalog, 0.0002, 12.0, 0.5 * lineitem.value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->scan_bytes_per_second, 1e8);  // >100 MB/s in memory.
  EXPECT_GT(report->suggested_io_fraction, 0.0);
  EXPECT_LT(report->suggested_io_fraction, 1.0);
  EXPECT_GT(report->per_query_overhead_seconds, 0.0);
}

TEST(ExecutorTest, CalibrationRejectsBadInput) {
  Catalog catalog = workloads::TpchCatalog(1.0);
  EXPECT_FALSE(CalibrateCostModel(catalog, 0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(CalibrateCostModel(catalog, 0.1, -1.0, 1.0).ok());
}

}  // namespace
}  // namespace qcap::engine
