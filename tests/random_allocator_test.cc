#include "alloc/random_allocator.h"

#include <gtest/gtest.h>

#include "model/metrics.h"
#include "model/validation.h"
#include "test_util.h"
#include "workload/classifier.h"
#include "workloads/tpch.h"

namespace qcap {
namespace {

TEST(RandomAllocatorTest, ValidAndDeterministicPerSeed) {
  const Classification cls = testutil::AppendixAClassification();
  const auto backends = HomogeneousBackends(4);
  RandomAllocator a(77), b(77);
  auto ra = a.Allocate(cls, backends);
  auto rb = b.Allocate(cls, backends);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ValidateAllocation(cls, ra.value(), backends).ok());
  for (size_t backend = 0; backend < 4; ++backend) {
    EXPECT_EQ(ra->BackendFragments(backend), rb->BackendFragments(backend));
  }
}

TEST(RandomAllocatorTest, DifferentSeedsUsuallyDiffer) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(workloads::TpchJournal(1900));
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(6);
  RandomAllocator a(1), b(2);
  auto ra = a.Allocate(cls.value(), backends);
  auto rb = b.Allocate(cls.value(), backends);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  bool any_difference = false;
  for (size_t backend = 0; backend < 6 && !any_difference; ++backend) {
    any_difference =
        ra->BackendFragments(backend) != rb->BackendFragments(backend);
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomAllocatorTest, EachReadClassLandsWhole) {
  const Classification cls = testutil::Figure2Classification();
  const auto backends = HomogeneousBackends(5);
  RandomAllocator random(3);
  auto alloc = random.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  // The random baseline assigns each read class entirely to one backend.
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    size_t holders = 0;
    for (size_t b = 0; b < 5; ++b) {
      if (alloc->read_assign(b, r) > 0.0) {
        ++holders;
        EXPECT_DOUBLE_EQ(alloc->read_assign(b, r), cls.reads[r].weight);
      }
    }
    EXPECT_EQ(holders, 1u) << cls.reads[r].label;
  }
}

TEST(RandomAllocatorTest, TypicallyUnbalanced) {
  // Averaged over seeds, the random placement leaves a clearly worse scale
  // than balanced (the Figure 4a "random allocation" behaviour).
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  auto cls = classifier.Classify(workloads::TpchJournal(1900));
  ASSERT_TRUE(cls.ok());
  const auto backends = HomogeneousBackends(8);
  double worst_scale = 0.0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAllocator random(seed);
    auto alloc = random.Allocate(cls.value(), backends);
    ASSERT_TRUE(alloc.ok());
    EXPECT_TRUE(ValidateAllocation(cls.value(), alloc.value(), backends).ok());
    worst_scale = std::max(worst_scale, Scale(alloc.value(), backends));
  }
  EXPECT_GT(worst_scale, 1.5);
}

TEST(RandomAllocatorTest, PureUpdateClassesGetAHome) {
  Classification cls;
  ASSERT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  ASSERT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  cls.reads = {QueryClass{{0}, 0.7, 1.0, false, "Q1", {}}};
  cls.updates = {QueryClass{{1}, 0.3, 1.0, true, "U1", {}}};
  const auto backends = HomogeneousBackends(3);
  RandomAllocator random(11);
  auto alloc = random.Allocate(cls, backends);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(ValidateAllocation(cls, alloc.value(), backends).ok());
  EXPECT_GE(alloc->ReplicaCount(1), 1u);
}

TEST(RandomAllocatorTest, RejectsInvalidInput) {
  const Classification cls = testutil::Figure2Classification();
  RandomAllocator random(5);
  EXPECT_FALSE(random.Allocate(cls, {}).ok());
}

}  // namespace
}  // namespace qcap
