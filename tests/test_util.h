// Shared fixtures for the test suite: the paper's worked examples as
// ready-made classifications.
#pragma once

#include <gtest/gtest.h>

#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap::testutil {

/// Figure 2 (Section 3): read-only, C1={A} 30%, C2={B} 25%, C3={C} 25%,
/// C4={A,B} 20%; equal-size relations A,B,C.
inline Classification Figure2Classification() {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).ok());
  cls.reads = {
      QueryClass{{0}, 0.30, 1.0, false, "C1", {}},
      QueryClass{{1}, 0.25, 1.0, false, "C2", {}},
      QueryClass{{2}, 0.25, 1.0, false, "C3", {}},
      QueryClass{{0, 1}, 0.20, 1.0, false, "C4", {}},
  };
  return cls;
}

/// Appendix A: Q1={A} 24%, Q2={B} 20%, Q3={C} 20%, Q4={A,B} 16%;
/// U1={A} 4%, U2={B} 10%, U3={C} 6%; equal-size relations.
inline Classification AppendixAClassification() {
  Classification cls;
  EXPECT_TRUE(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).ok());
  EXPECT_TRUE(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).ok());
  cls.reads = {
      QueryClass{{0}, 0.24, 1.0, false, "Q1", {}},
      QueryClass{{1}, 0.20, 1.0, false, "Q2", {}},
      QueryClass{{2}, 0.20, 1.0, false, "Q3", {}},
      QueryClass{{0, 1}, 0.16, 1.0, false, "Q4", {}},
  };
  cls.updates = {
      QueryClass{{0}, 0.04, 1.0, true, "U1", {}},
      QueryClass{{1}, 0.10, 1.0, true, "U2", {}},
      QueryClass{{2}, 0.06, 1.0, true, "U3", {}},
  };
  return cls;
}

/// The Appendix A heterogeneous backends: 30/30/20/20.
inline std::vector<BackendSpec> AppendixABackends() {
  auto r = HeterogeneousBackends({0.3, 0.3, 0.2, 0.2});
  EXPECT_TRUE(r.ok());
  return r.value();
}

}  // namespace qcap::testutil
