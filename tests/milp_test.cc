#include "solver/milp.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace qcap {
namespace {

TEST(MilpTest, BinaryKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> a=b=1, obj 16.
  MilpProblem prob;
  prob.lp.num_vars = 3;
  prob.lp.objective = {-10.0, -6.0, -4.0};
  prob.lp.AddConstraint({1.0, 1.0, 1.0}, Relation::kLessEqual, 2.0);
  prob.binary_vars = {0, 1, 2};
  auto sol = SolveMilp(prob);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -16.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol->x[2], 0.0, 1e-9);
}

TEST(MilpTest, FractionalRelaxationForcedIntegral) {
  // max 5a + 4b s.t. 6a + 4b <= 7 (binary): LP relax a=7/6 clipped; optimal
  // integral is a=0,b=1 (obj 4) vs a=1,b=0 (6a=6<=7, obj 5) -> a=1.
  MilpProblem prob;
  prob.lp.num_vars = 2;
  prob.lp.objective = {-5.0, -4.0};
  prob.lp.AddConstraint({6.0, 4.0}, Relation::kLessEqual, 7.0);
  prob.binary_vars = {0, 1};
  auto sol = SolveMilp(prob);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -5.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-9);
}

TEST(MilpTest, SetCover) {
  // Universe {1,2,3}; sets A={1,2} cost 3, B={2,3} cost 3, C={1,2,3} cost 5.
  // Optimal: C alone (5) vs A+B (6) -> C.
  MilpProblem prob;
  prob.lp.num_vars = 3;
  prob.lp.objective = {3.0, 3.0, 5.0};
  prob.lp.AddConstraint({1.0, 0.0, 1.0}, Relation::kGreaterEqual, 1.0);  // 1.
  prob.lp.AddConstraint({1.0, 1.0, 1.0}, Relation::kGreaterEqual, 1.0);  // 2.
  prob.lp.AddConstraint({0.0, 1.0, 1.0}, Relation::kGreaterEqual, 1.0);  // 3.
  prob.binary_vars = {0, 1, 2};
  auto sol = SolveMilp(prob);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 5.0, 1e-6);
  EXPECT_NEAR(sol->x[2], 1.0, 1e-9);
}

TEST(MilpTest, MixedContinuousAndBinary) {
  // min y + 0.1x s.t. x <= 10*y, x >= 3; y binary -> y=1, x=3, obj 1.3.
  MilpProblem prob;
  prob.lp.num_vars = 2;  // x=0, y=1.
  prob.lp.objective = {0.1, 1.0};
  prob.lp.AddConstraint({1.0, -10.0}, Relation::kLessEqual, 0.0);
  prob.lp.AddVarBound(0, Relation::kGreaterEqual, 3.0);
  prob.binary_vars = {1};
  auto sol = SolveMilp(prob);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1.3, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-9);
}

TEST(MilpTest, InfeasibleIntegral) {
  // a + b = 1.5 with a, b binary has fractional-only solutions... actually
  // a=1,b=0.5 violates integrality; a+b in {0,1,2} != 1.5 -> infeasible.
  MilpProblem prob;
  prob.lp.num_vars = 2;
  prob.lp.objective = {1.0, 1.0};
  prob.lp.AddConstraint({1.0, 1.0}, Relation::kEqual, 1.5);
  prob.binary_vars = {0, 1};
  auto sol = SolveMilp(prob);
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(MilpTest, RejectsBadBinaryIndex) {
  MilpProblem prob;
  prob.lp.num_vars = 1;
  prob.lp.objective = {1.0};
  prob.binary_vars = {5};
  EXPECT_FALSE(SolveMilp(prob).ok());
}

TEST(MilpTest, NodeLimitReported) {
  // A tiny limit forces ResourceExhausted on a nontrivial instance.
  MilpProblem prob;
  prob.lp.num_vars = 6;
  prob.lp.objective = {-1, -1, -1, -1, -1, -1};
  prob.lp.AddConstraint({2, 3, 4, 5, 6, 7}, Relation::kLessEqual, 13.0);
  prob.binary_vars = {0, 1, 2, 3, 4, 5};
  MilpOptions opts;
  opts.max_nodes = 1;
  auto sol = SolveMilp(prob, opts);
  EXPECT_TRUE(sol.status().IsResourceExhausted());
}

/// Random knapsacks cross-checked against exhaustive enumeration.
class MilpKnapsackSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MilpKnapsackSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const size_t n = 8;
  std::vector<double> value(n), weight(n);
  for (size_t i = 0; i < n; ++i) {
    value[i] = 1.0 + rng.NextDouble() * 9.0;
    weight[i] = 1.0 + rng.NextDouble() * 9.0;
  }
  const double capacity = 15.0;

  MilpProblem prob;
  prob.lp.num_vars = n;
  prob.lp.objective.resize(n);
  for (size_t i = 0; i < n; ++i) prob.lp.objective[i] = -value[i];
  prob.lp.AddConstraint(weight, Relation::kLessEqual, capacity);
  for (size_t i = 0; i < n; ++i) prob.binary_vars.push_back(i);
  auto sol = SolveMilp(prob);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();

  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        v += value[i];
        w += weight[i];
      }
    }
    if (w <= capacity && v > best) best = v;
  }
  EXPECT_NEAR(-sol->objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpKnapsackSweep,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace qcap
