// qcap_lint — QCAP's determinism-and-convention static analyzer.
//
//   qcap_lint [--format=gcc|json] [--list-rules] <path>...
//
// Walks the given files/directories (*.h, *.hpp, *.cc, *.cpp) and enforces
// the project rules documented in docs/LINT.md. Exit code 0 means no
// unsuppressed findings; 1 means findings; 2 means usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "project.h"

namespace qcap_lint {
namespace {

namespace fs = std::filesystem;

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// Directories that hold generated or deliberately-bad code.
bool SkippedDirectory(const std::string& name) {
  if (name.empty() || name[0] == '.') return true;
  return name == "CMakeFiles" || name == "testdata" ||
         name.rfind("build", 0) == 0;
}

void CollectFiles(const fs::path& root, std::vector<std::string>* out) {
  if (fs::is_regular_file(root)) {
    if (LintableExtension(root)) out->push_back(root.string());
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      if (SkippedDirectory(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file() && LintableExtension(it->path())) {
      out->push_back(it->path().string());
    }
  }
}

// Finds the `.qcap-layers` module DAG governing the linted roots by walking
// up from the first root (so `qcap_lint src tests` run from the repo root —
// or `qcap_lint /abs/repo/src` from anywhere — finds the repo's config).
// Returns an unloaded config when none exists, which disables layer checks.
LayerConfig FindLayerConfig(const std::vector<std::string>& roots) {
  fs::path dir = fs::absolute(roots.front());
  if (fs::is_regular_file(dir)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    const fs::path candidate = dir / ".qcap-layers";
    if (fs::is_regular_file(candidate)) {
      std::ifstream in(candidate, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      return ParseLayerConfig(candidate.string(), buf.str());
    }
    if (dir == dir.root_path()) break;
  }
  return LayerConfig{};
}

int Run(int argc, char** argv) {
  std::string format = "gcc";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* r : kAllRules) std::cout << r << "\n";
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "gcc" && format != "json") {
        std::cerr << "qcap_lint: unknown format '" << format << "'\n";
        return 2;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qcap_lint [--format=gcc|json] [--list-rules] "
                   "<path>...\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "qcap_lint: unknown option '" << arg << "'\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: qcap_lint [--format=gcc|json] [--list-rules] "
                 "<path>...\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "qcap_lint: no such file or directory: " << root << "\n";
      return 2;
    }
    CollectFiles(root, &files);
  }
  std::sort(files.begin(), files.end());

  std::vector<ProjectFile> project;
  project.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "qcap_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    project.push_back({file, buf.str()});
  }

  std::vector<Finding> findings;
  size_t suppressed = 0;
  for (const ProjectFile& file : project) {
    FileResult result = LintContent(file.path, file.content);
    suppressed += result.suppressed.size();
    for (Finding& f : result.findings) findings.push_back(std::move(f));
  }
  ProjectResult cross = LintProject(project, FindLayerConfig(roots));
  suppressed += cross.suppressed.size();
  for (Finding& f : cross.findings) findings.push_back(std::move(f));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });

  if (format == "json") {
    std::cout << "{\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "    {\"file\": \"" << JsonEscape(f.file)
                << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
                << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "" : "\n  ") << "],\n"
              << "  \"count\": " << findings.size() << ",\n"
              << "  \"suppressed\": " << suppressed << ",\n"
              << "  \"files_scanned\": " << files.size() << "\n}\n";
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": warning: " << f.message
                << " [" << f.rule << "]\n";
    }
    std::cerr << "qcap_lint: " << files.size() << " files, "
              << findings.size() << " finding(s), " << suppressed
              << " suppressed\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace qcap_lint

int main(int argc, char** argv) { return qcap_lint::Run(argc, argv); }
