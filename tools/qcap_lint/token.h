#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qcap_lint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords
  kNumber,       // numeric literals
  kString,       // string literals (incl. raw strings)
  kCharLiteral,  // character literals
  kPunct,        // operators and punctuation, one token per lexeme
  kComment,      // // and /* */ comments, text without delimiters
  kPreprocessor  // full preprocessor line, e.g. "#pragma once"
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// Lexes C++ source into a flat token stream. This is a deliberately
/// lightweight scanner: it understands comments, string/char literals
/// (including raw strings and escapes), preprocessor lines (with
/// backslash continuations), and multi-character operators far enough
/// to never misparse a literal as code. It does not expand macros.
std::vector<Token> Lex(const std::string& source);

}  // namespace qcap_lint
