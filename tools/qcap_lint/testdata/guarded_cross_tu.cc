// qcap-lint-test: as=src/net/counter.h
// Known-bad: the GUARDED_BY/REQUIRES annotations live in this header; the
// unlocked access lives in the .cc below. Only the cross-TU pass can
// connect the two — a per-file lint of either file sees nothing wrong.
#pragma once
#include "common/annotations.h"

class Counter {
 public:
  void Increment();
  int Peek() const;
  int PeekLocked() const QCAP_REQUIRES(lock_);

 private:
  mutable Mutex lock_;
  int count_ QCAP_GUARDED_BY(lock_) = 0;
};
// qcap-lint-test: file=src/net/counter.cc
#include "net/counter.h"

void Counter::Increment() {
  MutexLock guard(lock_);
  ++count_;
}

int Counter::Peek() const { return count_; }  // expect: guarded-field-unlocked-access

int Counter::PeekLocked() const { return count_; }
