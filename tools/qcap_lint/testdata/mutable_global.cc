// qcap-lint-test: as=src/physical/fixture.cc
// Known-bad: mutable namespace-scope state.
#include <atomic>
#include <string>

namespace qcap {

int g_calls = 0;  // expect: mutable-global
static double g_budget;  // expect: mutable-global
int g_table[4] = {0, 1, 2, 3};  // expect: mutable-global

namespace {
std::string g_last_error = "none";  // expect: mutable-global
}  // namespace

// All of these are fine:
const int kLimit = 8;
constexpr double kEps = 1e-9;
static constexpr char kName[] = "qcap";
int Add(int a, int b);
inline constexpr int kInlineOk = 3;

// qcap-lint: allow(mutable-global) -- process-wide toggle, guarded by mutex
std::atomic<bool> g_verbose = false;

}  // namespace qcap
