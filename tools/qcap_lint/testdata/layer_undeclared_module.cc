// qcap-lint-test: as=src/exec/runner.cc
// qcap-lint-test: layer common:
// qcap-lint-test: layer engine: common
// Known-bad: the including file's module ('exec') was never added to the
// layering DAG; every cross-module include it makes is flagged until the
// module is declared (docs/LINT.md has the add-a-module recipe).
#include "engine/table.h"  // expect: layer-violation
