// qcap-lint-test: as=src/net/gauge.h
// Known-bad: QCAP_GUARDED_BY fields read and written in inline member
// functions that neither take the lock nor declare QCAP_REQUIRES.
#pragma once
#include "common/annotations.h"

class Gauge {
 public:
  void Add(int d) {
    MutexLock guard(lock_);
    total_ += d;
  }
  int total() const { return total_; }  // expect: guarded-field-unlocked-access
  void Reset() { total_ = 0; }  // expect: guarded-field-unlocked-access

 private:
  mutable Mutex lock_;
  int total_ QCAP_GUARDED_BY(lock_) = 0;
};
