// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: rebuilding ClassificationIndex per iteration (the convention is
// build-once-per-allocator-call; see CHANGES.md PR 3).
namespace qcap {

struct Classification {};
struct ClassificationIndex {
  explicit ClassificationIndex(const Classification& c);
};

double EvaluateAll(const Classification& cls, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    ClassificationIndex index(cls);  // expect: index-in-loop
    total += 1.0;
  }
  int j = 0;
  while (j < n) {
    const ClassificationIndex idx{cls};  // expect: index-in-loop
    ++j;
  }
  // Build-once-then-loop is the sanctioned shape.
  ClassificationIndex once(cls);
  for (int i = 0; i < n; ++i) total += 1.0;
  return total;
}

// References and pointers to an existing index are fine inside loops.
void Walk(const ClassificationIndex& index, int n) {
  for (int i = 0; i < n; ++i) {
    const ClassificationIndex& ref = index;
    (void)ref;
  }
}

}  // namespace qcap
