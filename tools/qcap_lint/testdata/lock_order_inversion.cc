// qcap-lint-test: as=src/net/swapper.h
// Known-bad: two functions take the same pair of locks in opposite
// orders — the classic AB/BA deadlock. The report anchors at the
// acquisition that closes the cycle.
#pragma once
#include "common/annotations.h"

class Swapper {
 public:
  void Forward() {
    MutexLock a(a_);
    MutexLock b(b_);
  }
  void Backward() {
    MutexLock b(b_);
    MutexLock a(a_);  // expect: lock-order
  }

 private:
  Mutex a_;
  Mutex b_;
};
