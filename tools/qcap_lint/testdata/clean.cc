// qcap-lint-test: as=src/alloc/fixture.cc
// Negative fixture: idiomatic QCAP code that must produce zero findings.
#include <map>
#include <vector>

namespace qcap {

struct Rng {
  explicit Rng(unsigned long long seed) : state_(seed) {}
  unsigned long long Next() { return state_ *= 6364136223846793005ULL; }
  unsigned long long state_;
};

constexpr int kFanout = 4;

double Evaluate(const std::vector<double>& loads, Rng* rng) {
  double best = 0.0;
  for (double v : loads) {
    best = v > best ? v : best;
  }
  std::map<int, double> ordered;
  ordered[0] = best + static_cast<double>(rng->Next() % 100);
  return ordered[0];
}

}  // namespace qcap
