// qcap-lint-test: as=src/common/util.cc
// qcap-lint-test: layer common:
// Known-bad: the include pulls in a module the DAG has never heard of.
#include "mystery/widget.h"  // expect: layer-violation
