// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: malformed lint directives.
#include <map>

namespace qcap {

// qcap-lint: allow(unordered-container)  // expect: bad-directive
std::map<int, int> Ok();

// qcap-lint: allow(no-such-rule) -- because  // expect: bad-directive
int Two();

// qcap-lint: hot-path end  // expect: bad-directive
int Three();

// qcap-lint: frobnicate  // expect: bad-directive
int Four();

}  // namespace qcap
