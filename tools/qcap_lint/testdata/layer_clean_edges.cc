// qcap-lint-test: as=src/net/dispatcher_like.cc
// qcap-lint-test: layer common:
// qcap-lint-test: layer cluster: common
// qcap-lint-test: layer net: cluster common
// Clean: every edge is declared (net -> cluster, net -> common), sibling
// includes are same-module, and system includes are never layer edges.
#include <vector>
#include "net/dispatcher_like.h"
#include "cluster/scheduler.h"
#include "common/strings.h"
