// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: container growth inside a marked hot-path region, plus one
// annotated steady-state append.
#include <vector>

namespace qcap {

struct Search {
  std::vector<int> touched;
  std::vector<int> scratch;

  // qcap-lint: hot-path begin
  void Trial(int b) {
    touched.push_back(b);  // expect: hot-path-growth
    scratch.resize(64);  // expect: hot-path-growth
    scratch.reserve(128);  // expect: hot-path-growth
    // qcap-lint: allow(hot-path-growth) -- capacity reached in first pass
    scratch.push_back(b);
  }
  // qcap-lint: hot-path end

  void Prepare() { scratch.reserve(1024); }
};

}  // namespace qcap
