// qcap-lint-test: as=src/alloc/rogue.cc
// qcap-lint-test: layer common:
// qcap-lint-test: layer alloc: common
// qcap-lint-test: layer cluster: common
// qcap-lint-test: layer net: cluster common
// Known-bad: the allocation layer reaches into the serving stack. The DAG
// above allows alloc -> common only, so the net include is a violation.
#include "common/strings.h"
#include "net/frame.h"  // expect: layer-violation
