// qcap-lint-test: as=src/net/meter.h
// Known-bad: a this-> qualified access is still a member access and still
// needs the lock. Constructors are exempt (no concurrent observers yet).
#pragma once
#include "common/annotations.h"

class Meter {
 public:
  Meter() { sum_ = 0; }
  void Bump() { this->sum_ += 1; }  // expect: guarded-field-unlocked-access

 private:
  Mutex lock_;
  long sum_ QCAP_GUARDED_BY(lock_) = 0;
};
