// qcap-lint-test: as=src/net/manual.h
// Known-bad: manual lock()/unlock() calls feed the same acquisition graph
// as RAII scopes, so a manual inversion is caught too.
#pragma once
#include "common/annotations.h"

class Manual {
 public:
  void Fill() {
    gate_.lock();
    MutexLock guard(inner_);
    gate_.unlock();
  }
  void Drain() {
    MutexLock guard(inner_);
    gate_.lock();  // expect: lock-order
    gate_.unlock();
  }

 private:
  Mutex gate_;
  Mutex inner_;
};
