// qcap-lint-test: as=src/model/fixture.cc
// Known-bad: libc PRNG calls in a deterministic module.
#include <cstdlib>

namespace qcap {

int Roll() {
  return rand() % 6;  // expect: nondeterministic-call
}

void Reseed() {
  srand(42);  // expect: nondeterministic-call
}

int NotFlagged(int my_rand) { return my_rand + 1; }

}  // namespace qcap
