// qcap-lint-test: as=src/solver/fixture.cc
// Known-bad: default-seeded engines hide the seed from the run config.
#include <random>

namespace qcap {

int Draw() {
  std::mt19937 rng;  // expect: unseeded-rng
  std::mt19937_64 rng64{};  // expect: unseeded-rng
  std::default_random_engine eng;  // expect: unseeded-rng
  std::mt19937 seeded(12345);  // explicitly seeded: fine
  std::mt19937 derived{rng()};
  return static_cast<int>(seeded() + derived() + rng64() + eng());
}

}  // namespace qcap
