// qcap-lint-test: as=src/cluster/fixture.cc
// Known-bad: wall-clock reads make simulated time diverge between runs.
#include <chrono>
#include <ctime>

namespace qcap {

double Stamp() {
  auto t = std::chrono::steady_clock::now();  // expect: nondeterministic-call
  (void)t;
  return static_cast<double>(std::time(nullptr));  // expect: nondeterministic-call
}

long Epoch() {
  return time(nullptr);  // expect: nondeterministic-call
}

// Members and declarations named `time` are not calls of ::time().
struct Event {
  double time;
};
double Read(const Event& e) { return e.time; }

}  // namespace qcap
