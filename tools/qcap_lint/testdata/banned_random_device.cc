// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: hardware entropy defeats {seed, num_islands} reproducibility.
#include <random>

namespace qcap {

unsigned Entropy() {
  std::random_device rd;  // expect: nondeterministic-call
  return rd();
}

}  // namespace qcap
