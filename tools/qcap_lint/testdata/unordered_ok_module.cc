// qcap-lint-test: as=src/engine/fixture.cc
// Negative fixture: engine/ is not a deterministic module, so hash
// containers are fine here without annotation.
#include <unordered_map>

namespace qcap {

std::unordered_map<int, int> Histogram();

}  // namespace qcap
