// qcap-lint-test: as=src/net/trio.h
// Known-bad: no single pair inverts, but the three pairwise orders chain
// into a cycle a -> b -> c -> a. Only the global acquisition graph sees it.
#pragma once
#include "common/annotations.h"

class Trio {
 public:
  void AB() { MutexLock x(a_); MutexLock y(b_); }
  void BC() { MutexLock x(b_); MutexLock y(c_); }
  void CA() { MutexLock x(c_); MutexLock y(a_); }  // expect: lock-order

 private:
  Mutex a_;
  Mutex b_;
  Mutex c_;
};
