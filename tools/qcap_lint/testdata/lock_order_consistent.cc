// qcap-lint-test: as=src/net/ordered.h
// Clean: every function takes the locks in the same global order, and a
// nested scope releasing before re-acquiring is not an inversion.
#pragma once
#include "common/annotations.h"

class Ordered {
 public:
  void Both() {
    MutexLock f(first_);
    MutexLock s(second_);
    ++steps_;
  }
  void BothAgain() {
    MutexLock f(first_);
    MutexLock s(second_);
    ++steps_;
  }
  void OneThenOther() {
    {
      MutexLock f(first_);
    }
    MutexLock s(second_);
  }

 private:
  Mutex first_;
  Mutex second_;
  int steps_ QCAP_GUARDED_BY(first_) = 0;
};
