// qcap-lint-test: as=src/model/a.h
// qcap-lint-test: layer model: workload
// qcap-lint-test: layer workload: model
// Known-bad: a layering cycle, visible twice — the declared graph itself
// cycles (model <-> workload is not a DAG), and the actual include graph
// realizes the cycle. Both reports are layer-violation findings.
// expect-file: layer-violation
// expect-file: layer-violation
#pragma once
#include "workload/b.h"
// qcap-lint-test: file=src/workload/b.h
#pragma once
#include "model/a.h"
