// qcap-lint-test: as=src/workload/fixture.h
#pragma once
// Known-bad: namespace-level using-directive in a header.
#include <string>

using namespace std;  // expect: using-namespace-header

namespace qcap {
string Name();
}  // namespace qcap
