// qcap-lint-test: as=src/net/stats_cache.h
// A reasoned allow() suppresses the cross-TU rule exactly like the
// per-file rules; the unsuppressed sibling one line further down fires.
#pragma once
#include "common/annotations.h"

class StatsCache {
 public:
  // qcap-lint: allow(guarded-field-unlocked-access) -- advisory snapshot; a torn read only staleness-shifts a progress display
  long hint() const { return hits_; }
  long hits() const { return hits_; }  // expect: guarded-field-unlocked-access

 private:
  mutable Mutex lock_;
  long hits_ QCAP_GUARDED_BY(lock_) = 0;
};
