// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: heap allocation inside a marked hot-path region.
#include <cstdlib>
#include <memory>

namespace qcap {

struct Kernel {
  double* scratch = nullptr;

  // qcap-lint: hot-path begin
  double Step(int n) {
    double* tmp = new double[n];  // expect: hot-path-alloc
    auto boxed = std::make_unique<int>(n);  // expect: hot-path-alloc
    void* raw = malloc(16);  // expect: hot-path-alloc
    free(raw);  // expect: hot-path-alloc
    double acc = tmp[0] + static_cast<double>(*boxed);
    delete[] tmp;  // expect: hot-path-alloc
    return acc;
  }
  // qcap-lint: hot-path end

  // Outside the region the same calls are not the linter's business.
  void Setup(int n) { scratch = new double[n]; }
  ~Kernel() { delete[] scratch; }
  Kernel(const Kernel&) = delete;  // `= delete` is not a deallocation
};

}  // namespace qcap
