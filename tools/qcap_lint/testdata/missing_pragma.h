// qcap-lint-test: as=src/engine/fixture.h
// expect-file: missing-pragma-once
// Known-bad: header without an include guard pragma.
#include <cstddef>

namespace qcap {
size_t Footprint();
}  // namespace qcap
