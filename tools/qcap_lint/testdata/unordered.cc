// qcap-lint-test: as=src/alloc/fixture.cc
// Known-bad: hash containers in a deterministic module, plus one annotated
// use whose iteration order is never observed.
#include <string>
#include <unordered_map>  // expect: unordered-container
#include <unordered_set>  // expect: unordered-container

namespace qcap {

std::unordered_map<int, double> MakeCosts();  // expect: unordered-container

// qcap-lint: allow(unordered-container) -- only point lookups, never iterated
std::unordered_set<std::string> g_names_ok();

}  // namespace qcap
