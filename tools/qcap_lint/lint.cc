#include "lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.h"

namespace qcap_lint {

namespace {

// ---------------------------------------------------------------------------
// Path predicates
// ---------------------------------------------------------------------------

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

// common/random.* is the one sanctioned home for entropy: it wraps seeding
// behind qcap::Rng, so the determinism rules do not apply inside it.
bool IsRandomModule(const std::string& path) {
  return path.find("common/random.") != std::string::npos;
}

// Modules whose results must be bit-identical across runs and thread counts.
bool IsDeterministicModule(const std::string& path) {
  for (const char* dir : {"src/alloc/", "src/model/", "src/solver/",
                          "src/cluster/"}) {
    if (path.find(dir) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// qcap-lint directives (comments)
// ---------------------------------------------------------------------------

struct Allow {
  int line = 0;         // line of the directive comment
  std::string rule;
};

struct Region {
  int begin = 0;
  int end = 0;  // 0 while unclosed
};

struct Directives {
  std::vector<Allow> line_allows;       // allow(rule): this line or the next
  std::set<std::string> file_allows;    // allow-file(rule)
  std::vector<Region> hot_paths;        // hot-path begin/end line ranges
  std::vector<Finding> errors;          // bad-directive findings
};

std::string Strip(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

Directives ParseDirectives(const std::string& path,
                           const std::vector<Token>& tokens) {
  Directives d;
  auto bad = [&](int line, const std::string& msg) {
    d.errors.push_back({path, line, "bad-directive", msg});
  };
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    const size_t pos = t.text.find("qcap-lint:");
    if (pos == std::string::npos) continue;
    const std::string body = Strip(t.text.substr(pos + 10));
    if (body == "hot-path begin") {
      if (!d.hot_paths.empty() && d.hot_paths.back().end == 0) {
        bad(t.line, "'hot-path begin' while a hot-path region is already open");
        continue;
      }
      d.hot_paths.push_back({t.line, 0});
      continue;
    }
    if (body == "hot-path end") {
      if (d.hot_paths.empty() || d.hot_paths.back().end != 0) {
        bad(t.line, "'hot-path end' without a matching 'hot-path begin'");
        continue;
      }
      d.hot_paths.back().end = t.line;
      continue;
    }
    const bool is_file = body.rfind("allow-file(", 0) == 0;
    const bool is_line = body.rfind("allow(", 0) == 0;
    if (is_file || is_line) {
      const size_t open = body.find('(');
      const size_t close = body.find(')', open);
      if (close == std::string::npos) {
        bad(t.line, "unterminated allow(...) directive");
        continue;
      }
      const std::string rule = Strip(body.substr(open + 1, close - open - 1));
      if (!IsKnownRule(rule)) {
        bad(t.line, "allow() names unknown rule '" + rule + "'");
        continue;
      }
      if (rule == "bad-directive") {
        bad(t.line, "rule 'bad-directive' cannot be suppressed");
        continue;
      }
      const std::string rest = Strip(body.substr(close + 1));
      if (rest.rfind("--", 0) != 0 || Strip(rest.substr(2)).empty()) {
        bad(t.line, "suppression of '" + rule +
                        "' is missing a reason (expected 'allow(" + rule +
                        ") -- <reason>')");
        continue;
      }
      if (is_file) {
        d.file_allows.insert(rule);
      } else {
        d.line_allows.push_back({t.line, rule});
      }
      continue;
    }
    bad(t.line, "unrecognized qcap-lint directive '" + body + "'");
  }
  if (!d.hot_paths.empty() && d.hot_paths.back().end == 0) {
    bad(d.hot_paths.back().begin, "'hot-path begin' is never closed");
    d.hot_paths.pop_back();
  }
  return d;
}

// ---------------------------------------------------------------------------
// Rule scanning
// ---------------------------------------------------------------------------

bool InSet(const std::string& s, std::initializer_list<const char*> set) {
  for (const char* v : set) {
    if (s == v) return true;
  }
  return false;
}

class Scanner {
 public:
  Scanner(const std::string& path, const std::vector<Token>& all,
          const Directives& directives, std::vector<Finding>* out)
      : path_(path), directives_(directives), out_(out) {
    for (const Token& t : all) {
      if (t.kind == TokenKind::kComment) continue;
      if (t.kind == TokenKind::kPreprocessor) {
        preprocessor_.push_back(t);
        continue;
      }
      code_.push_back(t);
    }
  }

  void Run() {
    const bool header = IsHeaderPath(path_);
    if (header) CheckPragmaOnce();
    const bool random_module = IsRandomModule(path_);
    const bool deterministic = IsDeterministicModule(path_);
    if (deterministic) {
      for (const Token& t : preprocessor_) {
        if (t.text.find("#include") == 0 &&
            t.text.find("unordered_") != std::string::npos) {
          Report(t.line, "unordered-container",
                 "deterministic module includes a std::unordered_* header");
        }
      }
    }
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (!random_module) {
        CheckNondeterministicCall(i);
        CheckUnseededRng(i);
      }
      if (deterministic) CheckUnorderedContainer(i);
      if (InHotPath(t.line)) CheckHotPath(i);
      if (header && t.text == "using" && Next(i) == "namespace") {
        Report(t.line, "using-namespace-header",
               "'using namespace' in a header leaks into every includer");
      }
    }
    CheckIndexInLoop();
    CheckMutableGlobals();
  }

 private:
  std::string Prev(size_t i) const { return i == 0 ? "" : code_[i - 1].text; }
  std::string Next(size_t i) const {
    return i + 1 < code_.size() ? code_[i + 1].text : "";
  }
  std::string Next2(size_t i) const {
    return i + 2 < code_.size() ? code_[i + 2].text : "";
  }

  bool InHotPath(int line) const {
    for (const Region& r : directives_.hot_paths) {
      if (line > r.begin && line < r.end) return true;
    }
    return false;
  }

  void Report(int line, const std::string& rule, const std::string& message) {
    out_->push_back({path_, line, rule, message});
  }

  void CheckPragmaOnce() {
    for (const Token& t : preprocessor_) {
      if (t.text.find("#pragma") == 0 &&
          t.text.find("once") != std::string::npos) {
        return;
      }
    }
    Report(1, "missing-pragma-once", "header is missing '#pragma once'");
  }

  void CheckNondeterministicCall(size_t i) {
    const std::string& name = code_[i].text;
    const std::string prev = Prev(i);
    const std::string next = Next(i);
    const bool member = prev == "." || prev == "->";
    // `RandomAllocator random(99);` declares a variable named `random`; a
    // preceding identifier that is not a statement keyword marks a
    // declaration, not a call.
    const bool declaration =
        i > 0 && code_[i - 1].kind == TokenKind::kIdentifier &&
        !InSet(prev, {"return", "co_return", "co_yield", "case", "else", "do",
                      "throw"});
    auto flag = [&](const std::string& what) {
      Report(code_[i].line, "nondeterministic-call",
             what + " breaks run-to-run determinism; draw from qcap::Rng "
                    "(common/random.h) instead");
    };
    if (!member && !declaration && next == "(" &&
        InSet(name, {"rand", "srand", "random", "drand48", "lrand48",
                     "srand48"})) {
      flag(name + "()");
      return;
    }
    if (name == "random_device") {
      flag("std::random_device");
      return;
    }
    if (name == "now" && prev == "::" && next == "(") {
      flag("clock ::now()");
      return;
    }
    if (!member && next == "(" &&
        InSet(name, {"gettimeofday", "clock_gettime"})) {
      flag(name + "()");
      return;
    }
    // time()/clock(): only the no-argument / time(nullptr) libc idioms, so
    // declarations and members named `time` do not trip the rule.
    if (name == "time" && next == "(" && !member &&
        (prev == "::" || InSet(Next2(i), {"nullptr", "NULL", "0"}))) {
      flag("time()");
      return;
    }
    if (name == "clock" && next == "(" && !member &&
        (prev == "::" || Next2(i) == ")")) {
      flag("clock()");
    }
  }

  void CheckUnseededRng(size_t i) {
    static const std::set<std::string> kEngines = {
        "mt19937",      "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24",     "ranlux48",   "knuth_b",     "default_random_engine",
        "ranlux24_base", "ranlux48_base"};
    if (kEngines.count(code_[i].text) == 0) return;
    const std::string next = Next(i);
    auto flag = [&] {
      Report(code_[i].line, "unseeded-rng",
             "std::" + code_[i].text +
                 " constructed without an explicit seed; derive the seed "
                 "from the run's {seed, island_id} via qcap::Rng");
    };
    // `std::mt19937 rng;` or `std::mt19937 rng{};`
    if (i + 2 < code_.size() && code_[i + 1].kind == TokenKind::kIdentifier) {
      const std::string after = Next2(i);
      if (after == ";") {
        flag();
        return;
      }
      if ((after == "{" || after == "(") && i + 3 < code_.size()) {
        const std::string closer = after == "{" ? "}" : ")";
        if (code_[i + 3].text == closer) flag();
      }
      return;
    }
    // Temporary: `std::mt19937()` / `std::mt19937{}`.
    if ((next == "(" && Next2(i) == ")") || (next == "{" && Next2(i) == "}")) {
      flag();
    }
  }

  void CheckUnorderedContainer(size_t i) {
    if (!InSet(code_[i].text, {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"})) {
      return;
    }
    Report(code_[i].line, "unordered-container",
           "std::" + code_[i].text +
               " has nondeterministic iteration order; deterministic modules "
               "must use std::map/std::set (or annotate why order is never "
               "observed)");
  }

  void CheckHotPath(size_t i) {
    const std::string& name = code_[i].text;
    const std::string prev = Prev(i);
    const std::string next = Next(i);
    if (name == "new") {
      Report(code_[i].line, "hot-path-alloc",
             "'new' inside a hot-path region; preallocate scratch outside "
             "the region");
      return;
    }
    if (name == "delete" && prev != "=") {  // `= delete;` is not a deallocation
      Report(code_[i].line, "hot-path-alloc",
             "'delete' inside a hot-path region");
      return;
    }
    if (next == "(" &&
        InSet(name, {"malloc", "calloc", "realloc", "free", "strdup"})) {
      Report(code_[i].line, "hot-path-alloc",
             name + "() allocates inside a hot-path region");
      return;
    }
    if ((next == "(" || next == "<") &&
        InSet(name, {"make_unique", "make_shared"})) {
      Report(code_[i].line, "hot-path-alloc",
             name + "() allocates inside a hot-path region");
      return;
    }
    if ((prev == "." || prev == "->") && next == "(" &&
        InSet(name, {"push_back", "emplace_back", "emplace", "emplace_front",
                     "push_front", "insert", "resize", "reserve", "append"})) {
      Report(code_[i].line, "hot-path-growth",
             "." + name + "() may reallocate inside a hot-path region; reuse "
                          "steady-state capacity or annotate why it cannot "
                          "grow here");
    }
  }

  // ClassificationIndex construction inside any loop body. The index is
  // "build once per allocator call" by convention (CHANGES.md, PR 3);
  // rebuilding it per iteration silently reintroduces the O(U^2) setup cost.
  void CheckIndexInLoop() {
    struct Brace {
      bool is_loop;
    };
    std::vector<Brace> braces;
    int paren_depth = 0;
    // A loop header we have seen whose body has not started yet:
    // 0 = none, 1 = awaiting '(' (for/while), 2 = inside header parens,
    // 3 = awaiting body ('{' or statement), 4 = unbraced body until ';'.
    int pending = 0;
    int pending_paren_base = 0;
    int unbraced_loops = 0;
    auto in_loop = [&] {
      if (unbraced_loops > 0) return true;
      for (const Brace& b : braces) {
        if (b.is_loop) return true;
      }
      return false;
    };
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      // A loop header just closed and this token is not '{' or ';': the
      // body is a single unbraced statement starting here, so this very
      // token is already inside the loop.
      if (pending == 3 &&
          !(t.kind == TokenKind::kPunct && (t.text == "{" || t.text == ";"))) {
        pending = 0;
        ++unbraced_loops;
      }
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "for" || t.text == "while") {
          pending = 1;
          pending_paren_base = paren_depth;
        } else if (t.text == "do") {
          pending = 3;
        } else if (t.text == "ClassificationIndex" && in_loop()) {
          const std::string next = Next(i);
          const bool construction =
              next == "(" || next == "{" ||
              (i + 1 < code_.size() &&
               code_[i + 1].kind == TokenKind::kIdentifier &&
               InSet(Next2(i), {"(", "{", ";", "="}));
          if (construction) {
            Report(t.line, "index-in-loop",
                   "ClassificationIndex constructed inside a loop body; build "
                   "it once per allocator call and pass it through");
          }
        }
        continue;
      }
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(") {
        ++paren_depth;
        if (pending == 1) pending = 2;
      } else if (t.text == ")") {
        --paren_depth;
        if (pending == 2 && paren_depth == pending_paren_base) pending = 3;
      } else if (t.text == "{") {
        braces.push_back({pending == 3});
        pending = 0;
      } else if (t.text == "}") {
        if (!braces.empty()) braces.pop_back();
      } else if (t.text == ";") {
        // `do ... while(cond);` / `for (...);` empty body ends here.
        if (pending == 3) pending = 0;
        // Statement semicolons at depth 0 close one unbraced body;
        // semicolons inside a for-header (depth > 0) do not.
        if (unbraced_loops > 0 && paren_depth == 0) --unbraced_loops;
      }
    }
  }

  // Mutable namespace-scope variables. Token-level heuristic: at namespace
  // scope, a statement with an `=` initializer (or a plain `Type name;`
  // object definition) that is not const/constexpr and not a function or
  // type declaration is a mutable global.
  void CheckMutableGlobals() {
    size_t i = 0;
    std::vector<bool> scope_is_namespace;  // one entry per open brace
    auto at_namespace_scope = [&] {
      for (bool ns : scope_is_namespace) {
        if (!ns) return false;
      }
      return true;
    };
    std::vector<const Token*> stmt;
    bool stmt_has_eq = false;
    // Structural punctuation only: a string literal whose text is "{" (as in
    // the JSON writers' `out += "{";`) must not perturb brace tracking.
    auto is_punct = [&](const Token& t, const char* text) {
      return t.kind == TokenKind::kPunct && t.text == text;
    };
    auto skip_balanced = [&](const char* open, const char* close) {
      int depth = 0;
      for (; i < code_.size(); ++i) {
        if (is_punct(code_[i], open)) ++depth;
        if (is_punct(code_[i], close) && --depth == 0) {
          ++i;
          return;
        }
      }
    };
    auto analyze = [&] {
      if (stmt.size() < 2) return;
      bool skip = false;
      bool has_eq = false;
      bool has_paren = false;
      for (const Token* t : stmt) {
        if (t->kind == TokenKind::kIdentifier &&
            InSet(t->text,
                  {"using", "typedef", "template", "static_assert", "friend",
                   "extern", "namespace", "operator", "struct", "class",
                   "enum", "union", "concept", "requires", "asm", "const",
                   "constexpr", "constinit", "consteval"})) {
          skip = true;
          break;
        }
        if (t->kind == TokenKind::kPunct && t->text == "=") has_eq = true;
        if (t->kind == TokenKind::kPunct && t->text == "(") has_paren = true;
      }
      if (skip || has_paren) return;
      const Token& last = *stmt.back();
      const bool object_decl =
          has_eq || last.kind == TokenKind::kIdentifier || last.text == "]";
      if (!object_decl) return;
      if (stmt.front()->kind != TokenKind::kIdentifier) return;
      Report(stmt.front()->line, "mutable-global",
             "mutable namespace-scope variable '" +
                 (last.kind == TokenKind::kIdentifier ? last.text
                                                      : std::string("?")) +
                 "'; make it const/constexpr, function-local static, or "
                 "annotate why shared mutable state is required");
    };
    while (i < code_.size()) {
      const Token& t = code_[i];
      if (is_punct(t, "}")) {
        if (!scope_is_namespace.empty()) scope_is_namespace.pop_back();
        stmt.clear();
        stmt_has_eq = false;
        ++i;
        continue;
      }
      if (is_punct(t, ";")) {
        if (at_namespace_scope()) analyze();
        stmt.clear();
        stmt_has_eq = false;
        ++i;
        continue;
      }
      if (is_punct(t, "{")) {
        if (stmt_has_eq) {
          // Brace initializer of the statement under analysis: consume it and
          // keep collecting (`int g_arr[] = {1, 2};`).
          skip_balanced("{", "}");
          continue;
        }
        bool is_namespace = false;
        bool is_type = false;
        for (const Token* s : stmt) {
          if (s->text == "namespace") is_namespace = true;
          if (InSet(s->text, {"struct", "class", "enum", "union"})) {
            is_type = true;
          }
          if (s->text == "extern") is_namespace = true;  // extern "C" { ... }
        }
        if (is_namespace && !is_type) {
          scope_is_namespace.push_back(true);
          ++i;
        } else if (at_namespace_scope()) {
          // Function body, class body, initializer we are not tracking:
          // skip the block wholesale. A type definition is followed by `;`
          // (possibly with a declarator we conservatively ignore).
          skip_balanced("{", "}");
        } else {
          scope_is_namespace.push_back(false);
          ++i;
        }
        stmt.clear();
        stmt_has_eq = false;
        continue;
      }
      if (at_namespace_scope()) {
        stmt.push_back(&t);
        if (is_punct(t, "=")) stmt_has_eq = true;
        if (is_punct(t, "(")) {
          // Parenthesized declarator/decl: consume so commas and semicolons
          // inside default arguments do not end the statement early. The
          // '(' itself is already in stmt, marking this as a declaration
          // with parameters.
          skip_balanced("(", ")");
          continue;
        }
      }
      ++i;
    }
  }

  const std::string path_;
  const Directives& directives_;
  std::vector<Token> code_;
  std::vector<Token> preprocessor_;
  std::vector<Finding>* out_;
};

}  // namespace

bool IsKnownRule(const std::string& rule) {
  for (const char* r : kAllRules) {
    if (rule == r) return true;
  }
  return false;
}

namespace {

// Splits raw findings into (kept, suppressed) per the file's directives.
FileResult Filter(const Directives& directives, std::vector<Finding> raw) {
  FileResult result;
  for (Finding& f : raw) {
    bool allowed = directives.file_allows.count(f.rule) > 0;
    if (!allowed) {
      for (const Allow& a : directives.line_allows) {
        if (a.rule == f.rule && (f.line == a.line || f.line == a.line + 1)) {
          allowed = true;
          break;
        }
      }
    }
    (allowed ? result.suppressed : result.findings).push_back(std::move(f));
  }
  return result;
}

}  // namespace

FileResult LintContent(const std::string& path, const std::string& content) {
  const std::vector<Token> tokens = Lex(content);
  const Directives directives = ParseDirectives(path, tokens);

  std::vector<Finding> raw;
  Scanner(path, tokens, directives, &raw).Run();

  FileResult result = Filter(directives, std::move(raw));
  for (const Finding& e : directives.errors) result.findings.push_back(e);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return result;
}

FileResult ApplySuppressions(const std::string& path,
                             const std::string& content,
                             std::vector<Finding> raw) {
  const std::vector<Token> tokens = Lex(content);
  return Filter(ParseDirectives(path, tokens), std::move(raw));
}

std::string JsonEscape(const std::string& s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace qcap_lint
