#include "project.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "token.h"

namespace qcap_lint {

namespace {

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Symbol table: what the annotations in headers declare
// ---------------------------------------------------------------------------

struct ClassInfo {
  std::set<std::string> mutexes;                       // mutex-typed members
  std::map<std::string, std::string> guarded;          // field -> mutex
  std::map<std::string, std::set<std::string>> holds;  // method -> REQUIRES
};

// Classes are keyed by bare name; the codebase has no cross-namespace
// class-name collisions among annotated types, and a collision would only
// widen (never silence) the checks.
using SymbolTable = std::map<std::string, ClassInfo>;

// Strips comments; keeps everything else in order.
std::vector<Token> CodeTokens(const std::vector<Token>& all) {
  std::vector<Token> code;
  for (const Token& t : all) {
    if (t.kind != TokenKind::kComment) code.push_back(t);
  }
  return code;
}

// Skips a balanced (...) starting at the '(' at index i; returns the index
// one past the matching ')'. Returns code.size() when unbalanced.
size_t SkipParens(const std::vector<Token>& code, size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    else if (IsPunct(code[i], ")") && --depth == 0) return i + 1;
  }
  return i;
}

// Joins the tokens of a parenthesized argument at paren depth 1 into a
// normalized expression string: "this ->" prefixes are dropped so a held
// "this->mu_" and a field guarded by "mu_" compare equal.
std::string JoinExpr(const std::vector<Token>& code, size_t begin,
                     size_t end) {
  std::string out;
  size_t i = begin;
  if (i + 1 < end && code[i].text == "this" && IsPunct(code[i + 1], "->")) {
    i += 2;
  }
  for (; i < end; ++i) out += code[i].text;
  return out;
}

// Splits the argument tokens of a call `( ... )` (i at '(') into top-level
// comma-separated argument expressions. Returns index past ')'.
size_t SplitArgs(const std::vector<Token>& code, size_t i,
                 std::vector<std::string>* args) {
  const size_t past = SkipParens(code, i);
  int depth = 0;
  size_t arg_begin = i + 1;
  for (size_t j = i; j < past; ++j) {
    if (IsPunct(code[j], "(") || IsPunct(code[j], "<")) ++depth;
    else if (IsPunct(code[j], ")") || IsPunct(code[j], ">")) --depth;
    else if (IsPunct(code[j], ",") && depth == 1) {
      if (j > arg_begin) args->push_back(JoinExpr(code, arg_begin, j));
      arg_begin = j + 1;
    }
  }
  if (past >= 1 && past - 1 > arg_begin) {
    args->push_back(JoinExpr(code, arg_begin, past - 1));
  }
  return past;
}

// Shared class-scope tracker for both passes. Reports, at each token,
// which class body (if any) the token is directly inside.
class ClassTracker {
 public:
  // Feed every token in order; call before inspecting the token at i.
  void Step(const std::vector<Token>& code, size_t i) {
    const Token& t = code[i];
    if (IsPunct(t, "{")) {
      ++depth_;
      if (pending_open_ && depth_ == pending_depth_ + 1) {
        stack_.push_back({pending_name_, depth_});
        pending_open_ = false;
      }
      return;
    }
    if (IsPunct(t, "}")) {
      if (!stack_.empty() && depth_ == stack_.back().body_depth) {
        stack_.pop_back();
      }
      --depth_;
      return;
    }
    if (IsPunct(t, ";") && pending_open_ && depth_ == pending_depth_) {
      pending_open_ = false;  // forward declaration
      return;
    }
    if (!IsIdent(t)) return;
    if ((t.text == "class" || t.text == "struct") &&
        (i == 0 || code[i - 1].text != "enum")) {
      // Name = first identifier after the keyword that is not an attribute
      // macro call (e.g. `class QCAP_CAPABILITY("mutex") Mutex {`).
      size_t j = i + 1;
      while (j < code.size()) {
        if (IsPunct(code[j], "{") || IsPunct(code[j], ";")) break;
        if (IsIdent(code[j])) {
          if (j + 1 < code.size() && IsPunct(code[j + 1], "(")) {
            j = SkipParens(code, j + 1);
            continue;
          }
          pending_name_ = code[j].text;
          pending_open_ = true;
          pending_depth_ = depth_;
          break;
        }
        ++j;
      }
    }
  }

  // Class whose body directly contains the current scope, or "" if none.
  std::string Current() const {
    return stack_.empty() ? "" : stack_.back().name;
  }
  // True when the current token sits directly in the innermost class body
  // (member-declaration scope, not inside a nested method body).
  bool AtClassScope() const {
    return !stack_.empty() && depth_ == stack_.back().body_depth;
  }
  int depth() const { return depth_; }

 private:
  struct Open {
    std::string name;
    int body_depth;  // depth inside the class body
  };
  std::vector<Open> stack_;
  int depth_ = 0;
  bool pending_open_ = false;
  std::string pending_name_;
  int pending_depth_ = 0;
};

void CollectSymbols(const std::vector<Token>& code, SymbolTable* table) {
  ClassTracker classes;
  for (size_t i = 0; i < code.size(); ++i) {
    classes.Step(code, i);
    const Token& t = code[i];
    if (!IsIdent(t) || !classes.AtClassScope()) continue;
    ClassInfo& info = (*table)[classes.Current()];

    // Mutex members: `[mutable] [std::|qcap::] Mutex|mutex name_;`.
    if ((t.text == "Mutex" || t.text == "mutex") && i + 2 < code.size() &&
        IsIdent(code[i + 1]) &&
        (IsPunct(code[i + 2], ";") || code[i + 2].text.rfind("QCAP_", 0) == 0)) {
      info.mutexes.insert(code[i + 1].text);
      continue;
    }

    // `Type field_ QCAP_GUARDED_BY(mu_) [= init];`
    if (t.text == "QCAP_GUARDED_BY" && i > 0 && IsIdent(code[i - 1]) &&
        i + 1 < code.size() && IsPunct(code[i + 1], "(")) {
      std::vector<std::string> args;
      SplitArgs(code, i + 1, &args);
      if (args.size() == 1) info.guarded[code[i - 1].text] = args[0];
      continue;
    }

    // `Ret Method(...) [const] QCAP_REQUIRES(mu_[, mu2_]);` — walk back
    // over qualifiers and earlier QCAP_ macros to the parameter list, whose
    // preceding identifier is the method name.
    if (t.text == "QCAP_REQUIRES" && i + 1 < code.size() &&
        IsPunct(code[i + 1], "(")) {
      std::vector<std::string> args;
      SplitArgs(code, i + 1, &args);
      size_t j = i;
      std::string method;
      while (j > 0) {
        --j;
        if (IsIdent(code[j]) &&
            (code[j].text == "const" || code[j].text == "noexcept" ||
             code[j].text == "override" || code[j].text == "final")) {
          continue;
        }
        if (IsPunct(code[j], ")")) {
          int depth = 0;
          while (j > 0) {
            if (IsPunct(code[j], ")")) ++depth;
            if (IsPunct(code[j], "(") && --depth == 0) break;
            --j;
          }
          if (j > 0 && IsIdent(code[j - 1])) {
            if (code[j - 1].text.rfind("QCAP_", 0) == 0) {
              j -= 1;  // another annotation macro; keep walking back
              continue;
            }
            method = code[j - 1].text;
          }
        }
        break;
      }
      if (!method.empty()) {
        info.holds[method].insert(args.begin(), args.end());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Function-body pass: guarded accesses and the lock acquisition graph
// ---------------------------------------------------------------------------

struct LockEdge {
  std::string from;  // qualified mutex, e.g. "Dispatcher::lock_"
  std::string to;
  std::string file;
  int line = 0;
};

constexpr const char* kScopedLockTypes[] = {"MutexLock", "lock_guard",
                                            "unique_lock", "scoped_lock"};

bool IsScopedLockType(const std::string& name) {
  for (const char* t : kScopedLockTypes) {
    if (name == t) return true;
  }
  return false;
}

class BodyAnalyzer {
 public:
  BodyAnalyzer(const std::string& path, const std::vector<Token>& code,
               const SymbolTable& symbols, std::vector<Finding>* findings,
               std::vector<LockEdge>* edges)
      : path_(path), code_(code), symbols_(symbols), findings_(findings),
        edges_(edges) {}

  void Run() {
    for (size_t i = 0; i < code_.size(); ++i) {
      classes_.Step(code_, i);
      if (in_fn_) {
        if (classes_.depth() < fn_body_depth_) {
          in_fn_ = false;  // the body's closing brace just popped
        } else {
          // Scoped locks die with their enclosing block.
          while (!scoped_.empty() &&
                 scoped_.back().second > classes_.depth()) {
            scoped_.pop_back();
          }
        }
      }
      if (in_fn_) {
        i = Analyze(i);
      } else {
        i = MaybeEnterFunction(i);
      }
    }
  }

 private:
  // Qualifies a member mutex name with its class for the global graph.
  std::string Qualify(const std::string& mutex) const {
    if (mutex.find('.') != std::string::npos ||
        mutex.find(':') != std::string::npos || fn_class_.empty()) {
      return mutex;
    }
    return fn_class_ + "::" + mutex;
  }

  std::vector<std::string> HeldNow() const {
    std::vector<std::string> held(required_.begin(), required_.end());
    for (const auto& [mu, depth] : scoped_) held.push_back(mu);
    for (const std::string& mu : manual_) held.push_back(mu);
    return held;
  }

  bool Holds(const std::string& mutex) const {
    for (const std::string& held : HeldNow()) {
      if (held == mutex) return true;
    }
    return false;
  }

  void Acquire(const std::string& mutex, int line) {
    for (const std::string& held : HeldNow()) {
      if (held != mutex) {
        edges_->push_back({Qualify(held), Qualify(mutex), path_, line});
      }
    }
  }

  // Recognizes a function definition starting at token i and enters it.
  // Returns the index to resume from.
  size_t MaybeEnterFunction(size_t i) {
    const Token& t = code_[i];
    std::string cls;
    std::string name;
    size_t paren = 0;  // index of the parameter list's '('
    bool dtor = false;

    if (classes_.AtClassScope() && IsIdent(t) && i + 1 < code_.size() &&
        IsPunct(code_[i + 1], "(") && t.text.rfind("QCAP_", 0) != 0) {
      // Possible inline member function of the current class.
      cls = classes_.Current();
      name = t.text;
      dtor = i > 0 && IsPunct(code_[i - 1], "~");
      paren = i + 1;
    } else if (!classes_.AtClassScope() && IsIdent(t) && i + 3 < code_.size() &&
               IsPunct(code_[i + 1], "::")) {
      // Possible out-of-line member: `Class :: [~] Name (`. Namespace
      // braces keep depth > 0, so this matches anywhere outside a class
      // body; a qualified CALL with this shape is rejected below because
      // its statement ends in ';' before any body brace appears.
      size_t j = i + 2;
      if (IsPunct(code_[j], "~")) {
        dtor = true;
        ++j;
      }
      if (j + 1 < code_.size() && IsIdent(code_[j]) &&
          IsPunct(code_[j + 1], "(")) {
        cls = t.text;
        name = code_[j].text;
        paren = j + 1;
      }
    }
    auto sym = paren == 0 ? symbols_.end() : symbols_.find(cls);
    if (sym == symbols_.end()) return i;
    // Only classes with lock annotations get body tracking; anything else
    // (helper classes, std, enums) has nothing to check and skipping them
    // avoids misreading qualified calls as definitions.
    const ClassInfo& info = sym->second;
    if (info.mutexes.empty() && info.guarded.empty() && info.holds.empty()) {
      return i;
    }

    // Parameter list, then either a body `{`, a pure declaration `;`, or
    // `= default/delete`. The scan tolerates member-initializer lists
    // (their parens/braces are balanced sub-expressions).
    size_t j = SkipParens(code_, paren);
    int depth = 0;
    for (; j < code_.size(); ++j) {
      if (IsPunct(code_[j], "(")) ++depth;
      else if (IsPunct(code_[j], ")")) --depth;
      else if (depth == 0 && (IsPunct(code_[j], ";") || IsPunct(code_[j], "=")))
        return i;  // declaration or defaulted — no body to analyze
      else if (depth == 0 && IsPunct(code_[j], "{")) {
        // A member-initializer brace-init (`: f_{...}`) also hits here;
        // analyzing from it is harmless (same held-set, same class).
        break;
      }
    }
    if (j >= code_.size()) return i;

    in_fn_ = true;
    fn_class_ = cls;
    fn_name_ = name;
    fn_exempt_ = dtor || name == cls;  // ctors/dtors run single-threaded
    fn_body_depth_ = classes_.depth() + 1;
    scoped_.clear();
    manual_.clear();
    required_.clear();
    auto it = info.holds.find(name);
    if (it != info.holds.end()) required_ = it->second;
    return j - 1;  // let the main loop process the '{'
  }

  // Analyzes the token at i inside a function body; returns resume index.
  size_t Analyze(size_t i) {
    const Token& t = code_[i];
    if (!IsIdent(t)) return i;
    const ClassInfo& info = symbols_.at(fn_class_);

    // Scoped lock declaration: `Type[<...>] var(mu_ [, ...]);`
    if (IsScopedLockType(t.text)) {
      size_t j = i + 1;
      if (j < code_.size() && IsPunct(code_[j], "<")) {
        int depth = 0;
        for (; j < code_.size(); ++j) {
          if (IsPunct(code_[j], "<")) ++depth;
          else if (IsPunct(code_[j], ">") && --depth == 0) { ++j; break; }
        }
      }
      if (j + 1 < code_.size() && IsIdent(code_[j]) &&
          IsPunct(code_[j + 1], "(")) {
        std::vector<std::string> args;
        const size_t past = SplitArgs(code_, j + 1, &args);
        bool defer = false;
        for (const std::string& a : args) {
          if (a == "std::defer_lock" || a == "defer_lock" ||
              a == "std::try_to_lock" || a == "try_to_lock") {
            defer = true;
          }
        }
        if (!defer) {
          for (const std::string& a : args) {
            if (a == "std::adopt_lock" || a == "adopt_lock") continue;
            Acquire(a, t.line);
            scoped_.push_back({a, classes_.depth()});
          }
        }
        return past - 1;
      }
      return i;
    }

    // Manual mu_.lock() / mu_.unlock().
    if ((t.text == "lock" || t.text == "unlock") && i >= 2 &&
        IsPunct(code_[i - 1], ".") && IsIdent(code_[i - 2]) &&
        i + 2 < code_.size() && IsPunct(code_[i + 1], "(") &&
        IsPunct(code_[i + 2], ")")) {
      const std::string mu = code_[i - 2].text;
      if (t.text == "lock") {
        Acquire(mu, t.line);
        manual_.insert(mu);
      } else {
        manual_.erase(mu);
      }
      return i + 2;
    }

    // Guarded-field access.
    auto guarded = info.guarded.find(t.text);
    if (guarded != info.guarded.end() && !fn_exempt_) {
      const bool qualified =
          i > 0 && (IsPunct(code_[i - 1], ".") || IsPunct(code_[i - 1], "->") ||
                    IsPunct(code_[i - 1], "::"));
      const bool via_this = i >= 2 && IsPunct(code_[i - 1], "->") &&
                            code_[i - 2].text == "this";
      if ((!qualified || via_this) && !Holds(guarded->second)) {
        findings_->push_back(
            {path_, t.line, "guarded-field-unlocked-access",
             "field '" + t.text + "' is guarded by '" + guarded->second +
                 "' (" + fn_class_ + ") but " + fn_class_ + "::" + fn_name_ +
                 " touches it without holding the lock; take the lock or "
                 "annotate the function QCAP_REQUIRES(" + guarded->second +
                 ")"});
      }
    }
    return i;
  }

  const std::string path_;
  const std::vector<Token>& code_;
  const SymbolTable& symbols_;
  std::vector<Finding>* findings_;
  std::vector<LockEdge>* edges_;

  ClassTracker classes_;
  bool in_fn_ = false;
  std::string fn_class_;
  std::string fn_name_;
  bool fn_exempt_ = false;
  int fn_body_depth_ = 0;
  std::vector<std::pair<std::string, int>> scoped_;  // (mutex, decl depth)
  std::set<std::string> manual_;
  std::set<std::string> required_;
};

// Reports each distinct lock-order cycle once, anchored at the edge that
// closes it (deterministically: edges are visited in sorted order).
void FindLockOrderCycles(std::vector<LockEdge> edges,
                         std::map<std::string, std::vector<Finding>>* by_file) {
  std::sort(edges.begin(), edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to, a.file, a.line) <
                     std::tie(b.from, b.to, b.file, b.line);
            });
  std::map<std::string, std::vector<const LockEdge*>> graph;
  for (const LockEdge& e : edges) graph[e.from].push_back(&e);

  std::set<std::string> reported;  // canonical cycle signatures
  std::vector<std::string> path;
  std::set<std::string> on_path;
  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        path.push_back(node);
        on_path.insert(node);
        for (const LockEdge* e : graph[node]) {
          if (on_path.count(e->to)) {
            // Cycle: the path suffix from e->to plus this edge.
            std::vector<std::string> cycle;
            bool in = false;
            for (const std::string& n : path) {
              if (n == e->to) in = true;
              if (in) cycle.push_back(n);
            }
            std::vector<std::string> canon = cycle;
            std::sort(canon.begin(), canon.end());
            std::string sig;
            for (const std::string& n : canon) sig += n + "|";
            if (reported.insert(sig).second) {
              std::string chain;
              for (const std::string& n : cycle) chain += n + " -> ";
              chain += e->to;
              (*by_file)[e->file].push_back(
                  {e->file, e->line, "lock-order",
                   "lock acquisition order cycle: " + chain +
                       " (this acquisition closes the cycle; pick one global "
                       "order and take the locks in it everywhere)"});
            }
            continue;
          }
          if (on_path.count(e->to) == 0) visit(e->to);
        }
        on_path.erase(node);
        path.pop_back();
      };
  std::set<std::string> roots;
  for (const LockEdge& e : edges) roots.insert(e.from);
  for (const std::string& r : roots) visit(r);
}

// ---------------------------------------------------------------------------
// Module layering
// ---------------------------------------------------------------------------

// Detects a cycle in a module dependency graph; returns the cycle as
// "a -> b -> a", or "" if the graph is a DAG.
std::string FindModuleCycle(
    const std::map<std::string, std::set<std::string>>& graph) {
  std::set<std::string> done;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  std::string cycle;
  std::function<void(const std::string&)> visit = [&](const std::string& n) {
    if (!cycle.empty() || done.count(n)) return;
    if (on_path.count(n)) {
      bool in = false;
      for (const std::string& p : path) {
        if (p == n) in = true;
        if (in) cycle += p + " -> ";
      }
      cycle += n;
      return;
    }
    on_path.insert(n);
    path.push_back(n);
    auto it = graph.find(n);
    if (it != graph.end()) {
      for (const std::string& m : it->second) visit(m);
    }
    path.pop_back();
    on_path.erase(n);
    done.insert(n);
  };
  for (const auto& [n, deps] : graph) visit(n);
  return cycle;
}

void CheckLayers(const std::vector<ProjectFile>& files,
                 const LayerConfig& layers,
                 std::map<std::string, std::vector<Finding>>* by_file,
                 std::vector<Finding>* config_findings) {
  for (const Finding& e : layers.errors) config_findings->push_back(e);

  const std::string declared_cycle = FindModuleCycle(layers.deps);
  if (!declared_cycle.empty()) {
    config_findings->push_back(
        {layers.path, 1, "layer-violation",
         ".qcap-layers declares a dependency cycle: " + declared_cycle +
             "; the module graph must be a DAG"});
  }

  std::map<std::string, std::set<std::string>> actual;
  std::map<std::string, const IncludeEdge*> first_edge;  // "a>b" -> edge
  const std::vector<IncludeEdge> edges = ModuleEdges(files);
  for (const IncludeEdge& e : edges) {
    actual[e.from].insert(e.to);
    first_edge.emplace(e.from + ">" + e.to, &e);

    auto from = layers.deps.find(e.from);
    if (from == layers.deps.end()) {
      (*by_file)[e.file].push_back(
          {e.file, e.line, "layer-violation",
           "module '" + e.from + "' is not declared in " + layers.path +
               "; add it to the layering DAG (docs/LINT.md)"});
      continue;
    }
    if (layers.deps.count(e.to) == 0) {
      (*by_file)[e.file].push_back(
          {e.file, e.line, "layer-violation",
           "#include \"" + e.include_path + "\" pulls in module '" + e.to +
               "', which is not declared in " + layers.path});
      continue;
    }
    if (from->second.count(e.to) == 0) {
      (*by_file)[e.file].push_back(
          {e.file, e.line, "layer-violation",
           "#include \"" + e.include_path + "\" creates a '" + e.from +
               "' -> '" + e.to + "' edge that " + layers.path +
               " does not allow"});
    }
  }

  const std::string actual_cycle = FindModuleCycle(actual);
  if (!actual_cycle.empty()) {
    // Anchor the report at the include that creates the cycle's first edge.
    const std::string a = actual_cycle.substr(0, actual_cycle.find(" ->"));
    for (const auto& [key, e] : first_edge) {
      if (key.rfind(a + ">", 0) == 0 &&
          actual_cycle.find("-> " + key.substr(a.size() + 1)) !=
              std::string::npos) {
        (*by_file)[e->file].push_back(
            {e->file, e->line, "layer-violation",
             "module include cycle: " + actual_cycle +
                 " (this include contributes the first edge)"});
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

LayerConfig ParseLayerConfig(const std::string& path,
                             const std::string& content) {
  LayerConfig config;
  config.loaded = true;
  config.path = path;
  int lineno = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    const size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);

    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      config.errors.push_back(
          {path, lineno, "bad-directive",
           "malformed .qcap-layers line (expected '<module>: <dep>...'): '" +
               line + "'"});
      continue;
    }
    const std::string module = line.substr(0, colon);
    if (module.find(' ') != std::string::npos) {
      config.errors.push_back({path, lineno, "bad-directive",
                               "malformed .qcap-layers module name '" +
                                   module + "'"});
      continue;
    }
    std::set<std::string>& deps = config.deps[module];
    size_t i = colon + 1;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > start) deps.insert(line.substr(start, i - start));
    }
  }
  return config;
}

std::string ModuleOf(const std::string& path) {
  auto component_after = [&](const std::string& root) -> size_t {
    if (path.rfind(root, 0) == 0) return root.size();
    const size_t p = path.find("/" + root);
    return p == std::string::npos ? std::string::npos : p + 1 + root.size();
  };
  size_t after = component_after("src/");
  if (after != std::string::npos) {
    const size_t slash = path.find('/', after);
    if (slash == std::string::npos) return "qcap";  // file directly in src/
    return path.substr(after, slash - after);
  }
  if (component_after("tests/") != std::string::npos) return "tests";
  return "";
}

std::string IncludedModule(const std::string& include_path) {
  const size_t slash = include_path.find('/');
  if (slash == std::string::npos) return "qcap";
  return include_path.substr(0, slash);
}

std::vector<IncludeEdge> ModuleEdges(const std::vector<ProjectFile>& files) {
  // Quoted includes resolve relative to the including file first (C++
  // semantics), then against src/. The file universe stands in for the
  // filesystem so the pass stays pure.
  std::set<std::string> universe;
  for (const ProjectFile& file : files) universe.insert(file.path);

  std::vector<IncludeEdge> edges;
  for (const ProjectFile& file : files) {
    const std::string from = ModuleOf(file.path);
    if (from.empty()) continue;
    const size_t last_slash = file.path.rfind('/');
    const std::string dir =
        last_slash == std::string::npos ? "" : file.path.substr(0, last_slash + 1);
    for (const Token& t : Lex(file.content)) {
      if (t.kind != TokenKind::kPreprocessor) continue;
      if (t.text.find("#include") != 0 &&
          t.text.find("# include") != 0) {
        continue;
      }
      const size_t open = t.text.find('"');
      if (open == std::string::npos) continue;  // <...> system include
      const size_t close = t.text.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string inc = t.text.substr(open + 1, close - open - 1);
      std::string to;
      if (universe.count(dir + inc)) {
        to = ModuleOf(dir + inc);  // sibling include, e.g. "test_util.h"
      } else {
        to = IncludedModule(inc);
      }
      if (to.empty() || to == from) continue;
      edges.push_back({from, to, file.path, t.line, inc});
    }
  }
  return edges;
}

ProjectResult LintProject(const std::vector<ProjectFile>& files,
                          const LayerConfig& layers) {
  SymbolTable symbols;
  std::vector<std::pair<const ProjectFile*, std::vector<Token>>> lexed;
  lexed.reserve(files.size());
  for (const ProjectFile& file : files) {
    lexed.emplace_back(&file, CodeTokens(Lex(file.content)));
    CollectSymbols(lexed.back().second, &symbols);
  }

  std::map<std::string, std::vector<Finding>> by_file;
  std::vector<LockEdge> edges;
  for (const auto& [file, code] : lexed) {
    BodyAnalyzer(file->path, code, symbols, &by_file[file->path], &edges)
        .Run();
  }
  FindLockOrderCycles(std::move(edges), &by_file);

  ProjectResult result;
  if (layers.loaded) {
    CheckLayers(files, layers, &by_file, &result.findings);
  }

  for (const ProjectFile& file : files) {
    auto it = by_file.find(file.path);
    if (it == by_file.end() || it->second.empty()) continue;
    FileResult filtered =
        ApplySuppressions(file.path, file.content, std::move(it->second));
    for (Finding& f : filtered.findings) {
      result.findings.push_back(std::move(f));
    }
    for (Finding& f : filtered.suppressed) {
      result.suppressed.push_back(std::move(f));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

}  // namespace qcap_lint
