// Pins the committed .qcap-layers to the real include graph:
//
//   1. every actual cross-module include edge is declared (no layering
//      violations slip in),
//   2. every declared edge is exercised by at least one include (no stale
//      declarations rot in the config), and
//   3. both the declared and the actual graphs are DAGs.
//
// QCAP_LINT_SOURCE_ROOT points at the repo root at build time.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "project.h"

namespace qcap_lint {
namespace {

namespace fs = std::filesystem;

std::string SourceRoot() { return QCAP_LINT_SOURCE_ROOT; }

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Same file universe the qcap_lint_tree ctest lints: src/ and tests/.
std::vector<ProjectFile> LoadTree() {
  std::vector<ProjectFile> files;
  for (const char* top : {"src", "tests"}) {
    const fs::path root = fs::path(SourceRoot()) / top;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      // Store repo-relative paths so ModuleOf sees "src/..." / "tests/...".
      const std::string rel =
          fs::relative(entry.path(), SourceRoot()).generic_string();
      files.push_back({rel, ReadFile(entry.path())});
    }
  }
  EXPECT_GT(files.size(), 50u) << "tree scan looks wrong";
  return files;
}

LayerConfig LoadConfig() {
  const fs::path p = fs::path(SourceRoot()) / ".qcap-layers";
  EXPECT_TRUE(fs::is_regular_file(p)) << ".qcap-layers missing at repo root";
  LayerConfig config = ParseLayerConfig(p.string(), ReadFile(p));
  EXPECT_TRUE(config.errors.empty()) << config.errors.front().message;
  return config;
}

using EdgeSet = std::set<std::pair<std::string, std::string>>;

EdgeSet ActualEdges(const std::vector<ProjectFile>& files) {
  EdgeSet actual;
  for (const IncludeEdge& e : ModuleEdges(files)) {
    actual.insert({e.from, e.to});
  }
  return actual;
}

TEST(QcapLayers, EveryActualEdgeIsDeclared) {
  const LayerConfig config = LoadConfig();
  for (const IncludeEdge& e : ModuleEdges(LoadTree())) {
    auto it = config.deps.find(e.from);
    ASSERT_TRUE(it != config.deps.end())
        << "module '" << e.from << "' (" << e.file
        << ") is not declared in .qcap-layers";
    EXPECT_TRUE(it->second.count(e.to))
        << e.file << ":" << e.line << ": undeclared edge " << e.from
        << " -> " << e.to << " (#include \"" << e.include_path << "\")";
  }
}

TEST(QcapLayers, NoStaleDeclaredEdges) {
  const LayerConfig config = LoadConfig();
  const EdgeSet actual = ActualEdges(LoadTree());
  for (const auto& [module, deps] : config.deps) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(actual.count({module, dep}))
          << ".qcap-layers declares " << module << " -> " << dep
          << " but no include creates that edge; prune the stale entry";
    }
  }
}

TEST(QcapLayers, DeclaredGraphIsADag) {
  // A cycle in the declared graph is a layer-violation finding against the
  // config file itself; an empty project isolates that check.
  const ProjectResult r = LintProject({}, LoadConfig());
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.message;
  }
}

TEST(QcapLayers, TreeHasNoLayerFindings) {
  const LayerConfig config = LoadConfig();
  const ProjectResult r = LintProject(LoadTree(), config);
  for (const Finding& f : r.findings) {
    if (f.rule == "layer-violation") {
      ADD_FAILURE() << f.file << ":" << f.line << ": " << f.message;
    }
  }
}

}  // namespace
}  // namespace qcap_lint
