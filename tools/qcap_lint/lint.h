#pragma once

#include <string>
#include <vector>

namespace qcap_lint {

/// Rule identifiers. The id is what appears in diagnostics
/// (`[rule-id]`) and what `// qcap-lint: allow(<rule-id>)` names.
/// The authoritative rule table (rationale + examples) is docs/LINT.md.
inline constexpr const char* kAllRules[] = {
    "nondeterministic-call",   // rand/time/random_device/clock::now outside common/random
    "unseeded-rng",            // argless std engine construction
    "unordered-container",     // std::unordered_* in deterministic modules
    "hot-path-alloc",          // new/delete/malloc/... in a hot-path region
    "hot-path-growth",         // .push_back/.resize/... in a hot-path region
    "index-in-loop",           // ClassificationIndex constructed in a loop body
    "missing-pragma-once",     // header without #pragma once
    "using-namespace-header",  // using namespace at header scope
    "mutable-global",          // mutable namespace-scope variable
    "bad-directive",           // malformed or reasonless qcap-lint comment
    // Cross-TU rules (project.h); they need the whole tree, so LintContent
    // alone never produces them.
    "guarded-field-unlocked-access",  // GUARDED_BY field touched lock-free
    "lock-order",                     // cycle in the lock acquisition graph
    "layer-violation",                // include edge not in .qcap-layers
};

struct Finding {
  std::string file;   // path as given to the linter
  int line = 0;       // 1-based
  std::string rule;   // one of kAllRules
  std::string message;
};

struct FileResult {
  std::vector<Finding> findings;    // unsuppressed — these fail the build
  std::vector<Finding> suppressed;  // matched by an allow() with a reason
};

/// Lints one file's contents. `path` is used both for diagnostics and for
/// path-dependent rules (deterministic modules, the common/random exemption,
/// header-only rules); pass the repo-relative path.
FileResult LintContent(const std::string& path, const std::string& content);

/// True if `rule` is a known rule id.
bool IsKnownRule(const std::string& rule);

/// Routes findings produced outside LintContent (the cross-TU pass) through
/// a file's suppression directives: allow-file(rule) and line allow(rule)
/// comments apply exactly as they do to per-file findings. Does NOT re-emit
/// directive-syntax errors (LintContent already reports those once).
FileResult ApplySuppressions(const std::string& path,
                             const std::string& content,
                             std::vector<Finding> raw);

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and every control character (U+0000..U+001F) per RFC 8259.
std::string JsonEscape(const std::string& s);

}  // namespace qcap_lint
