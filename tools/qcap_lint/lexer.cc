#include "token.h"

#include <cctype>

namespace qcap_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we keep intact; everything else is emitted
// one character at a time. "::" matters for qualified-name checks.
const char* kPuncts[] = {"::", "->", "<<=", ">>=", "<=>", "...", "<<", ">>",
                        "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
                        "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (source[i] == '\n') {
        ++line;
        at_line_start = true;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor line: '#' as the first non-whitespace character.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          text += ' ';
          advance(2);
          continue;
        }
        if (source[i] == '\n') break;
        text += source[i];
        advance(1);
      }
      tokens.push_back({TokenKind::kPreprocessor, text, start_line});
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      tokens.push_back(
          {TokenKind::kComment, source.substr(i + 2, j - i - 2), start_line});
      advance(j - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) ++j;
      const size_t end = (j + 1 < n) ? j + 2 : n;
      tokens.push_back(
          {TokenKind::kComment, source.substr(i + 2, j - i - 2), start_line});
      advance(end - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(') delim += source[j++];
      const std::string closer = ")" + delim + "\"";
      const size_t body = (j < n) ? j + 1 : n;
      const size_t close = source.find(closer, body);
      const size_t end = (close == std::string::npos) ? n : close + closer.size();
      tokens.push_back({TokenKind::kString,
                        source.substr(body, (close == std::string::npos
                                                 ? n
                                                 : close) -
                                                body),
                        line});
      advance(end - i);
      continue;
    }

    // String / char literals (with escape handling).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) {
          text += source[j];
          text += source[j + 1];
          j += 2;
          continue;
        }
        text += source[j];
        ++j;
      }
      tokens.push_back({quote == '"' ? TokenKind::kString
                                     : TokenKind::kCharLiteral,
                        text, start_line});
      advance((j < n ? j + 1 : n) - i);
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      tokens.push_back({TokenKind::kIdentifier, source.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Number (covers ints, floats, hex, digit separators well enough).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i;
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back({TokenKind::kNumber, source.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Punctuation: longest known multi-char operator first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        tokens.push_back({TokenKind::kPunct, p, line});
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return tokens;
}

}  // namespace qcap_lint
