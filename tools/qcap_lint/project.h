// Project-level (cross-TU) analysis: the lock-discipline rules
// (guarded-field-unlocked-access, lock-order) and the module layering
// rule (layer-violation).
//
// Unlike lint.h's LintContent, which sees one file at a time, the passes
// here need the whole tree: GUARDED_BY/REQUIRES annotations live on the
// declarations in headers while the accesses live in .cc bodies, the lock
// acquisition graph only cycles across functions, and an include edge is
// only judgeable against the committed module DAG (.qcap-layers).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace qcap_lint {

/// One source file handed to the project pass.
struct ProjectFile {
  std::string path;
  std::string content;
};

/// Parsed `.qcap-layers` module DAG: `<module>: <dep> <dep>...` per line,
/// `#` comments. Every module that appears in the tree must be declared;
/// an include edge is legal only if listed.
struct LayerConfig {
  bool loaded = false;
  std::string path;  ///< Where the config was found (diagnostics).
  /// module -> modules it may include. A declared module with no deps has
  /// an entry with an empty set.
  std::map<std::string, std::set<std::string>> deps;
  /// Malformed-line findings (rule bad-directive) against `path`.
  std::vector<Finding> errors;
};

/// Parses a `.qcap-layers` file. Never fails hard: malformed lines become
/// findings in the returned config's `errors`.
LayerConfig ParseLayerConfig(const std::string& path,
                             const std::string& content);

/// Maps a file path to its layering module: the path component after
/// `src/` ("src/alloc/memetic.cc" -> "alloc"), "qcap" for files directly
/// under src/ ("src/qcap.h"), "tests" for anything under tests/, and ""
/// (exempt from layer checks) for everything else.
std::string ModuleOf(const std::string& path);

/// Module a quoted `#include "<path>"` resolves to. Project includes are
/// rooted at src/, so "common/stats.h" -> "common" and "qcap.h" -> "qcap".
std::string IncludedModule(const std::string& include_path);

/// One module-level include edge, with the include that created it.
struct IncludeEdge {
  std::string from;  ///< Including file's module.
  std::string to;    ///< Included header's module.
  std::string file;  ///< Including file.
  int line = 0;      ///< Line of the #include.
  std::string include_path;  ///< The quoted include text.
};

/// Extracts every cross-module include edge (self-edges and files outside
/// the module universe are dropped).
std::vector<IncludeEdge> ModuleEdges(const std::vector<ProjectFile>& files);

/// Cross-TU findings, suppression-filtered per file exactly like
/// LintContent's (same allow()/allow-file() directives).
struct ProjectResult {
  std::vector<Finding> findings;
  std::vector<Finding> suppressed;
};

/// Runs the three cross-TU rules over the whole file set. Pass an unloaded
/// LayerConfig (loaded == false) to skip the layer pass (e.g. linting a
/// stray file with no `.qcap-layers` in scope).
ProjectResult LintProject(const std::vector<ProjectFile>& files,
                          const LayerConfig& layers);

}  // namespace qcap_lint
