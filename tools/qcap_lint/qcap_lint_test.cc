// Fixture-driven self-tests for qcap_lint.
//
// Every file in testdata/ is linted under the virtual path given by its
// `// qcap-lint-test: as=<path>` header (path-dependent rules need to see
// src/alloc/..., not testdata/...). Expected findings are encoded inline:
//   <bad code>  // expect: <rule-id>
// means "exactly one unsuppressed finding with that rule on this line", and
//   // expect-file: <rule-id>
// means "one finding with that rule anywhere in the fixture". The harness
// fails on missing AND on unexpected findings, so the fixtures pin both
// positive and negative behavior.
//
// Cross-TU fixtures: a fixture can hold several virtual files —
//   // qcap-lint-test: file=<path>
// starts a new file (lines below it count from 1 in that file) — and a
// layering DAG for the layer-violation rule:
//   // qcap-lint-test: layer <module>: <dep>...
// Each fixture is linted as its own little project: LintContent per file
// plus one LintProject over all of them.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint.h"
#include "project.h"
#include "token.h"

namespace qcap_lint {
namespace {

namespace fs = std::filesystem;

struct Section {
  std::string path;     // virtual path the linter sees
  std::string content;  // lines of this virtual file
};

struct Fixture {
  std::string file;  // on-disk name, for messages
  std::vector<Section> sections;  // [0] is the primary (as=) file
  std::string layer_text;         // accumulated `layer` directive lines
  // (virtual path, line within that file, rule)
  std::multiset<std::tuple<std::string, int, std::string>> expected;
  std::multiset<std::string> expected_anywhere;  // expect-file rules
};

std::string TestdataDir() { return QCAP_LINT_TESTDATA; }

std::string TrimTail(std::string s) {
  while (!s.empty() && (s.back() == ' ' || s.back() == '\r')) s.pop_back();
  return s;
}

std::vector<Fixture> LoadFixtures() {
  std::vector<Fixture> fixtures;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(TestdataDir())) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    Fixture fx;
    fx.file = p.filename().string();
    fx.sections.push_back({});
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();

    std::istringstream lines(buf.str());
    std::string line;
    int lineno = 0;  // within the current section
    while (std::getline(lines, line)) {
      const size_t as = line.find("qcap-lint-test: as=");
      if (as != std::string::npos) {
        fx.sections.front().path = TrimTail(line.substr(as + 19));
      }
      const size_t file_start = line.find("qcap-lint-test: file=");
      if (file_start != std::string::npos) {
        fx.sections.push_back({TrimTail(line.substr(file_start + 21)), ""});
        lineno = 0;  // the marker line belongs to no section
        continue;
      }
      const size_t layer = line.find("qcap-lint-test: layer ");
      if (layer != std::string::npos) {
        fx.layer_text += TrimTail(line.substr(layer + 22)) + "\n";
      }
      fx.sections.back().content += line + "\n";
      ++lineno;

      auto parse_rules = [&](size_t pos, auto&& add) {
        std::string rest = line.substr(pos);
        std::istringstream split(rest);
        std::string rule;
        while (std::getline(split, rule, ',')) {
          const size_t b = rule.find_first_not_of(" \t");
          const size_t e = rule.find_last_not_of(" \t\r");
          if (b != std::string::npos) add(rule.substr(b, e - b + 1));
        }
      };
      const size_t file_marker = line.find("// expect-file: ");
      if (file_marker != std::string::npos) {
        parse_rules(file_marker + 16,
                    [&](std::string r) { fx.expected_anywhere.insert(r); });
        continue;
      }
      const size_t marker = line.find("// expect: ");
      if (marker != std::string::npos) {
        parse_rules(marker + 11, [&](std::string r) {
          fx.expected.insert({fx.sections.back().path, lineno, r});
        });
      }
    }
    EXPECT_FALSE(fx.sections.front().path.empty())
        << fx.file << ": missing '// qcap-lint-test: as=<path>' header";
    fixtures.push_back(std::move(fx));
  }
  return fixtures;
}

// All unsuppressed findings for one fixture: the per-file pass on every
// virtual file plus one cross-TU pass over the whole set.
std::vector<Finding> LintFixture(const Fixture& fx) {
  std::vector<Finding> findings;
  std::vector<ProjectFile> project;
  for (const Section& s : fx.sections) {
    for (Finding& f : LintContent(s.path, s.content).findings) {
      findings.push_back(std::move(f));
    }
    project.push_back({s.path, s.content});
  }
  LayerConfig config;
  if (!fx.layer_text.empty()) {
    config = ParseLayerConfig("fixture-layers", fx.layer_text);
  }
  for (Finding& f : LintProject(project, config).findings) {
    findings.push_back(std::move(f));
  }
  return findings;
}

TEST(QcapLintFixtures, EveryFixtureMatchesItsExpectations) {
  const std::vector<Fixture> fixtures = LoadFixtures();
  ASSERT_GE(fixtures.size(), 24u) << "fixture corpus shrank";
  for (const Fixture& fx : fixtures) {
    SCOPED_TRACE(fx.file);
    auto expected = fx.expected;
    auto anywhere = fx.expected_anywhere;
    for (const Finding& f : LintFixture(fx)) {
      auto it = expected.find({f.file, f.line, f.rule});
      if (it != expected.end()) {
        expected.erase(it);
        continue;
      }
      auto any = anywhere.find(f.rule);
      if (any != anywhere.end()) {
        anywhere.erase(any);
        continue;
      }
      ADD_FAILURE() << fx.file << ": " << f.file << ":" << f.line
                    << ": unexpected finding [" << f.rule << "] " << f.message;
    }
    for (const auto& [path, line, rule] : expected) {
      ADD_FAILURE() << fx.file << ": " << path << ":" << line
                    << ": expected finding [" << rule
                    << "] was not produced";
    }
    for (const std::string& rule : anywhere) {
      ADD_FAILURE() << fx.file << ": expected file-level finding [" << rule
                    << "] was not produced";
    }
  }
}

TEST(QcapLintFixtures, CorpusCoversEveryRule) {
  std::set<std::string> covered;
  for (const Fixture& fx : LoadFixtures()) {
    for (const auto& [path, line, rule] : fx.expected) covered.insert(rule);
    for (const std::string& rule : fx.expected_anywhere) covered.insert(rule);
  }
  for (const char* rule : kAllRules) {
    EXPECT_TRUE(covered.count(rule))
        << "no fixture exercises rule [" << rule << "]";
  }
}

TEST(QcapLintFixtures, EachCrossTuRuleHasThreeFiringFixtures) {
  std::map<std::string, std::set<std::string>> firing;  // rule -> fixtures
  for (const Fixture& fx : LoadFixtures()) {
    for (const auto& [path, line, rule] : fx.expected) {
      firing[rule].insert(fx.file);
    }
    for (const std::string& rule : fx.expected_anywhere) {
      firing[rule].insert(fx.file);
    }
  }
  for (const char* rule : {"guarded-field-unlocked-access", "lock-order",
                           "layer-violation"}) {
    EXPECT_GE(firing[rule].size(), 3u)
        << "rule [" << rule << "] needs >= 3 firing fixtures";
  }
}

TEST(QcapLintSuppressions, TrailingAllowSuppressesSameLine) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> MakeMap();  "
      "// qcap-lint: allow(unordered-container) -- lookup only\n";
  const FileResult r = LintContent("src/alloc/x.cc", code);
  // Line 1 (the include) is unsuppressed; line 2 is suppressed.
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].line, 2);
  EXPECT_EQ(r.suppressed[0].rule, "unordered-container");
}

TEST(QcapLintSuppressions, AllowFileSuppressesWholeFile) {
  const std::string code =
      "// qcap-lint: allow-file(nondeterministic-call) -- wall-clock bench\n"
      "#include <chrono>\n"
      "double Now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  const FileResult r = LintContent("src/cluster/x.cc", code);
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "nondeterministic-call");
}

TEST(QcapLintRegions, HotPathRulesStopAtEnd) {
  const std::string code =
      "#include <vector>\n"
      "void F(std::vector<int>* v) {\n"
      "  // qcap-lint: hot-path begin\n"
      "  v->push_back(1);\n"
      "  // qcap-lint: hot-path end\n"
      "  v->push_back(2);\n"
      "}\n";
  const FileResult r = LintContent("src/alloc/x.cc", code);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_EQ(r.findings[0].rule, "hot-path-growth");
}

TEST(QcapLintLexer, LiteralsAndCommentsDoNotLeakIntoCode) {
  // "rand(" in a string, a char, and a comment must not trip any rule.
  const std::string code =
      "const char* kDoc = \"call rand() here\";\n"
      "// rand() in a comment\n"
      "/* time(nullptr) in a block comment */\n"
      "const char c = '\\\\';\n";
  const FileResult r = LintContent("src/model/x.cc", code);
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].message;
}

TEST(QcapLintLexer, RawStringsAreOpaque) {
  const std::string code =
      "const char* kJson = R\"(rand() and time(nullptr) and new int)\";\n";
  const FileResult r = LintContent("src/model/x.cc", code);
  EXPECT_TRUE(r.findings.empty());
}

TEST(QcapLintLexer, LineNumbersSurviveMultilineConstructs) {
  const std::vector<Token> tokens = Lex("/* a\nb\nc */\nint x;\n");
  ASSERT_EQ(tokens.size(), 4u);  // comment, int, x, ;
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 4);
}

TEST(QcapLintRandomModule, RngWrapperIsExempt) {
  const std::string code =
      "#include <random>\n"
      "namespace qcap {\n"
      "unsigned SeedFromEntropy() { return std::random_device{}(); }\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/common/random.cc", code).findings.empty());
  EXPECT_FALSE(LintContent("src/common/strings.cc", code).findings.empty());
}

TEST(QcapLintJson, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
}

// The committed .qcap-layers, loaded the same way the CLI loads it.
LayerConfig RepoLayers() {
  const fs::path repo_root =
      fs::path(TestdataDir()).parent_path().parent_path().parent_path();
  const fs::path p = repo_root / ".qcap-layers";
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseLayerConfig(p.string(), buf.str());
}

// Acceptance pin: an alloc -> net include must fail the lint against the
// real committed layering DAG, not just against a synthetic one.
TEST(QcapLintSeeded, AllocIncludingNetViolatesCommittedLayers) {
  const std::vector<ProjectFile> project = {
      {"src/alloc/evil.cc",
       "#include \"alloc/memetic.h\"\n#include \"net/frame.h\"\n"}};
  const ProjectResult r = LintProject(project, RepoLayers());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-violation");
  EXPECT_EQ(r.findings[0].line, 2);
}

// Acceptance pin: dropping the lock around a GUARDED_BY field is caught
// even when the annotation (header) and the access (.cc) are separate TUs.
TEST(QcapLintSeeded, GuardedFieldMissAcrossTusIsCaught) {
  const std::vector<ProjectFile> project = {
      {"src/net/thing.h",
       "#pragma once\n"
       "#include \"common/annotations.h\"\n"
       "class Thing {\n"
       " public:\n"
       "  int Get() const;\n"
       " private:\n"
       "  mutable Mutex lock_;\n"
       "  int value_ QCAP_GUARDED_BY(lock_) = 0;\n"
       "};\n"},
      {"src/net/thing.cc",
       "#include \"net/thing.h\"\n"
       "int Thing::Get() const { return value_; }\n"}};
  const ProjectResult r = LintProject(project, LayerConfig{});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "guarded-field-unlocked-access");
  EXPECT_EQ(r.findings[0].file, "src/net/thing.cc");
  EXPECT_EQ(r.findings[0].line, 2);
}

// Taking the lock (or declaring QCAP_REQUIRES) silences the rule — the
// negative half of the seeded pin above.
TEST(QcapLintSeeded, LockedAndRequiredAccessesAreClean) {
  const std::vector<ProjectFile> project = {
      {"src/net/thing.h",
       "#pragma once\n"
       "#include \"common/annotations.h\"\n"
       "class Thing {\n"
       " public:\n"
       "  int Get() const;\n"
       "  int GetLocked() const QCAP_REQUIRES(lock_);\n"
       " private:\n"
       "  mutable Mutex lock_;\n"
       "  int value_ QCAP_GUARDED_BY(lock_) = 0;\n"
       "};\n"},
      {"src/net/thing.cc",
       "#include \"net/thing.h\"\n"
       "int Thing::Get() const {\n"
       "  MutexLock guard(lock_);\n"
       "  return value_;\n"
       "}\n"
       "int Thing::GetLocked() const { return value_; }\n"}};
  const ProjectResult r = LintProject(project, LayerConfig{});
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].file << ":" << r.findings[0].line << ": "
      << r.findings[0].message;
}

}  // namespace
}  // namespace qcap_lint
