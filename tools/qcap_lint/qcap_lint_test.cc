// Fixture-driven self-tests for qcap_lint.
//
// Every file in testdata/ is linted under the virtual path given by its
// `// qcap-lint-test: as=<path>` header (path-dependent rules need to see
// src/alloc/..., not testdata/...). Expected findings are encoded inline:
//   <bad code>  // expect: <rule-id>
// means "exactly one unsuppressed finding with that rule on this line", and
//   // expect-file: <rule-id>
// means "one finding with that rule anywhere in the file". The harness
// fails on missing AND on unexpected findings, so the fixtures pin both
// positive and negative behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "token.h"

namespace qcap_lint {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::string file;          // on-disk name, for messages
  std::string virtual_path;  // path the linter sees
  std::string content;
  std::multiset<std::pair<int, std::string>> expected;  // (line, rule)
  std::multiset<std::string> expected_anywhere;         // expect-file rules
};

std::string TestdataDir() { return QCAP_LINT_TESTDATA; }

std::vector<Fixture> LoadFixtures() {
  std::vector<Fixture> fixtures;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(TestdataDir())) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    Fixture fx;
    fx.file = p.filename().string();
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    fx.content = buf.str();

    std::istringstream lines(fx.content);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      const size_t as = line.find("qcap-lint-test: as=");
      if (as != std::string::npos) {
        fx.virtual_path = line.substr(as + 19);
        while (!fx.virtual_path.empty() &&
               (fx.virtual_path.back() == ' ' ||
                fx.virtual_path.back() == '\r')) {
          fx.virtual_path.pop_back();
        }
      }
      auto parse_rules = [&](size_t pos, auto&& add) {
        std::string rest = line.substr(pos);
        std::istringstream split(rest);
        std::string rule;
        while (std::getline(split, rule, ',')) {
          const size_t b = rule.find_first_not_of(" \t");
          const size_t e = rule.find_last_not_of(" \t\r");
          if (b != std::string::npos) add(rule.substr(b, e - b + 1));
        }
      };
      const size_t file_marker = line.find("// expect-file: ");
      if (file_marker != std::string::npos) {
        parse_rules(file_marker + 16,
                    [&](std::string r) { fx.expected_anywhere.insert(r); });
        continue;
      }
      const size_t marker = line.find("// expect: ");
      if (marker != std::string::npos) {
        parse_rules(marker + 11, [&](std::string r) {
          fx.expected.insert({lineno, r});
        });
      }
    }
    EXPECT_FALSE(fx.virtual_path.empty())
        << fx.file << ": missing '// qcap-lint-test: as=<path>' header";
    fixtures.push_back(std::move(fx));
  }
  return fixtures;
}

TEST(QcapLintFixtures, EveryFixtureMatchesItsExpectations) {
  const std::vector<Fixture> fixtures = LoadFixtures();
  ASSERT_GE(fixtures.size(), 10u) << "fixture corpus shrank";
  for (const Fixture& fx : fixtures) {
    SCOPED_TRACE(fx.file);
    const FileResult result = LintContent(fx.virtual_path, fx.content);
    auto expected = fx.expected;
    auto anywhere = fx.expected_anywhere;
    for (const Finding& f : result.findings) {
      auto it = expected.find({f.line, f.rule});
      if (it != expected.end()) {
        expected.erase(it);
        continue;
      }
      auto any = anywhere.find(f.rule);
      if (any != anywhere.end()) {
        anywhere.erase(any);
        continue;
      }
      ADD_FAILURE() << fx.file << ":" << f.line << ": unexpected finding ["
                    << f.rule << "] " << f.message;
    }
    for (const auto& [line, rule] : expected) {
      ADD_FAILURE() << fx.file << ":" << line << ": expected finding ["
                    << rule << "] was not produced";
    }
    for (const std::string& rule : anywhere) {
      ADD_FAILURE() << fx.file << ": expected file-level finding [" << rule
                    << "] was not produced";
    }
  }
}

TEST(QcapLintFixtures, CorpusCoversEveryRule) {
  std::set<std::string> covered;
  for (const Fixture& fx : LoadFixtures()) {
    for (const auto& [line, rule] : fx.expected) covered.insert(rule);
    for (const std::string& rule : fx.expected_anywhere) covered.insert(rule);
  }
  for (const char* rule : kAllRules) {
    EXPECT_TRUE(covered.count(rule))
        << "no fixture exercises rule [" << rule << "]";
  }
}

TEST(QcapLintSuppressions, TrailingAllowSuppressesSameLine) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> MakeMap();  "
      "// qcap-lint: allow(unordered-container) -- lookup only\n";
  const FileResult r = LintContent("src/alloc/x.cc", code);
  // Line 1 (the include) is unsuppressed; line 2 is suppressed.
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].line, 2);
  EXPECT_EQ(r.suppressed[0].rule, "unordered-container");
}

TEST(QcapLintSuppressions, AllowFileSuppressesWholeFile) {
  const std::string code =
      "// qcap-lint: allow-file(nondeterministic-call) -- wall-clock bench\n"
      "#include <chrono>\n"
      "double Now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  const FileResult r = LintContent("src/cluster/x.cc", code);
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "nondeterministic-call");
}

TEST(QcapLintRegions, HotPathRulesStopAtEnd) {
  const std::string code =
      "#include <vector>\n"
      "void F(std::vector<int>* v) {\n"
      "  // qcap-lint: hot-path begin\n"
      "  v->push_back(1);\n"
      "  // qcap-lint: hot-path end\n"
      "  v->push_back(2);\n"
      "}\n";
  const FileResult r = LintContent("src/alloc/x.cc", code);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_EQ(r.findings[0].rule, "hot-path-growth");
}

TEST(QcapLintLexer, LiteralsAndCommentsDoNotLeakIntoCode) {
  // "rand(" in a string, a char, and a comment must not trip any rule.
  const std::string code =
      "const char* kDoc = \"call rand() here\";\n"
      "// rand() in a comment\n"
      "/* time(nullptr) in a block comment */\n"
      "const char c = '\\\\';\n";
  const FileResult r = LintContent("src/model/x.cc", code);
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].message;
}

TEST(QcapLintLexer, RawStringsAreOpaque) {
  const std::string code =
      "const char* kJson = R\"(rand() and time(nullptr) and new int)\";\n";
  const FileResult r = LintContent("src/model/x.cc", code);
  EXPECT_TRUE(r.findings.empty());
}

TEST(QcapLintLexer, LineNumbersSurviveMultilineConstructs) {
  const std::vector<Token> tokens = Lex("/* a\nb\nc */\nint x;\n");
  ASSERT_EQ(tokens.size(), 4u);  // comment, int, x, ;
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 4);
}

TEST(QcapLintRandomModule, RngWrapperIsExempt) {
  const std::string code =
      "#include <random>\n"
      "namespace qcap {\n"
      "unsigned SeedFromEntropy() { return std::random_device{}(); }\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/common/random.cc", code).findings.empty());
  EXPECT_FALSE(LintContent("src/common/strings.cc", code).findings.empty());
}

}  // namespace
}  // namespace qcap_lint
