// K-safety failover drill: allocate the TPC-App workload with k = 0 and
// k = 1, then kill each backend in turn and check whether the surviving
// cluster can still execute every query class locally (Appendix C).
//
// Build & run:  ./build/examples/ksafety_failover
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/scheduler.h"
#include "model/metrics.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

using namespace qcap;

namespace {

/// Copies \p alloc without backend \p dead.
Allocation DropBackend(const Allocation& alloc, size_t dead) {
  Allocation out(alloc.num_backends() - 1, alloc.num_fragments(),
                 alloc.num_reads(), alloc.num_updates());
  size_t out_b = 0;
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    if (b == dead) continue;
    out.PlaceSet(out_b, alloc.BackendFragments(b));
    for (size_t r = 0; r < alloc.num_reads(); ++r) {
      out.set_read_assign(out_b, r, alloc.read_assign(b, r));
    }
    for (size_t u = 0; u < alloc.num_updates(); ++u) {
      out.set_update_assign(out_b, u, alloc.update_assign(b, u));
    }
    ++out_b;
  }
  return out;
}

/// Counts how many single-backend failures the allocation survives with
/// every query class still executable somewhere.
size_t SurvivedFailures(const Classification& cls, const Allocation& alloc) {
  size_t survived = 0;
  for (size_t dead = 0; dead < alloc.num_backends(); ++dead) {
    const Allocation degraded = DropBackend(alloc, dead);
    if (Scheduler::Build(cls, degraded).ok()) ++survived;
  }
  return survived;
}

}  // namespace

int main() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  if (!cls.ok()) {
    std::fprintf(stderr, "%s\n", cls.status().ToString().c_str());
    return 1;
  }
  const auto backends = HomogeneousBackends(6);

  std::printf("TPC-App on 6 backends: failure drill\n");
  std::printf("%-10s %14s %14s %22s\n", "allocator", "replication",
              "model speedup", "survives (of 6 kills)");
  for (int k : {0, 1, 2}) {
    KSafetyOptions opts;
    opts.k = k;
    KSafeGreedyAllocator allocator(opts);
    auto alloc = allocator.Allocate(cls.value(), backends);
    if (!alloc.ok()) {
      std::fprintf(stderr, "k=%d failed: %s\n", k,
                   alloc.status().ToString().c_str());
      return 1;
    }
    const size_t survived = SurvivedFailures(cls.value(), alloc.value());
    std::printf("%-10s %14.2f %14.2f %16zu/6\n",
                allocator.name().c_str(),
                DegreeOfReplication(alloc.value(), cls->catalog),
                Speedup(alloc.value(), backends), survived);
  }
  std::printf(
      "\ntakeaway: k=0 loses query classes when the wrong backend dies; "
      "k=1 survives any single failure (k=2 any double failure) at the "
      "cost of extra storage and, for update classes, extra write work.\n");
  return 0;
}
