// K-safety failover drill: allocate the TPC-App workload with k = 0, 1, 2,
// kill each backend in turn and check whether the surviving cluster can
// still execute every query class locally (Algorithm 3, Appendix C) —
// then run a full crash -> repair -> recover lifecycle through the
// self-healing controller.
//
// Build & run:  ./build/examples/ksafety_failover
#include <cstdio>
#include <vector>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "cluster/controller.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

using namespace qcap;

namespace {

/// Counts how many single-backend failures the allocation survives with
/// every query class still executable somewhere (Algorithm 3 at k = 0 on
/// each degraded cluster).
size_t SurvivedFailures(const Classification& cls, const Allocation& alloc) {
  size_t survived = 0;
  for (size_t dead = 0; dead < alloc.num_backends(); ++dead) {
    std::vector<bool> alive(alloc.num_backends(), true);
    alive[dead] = false;
    if (CheckKSafety(cls, alloc, alive, 0).ok()) ++survived;
  }
  return survived;
}

}  // namespace

int main() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  if (!cls.ok()) {
    std::fprintf(stderr, "%s\n", cls.status().ToString().c_str());
    return 1;
  }
  const auto backends = HomogeneousBackends(6);

  std::printf("TPC-App on 6 backends: failure drill\n");
  std::printf("%-10s %14s %14s %22s\n", "allocator", "replication",
              "model speedup", "survives (of 6 kills)");
  for (int k : {0, 1, 2}) {
    KSafetyOptions opts;
    opts.k = k;
    KSafeGreedyAllocator allocator(opts);
    auto alloc = allocator.Allocate(cls.value(), backends);
    if (!alloc.ok()) {
      std::fprintf(stderr, "k=%d failed: %s\n", k,
                   alloc.status().ToString().c_str());
      return 1;
    }
    const size_t survived = SurvivedFailures(cls.value(), alloc.value());
    std::printf("%-10s %14.2f %14.2f %16zu/6\n",
                allocator.name().c_str(),
                DegreeOfReplication(alloc.value(), cls->catalog),
                Speedup(alloc.value(), backends), survived);
  }
  std::printf(
      "\ntakeaway: k=0 loses query classes when the wrong backend dies; "
      "k=1 survives any single failure (k=2 any double failure) at the "
      "cost of extra storage and, for update classes, extra write work.\n");

  // Crash -> repair -> recover: the self-healing controller re-checks
  // k-safety after the crash (Algorithm 3), re-allocates with a virtual
  // replacement backend, and the repaired node rejoins after detection +
  // ETL, draining the updates it missed.
  std::printf("\ncrash -> repair -> recover (self-healing controller)\n");
  KSafeGreedyAllocator ksafe({1, 1e-12, 0});
  Controller controller(catalog);
  controller.SetHistory(journal);
  auto report =
      controller.Reallocate(&ksafe, backends, {Granularity::kTable, 4, true});
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  SimulationConfig config;
  config.seed = 9;
  config.fault_plan.Crash(20.0, 2);
  SelfHealingOptions heal;
  heal.allocator = &ksafe;
  heal.k_safety = 1;
  auto healed = controller.ProcessOpenSelfHealing(60.0, 400.0, config, heal);
  if (!healed.ok()) {
    std::fprintf(stderr, "%s\n", healed.status().ToString().c_str());
    return 1;
  }
  for (const RepairAction& repair : healed->repairs) {
    std::printf(
        "  backend %zu crashed at t=%.1fs: %s\n"
        "  repair ETL moves %.2f GB in %.1fs; replacement rejoined at "
        "t=%.1fs (recovery %.1fs)\n",
        repair.backend + 1, repair.crash_seconds, repair.violation.c_str(),
        repair.plan.total_bytes / (1024.0 * 1024.0 * 1024.0),
        repair.plan.duration_seconds, repair.recover_seconds,
        repair.recover_seconds - repair.crash_seconds);
  }
  const SimStats& stats = healed->stats;
  std::printf(
      "  served %.2f%% of the offered load (rejected=%llu, retried=%llu, "
      "redispatched=%llu, lag drained=%llu)\n",
      stats.availability * 100.0,
      static_cast<unsigned long long>(stats.rejected_requests),
      static_cast<unsigned long long>(stats.retried_requests),
      static_cast<unsigned long long>(stats.redispatched_requests),
      static_cast<unsigned long long>(stats.lag_tasks_drained));
  return 0;
}
