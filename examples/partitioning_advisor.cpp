// Partitioning advisor walkthrough: let the library pick the best
// classification granularity for two very different workloads and print
// the full operator report for the winner.
//
// Build & run:  ./build/examples/partitioning_advisor
#include <cstdio>

#include "qcap.h"
#include "workloads/timeseries.h"
#include "workloads/tpch.h"

using namespace qcap;

namespace {

const char* GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kTable: return "table";
    case Granularity::kColumn: return "column";
    case Granularity::kHorizontal: return "horizontal";
    case Granularity::kHybrid: return "hybrid";
    case Granularity::kNone: return "none";
  }
  return "?";
}

int Advise(const char* title, const engine::Catalog& catalog,
           const QueryJournal& journal, const AdvisorOptions& options,
           size_t nodes) {
  GreedyAllocator greedy;
  PartitioningAdvisor advisor(catalog, &greedy, options);
  auto choice = advisor.Advise(journal, HomogeneousBackends(nodes));
  if (!choice.ok()) {
    std::fprintf(stderr, "%s: %s\n", title, choice.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== %s (%zu backends) ===\n", title, nodes);
  std::printf("%-12s %14s %14s\n", "granularity", "model speedup",
              "replication");
  for (const auto& candidate : choice->evaluated) {
    std::printf("%-12s %14.2f %14.2f%s\n",
                GranularityName(candidate.granularity),
                candidate.model_speedup, candidate.degree_of_replication,
                candidate.granularity == choice->best.granularity
                    ? "   <- chosen"
                    : "");
  }
  std::printf("\n%s",
              RenderClassificationReport(choice->best.classification).c_str());
  return 0;
}

}  // namespace

int main() {
  // Analytical read-heavy workload: columnar fragments win on storage.
  {
    const engine::Catalog catalog = workloads::TpchCatalog(1.0);
    AdvisorOptions options;  // table / column / hybrid.
    if (Advise("TPC-H (read-only analytics)", catalog,
               workloads::TpchJournal(10000), options, 8) != 0) {
      return 1;
    }
  }
  // Append-mostly time-series: predicate (range) fragments win on
  // throughput by isolating the ingest tail.
  {
    const engine::Catalog catalog = workloads::TimeSeriesCatalog(1.0);
    AdvisorOptions options;
    options.candidates = {Granularity::kTable, Granularity::kColumn,
                          Granularity::kHorizontal};
    options.horizontal_partitions = workloads::kTimeSeriesPartitions;
    if (Advise("time-series (append-mostly)", catalog,
               workloads::TimeSeriesJournal(100000), options, 8) != 0) {
      return 1;
    }
  }
  return 0;
}
