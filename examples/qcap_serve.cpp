// qcap_serve: run the networked query-routing server (docs/SERVING.md)
// over a TPC-App-style workload.
//
// The pipeline is the standard QCAP front half — classify the journal,
// allocate onto homogeneous backends — and the resulting
// (Classification, Allocation) pair is installed behind a TCP endpoint:
// clients SUBMIT a query class and get back the backend the scheduler
// routes it to, with STATS / METRICS / HEALTH observability and FAULT
// injection for failover drills.
//
// Build & run:  ./build/examples/qcap_serve --port 7411
// Talk to it:   ./build/bench/bench_serving --port 7411   (or any client
//               speaking the framed protocol; see docs/SERVING.md)
//
// `--selfcheck` starts the server on an ephemeral port, replays the
// documented example session against it, prints the transcript, and
// exits; the examples smoke test runs this mode.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "alloc/greedy.h"
#include "model/validation.h"
#include "net/client.h"
#include "net/server.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

using namespace qcap;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Fail(const char* message) {
  std::fprintf(stderr, "qcap_serve: %s\n", message);
  std::fprintf(stderr,
               "usage: qcap_serve [--port P] [--backends N] [--rate QPS] "
               "[--burst TOKENS] [--max-sessions N] [--selfcheck]\n");
  return 2;
}

/// Replays the documented example session (docs/SERVING.md, "Example
/// session") and prints the transcript. Returns false on any transport
/// error.
bool RunSelfCheck(uint16_t port) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return false;
  }
  const char* script[] = {
      "HEALTH",       "SUBMIT R0", "SUBMIT R0", "DONE 0",
      "SUBMIT U0",    "STATS",     "FAULT CRASH 1", "SUBMIT R0",
      "FAULT RECOVER 1", "FAULT DEGRADE 1 1.5", "FAULT DEGRADE 1 1",
      "RELOAD 5",     "SUBMIT R0", "METRICS",   "QUIT",
  };
  for (const char* request : script) {
    auto reply = client->Call(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "%s: %s\n", request,
                   reply.status().ToString().c_str());
      return false;
    }
    std::printf("> %s\n< %s\n", request, reply->c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7411;
  size_t backends_n = 4;
  bool selfcheck = false;
  net::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = value();
      if (!v) return Fail("--port needs a number");
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--backends") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--backends needs a count");
      backends_n = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--rate") {
      const char* v = value();
      if (!v) return Fail("--rate needs a per-class qps");
      options.limits.rate_limit_qps = std::atof(v);
    } else if (arg == "--burst") {
      const char* v = value();
      if (!v) return Fail("--burst needs a token count");
      options.limits.rate_limit_burst = std::atof(v);
    } else if (arg == "--max-sessions") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--max-sessions needs a count");
      options.max_sessions = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else {
      return Fail(("unknown flag " + arg).c_str());
    }
  }
  options.port = selfcheck ? 0 : port;

  // Classify the TPC-App journal and allocate onto homogeneous backends.
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, ClassifierOptions{Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  if (!cls.ok()) {
    std::fprintf(stderr, "classify: %s\n", cls.status().ToString().c_str());
    return 1;
  }
  const std::vector<BackendSpec> backends = HomogeneousBackends(backends_n);
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(*cls, backends);
  if (!alloc.ok()) {
    std::fprintf(stderr, "allocate: %s\n", alloc.status().ToString().c_str());
    return 1;
  }
  if (Status st = ValidateAllocation(*cls, *alloc, backends); !st.ok()) {
    std::fprintf(stderr, "validate: %s\n", st.ToString().c_str());
    return 1;
  }

  auto server = net::QueryRoutingServer::Create(*cls, *alloc, options);
  if (!server.ok()) {
    std::fprintf(stderr, "create: %s\n", server.status().ToString().c_str());
    return 1;
  }
  // RELOAD [backends]: recompute the allocation (optionally on a new
  // cluster size) and hot-swap the routing table without dropping a
  // session — the serving-side half of the adaptive control loop
  // (autonomic/control_loop.h decides, this endpoint executes).
  (*server)->dispatcher().SetReloadProvider(
      [&cls](std::string_view tag) -> Result<net::RoutingTable> {
        size_t n = 0;
        for (char c : tag) {
          if (c < '0' || c > '9') {
            return Status::InvalidArgument("tag must be a backend count");
          }
          n = n * 10 + static_cast<size_t>(c - '0');
        }
        if (tag.empty() || n == 0 || n > 64) {
          return Status::InvalidArgument(
              "usage: RELOAD <backends in 1..64>");
        }
        const std::vector<BackendSpec> target = HomogeneousBackends(n);
        GreedyAllocator allocator;
        QCAP_ASSIGN_OR_RETURN(Allocation next,
                              allocator.Allocate(*cls, target));
        QCAP_RETURN_NOT_OK(ValidateAllocation(*cls, next, target));
        return net::RoutingTable{*cls, std::move(next)};
      });
  if (Status st = (*server)->Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }

  // Print the routing table so clients know what to SUBMIT.
  std::printf("qcap_serve listening on 127.0.0.1:%u (%zu backends)\n",
              (*server)->port(), backends_n);
  for (size_t r = 0; r < cls->reads.size(); ++r) {
    std::printf("  R%zu  %-24s weight %.3f\n", r, cls->reads[r].label.c_str(),
                cls->reads[r].weight);
  }
  for (size_t u = 0; u < cls->updates.size(); ++u) {
    std::printf("  U%zu  %-24s weight %.3f\n", u, cls->updates[u].label.c_str(),
                cls->updates[u].weight);
  }

  if (selfcheck) {
    const bool ok = RunSelfCheck((*server)->port());
    (*server)->Stop();
    return ok ? 0 : 1;
  }

  std::printf("Ctrl-C to stop.\n");
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  (*server)->Stop();
  std::printf("stopped after %llu sessions\n",
              static_cast<unsigned long long>((*server)->sessions_accepted()));
  return 0;
}
