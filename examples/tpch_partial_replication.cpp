// TPC-H partial replication walkthrough: compares full replication against
// table- and column-granular query-centric allocation on a 6-node cluster
// and shows why the column-based layout wins (storage, caching, balance).
//
// Build & run:  ./build/examples/tpch_partial_replication
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "cluster/simulator.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"
#include "workloads/tpch.h"

using namespace qcap;

namespace {

struct Outcome {
  double replication = 0.0;
  double speedup_model = 0.0;
  double throughput = 0.0;
};

Result<Outcome> Evaluate(const engine::Catalog& catalog,
                         const QueryJournal& journal, Granularity granularity,
                         Allocator* allocator, size_t nodes) {
  Classifier classifier(catalog, {granularity, 4, true});
  QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(journal));
  const auto backends = HomogeneousBackends(nodes);
  QCAP_ASSIGN_OR_RETURN(Allocation alloc, allocator->Allocate(cls, backends));
  QCAP_RETURN_NOT_OK(ValidateAllocation(cls, alloc, backends));

  SimulationConfig config;
  config.cost_params.memory_bytes = 0.6 * 1024 * 1024 * 1024;
  config.seed = 7;
  QCAP_ASSIGN_OR_RETURN(ClusterSimulator sim, ClusterSimulator::Create(
                                                  cls, alloc, backends, config));
  QCAP_ASSIGN_OR_RETURN(SimStats stats, sim.RunClosed(1500, 4 * nodes));

  Outcome out;
  out.replication = DegreeOfReplication(alloc, cls.catalog);
  out.speedup_model = Speedup(alloc, backends);
  out.throughput = stats.throughput;
  return out;
}

}  // namespace

int main() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  constexpr size_t kNodes = 6;

  std::printf("TPC-H SF1 (%.2f GiB), %zu backends, 10,000-query journal\n",
              catalog.TotalBytes() / (1024.0 * 1024.0 * 1024.0), kNodes);
  std::printf("%-22s %12s %14s %14s\n", "strategy", "replication",
              "model speedup", "sim q/s");

  FullReplicationAllocator full;
  GreedyAllocator greedy;
  struct Row {
    const char* name;
    Granularity granularity;
    Allocator* allocator;
  };
  const Row rows[] = {
      {"full replication", Granularity::kTable, &full},
      {"table-based", Granularity::kTable, &greedy},
      {"column-based", Granularity::kColumn, &greedy},
  };
  for (const Row& row : rows) {
    auto outcome =
        Evaluate(catalog, journal, row.granularity, row.allocator, kNodes);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %12.2f %14.2f %14.1f\n", row.name,
                outcome->replication, outcome->speedup_model,
                outcome->throughput);
  }
  std::printf(
      "\ntakeaway: the query-centric column allocation answers every query "
      "locally while storing a fraction of the replicated bytes; smaller "
      "per-node data also means better cache behaviour, so it is the "
      "fastest configuration as well.\n");
  return 0;
}
