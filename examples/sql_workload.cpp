// SQL-driven workflow: build a query history from SQL text, persist it,
// reload it, and compute a partial replication from it — the full
// journal-analysis loop of Section 3.1 against textual queries.
//
// Build & run:  ./build/examples/sql_workload
#include <cstdio>

#include "alloc/greedy.h"
#include "cluster/controller.h"
#include "common/strings.h"
#include "model/metrics.h"
#include "workload/journal_io.h"
#include "workload/sql_parser.h"
#include "workloads/tpch.h"

using namespace qcap;

int main() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  SqlParser parser(catalog);

  // A recorded journal: (statement, executions, measured seconds).
  struct Entry {
    const char* sql;
    uint64_t count;
    double seconds;
  };
  const Entry history[] = {
      {"SELECT l_returnflag, l_linestatus, sum(l_quantity), "
       "sum(l_extendedprice) FROM lineitem WHERE l_shipdate <= '1998-09-02' "
       "GROUP BY l_returnflag, l_linestatus",
       400, 12.0},
      {"SELECT o_orderpriority, count(*) FROM orders WHERE o_orderdate >= "
       "'1993-07-01' GROUP BY o_orderpriority",
       700, 2.0},
      {"SELECT c.c_name, sum(o.o_totalprice) FROM customer c JOIN orders o "
       "ON c.c_custkey = o.o_custkey GROUP BY c.c_name",
       500, 6.5},
      {"SELECT s_name, s_phone FROM supplier WHERE s_acctbal > 5000", 900,
       0.4},
      {"SELECT p_brand, count(*) FROM part GROUP BY p_brand", 300, 1.1},
      {"UPDATE supplier SET s_acctbal = s_acctbal + 10 WHERE s_suppkey = 42",
       2500, 0.002},
      {"INSERT INTO orders (o_orderkey, o_custkey, o_totalprice, "
       "o_orderdate) VALUES (1, 2, 3.5, '1998-01-01')",
       4000, 0.001},
  };

  QueryJournal journal;
  for (const Entry& entry : history) {
    auto query = parser.Parse(entry.sql, entry.seconds);
    if (!query.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    journal.Record(query.value(), entry.count);
  }
  std::printf("parsed %zu distinct statements, %llu executions\n",
              journal.NumDistinct(),
              static_cast<unsigned long long>(journal.TotalExecutions()));

  // Persist and reload (the controller's query-history store).
  const std::string path = "/tmp/qcap_sql_workload.journal";
  if (Status st = SaveJournal(journal, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = LoadJournal(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("journal round-tripped through %s (%llu executions)\n",
              path.c_str(),
              static_cast<unsigned long long>(reloaded->TotalExecutions()));

  // Allocate from the reloaded history at column granularity.
  Controller controller(catalog);
  controller.SetHistory(std::move(reloaded).value());
  GreedyAllocator greedy;
  auto report = controller.Reallocate(&greedy, HomogeneousBackends(4),
                                      {Granularity::kColumn});
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nclasses: %zu reads, %zu updates\n",
              report->classification.reads.size(),
              report->classification.updates.size());
  std::printf("%s",
              report->allocation.ToString(report->classification).c_str());
  std::printf(
      "model speedup %.2f of 4, degree of replication %.2f, initial load "
      "%s\n",
      report->model_speedup, report->degree_of_replication,
      FormatBytes(report->transition.total_bytes).c_str());
  return 0;
}
