// Autonomic elasticity: replay a diurnal workload trace against the
// response-time-driven scaler (Section 5) and print how the cluster grows
// through the day and shrinks at night, including the data moved at each
// resize (planned by Hungarian matching).
//
// Build & run:  ./build/examples/autonomic_elasticity
#include <cstdio>

#include "alloc/greedy.h"
#include "autonomic/scaler.h"
#include "common/strings.h"
#include "workload/classifier.h"

using namespace qcap;

int main() {
  const engine::Catalog catalog = workloads::TraceCatalog();
  const QueryJournal journal = workloads::TraceJournal(40000, 99);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  if (!cls.ok()) {
    std::fprintf(stderr, "%s\n", cls.status().ToString().c_str());
    return 1;
  }

  GreedyAllocator greedy;
  AutonomicConfig config;
  config.max_nodes = 6;
  config.slice_seconds = 6.0;
  config.sim.cost_params.memory_bytes = 8.0 * 1024 * 1024 * 1024;
  config.sim.cost_params.io_fraction = 0.4;
  AutonomicScaler scaler(cls.value(), &greedy, config);

  const auto day = workloads::SampleDay(99);
  auto result = scaler.Replay(day);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("time   load(q/s)  nodes  avg-response  moved\n");
  size_t last_nodes = 0;
  for (const auto& step : result->steps) {
    const bool resized = step.nodes != last_nodes || step.moved_bytes > 0;
    // Print hourly samples plus every resize event.
    const bool hourly = static_cast<int>(step.tod_seconds) % 3600 == 0;
    if (hourly || resized) {
      std::printf("%02d:%02d   %8.1f   %4zu   %8.1f ms   %s%s\n",
                  static_cast<int>(step.tod_seconds / 3600.0),
                  (static_cast<int>(step.tod_seconds) % 3600) / 60,
                  step.arrival_rate_qps, step.nodes, step.avg_response_ms,
                  step.moved_bytes > 0 ? FormatBytes(step.moved_bytes).c_str()
                                       : "-",
                  resized && !hourly ? "  <- resize" : "");
    }
    last_nodes = step.nodes;
  }
  std::printf(
      "\nday summary: avg response %.1f ms, max %.1f ms, %.1f node-hours "
      "(a static %zu-node cluster would burn %.1f)\n",
      result->overall_avg_response_ms, result->overall_max_response_ms,
      result->node_seconds / 3600.0, config.max_nodes,
      static_cast<double>(config.max_nodes) * 24.0);
  return 0;
}
