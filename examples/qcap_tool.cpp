// qcap_tool: run the allocation pipeline from files, no C++ required.
//
//   qcap_tool <schema-file> <journal-file> [options]
//     --backends N         cluster size (default 4)
//     --granularity G      table | column | hybrid | horizontal (default table)
//     --partitions P       horizontal partition count (default 4)
//     --allocator A        greedy | memetic | full | ksafe1 (default memetic)
//     --threads T          memetic search threads; 0 = all cores (default 1)
//     --islands N          memetic island count (default 4)
//     --migration M        generations between island migrations (default 15)
//     --json               emit JSON instead of the text report
//     --simulate D:R       after allocating, run an open-loop simulation of
//                          D seconds at R requests/second and print its stats
//     --repeat N           run N independent simulation replications (seeds
//                          1..N) fanned out over --threads workers and print
//                          per-replication stats plus a mean/min/max summary
//     --fault-plan SPEC    fault schedule for --simulate, e.g.
//                          "crash:10:2,recover:25:2,degrade:5:0:4"
//
// The memetic allocator is deterministic for a fixed (--islands, seed)
// regardless of --threads, so --threads only changes the wall-clock. The
// same holds for --repeat: replication i always runs at seed 1 + i, so the
// sweep's stats are bit-identical at any thread count.
//
// Schema files use the engine/schema_io.h format; journal files use the
// workload/journal_io.h format (SaveJournal). Example inputs can be
// produced with examples/sql_workload.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "qcap.h"

using namespace qcap;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "qcap_tool: %s\n", message.c_str());
  return 1;
}

bool IsUnsignedInt(const char* s) {
  if (*s == '\0') return false;
  for (; *s; ++s) {
    if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: qcap_tool <schema-file> <journal-file> "
                 "[--backends N] [--granularity table|column|hybrid|"
                 "horizontal] [--partitions P] "
                 "[--allocator greedy|memetic|full|ksafe1] "
                 "[--threads T] [--islands N] [--migration M] [--json] "
                 "[--simulate D:R] [--repeat N] [--fault-plan SPEC]\n");
    return 2;
  }
  const std::string schema_path = argv[1];
  const std::string journal_path = argv[2];
  size_t backends_n = 4;
  ClassifierOptions copts;
  std::string allocator_name = "memetic";
  MemeticOptions mopts;
  bool emit_json = false;
  bool simulate = false;
  double sim_duration = 0.0;
  double sim_rate = 0.0;
  size_t sim_repeat = 1;
  FaultPlan fault_plan;
  bool have_fault_plan = false;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--backends") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) return Fail("--backends needs a count");
      backends_n = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--granularity") {
      const char* v = next();
      if (!v) return Fail("--granularity needs a value");
      if (std::strcmp(v, "table") == 0) {
        copts.granularity = Granularity::kTable;
      } else if (std::strcmp(v, "column") == 0) {
        copts.granularity = Granularity::kColumn;
      } else if (std::strcmp(v, "hybrid") == 0) {
        copts.granularity = Granularity::kHybrid;
      } else if (std::strcmp(v, "horizontal") == 0) {
        copts.granularity = Granularity::kHorizontal;
      } else {
        return Fail(std::string("unknown granularity '") + v + "'");
      }
    } else if (arg == "--partitions") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) return Fail("--partitions needs a count");
      copts.horizontal_partitions = std::atoi(v);
    } else if (arg == "--allocator") {
      const char* v = next();
      if (!v) return Fail("--allocator needs a value");
      allocator_name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      // 0 is valid (= auto), so atoi alone can't reject garbage input here.
      if (!v || !IsUnsignedInt(v)) return Fail("--threads needs a count");
      mopts.threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--islands") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) return Fail("--islands needs a count");
      mopts.num_islands = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--migration") {
      const char* v = next();
      if (!v || !IsUnsignedInt(v)) return Fail("--migration needs a count");
      mopts.migration_interval = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--simulate") {
      const char* v = next();
      if (!v || std::sscanf(v, "%lf:%lf", &sim_duration, &sim_rate) != 2 ||
          sim_duration <= 0.0 || sim_rate <= 0.0) {
        return Fail("--simulate needs <duration>:<rate> with both > 0");
      }
      simulate = true;
    } else if (arg == "--repeat") {
      const char* v = next();
      if (!v || std::atoi(v) <= 0) return Fail("--repeat needs a count");
      sim_repeat = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (!v) return Fail("--fault-plan needs a spec");
      auto plan = ParseFaultPlan(v);
      if (!plan.ok()) return Fail(plan.status().ToString());
      fault_plan = std::move(plan).value();
      have_fault_plan = true;
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  if (have_fault_plan && !simulate) {
    return Fail("--fault-plan requires --simulate <duration>:<rate>");
  }
  if (sim_repeat > 1 && !simulate) {
    return Fail("--repeat requires --simulate <duration>:<rate>");
  }

  auto catalog = engine::LoadCatalog(schema_path);
  if (!catalog.ok()) return Fail(catalog.status().ToString());
  auto journal = LoadJournal(journal_path);
  if (!journal.ok()) return Fail(journal.status().ToString());

  std::unique_ptr<Allocator> allocator;
  if (allocator_name == "greedy") {
    allocator = std::make_unique<GreedyAllocator>();
  } else if (allocator_name == "memetic") {
    allocator = std::make_unique<MemeticAllocator>(mopts);
  } else if (allocator_name == "full") {
    allocator = std::make_unique<FullReplicationAllocator>();
  } else if (allocator_name == "ksafe1") {
    allocator = std::make_unique<KSafeGreedyAllocator>(KSafetyOptions{1});
  } else {
    return Fail("unknown allocator '" + allocator_name + "'");
  }

  Classifier classifier(catalog.value(), copts);
  auto cls = classifier.Classify(journal.value());
  if (!cls.ok()) return Fail(cls.status().ToString());

  const auto backends = HomogeneousBackends(backends_n);
  auto alloc = allocator->Allocate(cls.value(), backends);
  if (!alloc.ok()) return Fail(alloc.status().ToString());
  if (Status valid = ValidateAllocation(cls.value(), alloc.value(), backends);
      !valid.ok()) {
    return Fail("allocator produced an invalid allocation: " +
                valid.ToString());
  }

  if (emit_json) {
    std::printf("{\"classification\":%s,\"allocation\":%s}\n",
                ClassificationToJson(cls.value()).c_str(),
                AllocationToJson(cls.value(), alloc.value(), backends).c_str());
  } else {
    std::printf("%s\n%s",
                RenderClassificationReport(cls.value()).c_str(),
                RenderAllocationReport(cls.value(), alloc.value(), backends)
                    .c_str());
  }

  if (simulate) {
    SimulationConfig config;
    config.fault_plan = fault_plan;
    // Strict fault-plan validation happens inside the simulator run.
    auto sim =
        ClusterSimulator::Create(cls.value(), alloc.value(), backends, config);
    if (!sim.ok()) return Fail(sim.status().ToString());
    if (sim_repeat > 1) {
      SweepOptions sweep;
      sweep.repeat = sim_repeat;
      sweep.threads =
          mopts.threads > 0 ? mopts.threads : ThreadPool::DefaultThreads();
      auto runs = sim->RunOpenSweep(sim_duration, sim_rate, sweep);
      if (!runs.ok()) return Fail(runs.status().ToString());
      double thr_sum = 0.0;
      double thr_min = 0.0;
      double thr_max = 0.0;
      double avg_sum = 0.0;
      for (size_t i = 0; i < runs->size(); ++i) {
        const SimStats& st = (*runs)[i];
        std::printf("replication %zu (seed %llu): %s\n", i,
                    static_cast<unsigned long long>(config.seed + i),
                    st.ToString().c_str());
        thr_sum += st.throughput;
        avg_sum += st.avg_response_seconds;
        thr_min = i == 0 ? st.throughput : std::min(thr_min, st.throughput);
        thr_max = i == 0 ? st.throughput : std::max(thr_max, st.throughput);
      }
      const double n = static_cast<double>(runs->size());
      std::printf(
          "sweep: replications=%zu, throughput mean=%.2f min=%.2f max=%.2f "
          "req/s, avg response mean=%.4g ms\n",
          runs->size(), thr_sum / n, thr_min, thr_max, avg_sum / n * 1e3);
      return 0;
    }
    auto stats = sim->RunOpen(sim_duration, sim_rate);
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::printf("simulation: %s\n", stats->ToString().c_str());
    std::printf(
        "latency: p50=%.4g ms, p95=%.4g ms, p99=%.4g ms, max=%.4g ms\n",
        stats->p50_response_seconds * 1e3, stats->p95_response_seconds * 1e3,
        stats->p99_response_seconds * 1e3, stats->max_response_seconds * 1e3);
    if (have_fault_plan) {
      std::printf(
          "faults: plan=[%s], retried=%llu, redispatched=%llu, "
          "lag_drained=%llu, availability=%.4f%%\n",
          fault_plan.ToString().c_str(),
          static_cast<unsigned long long>(stats->retried_requests),
          static_cast<unsigned long long>(stats->redispatched_requests),
          static_cast<unsigned long long>(stats->lag_tasks_drained),
          stats->availability * 100.0);
    }
  }
  return 0;
}
