// Quickstart: classify a small query history, compute a partial
// replication with the greedy allocator, inspect the analytical metrics,
// and run the cluster simulator on the result.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "alloc/greedy.h"
#include "cluster/controller.h"
#include "common/strings.h"
#include "model/metrics.h"

using namespace qcap;

int main() {
  // 1. Describe the schema: three relations with row counts and types.
  engine::Catalog catalog;
  auto add_table = [&](const char* name, uint64_t rows) {
    engine::TableDef def;
    def.name = name;
    def.base_rows = rows;
    def.columns = {
        {"id", engine::ColumnType::kInt64, 0, true},
        {"payload", engine::ColumnType::kVarchar, 120, false},
    };
    Status st = catalog.AddTable(std::move(def));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return;
    }
  };
  add_table("accounts", 1000000);
  add_table("orders", 5000000);
  add_table("products", 200000);

  // 2. Feed the controller a query history (normally recorded live). Costs
  //    are per-execution seconds from your measurements or the optimizer.
  Controller controller(catalog);
  controller.RecordQuery(Query::Read("account lookups", {"accounts"}, 0.002),
                         3000);
  controller.RecordQuery(
      Query::Read("order report", {"orders", "products"}, 0.050), 500);
  controller.RecordQuery(Query::Read("catalog browse", {"products"}, 0.004),
                         2500);
  controller.RecordQuery(Query::Update("order ingest", {"orders"}, 0.001),
                         5000);

  // 3. Allocation mode: classify at table granularity and allocate onto 4
  //    equal backends with the greedy first-fit heuristic (Algorithm 1).
  GreedyAllocator greedy;
  auto report = controller.Reallocate(&greedy, HomogeneousBackends(4),
                                      {Granularity::kTable, 4, true});
  if (!report.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s",
              report->allocation.ToString(report->classification).c_str());
  std::printf("model speedup: %.2f of 4 (scale %.3f)\n",
              report->model_speedup, report->model_scale);
  std::printf("degree of replication: %.2f (full replication would be 4)\n",
              report->degree_of_replication);
  std::printf("initial load: %s in %.1f s\n",
              FormatBytes(report->transition.total_bytes).c_str(),
              report->transition.duration_seconds);

  // 4. Query processing mode: drive the simulated cluster and measure.
  SimulationConfig sim;
  sim.seed = 42;
  auto stats = controller.ProcessClosed(20000, 16, sim);
  if (!stats.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated: %s\n", stats->ToString().c_str());
  return 0;
}
