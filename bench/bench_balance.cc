// E12 / Figure 4(j): relative load balance (deviation of per-backend
// processing time from the mean) for the column-based allocation, TPC-H vs
// TPC-App, 1-10 backends.
//
// Paper shape: deviation grows with the cluster size and is much larger
// for the read-write TPC-App workload; the deviation stems from
// *underloaded* nodes, so throughput is not hurt proportionally.
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog tpch_catalog = workloads::TpchCatalog(1.0);
  const QueryJournal tpch_journal = workloads::TpchJournal(10000);
  const engine::Catalog app_catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal app_journal = workloads::TpcAppJournal(200000);
  GreedyAllocator greedy;
  MemeticOptions mopts;
  mopts.iterations = 30;
  mopts.population_size = 9;
  MemeticAllocator memetic(mopts);

  PrintHeader("Figure 4(j): deviation from balance (column-based)",
              {"backends", "tpch(sim)", "tpcapp(sim)", "tpch(model)",
               "tpcapp(model)"});
  for (size_t n = 1; n <= 10; ++n) {
    Pipeline ph = ValueOrDie(BuildPipeline(tpch_catalog, tpch_journal,
                                           Granularity::kColumn, &greedy, n),
                             "tpch");
    Pipeline pa = ValueOrDie(BuildPipeline(app_catalog, app_journal,
                                           Granularity::kColumn, &memetic, n),
                             "tpcapp");
    // Average simulated busy-time deviation over 10 seeded runs.
    double dev_h = 0.0, dev_a = 0.0;
    constexpr size_t kRuns = 10;
    std::vector<double> loads(n, 1.0 / static_cast<double>(n));
    for (size_t run = 0; run < kRuns; ++run) {
      SimStats sh =
          ValueOrDie(Simulate(ph, 1500, run + 1, TpchCostParams()), "sim-h");
      SimStats sa =
          ValueOrDie(Simulate(pa, 15000, run + 1, TpcAppCostParams()), "sim-a");
      dev_h += sh.BusyBalanceDeviation(loads);
      dev_a += sa.BusyBalanceDeviation(loads);
    }
    PrintRow({std::to_string(n), Fmt(dev_h / kRuns), Fmt(dev_a / kRuns),
              Fmt(BalanceDeviation(ph.alloc, ph.backends)),
              Fmt(BalanceDeviation(pa.alloc, pa.backends))});
  }
  std::printf(
      "\npaper shape: deviation increases with the number of backends and "
      "is much larger for the read-write workload (TPC-App), approaching 1 "
      "in some configurations -- always from an underloaded node.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E12: relative load balance TPC-H vs TPC-App (Figure 4j)\n");
  qcap::bench::Run();
  return 0;
}
