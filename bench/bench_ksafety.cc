// E19 / Appendix C: cost of k-safety -- storage and model speedup at
// k = 0, 1, 2 for TPC-H (column-based, read-only) and TPC-App
// (table-based, update-heavy) on 10 backends.
//
// Paper shape: in the read-only case extra replicas cost storage but not
// theoretical speedup; with updates, replicated update classes reduce the
// achievable speedup.
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Report(const char* workload, const engine::Catalog& catalog,
            const QueryJournal& journal, Granularity granularity) {
  PrintHeader(std::string("k-safety on ") + workload,
              {"k", "repl-degree", "model-speedup", "min-replicas"}, 16);
  for (int k : {0, 1, 2}) {
    KSafetyOptions opts;
    opts.k = k;
    KSafeGreedyAllocator allocator(opts);
    Pipeline p = ValueOrDie(
        BuildPipeline(catalog, journal, granularity, &allocator, 10),
        "pipeline");
    ValidationOptions vopts;
    vopts.k_safety = k;
    CheckOk(ValidateAllocation(p.cls, p.alloc, p.backends, vopts),
            "k-safety validation");
    size_t min_replicas = 10;
    for (FragmentId f = 0; f < p.cls.catalog.size(); ++f) {
      min_replicas = std::min(min_replicas, p.alloc.ReplicaCount(f));
    }
    PrintRow({std::to_string(k),
              Fmt(DegreeOfReplication(p.alloc, p.cls.catalog), 2),
              Fmt(Speedup(p.alloc, p.backends), 2),
              std::to_string(min_replicas)},
             16);
  }
}

void Run() {
  Report("TPC-H (column-based, read-only)", workloads::TpchCatalog(1.0),
         workloads::TpchJournal(10000), Granularity::kColumn);
  std::printf(
      "paper shape: read-only k-safety costs storage only; the theoretical "
      "speedup is unaffected.\n");
  Report("TPC-App (table-based, update-heavy)", workloads::TpcAppCatalog(300.0),
         workloads::TpcAppJournal(200000), Granularity::kTable);
  std::printf(
      "paper shape: replicated update classes reduce the achievable "
      "speedup as k grows.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E19: k-safety extension (Appendix C)\n");
  qcap::bench::Run();
  return 0;
}
