// E5 / Figure 4(c): TPC-H degree of replication for full replication,
// table-based, column-based, and the exact (MILP) column-based optimum.
//
// Paper shape: full = number of backends; table-based slightly below full
// (the fact tables are ~80% of the bytes and referenced everywhere);
// column-based much lower (r = 3.5 at 10 backends); the greedy heuristic
// is very close to the optimum.
//
// Substitution note: the paper solved the optimal column-based ILP with a
// commercial solver up to 7 backends; our from-scratch branch-and-bound is
// exact but slower, so the optimal line is computed on a table-granular
// program over the 8 heaviest templates, up to 3 backends. The
// greedy-vs-optimal gap is what the figure demonstrates, and that
// comparison is preserved (greedy is recomputed on the same reduced
// instance for an apples-to-apples gap).
#include <algorithm>
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/optimal.h"
#include "bench_util.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

/// The 8 heaviest TPC-H templates: the instance on which the exact MILP is
/// tractable for our from-scratch branch-and-bound.
QueryJournal ReducedJournal() {
  auto queries = workloads::TpchQueries();
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) { return a.cost > b.cost; });
  QueryJournal journal;
  for (size_t i = 0; i < 8; ++i) journal.Record(queries[i], 500);
  return journal;
}

void Run() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  const QueryJournal reduced = ReducedJournal();
  FullReplicationAllocator full;
  GreedyAllocator greedy;

  PrintHeader("Figure 4(c): TPC-H degree of replication",
              {"backends", "full-repl", "table", "column", "optimal(table)"},
              24);
  for (size_t n = 1; n <= 10; ++n) {
    Pipeline pf = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kTable, &full, n), "full");
    Pipeline pt = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kTable, &greedy, n),
        "table");
    Pipeline pc = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, n),
        "column");
    std::string optimal_cell = "-";
    if (n <= 3) {
      OptimalOptions opts;
      opts.milp.max_nodes = 40000;
      OptimalAllocator optimal(opts);
      auto po =
          BuildPipeline(catalog, reduced, Granularity::kTable, &optimal, n);
      auto pg =
          BuildPipeline(catalog, reduced, Granularity::kTable, &greedy, n);
      if (po.ok() && pg.ok()) {
        optimal_cell =
            Fmt(DegreeOfReplication(po->alloc, po->cls.catalog), 3) +
            " (greedy " +
            Fmt(DegreeOfReplication(pg->alloc, pg->cls.catalog), 3) + ")";
      } else {
        optimal_cell = "limit";
      }
    }
    PrintRow({std::to_string(n),
              Fmt(DegreeOfReplication(pf.alloc, pf.cls.catalog), 2),
              Fmt(DegreeOfReplication(pt.alloc, pt.cls.catalog), 2),
              Fmt(DegreeOfReplication(pc.alloc, pc.cls.catalog), 2),
              optimal_cell},
             24);
  }
  std::printf(
      "\npaper shape: full = n; table-based uses >80%% of full; "
      "column-based reaches r~3.5 at 10 backends; greedy within ~0.03 of "
      "the optimum where the exact program is solvable.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E5: TPC-H degree of replication (Figure 4c)\n");
  qcap::bench::Run();
  return 0;
}
