// Google-benchmark microbenchmarks of the library's hot paths:
// classification, the allocators, the matching/LP solvers, and the cluster
// simulator's event loop. Not a paper figure; used to track performance of
// the implementation itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "alloc/search_kernel.h"
#include "cluster/event_queue.h"
#include "cluster/simulator.h"
#include "common/random.h"
#include "model/metrics.h"
#include "solver/hungarian.h"
#include "solver/simplex.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

// Global allocation counter: the GarbageCollect/EvaluateDelta benchmarks
// assert (via the "allocs/iter" counter) that the steady-state hot path does
// not touch the heap.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC pairs the built-in operator new with the built-in operator delete at
// call sites and flags our std::free as mismatched; with the replaced
// operator new above (malloc-backed), free() is exactly right.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace qcap {
namespace {

void BM_ClassifyTpchColumn(benchmark::State& state) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  for (auto _ : state) {
    auto cls = classifier.Classify(journal);
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_ClassifyTpchColumn);

void BM_GreedyTpchColumn(benchmark::State& state) {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  Classifier classifier(catalog, {Granularity::kColumn, 4, true});
  Classification cls = classifier.Classify(journal).value();
  const auto backends = HomogeneousBackends(state.range(0));
  GreedyAllocator greedy;
  for (auto _ : state) {
    auto alloc = greedy.Allocate(cls, backends);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(BM_GreedyTpchColumn)->Arg(2)->Arg(5)->Arg(10);

void BM_MemeticIterationTpcApp(benchmark::State& state) {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = classifier.Classify(journal).value();
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  Allocation seed = greedy.Allocate(cls, backends).value();
  MemeticOptions opts;
  opts.iterations = 1;
  opts.population_size = 9;
  for (auto _ : state) {
    MemeticAllocator memetic(opts);
    auto alloc = memetic.Improve(cls, backends, seed);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(BM_MemeticIterationTpcApp);

/// Shared fixture for the search-kernel benchmarks: TPC-App at table
/// granularity on 10 backends, greedy seed, bound sizes.
struct KernelFixture {
  Classification cls;
  std::vector<BackendSpec> backends;
  ClassificationIndex index;
  Allocation seed;

  static KernelFixture Make() {
    const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
    const QueryJournal journal = workloads::TpcAppJournal(200000);
    Classifier classifier(catalog, {Granularity::kTable, 4, true});
    Classification cls = classifier.Classify(journal).value();
    auto backends = HomogeneousBackends(10);
    GreedyAllocator greedy;
    Allocation seed = greedy.Allocate(cls, backends).value();
    seed.BindSizes(cls.catalog);
    ClassificationIndex index(cls);
    return KernelFixture{std::move(cls), std::move(backends), std::move(index),
                         std::move(seed)};
  }
};

void BM_GarbageCollect(benchmark::State& state) {
  auto fx = KernelFixture::Make();
  alloc_internal::SearchKernel kernel(fx.cls, fx.index, fx.backends);
  Allocation work = fx.seed;
  kernel.GarbageCollect(&work);  // Warm the scratch buffers.
  uint64_t allocs = 0;
  uint64_t iters = 0;
  for (auto _ : state) {
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    kernel.GarbageCollect(&work);
    allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    ++iters;
    benchmark::DoNotOptimize(work);
  }
  state.counters["allocs/iter"] =
      iters == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(iters);
}
BENCHMARK(BM_GarbageCollect);

void BM_EvaluateFull(benchmark::State& state) {
  auto fx = KernelFixture::Make();
  alloc_internal::SearchKernel kernel(fx.cls, fx.index, fx.backends);
  kernel.GarbageCollect(&fx.seed);
  for (auto _ : state) {
    auto cost = kernel.Evaluate(fx.seed);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_EvaluateFull);

void BM_EvaluateDelta(benchmark::State& state) {
  auto fx = KernelFixture::Make();
  alloc_internal::SearchKernel kernel(fx.cls, fx.index, fx.backends);
  kernel.GarbageCollect(&fx.seed);
  kernel.BeginDelta(fx.seed, kernel.Evaluate(fx.seed));
  // A representative trial: read share moved between two backends, partial
  // GC over the touched rows.
  Allocation trial = fx.seed;
  const double share = trial.read_assign(0, 0);
  trial.add_read_assign(0, 0, -share);
  trial.add_read_assign(1, 0, share);
  trial.PlaceBits(1, fx.index.read_bits(0));
  std::vector<size_t> touched;
  const size_t bs[2] = {0, 1};
  kernel.GarbageCollectBackends(&trial, bs, 2, &touched);
  uint64_t allocs = 0;
  uint64_t iters = 0;
  for (auto _ : state) {
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    auto cost = kernel.EvaluateDelta(trial, touched);
    allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    ++iters;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["allocs/iter"] =
      iters == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(iters);
}
BENCHMARK(BM_EvaluateDelta);

void BM_Hungarian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.NextDouble() * 1000.0;
  }
  for (auto _ : state) {
    auto result = SolveAssignment(cost);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(128);

void BM_SimplexTransportation(benchmark::State& state) {
  const size_t m = 8, n = 10;
  Rng rng(11);
  LinearProgram lp;
  lp.num_vars = m * n;
  lp.objective.resize(lp.num_vars);
  for (double& c : lp.objective) c = 1.0 + rng.NextDouble() * 9.0;
  std::vector<double> supply(m, 10.0), demand(n, 8.0);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(lp.num_vars, 0.0);
    for (size_t j = 0; j < n; ++j) row[i * n + j] = 1.0;
    lp.AddConstraint(std::move(row), Relation::kEqual, supply[i]);
  }
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> col(lp.num_vars, 0.0);
    for (size_t i = 0; i < m; ++i) col[i * n + j] = 1.0;
    lp.AddConstraint(std::move(col), Relation::kEqual, demand[j]);
  }
  for (auto _ : state) {
    auto sol = SolveLp(lp);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexTransportation);

void BM_SimulatorClosedLoop(benchmark::State& state) {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = classifier.Classify(journal).value();
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  Allocation alloc = greedy.Allocate(cls, backends).value();
  SimulationConfig config;
  uint64_t requests = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    config.seed++;
    auto sim = ClusterSimulator::Create(cls, alloc, backends, config);
    auto stats = sim->RunClosed(requests, 40);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(requests));
}
BENCHMARK(BM_SimulatorClosedLoop)->Arg(10000)->Arg(50000);

void BM_SimulatorOpenLoop(benchmark::State& state) {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = classifier.Classify(journal).value();
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  Allocation alloc = greedy.Allocate(cls, backends).value();
  SimulationConfig config;
  auto sim = ClusterSimulator::Create(cls, alloc, backends, config).value();
  SimStats out;
  // Warm-up: the first run grows the pooled scratch (event arena, request
  // slots, response samples) to its high-water mark; the measured runs
  // repeat the same seed, so steady state reuses it and the loop must
  // report allocs/iter = 0.
  if (!sim.RunOpen(1.0, 2000.0, &out).ok()) state.SkipWithError("warm-up");
  const uint64_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    auto status = sim.RunOpen(1.0, 2000.0, &out);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(out);
  }
  state.counters["allocs/iter"] = static_cast<double>(
      g_alloc_count.load() - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimulatorOpenLoop);

void BM_DispatchReadWide(benchmark::State& state) {
  // Full replication over many backends: every read class's candidate
  // list spans the whole cluster, putting the per-dispatch weight on the
  // pending-index pick instead of the service itself.
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(100000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = classifier.Classify(journal).value();
  const auto backends = HomogeneousBackends(32);
  FullReplicationAllocator full;
  Allocation alloc = full.Allocate(cls, backends).value();
  SimulationConfig config;
  auto sim = ClusterSimulator::Create(cls, alloc, backends, config).value();
  SimStats out;
  uint64_t requests = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    sim.set_seed(sim.seed() + 1);
    auto status = sim.RunClosed(requests, 64, &out);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(requests));
}
BENCHMARK(BM_DispatchReadWide)->Arg(20000);

void BM_EventQueue(benchmark::State& state) {
  // Steady-state churn at a fixed population: push/pop cycles against a
  // warmed arena must recycle slots without touching the allocator.
  const size_t population = static_cast<size_t>(state.range(0));
  EventQueue queue;
  queue.Reserve(population + 1);
  Rng rng(5);
  uint64_t seq = 0;
  double now = 0.0;
  for (size_t i = 0; i < population; ++i) {
    SimEvent ev;
    ev.time = now + rng.NextDouble();
    ev.seq = seq++;
    queue.Push(ev);
  }
  SimEvent popped;
  const uint64_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    queue.Pop(&popped);
    now = popped.time;
    SimEvent ev;
    ev.time = now + rng.NextDouble();
    ev.seq = seq++;
    queue.Push(ev);
    benchmark::DoNotOptimize(popped);
  }
  state.counters["allocs/iter"] = static_cast<double>(
      g_alloc_count.load() - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_EventQueue)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace qcap

BENCHMARK_MAIN();
