// E11 / Figure 4(i): TPC-App large-scale run (EB=12000, ~8-10 GB, ~1:1
// read:update weight) -- relative throughput at 1/5/10 backends.
//
// Paper shape: the expensive updates reduce every strategy's speedup; full
// replication *slows down* at 10 nodes, while the partial allocations keep
// scaling.
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(12000.0);
  const QueryJournal journal = workloads::TpcAppLargeJournal(200000);
  // The large data set no longer fits the per-backend cache: full replicas
  // pay the miss penalty on every node. The expensive updates also pay a
  // visible ROWA coordination cost per additional replica, which is what
  // turns full replication's curve *down* at 10 nodes in the paper.
  engine::CostModelParams params = TpcAppCostParams();
  params.memory_bytes = 4.0 * 1024 * 1024 * 1024;
  params.io_fraction = 0.5;
  constexpr double kFanoutOverhead = 0.05;

  FullReplicationAllocator full;
  MemeticOptions mopts;
  mopts.iterations = 40;
  mopts.population_size = 12;
  MemeticAllocator memetic(mopts);

  PrintHeader("Figure 4(i): TPC-App large scale, relative throughput",
              {"strategy", "n=1", "n=5", "n=10"}, 12);
  struct Variant {
    const char* name;
    Granularity granularity;
    Allocator* allocator;
  };
  const Variant variants[] = {
      {"full-repl", Granularity::kTable, &full},
      {"table", Granularity::kTable, &memetic},
      {"column", Granularity::kColumn, &memetic},
  };
  std::vector<std::vector<double>> relative(3);
  for (size_t v = 0; v < 3; ++v) {
    double baseline = 0.0;
    std::vector<std::string> row = {variants[v].name};
    for (size_t n : {1, 5, 10}) {
      Pipeline p = ValueOrDie(
          BuildPipeline(catalog, journal, variants[v].granularity,
                        variants[v].allocator, n),
          "pipeline");
      ThroughputStats stats = ValueOrDie(
          SimulateSeeds(p, 20000, 3, params, kFanoutOverhead), "simulate");
      if (n == 1) baseline = stats.mean;
      relative[v].push_back(stats.mean / baseline);
      row.push_back(Fmt(stats.mean / baseline, 2));
    }
    PrintRow(row, 12);
  }
  std::printf(
      "\npaper shape: reduced speedups everywhere; full replication "
      "%s from n=5 to n=10 (%.2f -> %.2f here) while table/column "
      "keep scaling (table %.2f -> %.2f, column %.2f -> %.2f).\n",
      relative[0][2] < relative[0][1] ? "regresses" : "stalls",
      relative[0][1], relative[0][2], relative[1][1], relative[1][2],
      relative[2][1], relative[2][2]);
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E11: TPC-App large scale (Figure 4i)\n");
  qcap::bench::Run();
  return 0;
}
