// E24 (extension): heterogeneity-awareness. The paper's model and
// algorithm explicitly support backends with different processing powers
// (Eq. 7, 15, 19; the Appendix A example runs on a 30/30/20/20 cluster).
// This bench quantifies what ignoring heterogeneity costs: the same
// workload is allocated (a) with the true relative performances and
// (b) pretending the cluster is homogeneous, then both layouts are
// simulated on the *actual* heterogeneous hardware.
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

/// Simulates \p alloc on the true heterogeneous \p backends.
Result<double> SimulateOnHardware(const Classification& cls,
                                  const Allocation& alloc,
                                  const std::vector<BackendSpec>& backends,
                                  const engine::CostModelParams& params,
                                  uint64_t requests) {
  double mean = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SimulationConfig config;
    config.cost_params = params;
    config.seed = seed;
    QCAP_ASSIGN_OR_RETURN(
        ClusterSimulator sim,
        ClusterSimulator::Create(cls, alloc, backends, config));
    QCAP_ASSIGN_OR_RETURN(SimStats stats,
                          sim.RunClosed(requests, 4 * backends.size()));
    mean += stats.throughput;
  }
  return mean / 3.0;
}

void Run(const char* title, const engine::Catalog& catalog,
         const QueryJournal& journal, Granularity granularity,
         const engine::CostModelParams& params, uint64_t requests) {
  // A 6-node cluster: two fast nodes, four slow ones (2:1).
  const auto hardware =
      ValueOrDie(HeterogeneousBackends({2.0, 2.0, 1.0, 1.0, 1.0, 1.0}),
                 "hardware");
  const auto assumed_homogeneous = HomogeneousBackends(6);

  Classifier classifier(catalog, {granularity, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");
  MemeticOptions mopts;
  mopts.iterations = 30;
  mopts.population_size = 9;
  MemeticAllocator memetic(mopts);

  // Aware: allocated against the true shares.
  Allocation aware = ValueOrDie(memetic.Allocate(cls, hardware), "aware");
  // Oblivious: allocated as if homogeneous, then deployed on the real
  // hardware (same placement, same assignments).
  Allocation oblivious =
      ValueOrDie(memetic.Allocate(cls, assumed_homogeneous), "oblivious");

  const double t_aware = ValueOrDie(
      SimulateOnHardware(cls, aware, hardware, params, requests), "sim-a");
  const double t_oblivious = ValueOrDie(
      SimulateOnHardware(cls, oblivious, hardware, params, requests), "sim-o");

  PrintHeader(title, {"allocation", "model scale", "sim q/s"}, 16);
  PrintRow({"aware", Fmt(Scale(aware, hardware), 3), Fmt(t_aware, 0)}, 16);
  PrintRow({"oblivious", Fmt(Scale(oblivious, hardware), 3),
            Fmt(t_oblivious, 0)},
           16);
  std::printf("heterogeneity-aware advantage: %.2fx\n", t_aware / t_oblivious);
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf(
      "E24: heterogeneity-aware allocation on a 2/2/1/1/1/1 cluster\n");
  qcap::bench::Run("TPC-H column-based", qcap::workloads::TpchCatalog(1.0),
                   qcap::workloads::TpchJournal(10000),
                   qcap::Granularity::kColumn, qcap::bench::TpchCostParams(),
                   1500);
  qcap::bench::Run("TPC-App table-based",
                   qcap::workloads::TpcAppCatalog(300.0),
                   qcap::workloads::TpcAppJournal(200000),
                   qcap::Granularity::kTable, qcap::bench::TpcAppCostParams(),
                   20000);
  std::printf(
      "\nshape: the aware allocation gives the fast nodes proportionally "
      "more query weight (Eq. 7/15), which the model scale shows directly "
      "(aware < oblivious in both workloads). In simulation the read-only "
      "workload keeps the full advantage; on the update-heavy workload the "
      "runtime least-pending scheduler recovers much of the oblivious "
      "layout's imbalance wherever replication leaves it dispatch freedom "
      "-- update placement, which the scheduler cannot reroute, is where "
      "awareness matters most.\n");
  return 0;
}
