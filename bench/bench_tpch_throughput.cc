// E3 / Figure 4(a): TPC-H throughput and speedup, 1-10 backends, for full
// replication, table-based, column-based, and random allocation.
//
// Paper shape: all strategies scale ~linearly except random (levels out at
// ~2.5x); table- and column-based beat full replication (specialization
// improves caching; vertical partitioning shrinks scans).
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/random_allocator.h"
#include "bench_util.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  const engine::CostModelParams params = TpchCostParams();
  constexpr uint64_t kRequests = 2000;
  constexpr size_t kSeeds = 3;

  FullReplicationAllocator full;
  GreedyAllocator greedy;

  PrintHeader("Figure 4(a): TPC-H throughput (queries/sec)",
              {"backends", "full-repl", "table", "column", "random"});

  double single_node = 0.0;
  std::vector<std::vector<double>> speedups(4);
  for (size_t n = 1; n <= 10; ++n) {
    struct Variant {
      Granularity granularity;
      Allocator* allocator;
    };
    const Variant variants[] = {
        {Granularity::kTable, &full},
        {Granularity::kTable, &greedy},
        {Granularity::kColumn, &greedy},
        {Granularity::kColumn, nullptr},  // Random: averaged over seeds.
    };
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t v = 0; v < 4; ++v) {
      double mean = 0.0;
      if (variants[v].allocator != nullptr) {
        Pipeline p = ValueOrDie(
            BuildPipeline(catalog, journal, variants[v].granularity,
                          variants[v].allocator, n),
            "pipeline");
        ThroughputStats stats = ValueOrDie(
            SimulateSeeds(p, kRequests, kSeeds, params), "simulate");
        mean = stats.mean;
      } else {
        // The random baseline is itself random: average whole pipelines
        // over several placement seeds (the paper repeats each run 10x).
        constexpr size_t kPlacements = 5;
        for (size_t run = 0; run < kPlacements; ++run) {
          RandomAllocator random(1000 + 31 * n + run);
          Pipeline p = ValueOrDie(
              BuildPipeline(catalog, journal, variants[v].granularity,
                            &random, n),
              "pipeline");
          SimStats stats =
              ValueOrDie(Simulate(p, kRequests, run + 1, params), "simulate");
          mean += stats.throughput;
        }
        mean /= static_cast<double>(kPlacements);
      }
      if (n == 1 && v == 0) single_node = mean;
      speedups[v].push_back(mean / single_node);
      row.push_back(Fmt(mean, 2));
    }
    PrintRow(row);
  }

  PrintHeader("Figure 4(a): speedup vs single node",
              {"backends", "full-repl", "table", "column", "random"});
  for (size_t n = 1; n <= 10; ++n) {
    PrintRow({std::to_string(n), Fmt(speedups[0][n - 1]),
              Fmt(speedups[1][n - 1]), Fmt(speedups[2][n - 1]),
              Fmt(speedups[3][n - 1])});
  }
  std::printf(
      "\npaper shape: linear scaling for full/table/column with "
      "column >= table >= full; random levels out around 2.5x.\n"
      "measured at 10 backends: full=%.1fx table=%.1fx column=%.1fx "
      "random=%.1fx\n",
      speedups[0][9], speedups[1][9], speedups[2][9], speedups[3][9]);
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E3: TPC-H read-only throughput (Figure 4a)\n");
  qcap::bench::Run();
  return 0;
}
