// E20: allocator quality ablation (Section 3.3's "close to optimal" claim)
// and cost-model ablation (what produces the super-linear read-only
// speedup).
//
//  (a) greedy vs memetic vs exact MILP on small instances: scale and
//      stored bytes;
//  (b) the cache-penalty term switched off: specialized allocations lose
//      their super-linear edge over full replication.
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "alloc/optimal.h"
#include "bench_util.h"
#include "common/stats.h"
#include "workloads/journal_synth.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void QualityAblation() {
  PrintHeader("greedy vs memetic vs optimal (scale | stored-frac)",
              {"instance", "greedy", "memetic", "optimal"}, 22);
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    workloads::RandomWorkloadOptions options;
    options.num_tables = 4;
    options.num_read_templates = 5;
    options.num_update_templates = 2;
    const auto workload = workloads::MakeRandomWorkload(seed, options);
    Classifier classifier(workload.catalog, {Granularity::kTable, 4, true});
    Classification cls =
        ValueOrDie(classifier.Classify(workload.journal), "classify");
    const auto backends = HomogeneousBackends(3);
    const double total_bytes = cls.catalog.TotalBytes();

    auto report = [&](Allocator* a) -> std::string {
      auto alloc = a->Allocate(cls, backends);
      if (!alloc.ok()) return "n/a";
      double stored = 0.0;
      for (size_t b = 0; b < 3; ++b) {
        stored += alloc->BackendBytes(b, cls.catalog);
      }
      return Fmt(Scale(alloc.value(), backends), 3) + " | " +
             Fmt(stored / total_bytes, 2);
    };
    GreedyAllocator greedy;
    MemeticOptions mopts;
    mopts.iterations = 40;
    mopts.seed = seed;
    MemeticAllocator memetic(mopts);
    OptimalOptions oopts;
    oopts.milp.max_nodes = 50000;
    OptimalAllocator optimal(oopts);
    PrintRow({"rand-" + std::to_string(seed), report(&greedy),
              report(&memetic), report(&optimal)},
             22);
  }
  std::printf(
      "paper claim: the heuristic is very close to the optimum (0.03 "
      "difference in replication degree at 7 backends).\n");
}

/// Algorithm 2 parameter sweep: how fast the memetic search converges on
/// the TPC-App instance, starting from the greedy seed.
void MemeticConvergence() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  Allocation seed = ValueOrDie(greedy.Allocate(cls, backends), "seed");

  PrintHeader("memetic convergence (TPC-App, 10 backends)",
              {"iterations", "scale", "model speedup"}, 16);
  PrintRow({"0 (greedy)", Fmt(Scale(seed, backends), 3),
            Fmt(Speedup(seed, backends), 2)},
           16);
  for (size_t iterations : {5, 20, 60, 120}) {
    MemeticOptions opts;
    opts.iterations = iterations;
    opts.population_size = 12;
    opts.seed = 9;
    MemeticAllocator memetic(opts);
    Allocation improved =
        ValueOrDie(memetic.Improve(cls, backends, seed), "improve");
    PrintRow({std::to_string(iterations), Fmt(Scale(improved, backends), 3),
              Fmt(Speedup(improved, backends), 2)},
             16);
  }
  std::printf(
      "shape: most of the improvement lands in the first tens of "
      "generations; the paper runs the evolutionary stage for a fixed "
      "iteration budget for deterministic runtimes.\n");
}

/// Island-model ablation: how subpopulation count and migration shape the
/// search result at a fixed evaluation budget, and thread-count parity
/// (the determinism contract: same {seed, num_islands} => same solution).
void IslandAblation() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");
  const auto backends = HomogeneousBackends(10);
  GreedyAllocator greedy;
  Allocation seed = ValueOrDie(greedy.Allocate(cls, backends), "seed");
  const double total_bytes = cls.catalog.TotalBytes();

  PrintHeader("island ablation (TPC-App, 10 backends, fixed budget)",
              {"islands", "migration", "scale", "stored-frac", "evals"}, 14);
  for (size_t islands : {1, 2, 4, 8}) {
    for (size_t interval : {size_t{0}, size_t{10}}) {
      if (islands == 1 && interval != 0) continue;  // No one to migrate to.
      SearchProgress progress;
      MemeticOptions opts;
      opts.population_size = 24;  // Total budget, split over the islands.
      opts.iterations = 60;
      opts.migration_interval = interval;
      opts.num_islands = islands;
      opts.seed = 9;
      opts.progress = &progress;
      MemeticAllocator memetic(opts);
      Allocation improved =
          ValueOrDie(memetic.Improve(cls, backends, seed), "improve");
      double stored = 0.0;
      for (size_t b = 0; b < backends.size(); ++b) {
        stored += improved.BackendBytes(b, cls.catalog);
      }
      PrintRow({std::to_string(islands),
                interval == 0 ? "off" : std::to_string(interval),
                Fmt(Scale(improved, backends), 3), Fmt(stored / total_bytes, 2),
                std::to_string(progress.evaluations.load())},
               14);
    }
  }

  // Thread parity: same {seed, num_islands} at 1 vs 4 threads.
  MemeticOptions opts;
  opts.population_size = 24;
  opts.iterations = 30;
  opts.num_islands = 4;
  opts.migration_interval = 10;
  opts.seed = 9;
  opts.threads = 1;
  Allocation serial = ValueOrDie(
      MemeticAllocator(opts).Improve(cls, backends, seed), "serial");
  opts.threads = 4;
  Allocation parallel = ValueOrDie(
      MemeticAllocator(opts).Improve(cls, backends, seed), "parallel");
  std::printf(
      "thread parity: scale(1 thread)=%s scale(4 threads)=%s -- identical "
      "by the island determinism contract.\n",
      Fmt(Scale(serial, backends), 6).c_str(),
      Fmt(Scale(parallel, backends), 6).c_str());
}

void CachePenaltyAblation() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  GreedyAllocator greedy;
  FullReplicationAllocator full;

  PrintHeader("cache-penalty ablation (TPC-H, 8 backends, q/s)",
              {"cost model", "full-repl", "column", "column/full"}, 16);
  for (bool cache_effects : {true, false}) {
    engine::CostModelParams params = TpchCostParams();
    if (!cache_effects) params.memory_bytes = 1e15;  // Everything cached.
    Pipeline pf = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kTable, &full, 8), "full");
    Pipeline pc = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, 8),
        "column");
    ThroughputStats tf = ValueOrDie(SimulateSeeds(pf, 1500, 3, params), "f");
    ThroughputStats tc = ValueOrDie(SimulateSeeds(pc, 1500, 3, params), "c");
    PrintRow({cache_effects ? "with cache" : "no cache", Fmt(tf.mean),
              Fmt(tc.mean), Fmt(tc.mean / tf.mean)},
             16);
  }
  std::printf(
      "design note: the cache-penalty term is what reproduces the paper's "
      "super-linear specialized-backend speedups; without it the column "
      "advantage shrinks to the scan-width effect alone.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E20: allocator quality + cost model ablations\n");
  qcap::bench::QualityAblation();
  qcap::bench::MemeticConvergence();
  qcap::bench::IslandAblation();
  qcap::bench::CachePenaltyAblation();
  return 0;
}
