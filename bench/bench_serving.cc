// bench_serving: closed/open-loop load generator for the qcap_serve wire
// protocol (docs/SERVING.md).
//
// By default it spawns an in-process QueryRoutingServer on an ephemeral
// loopback port (a real TCP server, same code path as qcap_serve), drives
// it with N concurrent client connections, and reports client-observed
// routing latency percentiles and sustained throughput. With --port it
// targets an already-running external server instead and discovers the
// class universe via HEALTH.
//
//   closed loop (default): each client keeps exactly one request in
//     flight — SUBMIT, read the decision, DONE the backend(s), repeat.
//   open loop (--open-qps Q): clients fire on a fixed schedule totalling
//     Q submits/second regardless of response times, the paper-style
//     arrival process; latency then includes any server-side queueing.
//
// In in-process mode a final serial phase replays a fixed class sequence
// against a fresh server AND a directly-built Scheduler with mirrored
// pending bookkeeping, asserting the routing decisions are bit-identical
// (the serving layer adds transport, not policy).
//
// Results go to stdout and, with --out FILE (or via the bench_serving_json
// target), to a small JSON file committed as the serving baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "alloc/greedy.h"
#include "cluster/pending_index.h"
#include "cluster/scheduler.h"
#include "cluster/stats.h"
#include "common/stats.h"
#include "model/validation.h"
#include "net/client.h"
#include "net/server.h"
#include "workload/classifier.h"
#include "workloads/tpcapp.h"

using namespace qcap;
using Clock = std::chrono::steady_clock;

namespace {

struct BenchConfig {
  size_t clients = 8;
  size_t requests_per_client = 5000;  // closed loop
  double open_qps = 0.0;              // > 0 switches to open loop
  double open_duration_seconds = 5.0;
  size_t backends = 4;
  uint16_t external_port = 0;  // 0 = spawn an in-process server
  std::string out_path;        // empty = stdout only
  bool smoke = false;
};

struct LoadResult {
  uint64_t completed = 0;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
  ResponseAccumulator latency;
};

int Fail(const char* message) {
  std::fprintf(stderr, "bench_serving: %s\n", message);
  std::fprintf(stderr,
               "usage: bench_serving [--clients N] [--requests N] "
               "[--open-qps Q] [--duration S] [--backends N] [--port P] "
               "[--out FILE] [--smoke]\n");
  return 2;
}

/// The deterministic class mix: 7 reads then 1 update, cycling through the
/// class lists — roughly the TPC-App 1:7 update:read query ratio.
std::string ClassToken(size_t step, size_t reads, size_t updates) {
  if (updates > 0 && step % 8 == 7) {
    return "U" + std::to_string((step / 8) % updates);
  }
  return "R" + std::to_string(step % reads);
}

/// Sends SUBMIT, records latency, and DONEs every routed backend so the
/// closed loop leaves no pending depth behind. Returns false on transport
/// failure.
bool SubmitOnce(net::Client* client, const std::string& token,
                std::vector<double>* latencies, uint64_t* completed,
                uint64_t* errors) {
  const auto start = Clock::now();
  auto reply = client->Call("SUBMIT " + token);
  const auto stop = Clock::now();
  if (!reply.ok()) return false;
  latencies->push_back(std::chrono::duration<double>(stop - start).count());
  if (reply->rfind("ERR", 0) == 0) {
    ++*errors;
    return true;
  }
  ++*completed;
  // "OK BACKEND 2" or "OK BACKENDS 0 1 3": ack each backend id.
  const size_t ids_at = reply->find_first_of("0123456789");
  if (ids_at == std::string::npos) return true;
  size_t pos = ids_at;
  while (pos < reply->size()) {
    size_t end = reply->find(' ', pos);
    if (end == std::string::npos) end = reply->size();
    if (!client->Call("DONE " + reply->substr(pos, end - pos)).ok()) {
      return false;
    }
    pos = end + 1;
  }
  return true;
}

/// Runs the load phase with one thread per client connection.
LoadResult RunLoad(const BenchConfig& config, uint16_t port, size_t reads,
                   size_t updates) {
  std::vector<std::vector<double>> latencies(config.clients);
  std::vector<uint64_t> completed(config.clients, 0);
  std::vector<uint64_t> errors(config.clients, 0);
  std::vector<std::thread> workers;
  workers.reserve(config.clients);
  const auto wall_start = Clock::now();
  for (size_t c = 0; c < config.clients; ++c) {
    workers.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "client %zu connect: %s\n", c,
                     client.status().ToString().c_str());
        return;
      }
      if (config.open_qps > 0.0) {
        // Open loop: this client owns every clients-th arrival of the
        // aggregate schedule.
        const double interval =
            static_cast<double>(config.clients) / config.open_qps;
        const auto t0 = Clock::now();
        for (size_t i = 0;; ++i) {
          const double at = static_cast<double>(i) * interval;
          if (at >= config.open_duration_seconds) break;
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(at)));
          if (!SubmitOnce(&*client, ClassToken(c + i * 7, reads, updates),
                          &latencies[c], &completed[c], &errors[c])) {
            return;
          }
        }
      } else {
        for (size_t i = 0; i < config.requests_per_client; ++i) {
          if (!SubmitOnce(&*client, ClassToken(c + i * 7, reads, updates),
                          &latencies[c], &completed[c], &errors[c])) {
            return;
          }
        }
      }
      client->Call("QUIT");
    });
  }
  for (auto& w : workers) w.join();

  LoadResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  for (size_t c = 0; c < config.clients; ++c) {
    result.completed += completed[c];
    result.errors += errors[c];
    for (double s : latencies[c]) result.latency.Add(s);
  }
  return result;
}

/// Replays a fixed 400-step class sequence through a fresh server session
/// and a directly built Scheduler with identical pending bookkeeping; any
/// divergence is a routing-parity bug.
bool VerifyRoutingParity(const Classification& cls, const Allocation& alloc) {
  auto server = net::QueryRoutingServer::Create(cls, alloc, {});
  if (!server.ok() || !(*server)->Start().ok()) return false;
  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  auto direct = Scheduler::Build(cls, alloc);
  if (!client.ok() || !direct.ok()) return false;
  std::vector<size_t> pending(alloc.num_backends(), 0);
  std::deque<size_t> outstanding;
  const size_t reads = cls.reads.size();
  for (size_t step = 0; step < 400; ++step) {
    const size_t r = (step * 7) % reads;
    const size_t expected = direct->PickReadBackend(r, pending);
    auto reply = client->Call("SUBMIT R" + std::to_string(r));
    if (!reply.ok()) return false;
    if (expected == PendingIndex::kNone) {
      if (reply->rfind("ERR UNSERVABLE", 0) != 0) return false;
      continue;
    }
    if (*reply != "OK BACKEND " + std::to_string(expected)) {
      std::fprintf(stderr, "parity diverged at step %zu: got '%s' want %zu\n",
                   step, reply->c_str(), expected);
      return false;
    }
    ++pending[expected];
    outstanding.push_back(expected);
    if (step % 3 == 2) {
      const size_t done = outstanding.front();
      outstanding.pop_front();
      --pending[done];
      if (!client->Call("DONE " + std::to_string(done)).ok()) return false;
    }
  }
  (*server)->Stop();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--clients") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--clients needs a count");
      config.clients = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--requests") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--requests needs a count");
      config.requests_per_client = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--open-qps") {
      const char* v = value();
      if (!v || std::atof(v) <= 0.0) return Fail("--open-qps needs a rate");
      config.open_qps = std::atof(v);
    } else if (arg == "--duration") {
      const char* v = value();
      if (!v || std::atof(v) <= 0.0) return Fail("--duration needs seconds");
      config.open_duration_seconds = std::atof(v);
    } else if (arg == "--backends") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--backends needs a count");
      config.backends = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--port") {
      const char* v = value();
      if (!v || std::atoi(v) <= 0) return Fail("--port needs a port");
      config.external_port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return Fail("--out needs a path");
      config.out_path = v;
    } else if (arg == "--smoke") {
      config.smoke = true;
      config.clients = 4;
      config.requests_per_client = 200;
    } else {
      return Fail(("unknown flag " + arg).c_str());
    }
  }

  // Build the workload the in-process server routes (and that parity
  // verification replays). External mode discovers the class universe via
  // HEALTH instead.
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  Classifier classifier(catalog,
                        ClassifierOptions{Granularity::kTable, 4, true});
  auto cls = classifier.Classify(journal);
  if (!cls.ok()) {
    std::fprintf(stderr, "classify: %s\n", cls.status().ToString().c_str());
    return 1;
  }
  const std::vector<BackendSpec> backends =
      HomogeneousBackends(config.backends);
  GreedyAllocator greedy;
  auto alloc = greedy.Allocate(*cls, backends);
  if (!alloc.ok() || !ValidateAllocation(*cls, *alloc, backends).ok()) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }

  uint16_t port = config.external_port;
  size_t reads = cls->reads.size();
  size_t updates = cls->updates.size();
  std::unique_ptr<net::QueryRoutingServer> server;
  if (port == 0) {
    auto created = net::QueryRoutingServer::Create(*cls, *alloc, {});
    if (!created.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    server = std::move(created).value();
    if (!server->Start().ok()) return 1;
    port = server->port();
  } else {
    auto probe = net::Client::Connect("127.0.0.1", port);
    if (!probe.ok()) {
      std::fprintf(stderr, "connect: %s\n", probe.status().ToString().c_str());
      return 1;
    }
    auto health = probe->Call("HEALTH");
    if (!health.ok() || health->rfind("OK HEALTH ", 0) != 0) {
      std::fprintf(stderr, "HEALTH probe failed\n");
      return 1;
    }
    // "... read_classes=<n> update_classes=<m> ...".
    const size_t r_at = health->find("read_classes=");
    const size_t u_at = health->find("update_classes=");
    if (r_at == std::string::npos || u_at == std::string::npos) return 1;
    reads = static_cast<size_t>(
        std::atoi(health->c_str() + r_at + std::strlen("read_classes=")));
    updates = static_cast<size_t>(
        std::atoi(health->c_str() + u_at + std::strlen("update_classes=")));
    probe->Call("QUIT");
  }
  if (reads == 0) {
    std::fprintf(stderr, "no read classes to route\n");
    return 1;
  }

  const char* mode = config.open_qps > 0.0 ? "open" : "closed";
  std::printf("bench_serving: %s loop, %zu clients, port %u (%s server)\n",
              mode, config.clients, port,
              server ? "in-process" : "external");
  LoadResult load = RunLoad(config, port, reads, updates);

  bool verified = false;
  if (server) {
    server->Stop();
    verified = VerifyRoutingParity(*cls, *alloc);
    if (!verified) {
      std::fprintf(stderr, "routing parity verification FAILED\n");
      return 1;
    }
  }

  std::vector<double> scratch;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  load.latency.Percentiles(&scratch, &p50, &p95, &p99);
  const double qps =
      load.wall_seconds > 0.0
          ? static_cast<double>(load.completed) / load.wall_seconds
          : 0.0;
  std::printf(
      "requests %llu  errors %llu  qps %.0f  latency ms p50 %.3f  p95 %.3f  "
      "p99 %.3f  max %.3f%s\n",
      static_cast<unsigned long long>(load.completed),
      static_cast<unsigned long long>(load.errors), qps, p50 * 1e3, p95 * 1e3,
      p99 * 1e3, load.latency.max() * 1e3,
      server ? (verified ? "  [routing parity OK]" : "") : "");

  if (!config.out_path.empty()) {
    std::FILE* out = std::fopen(config.out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"bench_serving\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"clients\": %zu,\n"
                 "  \"backends\": %zu,\n"
                 "  \"requests\": %llu,\n"
                 "  \"errors\": %llu,\n"
                 "  \"qps\": %.1f,\n"
                 "  \"p50_ms\": %.4f,\n"
                 "  \"p95_ms\": %.4f,\n"
                 "  \"p99_ms\": %.4f,\n"
                 "  \"max_ms\": %.4f,\n"
                 "  \"routing_parity_verified\": %s\n"
                 "}\n",
                 mode, config.clients, config.backends,
                 static_cast<unsigned long long>(load.completed),
                 static_cast<unsigned long long>(load.errors), qps, p50 * 1e3,
                 p95 * 1e3, p99 * 1e3, load.latency.max() * 1e3,
                 verified ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", config.out_path.c_str());
  }
  return 0;
}
