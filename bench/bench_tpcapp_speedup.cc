// E8/E9/E18 / Figures 4(f) and 4(g): TPC-App speedup and throughput for
// full replication, table-based, and column-based allocation, 1-10
// backends, plus the Eq. 29/30 theoretical bounds.
//
// Paper shape: full replication saturates at ~2.6x (Amdahl bound 3.07 with
// 25% update weight); table-based reaches ~5.8x and column-based ~6.7x
// (bound |B|/1.3 = 7.7 from the 13% order_line write class).
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  const engine::CostModelParams params = TpcAppCostParams();
  constexpr uint64_t kRequests = 30000;
  constexpr size_t kSeeds = 3;

  FullReplicationAllocator full;
  MemeticOptions mopts;
  mopts.iterations = 40;
  mopts.population_size = 12;
  MemeticAllocator memetic(mopts);  // Greedy + evolutionary improvement.

  PrintHeader("Figure 4(g): TPC-App throughput (queries/sec)",
              {"backends", "full-repl", "table", "column"});
  double single_node = 0.0;
  std::vector<std::vector<double>> speedups(3);
  std::vector<std::vector<double>> model_speedups(3);
  for (size_t n = 1; n <= 10; ++n) {
    struct Variant {
      Granularity granularity;
      Allocator* allocator;
    };
    const Variant variants[] = {
        {Granularity::kTable, &full},
        {Granularity::kTable, &memetic},
        {Granularity::kColumn, &memetic},
    };
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t v = 0; v < 3; ++v) {
      Pipeline p = ValueOrDie(
          BuildPipeline(catalog, journal, variants[v].granularity,
                        variants[v].allocator, n),
          "pipeline");
      ThroughputStats stats =
          ValueOrDie(SimulateSeeds(p, kRequests, kSeeds, params), "simulate");
      if (n == 1 && v == 0) single_node = stats.mean;
      speedups[v].push_back(stats.mean / single_node);
      model_speedups[v].push_back(Speedup(p.alloc, p.backends));
      row.push_back(Fmt(stats.mean, 0));
    }
    PrintRow(row);
  }

  PrintHeader("Figure 4(f): TPC-App speedup (simulated | model)",
              {"backends", "full-repl", "table", "column"}, 20);
  for (size_t n = 1; n <= 10; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t v = 0; v < 3; ++v) {
      row.push_back(Fmt(speedups[v][n - 1]) + " | " +
                    Fmt(model_speedups[v][n - 1]));
    }
    PrintRow(row, 20);
  }

  // Eq. 29/30 footers.
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");
  std::printf(
      "\nEq. 29 (Amdahl, full replication, 10 backends): %.2f (paper: 3.07; "
      "paper measured 2.6)\n",
      AmdahlFullReplicationSpeedup(cls, 10));
  std::printf(
      "Eq. 30 (max speedup from the 13%% order_line write class): %.2f "
      "(paper: 7.7; paper measured 5.8 table / 6.7 column)\n",
      TheoreticalMaxSpeedup(cls));
  std::printf(
      "measured at 10 backends: full=%.1fx table=%.1fx column=%.1fx\n",
      speedups[0][9], speedups[1][9], speedups[2][9]);
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E8/E9: TPC-App speedup and throughput (Figures 4f/4g)\n");
  qcap::bench::Run();
  return 0;
}
