// E13/E14 / Figures 4(k) and 4(l): histograms of fragment replication at 10
// backends, table-based and column-based, TPC-H vs TPC-App.
//
// Paper shape (table-based): every TPC-H table replicated at least twice
// and lineitem on all nodes; in TPC-App the heavily updated table sits on
// exactly one backend while read-mostly tables replicate. Column-based:
// the two workloads' histograms look much more alike, with most fragments
// at low replica counts.
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

std::vector<double> AverageHistogram(const engine::Catalog& catalog,
                                     const QueryJournal& journal,
                                     Granularity granularity, bool per_table,
                                     size_t runs) {
  std::vector<double> avg(11, 0.0);
  for (size_t run = 0; run < runs; ++run) {
    MemeticOptions opts;
    opts.iterations = 25;
    opts.population_size = 9;
    opts.seed = 500 + run;
    MemeticAllocator memetic(opts);
    Pipeline p = ValueOrDie(
        BuildPipeline(catalog, journal, granularity, &memetic, 10), "pipeline");
    const std::vector<size_t> hist =
        per_table ? TableReplicationHistogram(p.alloc, p.cls.catalog)
                  : ReplicationHistogram(p.alloc);
    for (size_t k = 0; k < hist.size() && k < avg.size(); ++k) {
      avg[k] += static_cast<double>(hist[k]);
    }
  }
  for (double& v : avg) v /= static_cast<double>(runs);
  return avg;
}

void PrintHistogramPair(const char* title, const std::vector<double>& tpch,
                        const std::vector<double>& tpcapp) {
  PrintHeader(title, {"#replicas", "tpch", "tpcapp"}, 12);
  for (size_t k = 1; k <= 10; ++k) {
    PrintRow({std::to_string(k), Fmt(tpch[k], 1), Fmt(tpcapp[k], 1)}, 12);
  }
}

void Run() {
  const engine::Catalog tpch_catalog = workloads::TpchCatalog(1.0);
  const QueryJournal tpch_journal = workloads::TpchJournal(10000);
  const engine::Catalog app_catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal app_journal = workloads::TpcAppJournal(200000);
  constexpr size_t kRuns = 10;

  PrintHistogramPair(
      "Figure 4(k): replication histogram, table-based (tables per count)",
      AverageHistogram(tpch_catalog, tpch_journal, Granularity::kTable, true,
                       kRuns),
      AverageHistogram(app_catalog, app_journal, Granularity::kTable, true,
                       kRuns));
  std::printf(
      "paper shape: TPC-H tables all >= 2 replicas, lineitem on every node; "
      "TPC-App's update-heavy order_line on exactly one backend.\n");

  PrintHistogramPair(
      "Figure 4(l): replication histogram, column-based (columns per count)",
      AverageHistogram(tpch_catalog, tpch_journal, Granularity::kColumn, false,
                       kRuns),
      AverageHistogram(app_catalog, app_journal, Granularity::kColumn, false,
                       kRuns));
  std::printf(
      "paper shape: with many more fragments the two workloads' histograms "
      "become similar; most fragments sit at low replica counts, a few hot "
      "columns everywhere.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E13/E14: replication histograms (Figures 4k/4l)\n");
  qcap::bench::Run();
  return 0;
}
