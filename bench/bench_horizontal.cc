// E23: predicate-based (horizontal) partitioning granularity on an
// append-mostly time-series workload.
//
// At table granularity every read class references the whole events table,
// so the ingest class is pinned to every reading backend (throughput
// plateaus at n/(u*n + r)); with range-partition fragments the hot tail is
// isolated on one backend and the cold ranges replicate freely, pushing
// the speedup to the Eq. 17 bound (1/ingest-weight).
#include <cstdio>

#include "alloc/greedy.h"
#include "bench_util.h"
#include "model/metrics.h"
#include "workloads/timeseries.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TimeSeriesCatalog(1.0);
  const QueryJournal journal = workloads::TimeSeriesJournal(100000);
  GreedyAllocator greedy;
  engine::CostModelParams params;
  params.memory_bytes = 2.0 * 1024 * 1024 * 1024;
  params.io_fraction = 0.5;

  PrintHeader(
      "time-series workload: table vs horizontal granularity",
      {"backends", "tbl speedup", "hor speedup", "tbl repl", "hor repl"});
  for (size_t n : {1, 2, 4, 6, 8, 10}) {
    Pipeline pt = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kTable, &greedy, n),
        "table");
    Pipeline ph = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kHorizontal, &greedy, n,
                      workloads::kTimeSeriesPartitions),
        "horizontal");
    PrintRow({std::to_string(n), Fmt(Speedup(pt.alloc, pt.backends)),
              Fmt(Speedup(ph.alloc, ph.backends)),
              Fmt(DegreeOfReplication(pt.alloc, pt.cls.catalog)),
              Fmt(DegreeOfReplication(ph.alloc, ph.cls.catalog))});
  }

  // Eq. 17 bounds for both granularities.
  {
    Classifier table_cls(catalog, {Granularity::kTable, 8, true});
    Classifier hor_cls(catalog,
                       {Granularity::kHorizontal,
                        workloads::kTimeSeriesPartitions, true});
    Classification t = ValueOrDie(table_cls.Classify(journal), "t");
    Classification h = ValueOrDie(hor_cls.Classify(journal), "h");
    std::printf(
        "\nEq. 17 bounds: table granularity %.2f, horizontal granularity "
        "%.2f (the ingest class itself).\n",
        TheoreticalMaxSpeedup(t), TheoreticalMaxSpeedup(h));
  }

  // Simulated throughput at 8 backends.
  Pipeline pt = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kTable, &greedy, 8), "t8");
  Pipeline ph = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kHorizontal, &greedy, 8,
                    workloads::kTimeSeriesPartitions),
      "h8");
  ThroughputStats tt = ValueOrDie(SimulateSeeds(pt, 20000, 3, params), "st");
  ThroughputStats th = ValueOrDie(SimulateSeeds(ph, 20000, 3, params), "sh");
  std::printf(
      "simulated at 8 backends: table %.0f q/s, horizontal %.0f q/s "
      "(%.2fx)\n",
      tt.mean, th.mean, th.mean / tt.mean);
  std::printf(
      "shape: horizontal fragments isolate the append-only tail, so the "
      "read ranges scale like a read-only workload while table granularity "
      "pays the ingest weight on every backend.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E23: horizontal partitioning granularity (Section 3.1)\n");
  qcap::bench::Run();
  return 0;
}
