// E10 / Figure 4(h): TPC-App throughput deviation of the column-based
// allocation (avg/min/max over 10 runs).
//
// Paper shape: the read-write workload deviates more than the read-only
// TPC-H runs (Figure 4b) because update placement constrains balancing.
#include <cstdio>

#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  const engine::CostModelParams params = TpcAppCostParams();
  MemeticOptions mopts;
  mopts.iterations = 40;
  mopts.population_size = 12;

  PrintHeader("Figure 4(h): TPC-App column-based throughput deviation",
              {"backends", "avg q/s", "min q/s", "max q/s", "spread"});
  double worst_spread = 0.0;
  for (size_t n = 1; n <= 10; ++n) {
    // Vary the memetic seed per run, mirroring the paper's 10 repetitions
    // of the full allocate+measure pipeline.
    double sum = 0.0, min_v = 1e300, max_v = -1e300;
    constexpr size_t kRuns = 10;
    for (size_t run = 0; run < kRuns; ++run) {
      MemeticOptions opts = mopts;
      opts.seed = 100 + run;
      MemeticAllocator memetic(opts);
      Pipeline p = ValueOrDie(
          BuildPipeline(catalog, journal, Granularity::kColumn, &memetic, n),
          "pipeline");
      SimStats stats = ValueOrDie(Simulate(p, 20000, run + 1, params), "sim");
      sum += stats.throughput;
      min_v = std::min(min_v, stats.throughput);
      max_v = std::max(max_v, stats.throughput);
    }
    const double mean = sum / kRuns;
    const double spread = (max_v - min_v) / mean;
    worst_spread = std::max(worst_spread, spread);
    PrintRow({std::to_string(n), Fmt(mean, 0), Fmt(min_v, 0), Fmt(max_v, 0),
              FormatPercent(spread, 1)});
  }
  std::printf(
      "\npaper shape: higher deviation than the read-only case (compare "
      "Figure 4b) -- update pinning limits balancing. measured worst "
      "spread: %s\n",
      FormatPercent(worst_spread, 1).c_str());
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E10: TPC-App throughput deviation (Figure 4h)\n");
  qcap::bench::Run();
  return 0;
}
