// E1/E2: the paper's worked examples.
//
// Reproduces the Section 3 read-only example (Figure 2: 1/2/4 backends,
// including the two load-distribution tables) and the Appendix A
// heterogeneous update-aware example (final allocation and load matrices).
#include <cstdio>

#include "alloc/greedy.h"
#include "bench_util.h"

namespace qcap::bench {
namespace {

Classification Figure2() {
  Classification cls;
  CheckOk(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).status(), "A");
  CheckOk(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).status(), "B");
  CheckOk(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).status(), "C");
  cls.reads = {
      QueryClass{{0}, 0.30, 1.0, false, "C1", {}},
      QueryClass{{1}, 0.25, 1.0, false, "C2", {}},
      QueryClass{{2}, 0.25, 1.0, false, "C3", {}},
      QueryClass{{0, 1}, 0.20, 1.0, false, "C4", {}},
  };
  return cls;
}

Classification AppendixA() {
  Classification cls;
  CheckOk(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).status(), "A");
  CheckOk(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).status(), "B");
  CheckOk(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).status(), "C");
  cls.reads = {
      QueryClass{{0}, 0.24, 1.0, false, "Q1", {}},
      QueryClass{{1}, 0.20, 1.0, false, "Q2", {}},
      QueryClass{{2}, 0.20, 1.0, false, "Q3", {}},
      QueryClass{{0, 1}, 0.16, 1.0, false, "Q4", {}},
  };
  cls.updates = {
      QueryClass{{0}, 0.04, 1.0, true, "U1", {}},
      QueryClass{{1}, 0.10, 1.0, true, "U2", {}},
      QueryClass{{2}, 0.06, 1.0, true, "U3", {}},
  };
  return cls;
}

void PrintLoadMatrix(const Classification& cls, const Allocation& a) {
  std::vector<std::string> header = {"backend"};
  for (const auto& r : cls.reads) header.push_back(r.label);
  for (const auto& u : cls.updates) header.push_back(u.label);
  header.push_back("overall");
  PrintRow(header, 9);
  for (size_t b = 0; b < a.num_backends(); ++b) {
    std::vector<std::string> row = {"B" + std::to_string(b + 1)};
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      row.push_back(FormatPercent(a.read_assign(b, r), 1));
    }
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      row.push_back(FormatPercent(a.update_assign(b, u), 1));
    }
    row.push_back(FormatPercent(a.AssignedLoad(b), 1));
    PrintRow(row, 9);
  }
}

void RunFigure2() {
  const Classification cls = Figure2();
  GreedyAllocator greedy;
  for (size_t n : {1, 2, 4}) {
    const auto backends = HomogeneousBackends(n);
    const Allocation a =
        ValueOrDie(greedy.Allocate(cls, backends), "figure-2 allocate");
    CheckOk(ValidateAllocation(cls, a, backends), "figure-2 validate");
    std::printf("\n--- Figure 2, %zu backend(s) ---\n", n);
    PrintLoadMatrix(cls, a);
    std::printf("speedup=%.2f (paper: %zu)   degree of replication=%.3f\n",
                Speedup(a, backends), n, DegreeOfReplication(a, cls.catalog));
  }
  std::printf(
      "\npaper check: 2 backends -> speedup 2 with only relation B "
      "replicated (r=4/3); 4 backends -> speedup 4 replicating two tables "
      "(r=5/3)\n");
}

void RunAppendixA() {
  const Classification cls = AppendixA();
  const auto backends =
      ValueOrDie(HeterogeneousBackends({0.3, 0.3, 0.2, 0.2}), "backends");
  GreedyAllocator greedy;
  const Allocation a =
      ValueOrDie(greedy.Allocate(cls, backends), "appendix-a allocate");
  CheckOk(ValidateAllocation(cls, a, backends), "appendix-a validate");
  std::printf("\n--- Appendix A, heterogeneous 30/30/20/20 ---\n");
  PrintLoadMatrix(cls, a);
  std::printf("allocation matrix (backend x {A,B,C}):\n");
  for (size_t b = 0; b < 4; ++b) {
    std::printf("  B%zu:", b + 1);
    for (FragmentId f = 0; f < 3; ++f) {
      std::printf(" %d", a.IsPlaced(b, f) ? 1 : 0);
    }
    std::printf("\n");
  }
  std::printf(
      "scale=%.3f (paper: 1.24 -> loads 37.2/37.2/20.8/24.8), speedup=%.3f\n",
      Scale(a, backends), Speedup(a, backends));
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E1/E2: worked examples (Section 3 Figure 2, Appendix A)\n");
  qcap::bench::RunFigure2();
  qcap::bench::RunAppendixA();
  return 0;
}
