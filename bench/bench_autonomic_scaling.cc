// E15/E16 / Section 5 Figures 4 and 5: autonomic scaling against a diurnal
// trace (synthetic stand-in for the paper's private e-learning trace,
// scaled 40x to a ~300 q/s peak).
//
// Paper shape: the number of active nodes tracks the request curve
// (Fig. 4); the autonomic system's average response time is only slightly
// above the static-maximum cluster, never exceeding ~50 ms and ~10 ms on
// average (Fig. 5).
#include <cstdio>

#include "alloc/greedy.h"
#include "autonomic/scaler.h"
#include "bench_util.h"
#include "workload/classifier.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TraceCatalog();
  const QueryJournal journal = workloads::TraceJournal(40000, 17);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");

  GreedyAllocator greedy;
  AutonomicConfig config;
  config.slice_seconds = 8.0;
  config.max_nodes = 6;
  // Our simulated backends are faster than the paper's 2009-era nodes, so
  // the trace is scaled harder (x150 instead of x40) to make the peak
  // exceed a single backend; thresholds sit just above the uncongested
  // response time so the loop reacts before queues blow up.
  config.trace_multiplier = 150.0;
  config.scale_up_response_ms = 14.0;
  config.scale_down_response_ms = 9.5;
  config.sim.cost_params.memory_bytes = 8.0 * 1024 * 1024 * 1024;
  config.sim.cost_params.io_fraction = 0.4;
  config.sim.servers_per_backend = 4;
  AutonomicScaler scaler(cls, &greedy, config);
  const auto day = workloads::SampleDay(17);

  AutonomicResult autonomic = ValueOrDie(scaler.Replay(day), "autonomic");
  AutonomicResult fixed =
      ValueOrDie(scaler.Replay(day, config.max_nodes), "fixed");

  PrintHeader("Section 5 Figures 4+5: diurnal trace, hourly samples",
              {"time", "req/10min", "nodes", "resp(ms)", "static(ms)"}, 12);
  for (size_t i = 0; i < autonomic.steps.size(); i += 6) {  // Hourly.
    const auto& step = autonomic.steps[i];
    const int hour = static_cast<int>(step.tod_seconds / 3600.0);
    PrintRow({std::to_string(hour) + ":00",
              Fmt(day[i].requests_per_10min, 0), std::to_string(step.nodes),
              Fmt(step.avg_response_ms, 1),
              Fmt(fixed.steps[i].avg_response_ms, 1)},
             12);
  }
  std::printf(
      "\noverall: autonomic avg response %.1f ms (max %.1f ms) vs static-%zu "
      "cluster %.1f ms; node-hours %.1f vs %.1f (%.0f%% saved)\n",
      autonomic.overall_avg_response_ms, autonomic.overall_max_response_ms,
      config.max_nodes, fixed.overall_avg_response_ms,
      autonomic.node_seconds / 3600.0, fixed.node_seconds / 3600.0,
      100.0 * (1.0 - autonomic.node_seconds / fixed.node_seconds));
  std::printf(
      "paper shape: nodes track the request curve; avg response ~10 ms, "
      "never above ~50 ms; throughput never below the static maximum "
      "cluster.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E15/E16: autonomic scaling on the diurnal trace\n");
  qcap::bench::Run();
  return 0;
}
