// bench_adaptive: "a day in the life" of the adaptive control loop
// (autonomic/control_loop.h).
//
// Replays a full simulated day of the diurnal trace workload (Section 5's
// e-learning substitute, workloads/trace.h) through an AdaptiveController
// and injects everything the loop is built to survive:
//
//   drift      — the trace's own night/day mix shift (class B dominates
//                3-8 am) pushes the observed mix off the installed layout
//                and triggers live re-allocations / re-segmentations;
//   faults     — a node crash mid-morning (self-heal re-plans onto a
//                replacement without violating k-safety) and a sticky
//                straggler degrade in the afternoon;
//   load spike — a 3x arrival surge for one evening hour drives the
//                SLO-violation scale-out path, and the post-spike trough
//                lets the scale-in path reclaim the node.
//
// Reported per transition: p99 before / during / after the migration,
// worst-case availability while the ETL overlapped foreground queries,
// bytes moved, and the decision-to-swap latency. Whole-day aggregates:
// SLO attainment, availability, worst p99, node-seconds.
//
// Three self-checks gate the exit code:
//   1. determinism — two same-seed replays are bit-identical;
//   2. thread sweep — N independent replications give bit-identical
//      results on a 1-thread and a --threads N pool;
//   3. routing parity — a live Dispatcher::SwapRouting from the initial
//      to the final layout mid-stream matches a hand-driven reference
//      Scheduler decision for decision (nothing dropped or misrouted).
//
// Results go to stdout and, with --out FILE (or via the bench_adaptive_json
// target), to a JSON file committed as the adaptive-loop baseline.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/ksafety.h"
#include "autonomic/control_loop.h"
#include "cluster/scheduler.h"
#include "common/thread_pool.h"
#include "net/dispatcher.h"
#include "workload/classifier.h"
#include "workloads/trace.h"

using namespace qcap;

namespace {

struct BenchConfig {
  uint64_t seed = 7;
  size_t buckets = 144;     // full day at 600 s per control interval
  double multiplier = 40.0; // trace requests/10min -> offered qps scale
  size_t threads = 4;       // sweep pool size
  size_t replications = 2;  // independent replays in the thread sweep
  std::string out_path;     // empty = stdout only
  bool smoke = false;
};

int Fail(const char* message) {
  std::fprintf(stderr, "bench_adaptive: %s\n", message);
  std::fprintf(stderr,
               "usage: bench_adaptive [--seed N] [--buckets N] "
               "[--multiplier X] [--threads N] [--reps N] [--out FILE] "
               "[--smoke]\n");
  return 2;
}

/// Everything one replay needs. The catalog and journal own storage the
/// classification references, so they ride along.
struct Scenario {
  engine::Catalog catalog;
  QueryJournal journal;
  Classification cls;
  /// Per classification class (reads then updates): the trace class
  /// (A..E) its member queries instantiate.
  std::vector<size_t> trace_class_of;
  std::vector<BucketDemand> day;
  FaultPlan faults;
  AdaptiveOptions options;
  size_t start_nodes = 4;
};

AdaptiveOptions LoopOptions(const BenchConfig& config) {
  AdaptiveOptions options;
  // The heaviest trace class costs ~40 ms on an idle server, so the SLO
  // sits a queueing allowance above that floor: met in steady state,
  // violated when the spike stacks queues.
  options.slo_p99_ms = 48.0;
  options.scale_up_utilization = 0.3;
  options.scale_down_utilization = 0.12;
  options.scale_down_headroom = 0.9;
  options.min_nodes = 3;
  options.max_nodes = 8;
  options.window_buckets = 2;
  options.drift_threshold = 0.35;
  options.resegment_after = 2;
  options.cooldown_buckets = 1;
  options.k_safety = 1;
  options.slice_seconds = config.smoke ? 6.0 : 10.0;
  options.sim.seed = config.seed;
  options.sim.servers_per_backend = 2;
  options.sim.cost_params.memory_bytes = 1e12;
  // Fast ETL rates keep decision-to-swap latency within a bucket or two
  // while still moving real bytes through the Hungarian transition plan.
  options.etl = EtlCostModel{2e10, 2e10, 2e10, 1.0};
  options.migration.min_catchup_seconds = 60.0;
  return options;
}

bool BuildScenario(const BenchConfig& config, Scenario* scenario) {
  scenario->catalog = workloads::TraceCatalog();
  scenario->journal = workloads::TraceJournal(20000, 3);
  Classifier classifier(scenario->catalog, {Granularity::kTable, 4, true});
  auto classified = classifier.Classify(scenario->journal);
  if (!classified.ok()) {
    std::fprintf(stderr, "classify: %s\n",
                 classified.status().ToString().c_str());
    return false;
  }
  scenario->cls = std::move(classified).value();

  const std::vector<Query> templates = workloads::TraceQueries();
  auto trace_index = [&](const QueryClass& qc, size_t* out) {
    if (qc.members.empty()) return false;
    const std::string& text =
        scenario->journal.queries()[qc.members.front()].text;
    for (size_t t = 0; t < templates.size(); ++t) {
      if (templates[t].text == text) {
        *out = t;
        return true;
      }
    }
    return false;
  };
  for (const QueryClass& qc : scenario->cls.reads) {
    size_t t = 0;
    if (!trace_index(qc, &t)) return false;
    scenario->trace_class_of.push_back(t);
  }
  for (const QueryClass& qc : scenario->cls.updates) {
    size_t t = 0;
    if (!trace_index(qc, &t)) return false;
    scenario->trace_class_of.push_back(t);
  }

  // The sampled day: per-bucket arrival rate and trace-class shares. The
  // classification's base weights already reflect the whole-day average,
  // so each bucket's multipliers are its share relative to that average.
  const std::vector<workloads::TracePoint> points =
      workloads::SampleDay(config.seed, 600.0);
  std::vector<double> day_share(workloads::kTraceClasses, 0.0);
  double day_total = 0.0;
  for (const workloads::TracePoint& p : points) {
    for (size_t t = 0; t < day_share.size(); ++t) {
      day_share[t] += p.class_requests[t];
      day_total += p.class_requests[t];
    }
  }
  for (double& share : day_share) share /= day_total;

  const size_t buckets = std::min(config.buckets, points.size());
  const double spike_begin = 68400.0, spike_end = 72000.0;  // 19:00-20:00
  for (size_t i = 0; i < buckets; ++i) {
    const workloads::TracePoint& p = points[i];
    BucketDemand demand;
    demand.tod_seconds = p.tod_seconds;
    demand.offered_qps = p.requests_per_10min * config.multiplier / 600.0;
    if (!config.smoke && p.tod_seconds >= spike_begin &&
        p.tod_seconds < spike_end) {
      demand.offered_qps *= 3.0;  // the evening surge
    }
    double bucket_total = 0.0;
    for (double r : p.class_requests) bucket_total += r;
    demand.class_weight_scale.assign(scenario->cls.NumClasses(), 1.0);
    for (size_t c = 0; c < demand.class_weight_scale.size(); ++c) {
      const size_t t = scenario->trace_class_of[c];
      const double share = p.class_requests[t] / bucket_total;
      demand.class_weight_scale[c] = share / day_share[t];
    }
    scenario->day.push_back(std::move(demand));
  }

  if (config.smoke) {
    // Short horizon: one crash early enough that the self-heal completes.
    scenario->faults.Crash(2100.0, 1);
  } else {
    // 10:05 crash (self-heal), 14:00-15:00 straggler on backend 2.
    scenario->faults.Crash(36300.0, 1)
        .Degrade(50400.0, 2, 1.8)
        .Degrade(54000.0, 2, 1.0);
  }
  scenario->options = LoopOptions(config);
  return true;
}

/// One full replay with a fresh controller; \p seed overrides the
/// simulator seed (replications perturb it, the demand stays fixed).
Result<AdaptiveReport> RunDay(const Scenario& scenario, uint64_t seed,
                              Allocation* initial = nullptr,
                              Allocation* final_alloc = nullptr) {
  KSafeGreedyAllocator allocator(KSafetyOptions{1, 1e-12, 0});
  AdaptiveOptions options = scenario.options;
  options.sim.seed = seed;
  AdaptiveController controller(scenario.cls, &allocator, options);
  QCAP_RETURN_NOT_OK(controller.Install(scenario.start_nodes));
  if (initial != nullptr) *initial = controller.allocation();
  QCAP_ASSIGN_OR_RETURN(AdaptiveReport report,
                        controller.ReplayDay(scenario.day, scenario.faults));
  if (final_alloc != nullptr) *final_alloc = controller.allocation();
  return report;
}

/// Bit-exact serialization of everything a replay decides and observes;
/// string equality == report equality.
std::string Serialize(const AdaptiveReport& report) {
  std::string out;
  char line[320];
  for (const AdaptiveStep& s : report.steps) {
    std::snprintf(
        line, sizeof(line),
        "S %.17g %zu %.17g %.17g %.17g %.17g %.17g %.17g %d %d %d %llu "
        "%llu %llu %zu\n",
        s.tod_seconds, s.nodes, s.offered_qps, s.p99_ms, s.avg_ms,
        s.availability, s.utilization, s.drift, static_cast<int>(s.decision),
        static_cast<int>(s.phase), s.swapped ? 1 : 0,
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.rejected), s.dead_backends);
    out += line;
  }
  for (const TransitionRecord& t : report.transitions) {
    std::snprintf(line, sizeof(line),
                  "T %d %.17g %.17g %.17g %.17g %zu %zu %.17g %.17g %.17g "
                  "%.17g %d %d\n",
                  static_cast<int>(t.action), t.decided_seconds,
                  t.swap_seconds, t.moved_bytes, t.etl_seconds,
                  t.nodes_before, t.nodes_after, t.p99_before_ms,
                  t.p99_during_ms, t.p99_after_ms, t.availability_during,
                  t.aborted ? 1 : 0, t.completed ? 1 : 0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "R %.17g %.17g %.17g %.17g\n",
                report.slo_attainment, report.availability,
                report.worst_p99_ms, report.node_seconds);
  out += line;
  return out;
}

/// Replays a fixed read stream through a live Dispatcher that hot-swaps
/// from \p before to \p after mid-stream, mirroring every decision with a
/// hand-driven Scheduler (rotation and pending depths carried across the
/// swap exactly as SwapRouting does). True iff bit-identical throughout.
bool VerifyRoutingParity(const Classification& cls, const Allocation& before,
                         const Allocation& after) {
  auto created = net::Dispatcher::Create(cls, before, net::ServingLimits{});
  if (!created.ok()) return false;
  std::unique_ptr<net::Dispatcher> dispatcher = std::move(created).value();

  auto built = Scheduler::Build(cls, before);
  if (!built.ok()) return false;
  Scheduler reference = std::move(built).value();
  std::vector<size_t> pending(before.num_backends(), 0);
  const size_t reads = cls.reads.size();

  auto drive = [&](Scheduler* scheduler, size_t i) {
    const size_t cls_index = i % reads;
    const auto reply =
        dispatcher->Execute("SUBMIT R" + std::to_string(cls_index), 0.0);
    const size_t expect = scheduler->PickReadBackend(cls_index, pending);
    ++pending[expect];
    return reply.text == "OK BACKEND " + std::to_string(expect);
  };

  for (size_t i = 0; i < 120; ++i) {
    if (!drive(&reference, i)) return false;
  }
  if (!dispatcher->SwapRouting(cls, after).ok()) return false;
  auto rebuilt = Scheduler::Build(cls, after);
  if (!rebuilt.ok()) return false;
  Scheduler reference_after = std::move(rebuilt).value();
  reference_after.set_rotation(reference.rotation());
  pending.resize(after.num_backends(), 0);
  for (size_t i = 120; i < 240; ++i) {
    if (!drive(&reference_after, i)) return false;
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_adaptive: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--buckets") == 0) {
      config.buckets = std::strtoull(next("--buckets"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--multiplier") == 0) {
      config.multiplier = std::strtod(next("--multiplier"), nullptr);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = std::strtoull(next("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      config.replications = std::strtoull(next("--reps"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      config.out_path = next("--out");
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else {
      return Fail("unknown flag");
    }
  }
  if (config.smoke) {
    config.buckets = 12;
    config.multiplier = 10.0;
    config.threads = 2;
    config.replications = 2;
  }
  if (config.buckets == 0 || config.multiplier <= 0.0 ||
      config.threads == 0 || config.replications == 0) {
    return Fail("all numeric flags must be positive");
  }

  Scenario scenario;
  if (!BuildScenario(config, &scenario)) {
    return Fail("could not build the trace scenario");
  }
  std::printf("bench_adaptive: %zu buckets x %.0f s, seed %llu%s\n",
              scenario.day.size(), scenario.options.bucket_seconds,
              static_cast<unsigned long long>(config.seed),
              config.smoke ? " [smoke]" : "");

  // --- The day itself ----------------------------------------------------
  Allocation initial, final_alloc;
  auto replay = RunDay(scenario, config.seed, &initial, &final_alloc);
  if (!replay.ok()) {
    std::fprintf(stderr, "replay: %s\n", replay.status().ToString().c_str());
    return 1;
  }
  const AdaptiveReport report = std::move(replay).value();

  for (size_t i = 0; i < report.transitions.size(); ++i) {
    const TransitionRecord& t = report.transitions[i];
    std::printf(
        "transition %zu: %-10s t=%6.0fs swap=%6.0fs nodes %zu->%zu  "
        "moved %7.1f MB  p99 ms %6.2f/%6.2f/%6.2f (before/during/after)  "
        "avail %.4f  %s\n",
        i, ToString(t.action), t.decided_seconds, t.swap_seconds,
        t.nodes_before, t.nodes_after, t.moved_bytes / 1e6, t.p99_before_ms,
        t.p99_during_ms, t.p99_after_ms, t.availability_during,
        t.aborted ? "[aborted]" : (t.completed ? "[completed]" : "[pending]"));
  }
  std::printf(
      "day: slo attainment %.4f  availability %.6f  worst p99 %.2f ms  "
      "node-seconds %.3g\n",
      report.slo_attainment, report.availability, report.worst_p99_ms,
      report.node_seconds);
  std::printf(
      "actions: realloc %zu  resegment %zu  scale-out %zu  scale-in %zu  "
      "self-heal %zu\n",
      report.reallocations, report.resegmentations, report.scale_outs,
      report.scale_ins, report.self_heals);

  // --- Self-check 1: same-seed determinism -------------------------------
  const std::string fingerprint = Serialize(report);
  auto second = RunDay(scenario, config.seed);
  const bool deterministic =
      second.ok() && Serialize(*second) == fingerprint;
  std::printf("determinism: %s\n", deterministic ? "OK" : "FAILED");

  // --- Self-check 2: replications identical at any thread count ----------
  std::vector<std::string> serial(config.replications);
  std::vector<std::string> threaded(config.replications);
  auto replicate = [&](std::vector<std::string>* out, ThreadPool* pool) {
    ParallelFor(pool, out->size(), [&](size_t r) {
      auto rep = RunDay(scenario, config.seed + r);
      (*out)[r] = rep.ok() ? Serialize(*rep) : "error";
    });
  };
  {
    ThreadPool one(1);
    replicate(&serial, &one);
    ThreadPool many(config.threads);
    replicate(&threaded, &many);
  }
  bool sweep_identical = true;
  for (size_t r = 0; r < config.replications; ++r) {
    sweep_identical = sweep_identical && serial[r] != "error" &&
                      serial[r] == threaded[r];
  }
  std::printf("thread sweep: %s (%zu reps, 1 vs %zu threads)\n",
              sweep_identical ? "OK" : "FAILED", config.replications,
              config.threads);

  // --- Self-check 3: live routing hot-swap parity ------------------------
  const bool parity =
      VerifyRoutingParity(scenario.cls, initial, final_alloc);
  std::printf("routing parity across SwapRouting: %s\n",
              parity ? "OK" : "FAILED");

  // --- Scenario coverage (full day only) ---------------------------------
  bool covered = true;
  if (!config.smoke) {
    covered = report.reallocations + report.resegmentations >= 1 &&
              report.self_heals >= 1 && report.scale_outs >= 1;
    if (!covered) {
      std::fprintf(stderr,
                   "bench_adaptive: scenario coverage failed (need >=1 "
                   "drift transition, self-heal, and scale-out)\n");
    }
  }

  if (!config.out_path.empty()) {
    std::FILE* out = std::fopen(config.out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"bench_adaptive\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"buckets\": %zu,\n"
                 "  \"bucket_seconds\": %.0f,\n"
                 "  \"slo_p99_ms\": %.1f,\n"
                 "  \"slo_attainment\": %.4f,\n"
                 "  \"availability\": %.6f,\n"
                 "  \"worst_p99_ms\": %.3f,\n"
                 "  \"node_seconds\": %.0f,\n"
                 "  \"reallocations\": %zu,\n"
                 "  \"resegmentations\": %zu,\n"
                 "  \"scale_outs\": %zu,\n"
                 "  \"scale_ins\": %zu,\n"
                 "  \"self_heals\": %zu,\n",
                 config.smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(config.seed),
                 scenario.day.size(), scenario.options.bucket_seconds,
                 scenario.options.slo_p99_ms, report.slo_attainment,
                 report.availability, report.worst_p99_ms,
                 report.node_seconds, report.reallocations,
                 report.resegmentations, report.scale_outs, report.scale_ins,
                 report.self_heals);
    std::fprintf(out, "  \"transitions\": [\n");
    for (size_t i = 0; i < report.transitions.size(); ++i) {
      const TransitionRecord& t = report.transitions[i];
      std::fprintf(
          out,
          "    {\"action\": \"%s\", \"cause\": \"%s\", "
          "\"decided_s\": %.0f, \"swap_s\": %.1f, \"nodes_before\": %zu, "
          "\"nodes_after\": %zu, \"moved_mb\": %.1f, "
          "\"p99_before_ms\": %.3f, \"p99_during_ms\": %.3f, "
          "\"p99_after_ms\": %.3f, \"availability_during\": %.4f, "
          "\"aborted\": %s, \"completed\": %s}%s\n",
          ToString(t.action), JsonEscape(t.cause).c_str(),
          t.decided_seconds, t.swap_seconds, t.nodes_before, t.nodes_after,
          t.moved_bytes / 1e6, t.p99_before_ms, t.p99_during_ms,
          t.p99_after_ms, t.availability_during,
          t.aborted ? "true" : "false", t.completed ? "true" : "false",
          i + 1 < report.transitions.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"deterministic\": %s,\n"
                 "  \"thread_sweep_identical\": %s,\n"
                 "  \"routing_parity_verified\": %s\n"
                 "}\n",
                 deterministic ? "true" : "false",
                 sweep_identical ? "true" : "false",
                 parity ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", config.out_path.c_str());
  }

  return (deterministic && sweep_identical && parity && covered) ? 0 : 1;
}
