// E21 / Section 5 robustness: how gracefully an allocation absorbs
// workload drift, and what zero-weight headroom replicas buy.
//
// Paper anchor: in the Figure 2 four-backend allocation, growing class C
// from 25% to 27% drops the achievable speedup from 4 to 3.7 (its backend
// is exclusive); replicated/co-allocated classes leave slack for shifting.
#include <cstdio>

#include "alloc/greedy.h"
#include "alloc/robustness.h"
#include "bench_util.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

Classification Figure2() {
  Classification cls;
  CheckOk(cls.catalog.Add("A", "A", FragmentKind::kTable, 1.0).status(), "A");
  CheckOk(cls.catalog.Add("B", "B", FragmentKind::kTable, 1.0).status(), "B");
  CheckOk(cls.catalog.Add("C", "C", FragmentKind::kTable, 1.0).status(), "C");
  cls.reads = {
      QueryClass{{0}, 0.30, 1.0, false, "C1", {}},
      QueryClass{{1}, 0.25, 1.0, false, "C2", {}},
      QueryClass{{2}, 0.25, 1.0, false, "C3", {}},
      QueryClass{{0, 1}, 0.20, 1.0, false, "C4", {}},
  };
  return cls;
}

void PaperExample() {
  const Classification cls = Figure2();
  const auto backends = HomogeneousBackends(4);
  GreedyAllocator greedy;
  Allocation base = ValueOrDie(greedy.Allocate(cls, backends), "allocate");
  RobustnessOptions options;
  options.required_headroom = 0.10;
  Allocation robust =
      ValueOrDie(AddRobustnessHeadroom(cls, base, backends, options),
                 "headroom");

  PrintHeader("Figure 2 example: class C3 weight sweep (speedup)",
              {"C3 weight", "rigid", "shifted", "with headroom"}, 15);
  for (double w : {0.25, 0.26, 0.27, 0.28, 0.30}) {
    const double rigid = ValueOrDie(
        PerturbedSpeedup(cls, base, backends, 2, w, false), "rigid");
    const double shifted = ValueOrDie(
        PerturbedSpeedup(cls, base, backends, 2, w, true), "shifted");
    const double headroom = ValueOrDie(
        PerturbedSpeedup(cls, robust, backends, 2, w, true), "headroom");
    PrintRow({Fmt(w * 100, 0) + "%", Fmt(rigid), Fmt(shifted), Fmt(headroom)},
             15);
  }
  std::printf(
      "paper anchor: 27%% -> 3.7 without headroom. extra storage for the "
      "robust layout: %.2f -> %.2f x database size\n",
      DegreeOfReplication(base, cls.catalog),
      DegreeOfReplication(robust, cls.catalog));
}

void TpchDrift() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  GreedyAllocator greedy;
  Pipeline p = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, 8),
      "pipeline");
  PrintHeader(
      "TPC-H column-based on 8 backends: model speedup after +20% drift",
      {"class", "weight", "rigid", "shifted"}, 15);
  const double base = Speedup(p.alloc, p.backends);
  for (size_t r = 0; r < std::min<size_t>(8, p.cls.reads.size()); ++r) {
    const double w = p.cls.reads[r].weight * 1.2;
    const double rigid = ValueOrDie(
        PerturbedSpeedup(p.cls, p.alloc, p.backends, r, w, false), "rigid");
    const double shifted = ValueOrDie(
        PerturbedSpeedup(p.cls, p.alloc, p.backends, r, w, true), "shifted");
    PrintRow({p.cls.reads[r].label, FormatPercent(p.cls.reads[r].weight, 1),
              Fmt(rigid), Fmt(shifted)},
             15);
  }
  std::printf(
      "baseline speedup %.2f; shifting between replicas recovers most of "
      "each class's drift, bounded by the extra total work itself.\n",
      base);
}

void TpchLatencyTails() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  GreedyAllocator greedy;
  Pipeline p = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, 8),
      "pipeline");
  // Each load level is a parallel replication sweep (seeds 7..10); the
  // table reports per-replication means, which are thread-count invariant.
  constexpr size_t kReplications = 4;
  PrintHeader(
      "TPC-H column-based on 8 backends: simulated latency distribution "
      "(mean of " + std::to_string(kReplications) + " replications)",
      {"load q/s", "avg ms", "p50 ms", "p95 ms", "p99 ms", "max ms"}, 12);
  SimulationConfig config;
  config.cost_params = TpchCostParams();
  config.seed = 7;
  config.servers_per_backend = 4;
  auto sim = ValueOrDie(
      ClusterSimulator::Create(p.cls, p.alloc, p.backends, config),
      "simulator");
  for (double rate : {4.0, 8.0, 16.0}) {
    SweepOptions sweep;
    sweep.repeat = kReplications;
    sweep.threads = ThreadPool::DefaultThreads();
    auto runs =
        ValueOrDie(sim.RunOpenSweep(60.0, rate, sweep), "open-loop sweep");
    double avg = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
    for (const SimStats& stats : runs) {
      avg += stats.avg_response_seconds;
      p50 += stats.p50_response_seconds;
      p95 += stats.p95_response_seconds;
      p99 += stats.p99_response_seconds;
      max += stats.max_response_seconds;
    }
    const double n = static_cast<double>(runs.size());
    PrintRow({Fmt(rate, 0), Fmt(avg / n * 1e3, 2), Fmt(p50 / n * 1e3, 2),
              Fmt(p95 / n * 1e3, 2), Fmt(p99 / n * 1e3, 2),
              Fmt(max / n * 1e3, 2)},
             12);
  }
  std::printf(
      "queueing widens the gap between median and tail as the offered load "
      "approaches saturation.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E21: robustness to workload change (Section 5)\n");
  qcap::bench::PaperExample();
  qcap::bench::TpchDrift();
  qcap::bench::TpchLatencyTails();
  return 0;
}
