// E17 / Section 5 Figure 6: per-class request mix over a day, the sliding
// window segmentation it induces, and the merged multi-segment allocation.
//
// Paper shape: class B dominates at night (3-8 am) and has the lowest
// share during the day; the one-hour sliding window splits the example day
// into ~4 segments; the merged allocation serves every segment without
// reallocation.
#include <cstdio>

#include "alloc/greedy.h"
#include "autonomic/segmentation.h"
#include "bench_util.h"
#include "cluster/scheduler.h"
#include "workloads/trace.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TraceCatalog();
  const QueryJournal journal = workloads::TraceJournal(40000, 23);

  // Figure 6: class mix per hour (requests per 10 minutes, scaled).
  PrintHeader("Figure 6: query class mix over the day (req/10min)",
              {"hour", "A", "B", "C", "D", "E"}, 9);
  const auto day = workloads::SampleDay(23);
  for (size_t i = 0; i < day.size(); i += 6) {
    std::vector<std::string> row = {
        std::to_string(static_cast<int>(day[i].tod_seconds / 3600.0))};
    for (double c : day[i].class_requests) row.push_back(Fmt(c, 0));
    PrintRow(row, 9);
  }

  // Segmentation.
  SegmentationOptions options;
  auto segments = ValueOrDie(SegmentJournal(journal, options), "segment");
  std::printf("\nsegments found with a 1h sliding window (threshold %.2f):\n",
              options.mix_threshold);
  for (const auto& seg : segments) {
    std::printf("  %5.1fh .. %5.1fh\n", seg.begin_seconds / 3600.0,
                seg.end_seconds / 3600.0);
  }
  std::printf("paper: the example day decomposes into 4 segments.\n");

  // Merged allocation: allocate each segment, merge, verify coverage.
  GreedyAllocator greedy;
  const auto backends = HomogeneousBackends(4);
  const ClassifierOptions copts{Granularity::kTable, 4, true};
  Allocation merged =
      ValueOrDie(SegmentedAllocation(journal, segments, catalog, copts,
                                     &greedy, backends),
                 "merged allocation");
  Classifier classifier(catalog, copts);
  size_t servable = 0;
  for (const auto& seg : segments) {
    const QueryJournal slice = journal.Slice(seg.begin_seconds, seg.end_seconds);
    if (slice.empty()) continue;
    Classification cls = ValueOrDie(classifier.Classify(slice), "classify");
    Allocation reshaped =
        ValueOrDie(PlacementForClassification(merged, cls), "reshape");
    if (Scheduler::Build(cls, reshaped).ok()) ++servable;
  }
  Classification full_cls =
      ValueOrDie(classifier.Classify(journal), "classify full");
  Allocation merged_shaped =
      ValueOrDie(PlacementForClassification(merged, full_cls), "reshape full");
  std::printf(
      "\nmerged allocation: %zu/%zu segments servable without reallocation; "
      "degree of replication %.2f on %zu backends\n",
      servable, segments.size(),
      DegreeOfReplication(merged_shaped, full_cls.catalog), backends.size());
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E17: workload segmentation (Section 5, Figure 6)\n");
  qcap::bench::Run();
  return 0;
}
