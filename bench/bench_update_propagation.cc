// E22 (extension): update-synchronization protocols. The paper evaluates
// ROWA and notes primary copy / lazy replication "could be easily
// incorporated into our model and system" -- this bench quantifies what
// they would have bought on the TPC-App workload.
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "workloads/tpcapp.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(200000);
  FullReplicationAllocator full;
  MemeticOptions mopts;
  mopts.iterations = 40;
  mopts.population_size = 12;
  MemeticAllocator memetic(mopts);

  struct Proto {
    const char* name;
    UpdatePropagation propagation;
  };
  const Proto protos[] = {
      {"rowa", UpdatePropagation::kRowa},
      {"primary-copy", UpdatePropagation::kPrimaryCopy},
      {"lazy", UpdatePropagation::kLazy},
  };

  for (auto [strategy, granularity, allocator] :
       {std::tuple<const char*, Granularity, Allocator*>{
            "full replication", Granularity::kTable, &full},
        {"column-based partial replication", Granularity::kColumn,
         &memetic}}) {
    Pipeline p = ValueOrDie(
        BuildPipeline(catalog, journal, granularity, allocator, 10),
        "pipeline");
    PrintHeader(std::string("TPC-App, 10 backends, ") + strategy,
                {"protocol", "q/s", "avg resp (ms)", "max resp (ms)"}, 16);
    for (const Proto& proto : protos) {
      SimulationConfig config;
      config.cost_params = TpcAppCostParams();
      config.seed = 11;
      config.propagation = proto.propagation;
      auto sim = ClusterSimulator::Create(p.cls, p.alloc, p.backends, config);
      CheckOk(sim.status(), "simulator");
      auto stats = sim->RunClosed(30000, 40);
      CheckOk(stats.status(), "run");
      PrintRow({proto.name, Fmt(stats->throughput, 0),
                Fmt(stats->avg_response_seconds * 1000.0, 2),
                Fmt(stats->max_response_seconds * 1000.0, 1)},
               16);
    }
  }
  std::printf(
      "\nshape: primary copy removes the wait for the slowest replica "
      "(latency), lazy batching also removes secondary work (throughput); "
      "both benefit full replication far more than the partial allocation, "
      "which already minimizes replicated update work -- supporting the "
      "paper's choice to focus on ROWA.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E22: ROWA vs primary-copy vs lazy replication (extension)\n");
  qcap::bench::Run();
  return 0;
}
