// E4 / Figure 4(b): TPC-H throughput deviation of the column-based
// allocation over 10 runs (avg/min/max per cluster size).
//
// Paper shape: deviation never exceeds ~6% -- summed execution time is an
// excellent weight measure.
#include <cstdio>

#include "alloc/greedy.h"
#include "bench_util.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  const engine::CostModelParams params = TpchCostParams();
  GreedyAllocator greedy;

  PrintHeader("Figure 4(b): TPC-H column-based throughput deviation",
              {"backends", "avg q/s", "min q/s", "max q/s", "spread"});
  double worst_spread = 0.0;
  for (size_t n = 1; n <= 10; ++n) {
    Pipeline p = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, n),
        "pipeline");
    ThroughputStats stats =
        ValueOrDie(SimulateSeeds(p, 2000, 10, params), "simulate");
    const double spread = (stats.max - stats.min) / stats.mean;
    worst_spread = std::max(worst_spread, spread);
    PrintRow({std::to_string(n), Fmt(stats.mean), Fmt(stats.min),
              Fmt(stats.max), FormatPercent(spread, 1)});
  }
  std::printf(
      "\npaper shape: max-min spread stays small (paper: never above 6%%). "
      "measured worst spread: %s\n",
      FormatPercent(worst_spread, 1).c_str());
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E4: TPC-H throughput deviation (Figure 4b)\n");
  qcap::bench::Run();
  return 0;
}
