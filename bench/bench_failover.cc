// E27: failure/recovery lifecycle -- what k-safety and the self-healing
// controller buy when a backend crashes mid-run.
//
// TPC-App on 5 backends, open loop. A 0-safe greedy allocation loses
// exclusively-held classes when their backend dies (rejections until the
// horizon); a k=1-safe allocation serves the whole offered load through the
// crash (only retries/redispatches), and the self-healing controller
// detects the k-safety violation, re-allocates with a virtual replacement
// backend, and reports a finite recovery time. The timeline section shows
// the throughput dip and recovery around the fault. Every run is
// bit-deterministic for the fixed seed; the bench re-runs the self-healing
// scenario and fails loudly if any counter differs.
#include <cstdio>
#include <cstdlib>

#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "bench_util.h"
#include "cluster/controller.h"
#include "workloads/tpcapp.h"

namespace qcap::bench {
namespace {

constexpr double kDuration = 60.0;
constexpr double kRate = 4000.0;
constexpr double kCrashTime = 20.0;
constexpr uint64_t kSeed = 9;
// Crash scenarios run as replication sweeps (seeds 9..11) fanned over the
// thread pool; the table shows the base seed and the acceptance guards
// check every replication.
constexpr size_t kReplications = 3;

/// The backend whose death hurts the 0-safe allocation most: the exclusive
/// server of some read class (killing it makes that class unservable).
size_t PickVictim(const Pipeline& p) {
  for (const QueryClass& c : p.cls.reads) {
    size_t capable = 0;
    size_t last = 0;
    for (size_t b = 0; b < p.backends.size(); ++b) {
      if (p.alloc.HoldsAll(b, c.fragments)) {
        ++capable;
        last = b;
      }
    }
    if (capable == 1) return last;
  }
  return 0;
}

SimulationConfig BaseConfig() {
  SimulationConfig config;
  config.cost_params = TpcAppCostParams();
  config.seed = kSeed;
  config.servers_per_backend = 4;
  config.timeline_bin_seconds = 5.0;
  return config;
}

void PrintStatsRow(const char* label, const SimStats& stats) {
  PrintRow({label, Fmt(stats.throughput, 1),
            Fmt(stats.availability * 100.0, 3),
            std::to_string(stats.rejected_requests),
            std::to_string(stats.failed_requests),
            std::to_string(stats.retried_requests),
            std::to_string(stats.redispatched_requests),
            Fmt(stats.p99_response_seconds * 1e3, 2),
            Fmt(stats.recovery_seconds, 2)},
           13);
}

void PrintTimeline(const char* label, const SimStats& stats) {
  std::printf("%s timeline (completions per %.0fs bin):", label,
              stats.timeline_bin_seconds);
  for (uint64_t c : stats.timeline_completions) {
    std::printf(" %llu", static_cast<unsigned long long>(c));
  }
  std::printf("\n");
}

bool SameRun(const SimStats& a, const SimStats& b) {
  return a.completed_reads == b.completed_reads &&
         a.completed_updates == b.completed_updates &&
         a.failed_requests == b.failed_requests &&
         a.rejected_requests == b.rejected_requests &&
         a.retried_requests == b.retried_requests &&
         a.redispatched_requests == b.redispatched_requests &&
         a.lag_tasks_drained == b.lag_tasks_drained &&
         a.avg_response_seconds == b.avg_response_seconds &&
         a.p99_response_seconds == b.p99_response_seconds &&
         a.timeline_completions == b.timeline_completions;
}

void Run() {
  const engine::Catalog catalog = workloads::TpcAppCatalog(300.0);
  const QueryJournal journal = workloads::TpcAppJournal(100000);

  GreedyAllocator greedy;
  KSafeGreedyAllocator ksafe({1, 1e-12, 0});
  Pipeline unsafe = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kTable, &greedy, 5),
      "greedy pipeline");
  Pipeline safe = ValueOrDie(
      BuildPipeline(catalog, journal, Granularity::kTable, &ksafe, 5),
      "ksafe pipeline");

  const size_t victim = PickVictim(unsafe);
  PrintHeader("crash of backend " + std::to_string(victim + 1) + " at t=" +
                  Fmt(kCrashTime, 0) + "s (" + Fmt(kDuration, 0) + "s at " +
                  Fmt(kRate, 0) + " q/s)",
              {"allocation", "thrpt q/s", "avail %", "rejected", "failed",
               "retried", "redisp", "p99 ms", "recov s"},
              13);

  const auto simulate = [&](const Pipeline& p, const SimulationConfig& config) {
    auto sim = ValueOrDie(
        ClusterSimulator::Create(p.cls, p.alloc, p.backends, config),
        "simulator");
    SweepOptions sweep;
    sweep.repeat = kReplications;
    sweep.threads = ThreadPool::DefaultThreads();
    return ValueOrDie(sim.RunOpenSweep(kDuration, kRate, sweep),
                      "open-loop sweep");
  };

  SimulationConfig healthy_config = BaseConfig();
  const std::vector<SimStats> healthy = simulate(safe, healthy_config);
  PrintStatsRow("no fault", healthy[0]);

  SimulationConfig crash_config = BaseConfig();
  crash_config.fault_plan.Crash(kCrashTime, victim);
  const std::vector<SimStats> unsafe_crash = simulate(unsafe, crash_config);
  PrintStatsRow("greedy k=0", unsafe_crash[0]);
  const std::vector<SimStats> safe_crash = simulate(safe, crash_config);
  PrintStatsRow("ksafe k=1", safe_crash[0]);

  // Self-healing controller: same crash, but Algorithm 3 notices the lost
  // redundancy and the repaired replacement rejoins after detection + ETL.
  Controller controller(catalog);
  controller.SetHistory(journal);
  CheckOk(controller
              .Reallocate(&ksafe, HomogeneousBackends(5),
                          {Granularity::kTable, 4, true})
              .status(),
          "controller reallocate");
  SelfHealingOptions heal;
  heal.allocator = &ksafe;
  heal.k_safety = 1;
  auto healed = ValueOrDie(
      controller.ProcessOpenSelfHealing(kDuration, kRate, crash_config, heal),
      "self-healing run");
  PrintStatsRow("self-heal", healed.stats);

  std::printf("\n");
  PrintTimeline("greedy k=0", unsafe_crash[0]);
  PrintTimeline("ksafe k=1 ", safe_crash[0]);
  PrintTimeline("self-heal ", healed.stats);

  for (const RepairAction& repair : healed.repairs) {
    std::printf(
        "\nrepair: backend %zu crashed t=%.1fs, violation \"%s\", ETL %.2f GB "
        "in %.1fs, rejoined t=%.1fs (recovery %.1fs)\n",
        repair.backend + 1, repair.crash_seconds, repair.violation.c_str(),
        repair.plan.total_bytes / (1024.0 * 1024.0 * 1024.0),
        repair.plan.duration_seconds, repair.recover_seconds,
        repair.recover_seconds - repair.crash_seconds);
  }

  // Acceptance + determinism guards: fail loudly if the lifecycle
  // guarantees regress in any replication.
  for (const SimStats& run : unsafe_crash) {
    if (run.rejected_requests == 0) {
      std::fprintf(stderr, "FATAL: 0-safe crash should reject requests\n");
      std::exit(1);
    }
  }
  for (const SimStats& run : safe_crash) {
    if (run.rejected_requests != 0 || run.failed_requests != 0) {
      std::fprintf(stderr, "FATAL: k=1-safe crash must serve the full load\n");
      std::exit(1);
    }
  }
  if (healed.repairs.empty() || healed.stats.recovery_seconds <= 0.0) {
    std::fprintf(stderr, "FATAL: self-healing must report a finite repair\n");
    std::exit(1);
  }
  auto healed2 = ValueOrDie(
      controller.ProcessOpenSelfHealing(kDuration, kRate, crash_config, heal),
      "self-healing rerun");
  if (!SameRun(healed.stats, healed2.stats) ||
      healed.stats.recovery_seconds != healed2.stats.recovery_seconds) {
    std::fprintf(stderr, "FATAL: self-healing run is not deterministic\n");
    std::exit(1);
  }
  std::printf(
      "\npaper shape: k-safety turns a crash from rejected requests into "
      "retries; the autonomic controller restores redundancy in finite "
      "time (deterministic re-run verified).\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E27: failure/recovery lifecycle (fault injection + "
              "self-healing)\n");
  qcap::bench::Run();
  return 0;
}
