// E6 / Figure 4(d): duration of the physical allocation (fragmentation +
// network transfer + bulk load) for full replication vs column-based
// allocation, 1-7 backends.
//
// Paper shape: column-based is faster despite the fragmentation overhead,
// because far less data is shipped and loaded; full replication grows with
// the number of nodes only via the per-node constant (parallel loads) while
// each node ingests the full database image.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/memetic.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "model/metrics.h"
#include "physical/physical_allocator.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  FullReplicationAllocator full;
  GreedyAllocator greedy;
  PhysicalAllocator physical;

  PrintHeader("Figure 4(d): allocation duration (minutes)",
              {"backends", "full-repl", "column", "col-bytes-moved"}, 18);
  for (size_t n = 1; n <= 7; ++n) {
    Pipeline pf = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kNone, &full, n), "full");
    Pipeline pc = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, n),
        "column");
    // Full replication ships whole database images (no fragmentation
    // stage); column-based prepares fragments but ships much less.
    TransitionPlan full_plan = ValueOrDie(
        physical.InitialLoad(pf.alloc, pf.cls.catalog, false), "full plan");
    TransitionPlan col_plan = ValueOrDie(
        physical.InitialLoad(pc.alloc, pc.cls.catalog, true), "col plan");
    PrintRow({std::to_string(n), Fmt(full_plan.duration_seconds / 60.0),
              Fmt(col_plan.duration_seconds / 60.0),
              FormatBytes(col_plan.total_bytes)},
             18);
  }
  std::printf(
      "\npaper shape: reduced replication outweighs the fragmentation "
      "overhead -- the column-based allocation completes faster than full "
      "replication at every cluster size.\n");
}

/// Island-model memetic search wall-clock vs thread count on the stock
/// TPC-H workload. Fixed {seed, num_islands}, so every row computes the
/// bit-identical allocation; only the wall-clock may differ. Speedup is
/// bounded by the machine's core count (a 1-core container shows ~1.0x).
void SearchSpeedup() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  Classifier classifier(catalog, {Granularity::kTable, 4, true});
  Classification cls = ValueOrDie(classifier.Classify(journal), "classify");
  const auto backends = HomogeneousBackends(8);
  GreedyAllocator greedy;
  const Allocation seed = ValueOrDie(greedy.Allocate(cls, backends), "seed");

  MemeticOptions opts;
  opts.population_size = 32;
  opts.iterations = 60;
  opts.num_islands = 4;
  opts.migration_interval = 12;
  opts.seed = 7;

  PrintHeader("memetic search wall-clock (TPC-H, 8 backends, 4 islands)",
              {"threads", "wall-ms", "speedup", "scaledLoad", "dev-vs-1t"},
              14);
  double serial_ms = 0.0;
  double serial_scale = 0.0;
  for (size_t threads : {1, 2, 4}) {
    opts.threads = threads;
    MemeticAllocator memetic(opts);
    double best_ms = 1e300;
    Allocation result;
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto start = std::chrono::steady_clock::now();
      result = ValueOrDie(memetic.Improve(cls, backends, seed), "improve");
      const auto stop = std::chrono::steady_clock::now();
      best_ms = std::min(
          best_ms,
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
    const double scale = Scale(result, backends);
    if (threads == 1) {
      serial_ms = best_ms;
      serial_scale = scale;
    }
    PrintRow({std::to_string(threads), Fmt(best_ms, 1),
              Fmt(serial_ms / best_ms, 2) + "x", Fmt(scale, 4),
              Fmt(100.0 * std::abs(scale - serial_scale) /
                      std::max(serial_scale, 1e-12),
                  3) + "%"},
             14);
  }
  std::printf(
      "determinism: islands interact only at the serial migration barrier, "
      "so every thread count returns the same allocation (dev 0%%); the "
      "speedup column tracks available cores (hardware_concurrency=%u).\n",
      static_cast<unsigned>(ThreadPool::DefaultThreads()));
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E6: TPC-H allocation duration (Figure 4d)\n");
  qcap::bench::Run();
  qcap::bench::SearchSpeedup();
  return 0;
}
