// E6 / Figure 4(d): duration of the physical allocation (fragmentation +
// network transfer + bulk load) for full replication vs column-based
// allocation, 1-7 backends.
//
// Paper shape: column-based is faster despite the fragmentation overhead,
// because far less data is shipped and loaded; full replication grows with
// the number of nodes only via the per-node constant (parallel loads) while
// each node ingests the full database image.
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "bench_util.h"
#include "physical/physical_allocator.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::Catalog catalog = workloads::TpchCatalog(1.0);
  const QueryJournal journal = workloads::TpchJournal(10000);
  FullReplicationAllocator full;
  GreedyAllocator greedy;
  PhysicalAllocator physical;

  PrintHeader("Figure 4(d): allocation duration (minutes)",
              {"backends", "full-repl", "column", "col-bytes-moved"}, 18);
  for (size_t n = 1; n <= 7; ++n) {
    Pipeline pf = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kNone, &full, n), "full");
    Pipeline pc = ValueOrDie(
        BuildPipeline(catalog, journal, Granularity::kColumn, &greedy, n),
        "column");
    // Full replication ships whole database images (no fragmentation
    // stage); column-based prepares fragments but ships much less.
    TransitionPlan full_plan = ValueOrDie(
        physical.InitialLoad(pf.alloc, pf.cls.catalog, false), "full plan");
    TransitionPlan col_plan = ValueOrDie(
        physical.InitialLoad(pc.alloc, pc.cls.catalog, true), "col plan");
    PrintRow({std::to_string(n), Fmt(full_plan.duration_seconds / 60.0),
              Fmt(col_plan.duration_seconds / 60.0),
              FormatBytes(col_plan.total_bytes)},
             18);
  }
  std::printf(
      "\npaper shape: reduced replication outweighs the fragmentation "
      "overhead -- the column-based allocation completes faster than full "
      "replication at every cluster size.\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E6: TPC-H allocation duration (Figure 4d)\n");
  qcap::bench::Run();
  return 0;
}
