// Shared plumbing for the figure/table benches: classify -> allocate ->
// validate -> simulate pipelines, seed-averaged statistics, and aligned
// table printing. Each bench binary prints the series of one paper figure
// or table (gnuplot-ready columns), followed by a paper-vs-measured note.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "cluster/simulator.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"
#include "model/metrics.h"
#include "model/validation.h"
#include "workload/classifier.h"

namespace qcap::bench {

/// A fully prepared experiment instance.
struct Pipeline {
  Classification cls;
  Allocation alloc;
  std::vector<BackendSpec> backends;
};

/// Classifies \p journal and allocates with \p allocator onto \p nodes
/// homogeneous backends; validates the result.
inline Result<Pipeline> BuildPipeline(const engine::Catalog& catalog,
                                      const QueryJournal& journal,
                                      Granularity granularity,
                                      Allocator* allocator, size_t nodes,
                                      int horizontal_partitions = 4) {
  Classifier classifier(
      catalog, ClassifierOptions{granularity, horizontal_partitions, true});
  QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(journal));
  std::vector<BackendSpec> backends = HomogeneousBackends(nodes);
  QCAP_ASSIGN_OR_RETURN(Allocation alloc, allocator->Allocate(cls, backends));
  QCAP_RETURN_NOT_OK(ValidateAllocation(cls, alloc, backends));
  return Pipeline{std::move(cls), std::move(alloc), std::move(backends)};
}

/// Runs a closed-loop simulation of \p p.
inline Result<SimStats> Simulate(const Pipeline& p, uint64_t requests,
                                 uint64_t seed,
                                 const engine::CostModelParams& params,
                                 double rowa_fanout_overhead = 0.0) {
  SimulationConfig config;
  config.cost_params = params;
  config.seed = seed;
  config.servers_per_backend = 4;
  config.rowa_fanout_overhead = rowa_fanout_overhead;
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(p.cls, p.alloc, p.backends, config));
  return sim.RunClosed(requests, 4 * p.backends.size());
}

/// Mean/min/max of simulated throughput over \p seeds runs.
struct ThroughputStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Replications run as one RunClosedSweep fan (seeds 1..seeds) over the
/// default thread count, or \p pool when given. Sweep results land in
/// submission order and the aggregation below walks them in that order, so
/// the numbers are bit-identical to the old serial seed loop.
inline Result<ThroughputStats> SimulateSeeds(
    const Pipeline& p, uint64_t requests, size_t seeds,
    const engine::CostModelParams& params,
    double rowa_fanout_overhead = 0.0, ThreadPool* pool = nullptr) {
  SimulationConfig config;
  config.cost_params = params;
  config.seed = 1;
  config.servers_per_backend = 4;
  config.rowa_fanout_overhead = rowa_fanout_overhead;
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(p.cls, p.alloc, p.backends, config));
  SweepOptions sweep;
  sweep.repeat = seeds;
  sweep.threads = ThreadPool::DefaultThreads();
  sweep.pool = pool;
  QCAP_ASSIGN_OR_RETURN(
      std::vector<SimStats> runs,
      sim.RunClosedSweep(requests, 4 * p.backends.size(), sweep));
  ThroughputStats out;
  out.min = 1e300;
  out.max = -1e300;
  for (const SimStats& stats : runs) {
    out.mean += stats.throughput;
    out.min = std::min(out.min, stats.throughput);
    out.max = std::max(out.max, stats.throughput);
  }
  out.mean /= static_cast<double>(seeds);
  return out;
}

/// Prints one aligned row of cells.
inline void PrintRow(const std::vector<std::string>& cells, size_t width = 14) {
  std::string line;
  for (const auto& cell : cells) line += PadLeft(cell, width);
  std::printf("%s\n", line.c_str());
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns,
                        size_t width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintRow(columns, width);
  std::printf("%s\n", std::string(width * columns.size(), '-').c_str());
}

inline std::string Fmt(double v, int precision = 2) {
  return FormatDouble(v, precision);
}

/// Cost-model parameters used by the TPC-H benches: SF 1 is ~1 GB and the
/// per-backend cache is smaller, so full replicas spill while specialized
/// backends fit (the paper's super-linear read-only effect).
inline engine::CostModelParams TpchCostParams() {
  engine::CostModelParams params;
  params.memory_bytes = 0.6 * 1024 * 1024 * 1024;
  // Row-store backends only partially benefit from narrower scans (join
  // and tuple-at-a-time overheads dominate): a 0.45 io share keeps the
  // column-allocation advantage in the paper's observed range.
  params.io_fraction = 0.45;
  params.max_cache_penalty = 3.0;
  return params;
}

/// Cost-model parameters for the TPC-App benches (OLTP: less scan-bound,
/// 280 MB data set fits in memory at EB=300).
inline engine::CostModelParams TpcAppCostParams() {
  engine::CostModelParams params;
  params.memory_bytes = 2.0 * 1024 * 1024 * 1024;
  params.io_fraction = 0.3;
  params.max_cache_penalty = 3.0;
  return params;
}

/// Fails hard with a message; benches have no meaningful recovery path.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

}  // namespace qcap::bench
