// E7 / Figure 4(e): TPC-H scaling behaviour at SF 1 vs SF 10 -- relative
// throughput (baseline: one backend with the same data set) for 1/5/10
// backends, full replication vs table-based vs column-based.
//
// Paper shape: good scaling at both scale factors, with column-based at
// least as fast as full replication.
#include <cstdio>

#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "bench_util.h"
#include "workloads/tpch.h"

namespace qcap::bench {
namespace {

void Run() {
  const engine::CostModelParams params = TpchCostParams();
  constexpr size_t kSeeds = 3;
  FullReplicationAllocator full;
  GreedyAllocator greedy;

  PrintHeader("Figure 4(e): TPC-H relative throughput, SF1 vs SF10",
              {"strategy", "SF", "n=1", "n=5", "n=10"}, 12);
  struct Variant {
    const char* name;
    Granularity granularity;
    Allocator* allocator;
  };
  FullReplicationAllocator full_alloc;
  const Variant variants[] = {
      {"full-repl", Granularity::kTable, &full_alloc},
      {"table", Granularity::kTable, &greedy},
      {"column", Granularity::kColumn, &greedy},
  };
  for (double sf : {1.0, 10.0}) {
    const engine::Catalog catalog = workloads::TpchCatalog(sf);
    const QueryJournal journal = workloads::TpchJournal(10000);
    for (const auto& variant : variants) {
      double baseline = 0.0;
      std::vector<std::string> row = {variant.name,
                                      "SF" + std::to_string(int(sf))};
      for (size_t n : {1, 5, 10}) {
        Pipeline p = ValueOrDie(
            BuildPipeline(catalog, journal, variant.granularity,
                          variant.allocator, n),
            "pipeline");
        ThroughputStats stats =
            ValueOrDie(SimulateSeeds(p, 1500, kSeeds, params), "simulate");
        if (n == 1) baseline = stats.mean;
        row.push_back(Fmt(stats.mean / baseline, 2));
      }
      PrintRow(row, 12);
    }
  }
  std::printf(
      "\npaper shape: all strategies scale well at both scale factors; "
      "column-based at least matches full replication. (SF3/SF30 behave "
      "similarly, as in the paper.)\n");
}

}  // namespace
}  // namespace qcap::bench

int main() {
  std::printf("E7: TPC-H scaling SF1 vs SF10 (Figure 4e)\n");
  qcap::bench::Run();
  return 0;
}
