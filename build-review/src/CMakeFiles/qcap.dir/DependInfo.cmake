
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/advisor.cc" "src/CMakeFiles/qcap.dir/alloc/advisor.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/advisor.cc.o.d"
  "/root/repo/src/alloc/allocator.cc" "src/CMakeFiles/qcap.dir/alloc/allocator.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/allocator.cc.o.d"
  "/root/repo/src/alloc/full_replication.cc" "src/CMakeFiles/qcap.dir/alloc/full_replication.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/full_replication.cc.o.d"
  "/root/repo/src/alloc/greedy.cc" "src/CMakeFiles/qcap.dir/alloc/greedy.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/greedy.cc.o.d"
  "/root/repo/src/alloc/ksafety.cc" "src/CMakeFiles/qcap.dir/alloc/ksafety.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/ksafety.cc.o.d"
  "/root/repo/src/alloc/memetic.cc" "src/CMakeFiles/qcap.dir/alloc/memetic.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/memetic.cc.o.d"
  "/root/repo/src/alloc/optimal.cc" "src/CMakeFiles/qcap.dir/alloc/optimal.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/optimal.cc.o.d"
  "/root/repo/src/alloc/random_allocator.cc" "src/CMakeFiles/qcap.dir/alloc/random_allocator.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/random_allocator.cc.o.d"
  "/root/repo/src/alloc/robustness.cc" "src/CMakeFiles/qcap.dir/alloc/robustness.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/robustness.cc.o.d"
  "/root/repo/src/alloc/search_kernel.cc" "src/CMakeFiles/qcap.dir/alloc/search_kernel.cc.o" "gcc" "src/CMakeFiles/qcap.dir/alloc/search_kernel.cc.o.d"
  "/root/repo/src/autonomic/scaler.cc" "src/CMakeFiles/qcap.dir/autonomic/scaler.cc.o" "gcc" "src/CMakeFiles/qcap.dir/autonomic/scaler.cc.o.d"
  "/root/repo/src/autonomic/segmentation.cc" "src/CMakeFiles/qcap.dir/autonomic/segmentation.cc.o" "gcc" "src/CMakeFiles/qcap.dir/autonomic/segmentation.cc.o.d"
  "/root/repo/src/cluster/backend_node.cc" "src/CMakeFiles/qcap.dir/cluster/backend_node.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/backend_node.cc.o.d"
  "/root/repo/src/cluster/controller.cc" "src/CMakeFiles/qcap.dir/cluster/controller.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/controller.cc.o.d"
  "/root/repo/src/cluster/event_queue.cc" "src/CMakeFiles/qcap.dir/cluster/event_queue.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/event_queue.cc.o.d"
  "/root/repo/src/cluster/fault_plan.cc" "src/CMakeFiles/qcap.dir/cluster/fault_plan.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/fault_plan.cc.o.d"
  "/root/repo/src/cluster/pending_index.cc" "src/CMakeFiles/qcap.dir/cluster/pending_index.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/pending_index.cc.o.d"
  "/root/repo/src/cluster/scheduler.cc" "src/CMakeFiles/qcap.dir/cluster/scheduler.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/scheduler.cc.o.d"
  "/root/repo/src/cluster/simulator.cc" "src/CMakeFiles/qcap.dir/cluster/simulator.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/simulator.cc.o.d"
  "/root/repo/src/cluster/stats.cc" "src/CMakeFiles/qcap.dir/cluster/stats.cc.o" "gcc" "src/CMakeFiles/qcap.dir/cluster/stats.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/qcap.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/qcap.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/qcap.dir/common/random.cc.o" "gcc" "src/CMakeFiles/qcap.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qcap.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qcap.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/qcap.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/qcap.dir/common/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/qcap.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/qcap.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/qcap.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/cost_estimator.cc" "src/CMakeFiles/qcap.dir/engine/cost_estimator.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/cost_estimator.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/CMakeFiles/qcap.dir/engine/cost_model.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/cost_model.cc.o.d"
  "/root/repo/src/engine/datagen.cc" "src/CMakeFiles/qcap.dir/engine/datagen.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/datagen.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/qcap.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/schema_io.cc" "src/CMakeFiles/qcap.dir/engine/schema_io.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/schema_io.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/qcap.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/types.cc" "src/CMakeFiles/qcap.dir/engine/types.cc.o" "gcc" "src/CMakeFiles/qcap.dir/engine/types.cc.o.d"
  "/root/repo/src/model/allocation.cc" "src/CMakeFiles/qcap.dir/model/allocation.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/allocation.cc.o.d"
  "/root/repo/src/model/backend.cc" "src/CMakeFiles/qcap.dir/model/backend.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/backend.cc.o.d"
  "/root/repo/src/model/json_export.cc" "src/CMakeFiles/qcap.dir/model/json_export.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/json_export.cc.o.d"
  "/root/repo/src/model/metrics.cc" "src/CMakeFiles/qcap.dir/model/metrics.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/metrics.cc.o.d"
  "/root/repo/src/model/report.cc" "src/CMakeFiles/qcap.dir/model/report.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/report.cc.o.d"
  "/root/repo/src/model/validation.cc" "src/CMakeFiles/qcap.dir/model/validation.cc.o" "gcc" "src/CMakeFiles/qcap.dir/model/validation.cc.o.d"
  "/root/repo/src/net/dispatcher.cc" "src/CMakeFiles/qcap.dir/net/dispatcher.cc.o" "gcc" "src/CMakeFiles/qcap.dir/net/dispatcher.cc.o.d"
  "/root/repo/src/net/frame.cc" "src/CMakeFiles/qcap.dir/net/frame.cc.o" "gcc" "src/CMakeFiles/qcap.dir/net/frame.cc.o.d"
  "/root/repo/src/net/server.cc" "src/CMakeFiles/qcap.dir/net/server.cc.o" "gcc" "src/CMakeFiles/qcap.dir/net/server.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/CMakeFiles/qcap.dir/net/socket.cc.o" "gcc" "src/CMakeFiles/qcap.dir/net/socket.cc.o.d"
  "/root/repo/src/physical/etl_cost.cc" "src/CMakeFiles/qcap.dir/physical/etl_cost.cc.o" "gcc" "src/CMakeFiles/qcap.dir/physical/etl_cost.cc.o.d"
  "/root/repo/src/physical/physical_allocator.cc" "src/CMakeFiles/qcap.dir/physical/physical_allocator.cc.o" "gcc" "src/CMakeFiles/qcap.dir/physical/physical_allocator.cc.o.d"
  "/root/repo/src/physical/scaling.cc" "src/CMakeFiles/qcap.dir/physical/scaling.cc.o" "gcc" "src/CMakeFiles/qcap.dir/physical/scaling.cc.o.d"
  "/root/repo/src/solver/hungarian.cc" "src/CMakeFiles/qcap.dir/solver/hungarian.cc.o" "gcc" "src/CMakeFiles/qcap.dir/solver/hungarian.cc.o.d"
  "/root/repo/src/solver/milp.cc" "src/CMakeFiles/qcap.dir/solver/milp.cc.o" "gcc" "src/CMakeFiles/qcap.dir/solver/milp.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/CMakeFiles/qcap.dir/solver/simplex.cc.o" "gcc" "src/CMakeFiles/qcap.dir/solver/simplex.cc.o.d"
  "/root/repo/src/workload/classifier.cc" "src/CMakeFiles/qcap.dir/workload/classifier.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/classifier.cc.o.d"
  "/root/repo/src/workload/fragment.cc" "src/CMakeFiles/qcap.dir/workload/fragment.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/fragment.cc.o.d"
  "/root/repo/src/workload/journal.cc" "src/CMakeFiles/qcap.dir/workload/journal.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/journal.cc.o.d"
  "/root/repo/src/workload/journal_io.cc" "src/CMakeFiles/qcap.dir/workload/journal_io.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/journal_io.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/CMakeFiles/qcap.dir/workload/query.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/query.cc.o.d"
  "/root/repo/src/workload/query_class.cc" "src/CMakeFiles/qcap.dir/workload/query_class.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/query_class.cc.o.d"
  "/root/repo/src/workload/sql_parser.cc" "src/CMakeFiles/qcap.dir/workload/sql_parser.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workload/sql_parser.cc.o.d"
  "/root/repo/src/workloads/journal_synth.cc" "src/CMakeFiles/qcap.dir/workloads/journal_synth.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workloads/journal_synth.cc.o.d"
  "/root/repo/src/workloads/timeseries.cc" "src/CMakeFiles/qcap.dir/workloads/timeseries.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workloads/timeseries.cc.o.d"
  "/root/repo/src/workloads/tpcapp.cc" "src/CMakeFiles/qcap.dir/workloads/tpcapp.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workloads/tpcapp.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/CMakeFiles/qcap.dir/workloads/tpch.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workloads/tpch.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/qcap.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/qcap.dir/workloads/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
