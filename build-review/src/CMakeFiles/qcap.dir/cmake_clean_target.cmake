file(REMOVE_RECURSE
  "libqcap.a"
)
