# Empty dependencies file for qcap.
# This may be replaced when dependencies are built.
