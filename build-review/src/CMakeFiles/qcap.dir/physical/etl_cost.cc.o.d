src/CMakeFiles/qcap.dir/physical/etl_cost.cc.o: \
 /root/repo/src/physical/etl_cost.cc /usr/include/stdc-predef.h \
 /root/repo/src/physical/etl_cost.h
