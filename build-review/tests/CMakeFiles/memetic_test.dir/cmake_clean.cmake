file(REMOVE_RECURSE
  "CMakeFiles/memetic_test.dir/memetic_test.cc.o"
  "CMakeFiles/memetic_test.dir/memetic_test.cc.o.d"
  "memetic_test"
  "memetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
