# Empty compiler generated dependencies file for memetic_test.
# This may be replaced when dependencies are built.
