file(REMOVE_RECURSE
  "CMakeFiles/full_replication_test.dir/full_replication_test.cc.o"
  "CMakeFiles/full_replication_test.dir/full_replication_test.cc.o.d"
  "full_replication_test"
  "full_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
