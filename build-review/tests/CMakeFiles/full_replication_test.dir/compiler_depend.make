# Empty compiler generated dependencies file for full_replication_test.
# This may be replaced when dependencies are built.
