# Empty compiler generated dependencies file for cost_estimator_test.
# This may be replaced when dependencies are built.
