file(REMOVE_RECURSE
  "CMakeFiles/cost_estimator_test.dir/cost_estimator_test.cc.o"
  "CMakeFiles/cost_estimator_test.dir/cost_estimator_test.cc.o.d"
  "cost_estimator_test"
  "cost_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
