file(REMOVE_RECURSE
  "CMakeFiles/random_allocator_test.dir/random_allocator_test.cc.o"
  "CMakeFiles/random_allocator_test.dir/random_allocator_test.cc.o.d"
  "random_allocator_test"
  "random_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
