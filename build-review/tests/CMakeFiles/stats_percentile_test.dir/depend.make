# Empty dependencies file for stats_percentile_test.
# This may be replaced when dependencies are built.
