file(REMOVE_RECURSE
  "CMakeFiles/stats_percentile_test.dir/stats_percentile_test.cc.o"
  "CMakeFiles/stats_percentile_test.dir/stats_percentile_test.cc.o.d"
  "stats_percentile_test"
  "stats_percentile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_percentile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
