# Empty compiler generated dependencies file for admission_control_test.
# This may be replaced when dependencies are built.
