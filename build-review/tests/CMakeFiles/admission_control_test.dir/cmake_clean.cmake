file(REMOVE_RECURSE
  "CMakeFiles/admission_control_test.dir/admission_control_test.cc.o"
  "CMakeFiles/admission_control_test.dir/admission_control_test.cc.o.d"
  "admission_control_test"
  "admission_control_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
