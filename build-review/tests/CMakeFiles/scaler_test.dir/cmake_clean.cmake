file(REMOVE_RECURSE
  "CMakeFiles/scaler_test.dir/scaler_test.cc.o"
  "CMakeFiles/scaler_test.dir/scaler_test.cc.o.d"
  "scaler_test"
  "scaler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
