# Empty dependencies file for scaler_test.
# This may be replaced when dependencies are built.
