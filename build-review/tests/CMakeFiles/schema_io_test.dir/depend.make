# Empty dependencies file for schema_io_test.
# This may be replaced when dependencies are built.
