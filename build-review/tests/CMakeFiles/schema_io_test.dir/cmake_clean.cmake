file(REMOVE_RECURSE
  "CMakeFiles/schema_io_test.dir/schema_io_test.cc.o"
  "CMakeFiles/schema_io_test.dir/schema_io_test.cc.o.d"
  "schema_io_test"
  "schema_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
