file(REMOVE_RECURSE
  "CMakeFiles/net_protocol_test.dir/net_protocol_test.cc.o"
  "CMakeFiles/net_protocol_test.dir/net_protocol_test.cc.o.d"
  "net_protocol_test"
  "net_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
