# Empty compiler generated dependencies file for net_protocol_test.
# This may be replaced when dependencies are built.
