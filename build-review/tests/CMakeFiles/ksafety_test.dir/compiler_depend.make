# Empty compiler generated dependencies file for ksafety_test.
# This may be replaced when dependencies are built.
