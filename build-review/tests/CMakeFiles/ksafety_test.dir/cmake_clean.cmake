file(REMOVE_RECURSE
  "CMakeFiles/ksafety_test.dir/ksafety_test.cc.o"
  "CMakeFiles/ksafety_test.dir/ksafety_test.cc.o.d"
  "ksafety_test"
  "ksafety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksafety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
