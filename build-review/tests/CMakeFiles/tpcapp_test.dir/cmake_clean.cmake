file(REMOVE_RECURSE
  "CMakeFiles/tpcapp_test.dir/tpcapp_test.cc.o"
  "CMakeFiles/tpcapp_test.dir/tpcapp_test.cc.o.d"
  "tpcapp_test"
  "tpcapp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
