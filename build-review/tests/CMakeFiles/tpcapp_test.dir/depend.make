# Empty dependencies file for tpcapp_test.
# This may be replaced when dependencies are built.
