file(REMOVE_RECURSE
  "CMakeFiles/milp_test.dir/milp_test.cc.o"
  "CMakeFiles/milp_test.dir/milp_test.cc.o.d"
  "milp_test"
  "milp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
