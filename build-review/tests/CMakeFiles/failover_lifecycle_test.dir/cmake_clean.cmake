file(REMOVE_RECURSE
  "CMakeFiles/failover_lifecycle_test.dir/failover_lifecycle_test.cc.o"
  "CMakeFiles/failover_lifecycle_test.dir/failover_lifecycle_test.cc.o.d"
  "failover_lifecycle_test"
  "failover_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
