# Empty compiler generated dependencies file for failover_lifecycle_test.
# This may be replaced when dependencies are built.
