file(REMOVE_RECURSE
  "CMakeFiles/greedy_corner_test.dir/greedy_corner_test.cc.o"
  "CMakeFiles/greedy_corner_test.dir/greedy_corner_test.cc.o.d"
  "greedy_corner_test"
  "greedy_corner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_corner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
