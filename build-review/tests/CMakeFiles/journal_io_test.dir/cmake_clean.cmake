file(REMOVE_RECURSE
  "CMakeFiles/journal_io_test.dir/journal_io_test.cc.o"
  "CMakeFiles/journal_io_test.dir/journal_io_test.cc.o.d"
  "journal_io_test"
  "journal_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
