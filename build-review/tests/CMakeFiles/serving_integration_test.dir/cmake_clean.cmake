file(REMOVE_RECURSE
  "CMakeFiles/serving_integration_test.dir/serving_integration_test.cc.o"
  "CMakeFiles/serving_integration_test.dir/serving_integration_test.cc.o.d"
  "serving_integration_test"
  "serving_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
