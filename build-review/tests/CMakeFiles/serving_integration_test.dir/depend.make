# Empty dependencies file for serving_integration_test.
# This may be replaced when dependencies are built.
