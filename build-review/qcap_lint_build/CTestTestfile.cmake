# CMake generated Testfile for 
# Source directory: /root/repo/tools/qcap_lint
# Build directory: /root/repo/build-review/qcap_lint_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(qcap_lint_test "/root/repo/build-review/qcap_lint_build/qcap_lint_test")
set_tests_properties(qcap_lint_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/qcap_lint/CMakeLists.txt;18;add_test;/root/repo/tools/qcap_lint/CMakeLists.txt;0;")
add_test(qcap_lint_tree "/root/repo/build-review/tools/qcap_lint" "/root/repo/src" "/root/repo/tests")
set_tests_properties(qcap_lint_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/qcap_lint/CMakeLists.txt;22;add_test;/root/repo/tools/qcap_lint/CMakeLists.txt;0;")
