# Empty compiler generated dependencies file for qcap_lint.
# This may be replaced when dependencies are built.
