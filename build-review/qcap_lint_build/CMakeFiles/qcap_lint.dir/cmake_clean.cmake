file(REMOVE_RECURSE
  "../tools/qcap_lint"
  "../tools/qcap_lint.pdb"
  "CMakeFiles/qcap_lint.dir/main.cc.o"
  "CMakeFiles/qcap_lint.dir/main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcap_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
