file(REMOVE_RECURSE
  "libqcap_lint_core.a"
)
