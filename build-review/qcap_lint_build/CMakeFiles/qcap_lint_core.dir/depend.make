# Empty dependencies file for qcap_lint_core.
# This may be replaced when dependencies are built.
