file(REMOVE_RECURSE
  "CMakeFiles/qcap_lint_core.dir/lexer.cc.o"
  "CMakeFiles/qcap_lint_core.dir/lexer.cc.o.d"
  "CMakeFiles/qcap_lint_core.dir/lint.cc.o"
  "CMakeFiles/qcap_lint_core.dir/lint.cc.o.d"
  "libqcap_lint_core.a"
  "libqcap_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcap_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
