# Empty compiler generated dependencies file for qcap_lint_test.
# This may be replaced when dependencies are built.
