file(REMOVE_RECURSE
  "CMakeFiles/qcap_lint_test.dir/qcap_lint_test.cc.o"
  "CMakeFiles/qcap_lint_test.dir/qcap_lint_test.cc.o.d"
  "qcap_lint_test"
  "qcap_lint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcap_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
