# Empty dependencies file for bench_allocator_ablation.
# This may be replaced when dependencies are built.
