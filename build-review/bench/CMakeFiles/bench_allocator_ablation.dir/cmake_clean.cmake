file(REMOVE_RECURSE
  "CMakeFiles/bench_allocator_ablation.dir/bench_allocator_ablation.cc.o"
  "CMakeFiles/bench_allocator_ablation.dir/bench_allocator_ablation.cc.o.d"
  "bench_allocator_ablation"
  "bench_allocator_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocator_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
