# Empty custom commands generated dependencies file for bench_serving_json.
# This may be replaced when dependencies are built.
