# Empty custom commands generated dependencies file for bench_alloc_json.
# This may be replaced when dependencies are built.
