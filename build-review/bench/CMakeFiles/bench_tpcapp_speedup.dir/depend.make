# Empty dependencies file for bench_tpcapp_speedup.
# This may be replaced when dependencies are built.
