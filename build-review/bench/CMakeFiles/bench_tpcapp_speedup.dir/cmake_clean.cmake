file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcapp_speedup.dir/bench_tpcapp_speedup.cc.o"
  "CMakeFiles/bench_tpcapp_speedup.dir/bench_tpcapp_speedup.cc.o.d"
  "bench_tpcapp_speedup"
  "bench_tpcapp_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcapp_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
