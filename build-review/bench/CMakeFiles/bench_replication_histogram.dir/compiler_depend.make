# Empty compiler generated dependencies file for bench_replication_histogram.
# This may be replaced when dependencies are built.
