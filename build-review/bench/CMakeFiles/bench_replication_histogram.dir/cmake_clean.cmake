file(REMOVE_RECURSE
  "CMakeFiles/bench_replication_histogram.dir/bench_replication_histogram.cc.o"
  "CMakeFiles/bench_replication_histogram.dir/bench_replication_histogram.cc.o.d"
  "bench_replication_histogram"
  "bench_replication_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replication_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
