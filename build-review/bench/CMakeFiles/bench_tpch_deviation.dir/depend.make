# Empty dependencies file for bench_tpch_deviation.
# This may be replaced when dependencies are built.
