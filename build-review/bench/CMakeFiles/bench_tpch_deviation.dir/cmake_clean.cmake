file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_deviation.dir/bench_tpch_deviation.cc.o"
  "CMakeFiles/bench_tpch_deviation.dir/bench_tpch_deviation.cc.o.d"
  "bench_tpch_deviation"
  "bench_tpch_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
