# Empty dependencies file for bench_update_propagation.
# This may be replaced when dependencies are built.
