file(REMOVE_RECURSE
  "CMakeFiles/bench_update_propagation.dir/bench_update_propagation.cc.o"
  "CMakeFiles/bench_update_propagation.dir/bench_update_propagation.cc.o.d"
  "bench_update_propagation"
  "bench_update_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
