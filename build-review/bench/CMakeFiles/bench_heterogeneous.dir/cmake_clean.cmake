file(REMOVE_RECURSE
  "CMakeFiles/bench_heterogeneous.dir/bench_heterogeneous.cc.o"
  "CMakeFiles/bench_heterogeneous.dir/bench_heterogeneous.cc.o.d"
  "bench_heterogeneous"
  "bench_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
