file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcapp_large.dir/bench_tpcapp_large.cc.o"
  "CMakeFiles/bench_tpcapp_large.dir/bench_tpcapp_large.cc.o.d"
  "bench_tpcapp_large"
  "bench_tpcapp_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcapp_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
