# Empty compiler generated dependencies file for bench_tpcapp_large.
# This may be replaced when dependencies are built.
