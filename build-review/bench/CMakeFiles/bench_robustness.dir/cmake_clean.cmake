file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness.dir/bench_robustness.cc.o"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cc.o.d"
  "bench_robustness"
  "bench_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
