# Empty dependencies file for bench_horizontal.
# This may be replaced when dependencies are built.
