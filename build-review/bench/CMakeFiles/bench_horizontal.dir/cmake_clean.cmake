file(REMOVE_RECURSE
  "CMakeFiles/bench_horizontal.dir/bench_horizontal.cc.o"
  "CMakeFiles/bench_horizontal.dir/bench_horizontal.cc.o.d"
  "bench_horizontal"
  "bench_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
