file(REMOVE_RECURSE
  "CMakeFiles/bench_balance.dir/bench_balance.cc.o"
  "CMakeFiles/bench_balance.dir/bench_balance.cc.o.d"
  "bench_balance"
  "bench_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
