file(REMOVE_RECURSE
  "CMakeFiles/bench_autonomic_scaling.dir/bench_autonomic_scaling.cc.o"
  "CMakeFiles/bench_autonomic_scaling.dir/bench_autonomic_scaling.cc.o.d"
  "bench_autonomic_scaling"
  "bench_autonomic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autonomic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
