# Empty dependencies file for bench_autonomic_scaling.
# This may be replaced when dependencies are built.
