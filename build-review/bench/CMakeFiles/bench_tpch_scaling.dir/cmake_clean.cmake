file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_scaling.dir/bench_tpch_scaling.cc.o"
  "CMakeFiles/bench_tpch_scaling.dir/bench_tpch_scaling.cc.o.d"
  "bench_tpch_scaling"
  "bench_tpch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
