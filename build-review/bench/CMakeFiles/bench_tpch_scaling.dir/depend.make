# Empty dependencies file for bench_tpch_scaling.
# This may be replaced when dependencies are built.
