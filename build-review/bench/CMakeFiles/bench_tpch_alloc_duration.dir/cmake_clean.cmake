file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_alloc_duration.dir/bench_tpch_alloc_duration.cc.o"
  "CMakeFiles/bench_tpch_alloc_duration.dir/bench_tpch_alloc_duration.cc.o.d"
  "bench_tpch_alloc_duration"
  "bench_tpch_alloc_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_alloc_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
