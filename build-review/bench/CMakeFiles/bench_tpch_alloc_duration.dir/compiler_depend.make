# Empty compiler generated dependencies file for bench_tpch_alloc_duration.
# This may be replaced when dependencies are built.
