# Empty compiler generated dependencies file for bench_tpch_throughput.
# This may be replaced when dependencies are built.
