file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_throughput.dir/bench_tpch_throughput.cc.o"
  "CMakeFiles/bench_tpch_throughput.dir/bench_tpch_throughput.cc.o.d"
  "bench_tpch_throughput"
  "bench_tpch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
