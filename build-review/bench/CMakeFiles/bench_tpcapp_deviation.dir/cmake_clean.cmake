file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcapp_deviation.dir/bench_tpcapp_deviation.cc.o"
  "CMakeFiles/bench_tpcapp_deviation.dir/bench_tpcapp_deviation.cc.o.d"
  "bench_tpcapp_deviation"
  "bench_tpcapp_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcapp_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
