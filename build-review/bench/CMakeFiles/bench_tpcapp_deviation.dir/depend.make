# Empty dependencies file for bench_tpcapp_deviation.
# This may be replaced when dependencies are built.
