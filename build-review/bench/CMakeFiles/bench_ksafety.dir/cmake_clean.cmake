file(REMOVE_RECURSE
  "CMakeFiles/bench_ksafety.dir/bench_ksafety.cc.o"
  "CMakeFiles/bench_ksafety.dir/bench_ksafety.cc.o.d"
  "bench_ksafety"
  "bench_ksafety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ksafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
