# Empty dependencies file for bench_ksafety.
# This may be replaced when dependencies are built.
