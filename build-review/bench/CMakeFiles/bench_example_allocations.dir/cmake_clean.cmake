file(REMOVE_RECURSE
  "CMakeFiles/bench_example_allocations.dir/bench_example_allocations.cc.o"
  "CMakeFiles/bench_example_allocations.dir/bench_example_allocations.cc.o.d"
  "bench_example_allocations"
  "bench_example_allocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_allocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
