# Empty compiler generated dependencies file for bench_example_allocations.
# This may be replaced when dependencies are built.
