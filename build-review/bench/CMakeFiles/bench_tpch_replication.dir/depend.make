# Empty dependencies file for bench_tpch_replication.
# This may be replaced when dependencies are built.
