file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_replication.dir/bench_tpch_replication.cc.o"
  "CMakeFiles/bench_tpch_replication.dir/bench_tpch_replication.cc.o.d"
  "bench_tpch_replication"
  "bench_tpch_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
