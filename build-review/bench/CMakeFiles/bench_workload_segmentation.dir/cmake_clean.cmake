file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_segmentation.dir/bench_workload_segmentation.cc.o"
  "CMakeFiles/bench_workload_segmentation.dir/bench_workload_segmentation.cc.o.d"
  "bench_workload_segmentation"
  "bench_workload_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
