# Empty dependencies file for bench_workload_segmentation.
# This may be replaced when dependencies are built.
