# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpch_partial_replication "/root/repo/build-review/examples/tpch_partial_replication")
set_tests_properties(example_tpch_partial_replication PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sql_workload "/root/repo/build-review/examples/sql_workload")
set_tests_properties(example_sql_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partitioning_advisor "/root/repo/build-review/examples/partitioning_advisor")
set_tests_properties(example_partitioning_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ksafety_failover "/root/repo/build-review/examples/ksafety_failover")
set_tests_properties(example_ksafety_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autonomic_elasticity "/root/repo/build-review/examples/autonomic_elasticity")
set_tests_properties(example_autonomic_elasticity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qcap_serve "/root/repo/build-review/examples/qcap_serve" "--selfcheck")
set_tests_properties(example_qcap_serve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
