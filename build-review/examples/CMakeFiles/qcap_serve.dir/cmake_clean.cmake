file(REMOVE_RECURSE
  "CMakeFiles/qcap_serve.dir/qcap_serve.cpp.o"
  "CMakeFiles/qcap_serve.dir/qcap_serve.cpp.o.d"
  "qcap_serve"
  "qcap_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcap_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
