# Empty compiler generated dependencies file for qcap_serve.
# This may be replaced when dependencies are built.
