file(REMOVE_RECURSE
  "CMakeFiles/autonomic_elasticity.dir/autonomic_elasticity.cpp.o"
  "CMakeFiles/autonomic_elasticity.dir/autonomic_elasticity.cpp.o.d"
  "autonomic_elasticity"
  "autonomic_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomic_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
