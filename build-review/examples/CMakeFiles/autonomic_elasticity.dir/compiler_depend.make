# Empty compiler generated dependencies file for autonomic_elasticity.
# This may be replaced when dependencies are built.
