# Empty dependencies file for ksafety_failover.
# This may be replaced when dependencies are built.
