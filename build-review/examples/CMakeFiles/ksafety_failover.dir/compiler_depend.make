# Empty compiler generated dependencies file for ksafety_failover.
# This may be replaced when dependencies are built.
