file(REMOVE_RECURSE
  "CMakeFiles/ksafety_failover.dir/ksafety_failover.cpp.o"
  "CMakeFiles/ksafety_failover.dir/ksafety_failover.cpp.o.d"
  "ksafety_failover"
  "ksafety_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksafety_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
