# Empty compiler generated dependencies file for sql_workload.
# This may be replaced when dependencies are built.
