file(REMOVE_RECURSE
  "CMakeFiles/sql_workload.dir/sql_workload.cpp.o"
  "CMakeFiles/sql_workload.dir/sql_workload.cpp.o.d"
  "sql_workload"
  "sql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
