file(REMOVE_RECURSE
  "CMakeFiles/qcap_tool.dir/qcap_tool.cpp.o"
  "CMakeFiles/qcap_tool.dir/qcap_tool.cpp.o.d"
  "qcap_tool"
  "qcap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
