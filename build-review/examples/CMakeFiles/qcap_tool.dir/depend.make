# Empty dependencies file for qcap_tool.
# This may be replaced when dependencies are built.
