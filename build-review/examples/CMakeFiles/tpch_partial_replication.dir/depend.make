# Empty dependencies file for tpch_partial_replication.
# This may be replaced when dependencies are built.
