file(REMOVE_RECURSE
  "CMakeFiles/tpch_partial_replication.dir/tpch_partial_replication.cpp.o"
  "CMakeFiles/tpch_partial_replication.dir/tpch_partial_replication.cpp.o.d"
  "tpch_partial_replication"
  "tpch_partial_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_partial_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
