// Query classes: groups of queries referencing the same fragment set
// (Section 3.1, Eq. 2-4), plus the classification result container.
#pragma once

#include <string>
#include <vector>

#include "workload/fragment.h"

namespace qcap {

/// A class of similar queries: identified by the set of fragments its
/// member queries reference.
struct QueryClass {
  /// Referenced fragments (sorted, unique). Defines the class identity.
  FragmentSet fragments;
  /// Relative share of the total workload cost (Eq. 4); all classes of a
  /// classification sum to 1.
  double weight = 0.0;
  /// Mean cost of a single execution of a member query (journal cost
  /// units, e.g. seconds). Drives the simulator's service times.
  double mean_cost = 1.0;
  /// True for update query classes (members are update requests).
  bool is_update = false;
  /// Display label, e.g. "Q1" or "U_order_line".
  std::string label;
  /// Indices of member queries in the originating journal.
  std::vector<size_t> members;
};

/// \brief Result of classifying a journal: fragments, read classes CQ, and
/// update classes CU, with weights normalized across CQ ∪ CU.
struct Classification {
  FragmentCatalog catalog;
  std::vector<QueryClass> reads;    ///< CQ.
  std::vector<QueryClass> updates;  ///< CU.

  /// Number of classes |C| = |CQ| + |CU|.
  size_t NumClasses() const { return reads.size() + updates.size(); }

  /// updates(C) (Eq. 12): indices into `updates` of the update classes whose
  /// fragment sets overlap \p c.fragments.
  std::vector<size_t> OverlappingUpdates(const QueryClass& c) const;

  /// Σ weight over updates(C) — the update weight co-allocated with C.
  double OverlappingUpdateWeight(const QueryClass& c) const;

  /// Union of C's fragments with the fragments of all classes in updates(C)
  /// (the data that must be placed together with C in Algorithm 1).
  FragmentSet FragmentsWithUpdates(const QueryClass& c) const;

  /// Sum of weights of all classes (should be ~1 after classification).
  double TotalWeight() const;

  /// Consistency check: weights in [0,1] summing to ~1, fragment ids valid,
  /// fragment sets sorted/unique and non-empty.
  Status Validate() const;
};

/// \brief Precomputed set-algebra indexes over a Classification.
///
/// Built once per allocator call (O(|C|² · F/64)), consumed by the search
/// hot loops so they never re-derive overlaps, closures, or bundle sizes:
///  - interned per-class fragment bitsets (word-parallel Intersects /
///    HoldsAll against allocation rows),
///  - memoized updates(C) lists and weights (Eq. 12),
///  - memoized bundles C ∪ updates(C) with their byte sizes (Algorithm 1's
///    sort keys and difference sets),
///  - the transitive update closure per read class: the update classes (and
///    the union of their fragments) a backend is forced to keep when it
///    serves that read, collapsing GarbageCollect's O(U²) fixpoint into a
///    precomputed union,
///  - a fragment → classes inverted index.
///
/// The index is immutable after construction and safe to share across
/// threads. It must not outlive the Classification it was built from.
class ClassificationIndex {
 public:
  explicit ClassificationIndex(const Classification& cls);

  size_t num_fragments() const { return num_fragments_; }
  size_t num_reads() const { return reads_.size(); }
  size_t num_updates() const { return updates_.size(); }

  /// Interned fragment bitset of read class \p r / update class \p u.
  const DenseBitset& read_bits(size_t r) const { return reads_[r].bits; }
  const DenseBitset& update_bits(size_t u) const { return updates_[u].bits; }

  /// updates(C) (Eq. 12), ascending update indices.
  const std::vector<size_t>& read_overlapping_updates(size_t r) const {
    return reads_[r].overlapping_updates;
  }
  const std::vector<size_t>& update_overlapping_updates(size_t u) const {
    return updates_[u].overlapping_updates;
  }
  /// Read classes overlapping update class \p u (ascending).
  const std::vector<size_t>& reads_overlapping_update(size_t u) const {
    return updates_[u].overlapping_reads;
  }
  /// Σ weight over updates(C).
  double read_overlapping_update_weight(size_t r) const {
    return reads_[r].overlapping_update_weight;
  }
  double update_overlapping_update_weight(size_t u) const {
    return updates_[u].overlapping_update_weight;
  }

  /// Bundle C ∪ updates(C): the data placed together with the class in
  /// Algorithm 1, as a bitset plus its total bytes.
  const DenseBitset& read_bundle_bits(size_t r) const {
    return reads_[r].bundle_bits;
  }
  const DenseBitset& update_bundle_bits(size_t u) const {
    return updates_[u].bundle_bits;
  }
  double read_bundle_bytes(size_t r) const { return reads_[r].bundle_bytes; }
  double update_bundle_bytes(size_t u) const { return updates_[u].bundle_bytes; }

  /// Transitive update closure of read class \p r: every update class
  /// reachable from r's fragments by chaining overlaps (bit u set), and the
  /// union of r's fragments with all their fragment sets. A backend serving
  /// r must keep exactly these fragments and update pins for r's sake.
  const DenseBitset& read_closure_updates(size_t r) const {
    return reads_[r].closure_updates;
  }
  const DenseBitset& read_closure_fragments(size_t r) const {
    return reads_[r].closure_fragments;
  }

  /// Inverted index: classes referencing fragment \p f (ascending).
  const std::vector<size_t>& reads_of_fragment(FragmentId f) const {
    return frag_reads_[f];
  }
  const std::vector<size_t>& updates_of_fragment(FragmentId f) const {
    return frag_updates_[f];
  }
  /// True iff some update class references fragment \p f.
  bool fragment_updated(FragmentId f) const {
    return !frag_updates_[f].empty();
  }

 private:
  struct ClassEntry {
    DenseBitset bits;
    std::vector<size_t> overlapping_updates;
    std::vector<size_t> overlapping_reads;  // Updates only.
    double overlapping_update_weight = 0.0;
    DenseBitset bundle_bits;
    double bundle_bytes = 0.0;
    DenseBitset closure_updates;    // Reads only.
    DenseBitset closure_fragments;  // Reads only.
  };

  size_t num_fragments_ = 0;
  std::vector<ClassEntry> reads_;
  std::vector<ClassEntry> updates_;
  std::vector<std::vector<size_t>> frag_reads_;
  std::vector<std::vector<size_t>> frag_updates_;
};

}  // namespace qcap
