// Query classes: groups of queries referencing the same fragment set
// (Section 3.1, Eq. 2-4), plus the classification result container.
#pragma once

#include <string>
#include <vector>

#include "workload/fragment.h"

namespace qcap {

/// A class of similar queries: identified by the set of fragments its
/// member queries reference.
struct QueryClass {
  /// Referenced fragments (sorted, unique). Defines the class identity.
  FragmentSet fragments;
  /// Relative share of the total workload cost (Eq. 4); all classes of a
  /// classification sum to 1.
  double weight = 0.0;
  /// Mean cost of a single execution of a member query (journal cost
  /// units, e.g. seconds). Drives the simulator's service times.
  double mean_cost = 1.0;
  /// True for update query classes (members are update requests).
  bool is_update = false;
  /// Display label, e.g. "Q1" or "U_order_line".
  std::string label;
  /// Indices of member queries in the originating journal.
  std::vector<size_t> members;
};

/// \brief Result of classifying a journal: fragments, read classes CQ, and
/// update classes CU, with weights normalized across CQ ∪ CU.
struct Classification {
  FragmentCatalog catalog;
  std::vector<QueryClass> reads;    ///< CQ.
  std::vector<QueryClass> updates;  ///< CU.

  /// Number of classes |C| = |CQ| + |CU|.
  size_t NumClasses() const { return reads.size() + updates.size(); }

  /// updates(C) (Eq. 12): indices into `updates` of the update classes whose
  /// fragment sets overlap \p c.fragments.
  std::vector<size_t> OverlappingUpdates(const QueryClass& c) const;

  /// Σ weight over updates(C) — the update weight co-allocated with C.
  double OverlappingUpdateWeight(const QueryClass& c) const;

  /// Union of C's fragments with the fragments of all classes in updates(C)
  /// (the data that must be placed together with C in Algorithm 1).
  FragmentSet FragmentsWithUpdates(const QueryClass& c) const;

  /// Sum of weights of all classes (should be ~1 after classification).
  double TotalWeight() const;

  /// Consistency check: weights in [0,1] summing to ~1, fragment ids valid,
  /// fragment sets sorted/unique and non-empty.
  Status Validate() const;
};

}  // namespace qcap
