#include "workload/query.h"

namespace qcap {

Query Query::Read(std::string text, std::vector<std::string> tables, double cost) {
  Query q;
  q.text = std::move(text);
  for (auto& t : tables) q.accesses.push_back(TableAccess{std::move(t), {}, {}});
  q.is_update = false;
  q.cost = cost;
  return q;
}

Query Query::Update(std::string text, std::vector<std::string> tables,
                    double cost) {
  Query q = Read(std::move(text), std::move(tables), cost);
  q.is_update = true;
  return q;
}

}  // namespace qcap
