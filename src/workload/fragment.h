// Data fragments: the atomic units of placement.
//
// Depending on the classification granularity (Section 3.1 of the paper) a
// fragment is a whole table, a single column, or a horizontal partition.
// Fragments are interned in a FragmentCatalog which records their sizes;
// query classes and allocations refer to them by dense integer id.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcap {

/// Dense fragment identifier (index into the FragmentCatalog).
using FragmentId = uint32_t;

/// A sorted, duplicate-free set of fragment ids.
using FragmentSet = std::vector<FragmentId>;

/// What a fragment physically is.
enum class FragmentKind {
  kTable,       ///< A whole relation.
  kColumn,      ///< One column of a relation (vertical partitioning).
  kHorizontal   ///< One horizontal partition of a relation.
};

/// One placeable unit of data.
struct Fragment {
  FragmentId id = 0;
  std::string name;        ///< Unique, e.g. "lineitem" or "lineitem.l_price".
  std::string table;       ///< Owning relation.
  FragmentKind kind = FragmentKind::kTable;
  double size_bytes = 0.0; ///< Physical size used by size-aware heuristics.
};

/// \brief Interning registry of fragments with size accounting.
class FragmentCatalog {
 public:
  /// Registers a fragment; returns its id. Fails on duplicate names or
  /// negative sizes.
  Result<FragmentId> Add(std::string name, std::string table, FragmentKind kind,
                         double size_bytes);

  /// Number of registered fragments.
  size_t size() const { return fragments_.size(); }
  bool empty() const { return fragments_.empty(); }

  /// Fragment by id; id must be valid.
  const Fragment& Get(FragmentId id) const { return fragments_[id]; }
  /// Id of the fragment named \p name.
  Result<FragmentId> Find(const std::string& name) const;

  /// All fragments in id order.
  const std::vector<Fragment>& fragments() const { return fragments_; }

  /// Sum of sizes of the fragments in \p set.
  double SetBytes(const FragmentSet& set) const;
  /// Sum of sizes of all fragments (the unreplicated database size).
  double TotalBytes() const;

 private:
  std::vector<Fragment> fragments_;
  std::map<std::string, FragmentId> by_name_;
};

/// \brief Fixed-width bitset over dense ids (fragments, class indices).
///
/// The allocation-search hot path replaces sorted-vector set algebra with
/// word-parallel operations on interned bitsets: Intersects/IsSubset become
/// a handful of AND/OR instructions per 64 ids and allocate nothing. A
/// DenseBitset is sized once (Reset) and reused as a scratch buffer.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t num_bits) { Reset(num_bits); }

  /// Resizes to \p num_bits and clears every bit.
  void Reset(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }
  /// Clears every bit, keeping the size (no reallocation).
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// this |= other (sizes must match).
  void UnionWith(const DenseBitset& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }
  /// Sets exactly the bits of \p set (clearing everything else).
  void AssignSet(const FragmentSet& set, size_t num_bits) {
    Reset(num_bits);
    for (FragmentId f : set) Set(f);
  }
  /// Copies \p num_words raw words (little-endian bit order) over a bitset
  /// of \p num_bits bits.
  void AssignWords(const uint64_t* words, size_t num_words, size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(words, words + num_words);
  }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Calls \p fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
        fn(i);
        bits &= bits - 1;
      }
    }
  }

  /// The set bits as a sorted FragmentSet.
  FragmentSet ToFragmentSet() const {
    FragmentSet out;
    out.reserve(Count());
    ForEachSetBit([&](size_t i) { out.push_back(static_cast<FragmentId>(i)); });
    return out;
  }

  /// True iff a ∩ b ≠ ∅ (word-parallel; sizes must match). Hidden friend:
  /// found only by ADL on DenseBitset arguments, so it never competes with
  /// the FragmentSet overload on braced initializer lists.
  friend bool Intersects(const DenseBitset& a, const DenseBitset& b) {
    const size_t n = a.words_.size() < b.words_.size() ? a.words_.size()
                                                       : b.words_.size();
    for (size_t w = 0; w < n; ++w) {
      if ((a.words_[w] & b.words_[w]) != 0) return true;
    }
    return false;
  }
  /// True iff a ⊆ b (word-parallel; sizes must match).
  friend bool IsSubset(const DenseBitset& a, const DenseBitset& b) {
    for (size_t w = 0; w < a.words_.size(); ++w) {
      const uint64_t bw = w < b.words_.size() ? b.words_[w] : 0;
      if ((a.words_[w] & ~bw) != 0) return false;
    }
    return true;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

// --- FragmentSet algebra (sets are sorted and duplicate-free) ---

/// Sorts and deduplicates \p set in place.
void NormalizeSet(FragmentSet* set);
/// a ∪ b.
FragmentSet SetUnion(const FragmentSet& a, const FragmentSet& b);
/// a ∩ b.
FragmentSet SetIntersection(const FragmentSet& a, const FragmentSet& b);
/// a \ b.
FragmentSet SetDifference(const FragmentSet& a, const FragmentSet& b);
/// True iff a ⊆ b.
bool IsSubset(const FragmentSet& a, const FragmentSet& b);
/// True iff a ∩ b ≠ ∅.
bool Intersects(const FragmentSet& a, const FragmentSet& b);
/// True iff \p id ∈ \p set.
bool Contains(const FragmentSet& set, FragmentId id);

}  // namespace qcap
