// Data fragments: the atomic units of placement.
//
// Depending on the classification granularity (Section 3.1 of the paper) a
// fragment is a whole table, a single column, or a horizontal partition.
// Fragments are interned in a FragmentCatalog which records their sizes;
// query classes and allocations refer to them by dense integer id.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcap {

/// Dense fragment identifier (index into the FragmentCatalog).
using FragmentId = uint32_t;

/// A sorted, duplicate-free set of fragment ids.
using FragmentSet = std::vector<FragmentId>;

/// What a fragment physically is.
enum class FragmentKind {
  kTable,       ///< A whole relation.
  kColumn,      ///< One column of a relation (vertical partitioning).
  kHorizontal   ///< One horizontal partition of a relation.
};

/// One placeable unit of data.
struct Fragment {
  FragmentId id = 0;
  std::string name;        ///< Unique, e.g. "lineitem" or "lineitem.l_price".
  std::string table;       ///< Owning relation.
  FragmentKind kind = FragmentKind::kTable;
  double size_bytes = 0.0; ///< Physical size used by size-aware heuristics.
};

/// \brief Interning registry of fragments with size accounting.
class FragmentCatalog {
 public:
  /// Registers a fragment; returns its id. Fails on duplicate names or
  /// negative sizes.
  Result<FragmentId> Add(std::string name, std::string table, FragmentKind kind,
                         double size_bytes);

  /// Number of registered fragments.
  size_t size() const { return fragments_.size(); }
  bool empty() const { return fragments_.empty(); }

  /// Fragment by id; id must be valid.
  const Fragment& Get(FragmentId id) const { return fragments_[id]; }
  /// Id of the fragment named \p name.
  Result<FragmentId> Find(const std::string& name) const;

  /// All fragments in id order.
  const std::vector<Fragment>& fragments() const { return fragments_; }

  /// Sum of sizes of the fragments in \p set.
  double SetBytes(const FragmentSet& set) const;
  /// Sum of sizes of all fragments (the unreplicated database size).
  double TotalBytes() const;

 private:
  std::vector<Fragment> fragments_;
  std::map<std::string, FragmentId> by_name_;
};

// --- FragmentSet algebra (sets are sorted and duplicate-free) ---

/// Sorts and deduplicates \p set in place.
void NormalizeSet(FragmentSet* set);
/// a ∪ b.
FragmentSet SetUnion(const FragmentSet& a, const FragmentSet& b);
/// a ∩ b.
FragmentSet SetIntersection(const FragmentSet& a, const FragmentSet& b);
/// a \ b.
FragmentSet SetDifference(const FragmentSet& a, const FragmentSet& b);
/// True iff a ⊆ b.
bool IsSubset(const FragmentSet& a, const FragmentSet& b);
/// True iff a ∩ b ≠ ∅.
bool Intersects(const FragmentSet& a, const FragmentSet& b);
/// True iff \p id ∈ \p set.
bool Contains(const FragmentSet& set, FragmentId id);

}  // namespace qcap
