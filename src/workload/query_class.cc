#include "workload/query_class.h"

#include <cmath>

namespace qcap {

std::vector<size_t> Classification::OverlappingUpdates(const QueryClass& c) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < updates.size(); ++u) {
    if (Intersects(c.fragments, updates[u].fragments)) out.push_back(u);
  }
  return out;
}

double Classification::OverlappingUpdateWeight(const QueryClass& c) const {
  double w = 0.0;
  for (size_t u : OverlappingUpdates(c)) w += updates[u].weight;
  return w;
}

FragmentSet Classification::FragmentsWithUpdates(const QueryClass& c) const {
  FragmentSet out = c.fragments;
  for (size_t u : OverlappingUpdates(c)) {
    out = SetUnion(out, updates[u].fragments);
  }
  return out;
}

double Classification::TotalWeight() const {
  double total = 0.0;
  for (const auto& c : reads) total += c.weight;
  for (const auto& c : updates) total += c.weight;
  return total;
}

Status Classification::Validate() const {
  auto check_class = [&](const QueryClass& c, bool is_update) -> Status {
    if (c.fragments.empty()) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' references no fragments");
    }
    if (c.weight < 0.0 || c.weight > 1.0 + 1e-9) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' has weight outside [0,1]");
    }
    if (c.is_update != is_update) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' is in the wrong class set");
    }
    FragmentId prev = 0;
    bool first = true;
    for (FragmentId id : c.fragments) {
      if (id >= catalog.size()) {
        return Status::InvalidArgument("class '" + c.label +
                                       "' references unknown fragment id");
      }
      if (!first && id <= prev) {
        return Status::InvalidArgument("class '" + c.label +
                                       "' fragment set not sorted/unique");
      }
      prev = id;
      first = false;
    }
    return Status::OK();
  };
  for (const auto& c : reads) QCAP_RETURN_NOT_OK(check_class(c, false));
  for (const auto& c : updates) QCAP_RETURN_NOT_OK(check_class(c, true));
  if (NumClasses() > 0) {
    double total = TotalWeight();
    if (std::abs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("class weights sum to " +
                                     std::to_string(total) + ", expected 1");
    }
  }
  return Status::OK();
}

ClassificationIndex::ClassificationIndex(const Classification& cls)
    : num_fragments_(cls.catalog.size()),
      reads_(cls.reads.size()),
      updates_(cls.updates.size()),
      frag_reads_(cls.catalog.size()),
      frag_updates_(cls.catalog.size()) {
  const size_t R = cls.reads.size();
  const size_t U = cls.updates.size();

  // Interned bitsets + inverted index.
  for (size_t r = 0; r < R; ++r) {
    reads_[r].bits.AssignSet(cls.reads[r].fragments, num_fragments_);
    for (FragmentId f : cls.reads[r].fragments) frag_reads_[f].push_back(r);
  }
  for (size_t u = 0; u < U; ++u) {
    updates_[u].bits.AssignSet(cls.updates[u].fragments, num_fragments_);
    for (FragmentId f : cls.updates[u].fragments) frag_updates_[f].push_back(u);
  }

  // updates(C) lists, weights, and bundles. The bundle set and its byte sum
  // are computed exactly as Classification::FragmentsWithUpdates +
  // FragmentCatalog::SetBytes (ascending union, ascending summation) so the
  // memoized values are bitwise identical to the unindexed code paths.
  auto fill_overlaps = [&](ClassEntry* e, const QueryClass& c) {
    FragmentSet bundle = c.fragments;
    for (size_t u = 0; u < U; ++u) {
      if (Intersects(e->bits, updates_[u].bits)) {
        e->overlapping_updates.push_back(u);
        e->overlapping_update_weight += cls.updates[u].weight;
        bundle = SetUnion(bundle, cls.updates[u].fragments);
      }
    }
    e->bundle_bytes = cls.catalog.SetBytes(bundle);
    e->bundle_bits.AssignSet(bundle, num_fragments_);
  };
  for (size_t r = 0; r < R; ++r) fill_overlaps(&reads_[r], cls.reads[r]);
  for (size_t u = 0; u < U; ++u) {
    fill_overlaps(&updates_[u], cls.updates[u]);
    for (size_t r = 0; r < R; ++r) {
      if (Intersects(reads_[r].bits, updates_[u].bits)) {
        updates_[u].overlapping_reads.push_back(r);
      }
    }
  }

  // Update-update overlap adjacency, then the per-read transitive closure
  // via breadth-first reachability. Reachability distributes over unions of
  // seed sets, so GarbageCollect can union these per-read closures instead
  // of re-running the O(U²) fixpoint per backend.
  std::vector<std::vector<size_t>> update_adj(U);
  for (size_t u = 0; u < U; ++u) {
    for (size_t v = 0; v < U; ++v) {
      if (u != v && Intersects(updates_[u].bits, updates_[v].bits)) {
        update_adj[u].push_back(v);
      }
    }
  }
  std::vector<size_t> worklist;
  for (size_t r = 0; r < R; ++r) {
    ClassEntry& e = reads_[r];
    e.closure_updates.Reset(U);
    e.closure_fragments.Reset(num_fragments_);
    e.closure_fragments.UnionWith(e.bits);
    worklist.clear();
    for (size_t u : e.overlapping_updates) {
      e.closure_updates.Set(u);
      worklist.push_back(u);
    }
    while (!worklist.empty()) {
      const size_t u = worklist.back();
      worklist.pop_back();
      e.closure_fragments.UnionWith(updates_[u].bits);
      for (size_t v : update_adj[u]) {
        if (!e.closure_updates.Test(v)) {
          e.closure_updates.Set(v);
          worklist.push_back(v);
        }
      }
    }
  }
}

}  // namespace qcap
