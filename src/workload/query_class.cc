#include "workload/query_class.h"

#include <cmath>

namespace qcap {

std::vector<size_t> Classification::OverlappingUpdates(const QueryClass& c) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < updates.size(); ++u) {
    if (Intersects(c.fragments, updates[u].fragments)) out.push_back(u);
  }
  return out;
}

double Classification::OverlappingUpdateWeight(const QueryClass& c) const {
  double w = 0.0;
  for (size_t u : OverlappingUpdates(c)) w += updates[u].weight;
  return w;
}

FragmentSet Classification::FragmentsWithUpdates(const QueryClass& c) const {
  FragmentSet out = c.fragments;
  for (size_t u : OverlappingUpdates(c)) {
    out = SetUnion(out, updates[u].fragments);
  }
  return out;
}

double Classification::TotalWeight() const {
  double total = 0.0;
  for (const auto& c : reads) total += c.weight;
  for (const auto& c : updates) total += c.weight;
  return total;
}

Status Classification::Validate() const {
  auto check_class = [&](const QueryClass& c, bool is_update) -> Status {
    if (c.fragments.empty()) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' references no fragments");
    }
    if (c.weight < 0.0 || c.weight > 1.0 + 1e-9) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' has weight outside [0,1]");
    }
    if (c.is_update != is_update) {
      return Status::InvalidArgument("class '" + c.label +
                                     "' is in the wrong class set");
    }
    FragmentId prev = 0;
    bool first = true;
    for (FragmentId id : c.fragments) {
      if (id >= catalog.size()) {
        return Status::InvalidArgument("class '" + c.label +
                                       "' references unknown fragment id");
      }
      if (!first && id <= prev) {
        return Status::InvalidArgument("class '" + c.label +
                                       "' fragment set not sorted/unique");
      }
      prev = id;
      first = false;
    }
    return Status::OK();
  };
  for (const auto& c : reads) QCAP_RETURN_NOT_OK(check_class(c, false));
  for (const auto& c : updates) QCAP_RETURN_NOT_OK(check_class(c, true));
  if (NumClasses() > 0) {
    double total = TotalWeight();
    if (std::abs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("class weights sum to " +
                                     std::to_string(total) + ", expected 1");
    }
  }
  return Status::OK();
}

}  // namespace qcap
