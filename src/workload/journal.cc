#include "workload/journal.h"

#include <algorithm>

namespace qcap {

size_t QueryJournal::InternQuery(const Query& query) {
  auto it = by_text_.find(query.text);
  if (it != by_text_.end()) return it->second;
  size_t idx = queries_.size();
  by_text_[query.text] = idx;
  queries_.push_back(query);
  counts_.push_back(0);
  return idx;
}

void QueryJournal::Record(const Query& query, uint64_t count) {
  if (count == 0) return;
  size_t idx = InternQuery(query);
  counts_[idx] += count;
  total_executions_ += count;
}

void QueryJournal::RecordAt(const Query& query, double timestamp) {
  size_t idx = InternQuery(query);
  counts_[idx] += 1;
  total_executions_ += 1;
  timeline_.emplace_back(timestamp, idx);
}

double QueryJournal::TotalCost() const {
  double total = 0.0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    total += static_cast<double>(counts_[i]) * queries_[i].cost;
  }
  return total;
}

QueryJournal QueryJournal::Slice(double begin_time, double end_time) const {
  QueryJournal out;
  for (const auto& [ts, idx] : timeline_) {
    if (ts >= begin_time && ts < end_time) {
      out.RecordAt(queries_[idx], ts);
    }
  }
  return out;
}

bool QueryJournal::TimeRange(double* begin_time, double* end_time) const {
  if (timeline_.empty()) return false;
  auto [mn, mx] = std::minmax_element(
      timeline_.begin(), timeline_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  *begin_time = mn->first;
  *end_time = mx->first;
  return true;
}

}  // namespace qcap
