// Journal persistence: serialize a query history to a line-based text
// format and back (the prototype's query-history store, Figure 3).
//
// Format (one record per line, UTF-8):
//   qcap-journal v1
//   <count>\t<cost>\t<R|U>\t<escaped text>\t<accesses>
// where accesses = table[:col1|col2...][@p1|p2...] joined with ';'.
// Tabs, backslashes, and newlines in the query text are escaped with
// backslashes. Timestamped executions are flattened to counts (segmenting
// information is not round-tripped).
#pragma once

#include <string>

#include "common/status.h"
#include "workload/journal.h"

namespace qcap {

/// Serializes \p journal.
std::string SerializeJournal(const QueryJournal& journal);

/// Parses a journal serialized by SerializeJournal.
Result<QueryJournal> DeserializeJournal(const std::string& data);

/// Writes \p journal to \p path.
Status SaveJournal(const QueryJournal& journal, const std::string& path);

/// Reads a journal from \p path.
Result<QueryJournal> LoadJournal(const std::string& path);

}  // namespace qcap
