#include "workload/journal_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace qcap {

namespace {

constexpr char kHeader[] = "qcap-journal v1";

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 1 >= text.size()) {
      return Status::InvalidArgument("dangling escape in journal text");
    }
    switch (text[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default:
        return Status::InvalidArgument("unknown escape in journal text");
    }
  }
  return out;
}

std::string EncodeAccesses(const Query& q) {
  std::vector<std::string> parts;
  for (const auto& access : q.accesses) {
    std::string part = access.table;
    if (!access.columns.empty()) {
      std::vector<std::string> cols = access.columns;
      part += ":" + Join(cols, "|");
    }
    if (!access.partitions.empty()) {
      std::vector<std::string> ps;
      for (int p : access.partitions) ps.push_back(std::to_string(p));
      part += "@" + Join(ps, "|");
    }
    parts.push_back(std::move(part));
  }
  return Join(parts, ";");
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

Result<std::vector<TableAccess>> DecodeAccesses(const std::string& encoded) {
  std::vector<TableAccess> out;
  if (encoded.empty()) return out;
  for (const std::string& part : SplitOn(encoded, ';')) {
    if (part.empty()) {
      return Status::InvalidArgument("empty access entry");
    }
    TableAccess access;
    std::string rest = part;
    const size_t at = rest.find('@');
    std::string partitions;
    if (at != std::string::npos) {
      partitions = rest.substr(at + 1);
      rest = rest.substr(0, at);
    }
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      for (const auto& col : SplitOn(rest.substr(colon + 1), '|')) {
        if (col.empty()) {
          return Status::InvalidArgument("empty column in access entry");
        }
        access.columns.push_back(col);
      }
      rest = rest.substr(0, colon);
    }
    if (rest.empty()) {
      return Status::InvalidArgument("missing table in access entry");
    }
    access.table = rest;
    if (!partitions.empty()) {
      for (const auto& p : SplitOn(partitions, '|')) {
        try {
          access.partitions.push_back(std::stoi(p));
        } catch (...) {
          return Status::InvalidArgument("bad partition number '" + p + "'");
        }
      }
    }
    out.push_back(std::move(access));
  }
  return out;
}

}  // namespace

std::string SerializeJournal(const QueryJournal& journal) {
  std::string out = kHeader;
  out += "\n";
  const auto& queries = journal.queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    out += std::to_string(journal.count(i));
    out += "\t";
    char cost[64];
    std::snprintf(cost, sizeof(cost), "%.17g", q.cost);
    out += cost;
    out += "\t";
    out += q.is_update ? "U" : "R";
    out += "\t";
    out += EscapeText(q.text);
    out += "\t";
    out += EncodeAccesses(q);
    out += "\n";
  }
  return out;
}

Result<QueryJournal> DeserializeJournal(const std::string& data) {
  std::istringstream in(data);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing journal header");
  }
  QueryJournal journal;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitOn(line, '\t');
    if (fields.size() != 5) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected 5 fields, got " +
                                     std::to_string(fields.size()));
    }
    Query q;
    uint64_t count = 0;
    try {
      count = std::stoull(fields[0]);
      q.cost = std::stod(fields[1]);
    } catch (...) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad count or cost");
    }
    if (fields[2] == "U") {
      q.is_update = true;
    } else if (fields[2] == "R") {
      q.is_update = false;
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": kind must be R or U");
    }
    QCAP_ASSIGN_OR_RETURN(q.text, UnescapeText(fields[3]));
    if (q.text.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": empty query text");
    }
    QCAP_ASSIGN_OR_RETURN(q.accesses, DecodeAccesses(fields[4]));
    journal.Record(q, count);
  }
  return journal;
}

Status SaveJournal(const QueryJournal& journal, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string data = SerializeJournal(journal);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<QueryJournal> LoadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeJournal(buffer.str());
}

}  // namespace qcap
