#include "workload/fragment.h"

#include <algorithm>

namespace qcap {

Result<FragmentId> FragmentCatalog::Add(std::string name, std::string table,
                                        FragmentKind kind, double size_bytes) {
  if (name.empty()) {
    return Status::InvalidArgument("fragment name must not be empty");
  }
  if (size_bytes < 0.0) {
    return Status::InvalidArgument("fragment '" + name + "' has negative size");
  }
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("fragment '" + name + "' already registered");
  }
  FragmentId id = static_cast<FragmentId>(fragments_.size());
  by_name_[name] = id;
  fragments_.push_back(Fragment{id, std::move(name), std::move(table), kind,
                                size_bytes});
  return id;
}

Result<FragmentId> FragmentCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no fragment named '" + name + "'");
  }
  return it->second;
}

double FragmentCatalog::SetBytes(const FragmentSet& set) const {
  double total = 0.0;
  for (FragmentId id : set) total += fragments_[id].size_bytes;
  return total;
}

double FragmentCatalog::TotalBytes() const {
  double total = 0.0;
  for (const auto& f : fragments_) total += f.size_bytes;
  return total;
}

void NormalizeSet(FragmentSet* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

FragmentSet SetUnion(const FragmentSet& a, const FragmentSet& b) {
  FragmentSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

FragmentSet SetIntersection(const FragmentSet& a, const FragmentSet& b) {
  FragmentSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

FragmentSet SetDifference(const FragmentSet& a, const FragmentSet& b) {
  FragmentSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool IsSubset(const FragmentSet& a, const FragmentSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Intersects(const FragmentSet& a, const FragmentSet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool Contains(const FragmentSet& set, FragmentId id) {
  return std::binary_search(set.begin(), set.end(), id);
}

}  // namespace qcap
