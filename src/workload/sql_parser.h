// A small SQL reference extractor: turns query text into the structured
// access information the classifier needs (Section 3.1 analyzes a journal
// of executed SQL statements).
//
// This is not a full SQL parser — it recognizes the surface forms needed
// to extract referenced tables and columns from typical OLTP/OLAP
// statements:
//
//   SELECT <cols|*> FROM t1 [AS a] [, t2 | JOIN t2 ON ...] [WHERE ...]
//          [GROUP BY ...] [ORDER BY ...]
//   INSERT INTO t [(c1, c2, ...)] VALUES (...)
//   UPDATE t SET c1 = expr [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//
// Subqueries are handled by scanning their FROM/column references too.
// Column names may be qualified (t.c or alias.c) or bare; bare names are
// resolved against the schema catalog and must be unambiguous.
// Identifiers are case-folded to lowercase (SQL semantics), so schema
// catalogs consumed by the parser should use lowercase table and column
// names, as the shipped workload catalogs do.
#pragma once

#include <string>

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/query.h"

namespace qcap {

/// \brief Extracts table/column references from SQL text.
class SqlParser {
 public:
  /// \p catalog resolves bare column names and validates references.
  explicit SqlParser(const engine::Catalog& catalog) : catalog_(catalog) {}

  /// Parses \p sql into a Query whose text is the statement itself and
  /// whose cost is \p cost (e.g. the measured execution time).
  /// Fails on unknown tables, unknown or ambiguous columns, or statement
  /// forms the extractor does not recognize.
  Result<Query> Parse(const std::string& sql, double cost = 1.0) const;

 private:
  const engine::Catalog& catalog_;
};

}  // namespace qcap
