#include "workload/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <vector>

namespace qcap {

namespace {

enum class TokenKind { kIdent, kNumber, kString, kPunct, kStar };

struct Token {
  TokenKind kind;
  std::string text;  // Lower-cased for idents.
  char punct = 0;
};

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "select", "from",    "where",  "group",   "order",  "by",
      "having", "join",    "inner",  "left",    "right",  "outer",
      "full",   "cross",   "on",     "as",      "and",    "or",
      "not",    "in",      "exists", "between", "like",   "is",
      "null",   "insert",  "into",   "values",  "update", "set",
      "delete", "distinct", "limit", "offset",  "union",  "all",
      "case",   "when",    "then",   "else",    "end",    "asc",
      "desc",   "true",    "false",  "interval", "date",  "using"};
  return kKeywords;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                                sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::transform(word.begin(), word.end(), word.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      tokens.push_back(Token{TokenKind::kIdent, std::move(word), 0});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < sql.size() && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                                sql[j] == '.' || sql[j] == 'e' ||
                                sql[j] == 'E' || sql[j] == '-')) {
        // Stop a trailing '-' that is actually an operator.
        if ((sql[j] == '-' ) &&
            !(j > i && (sql[j - 1] == 'e' || sql[j - 1] == 'E'))) {
          break;
        }
        ++j;
      }
      tokens.push_back(Token{TokenKind::kNumber, sql.substr(i, j - i), 0});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < sql.size() && sql[j] != '\'') ++j;
      if (j >= sql.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back(Token{TokenKind::kString, sql.substr(i + 1, j - i - 1), 0});
      i = j + 1;
      continue;
    }
    if (c == '*') {
      tokens.push_back(Token{TokenKind::kStar, "*", '*'});
      ++i;
      continue;
    }
    // Multi-char operators collapse to punctuation; we only need structure.
    tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), c});
    ++i;
  }
  return tokens;
}

bool IsIdent(const Token& t) {
  return t.kind == TokenKind::kIdent && Keywords().count(t.text) == 0;
}

bool IsKeywordNamed(const Token& t, const char* name) {
  return t.kind == TokenKind::kIdent && t.text == name;
}

/// Statement analysis state.
struct Analysis {
  /// alias (or table name) -> table name.
  std::map<std::string, std::string> tables;
  /// table -> referenced columns ("*" marker = all).
  std::map<std::string, std::set<std::string>> columns;
  /// Tables whose full width is referenced.
  std::set<std::string> all_columns;
  bool is_update = false;
};

}  // namespace

Result<Query> SqlParser::Parse(const std::string& sql, double cost) const {
  QCAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  if (tokens.empty()) {
    return Status::InvalidArgument("empty statement");
  }

  Analysis a;
  const std::string head = tokens[0].kind == TokenKind::kIdent
                               ? tokens[0].text
                               : "";
  if (head != "select" && head != "insert" && head != "update" &&
      head != "delete") {
    return Status::Unimplemented("unsupported statement: starts with '" +
                                 tokens[0].text + "'");
  }
  a.is_update = head != "select";

  auto register_table = [&](const std::string& name,
                            const std::string& alias) -> Status {
    if (!catalog_.HasTable(name)) {
      return Status::NotFound("unknown table '" + name + "' in: " + sql);
    }
    a.tables[name] = name;
    if (!alias.empty()) a.tables[alias] = name;
    a.columns.try_emplace(name);
    return Status::OK();
  };

  // Pass 1: find table references and mark their token positions.
  std::vector<bool> consumed(tokens.size(), false);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const bool from_like = IsKeywordNamed(tokens[i], "from") ||
                           IsKeywordNamed(tokens[i], "join") ||
                           IsKeywordNamed(tokens[i], "into") ||
                           (IsKeywordNamed(tokens[i], "update") && i == 0);
    if (!from_like) continue;
    size_t j = i + 1;
    // FROM supports a comma list: t1 [AS] [alias], t2 [alias], ...
    while (j < tokens.size()) {
      if (!IsIdent(tokens[j])) break;
      const std::string table = tokens[j].text;
      consumed[j] = true;
      ++j;
      std::string alias;
      if (j < tokens.size() && IsKeywordNamed(tokens[j], "as")) {
        consumed[j] = true;
        ++j;
      }
      if (j < tokens.size() && IsIdent(tokens[j]) &&
          // alias only if not followed by '.' (that would be a column ref
          // like "t1.c" with t1 unknown) and not itself a table position.
          !(j + 1 < tokens.size() && tokens[j + 1].punct == '.')) {
        alias = tokens[j].text;
        consumed[j] = true;
        ++j;
      }
      QCAP_RETURN_NOT_OK(register_table(table, alias));
      if (j < tokens.size() && tokens[j].punct == ',' &&
          IsKeywordNamed(tokens[i], "from")) {
        consumed[j] = true;
        ++j;
        continue;
      }
      break;
    }
  }
  if (a.tables.empty()) {
    return Status::InvalidArgument("no table references found in: " + sql);
  }

  // INSERT column list: INTO t (c1, c2, ...) — columns belong to t.
  std::string insert_table;
  if (head == "insert") {
    insert_table = a.columns.begin()->first;
    bool saw_column_list = false;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (IsKeywordNamed(tokens[i], "into") && i + 2 < tokens.size() &&
          tokens[i + 2].punct == '(') {
        size_t j = i + 3;
        while (j < tokens.size() && tokens[j].punct != ')') {
          if (IsIdent(tokens[j])) {
            a.columns[insert_table].insert(tokens[j].text);
            consumed[j] = true;
            saw_column_list = true;
          }
          ++j;
        }
        // Everything after VALUES is literals; stop scanning columns there.
        break;
      }
    }
    if (!saw_column_list) {
      a.all_columns.insert(insert_table);  // Whole-row insert.
    }
    // VALUES payload carries no schema references.
    Query q;
    q.text = sql;
    q.is_update = true;
    q.cost = cost;
    TableAccess access;
    access.table = insert_table;
    if (a.all_columns.count(insert_table) == 0) {
      access.columns.assign(a.columns[insert_table].begin(),
                            a.columns[insert_table].end());
      // Validate.
      QCAP_ASSIGN_OR_RETURN(const engine::TableDef* def,
                            catalog_.FindTable(insert_table));
      for (const auto& col : access.columns) {
        if (def->ColumnIndex(col) < 0) {
          return Status::NotFound("unknown column '" + col + "' of '" +
                                  insert_table + "' in: " + sql);
        }
      }
    }
    q.accesses.push_back(std::move(access));
    return q;
  }

  // DELETE references the whole row of its table.
  if (head == "delete") {
    for (auto& [name, cols] : a.columns) a.all_columns.insert(name);
  }

  // Pass 2: column references. Qualified (x.c), bare idents, and stars.
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (consumed[i]) continue;
    // Qualified: ident '.' (ident | *)
    if (IsIdent(tokens[i]) && i + 2 < tokens.size() + 1 &&
        i + 1 < tokens.size() && tokens[i + 1].punct == '.') {
      const std::string qualifier = tokens[i].text;
      auto it = a.tables.find(qualifier);
      if (it == a.tables.end()) {
        return Status::NotFound("unknown table or alias '" + qualifier +
                                "' in: " + sql);
      }
      if (i + 2 >= tokens.size()) {
        return Status::InvalidArgument("dangling qualifier in: " + sql);
      }
      if (tokens[i + 2].kind == TokenKind::kStar) {
        a.all_columns.insert(it->second);
      } else if (IsIdent(tokens[i + 2])) {
        a.columns[it->second].insert(tokens[i + 2].text);
      } else {
        return Status::InvalidArgument("expected column after '" + qualifier +
                                       ".' in: " + sql);
      }
      consumed[i] = consumed[i + 1] = consumed[i + 2] = true;
      i += 2;
      continue;
    }
    // SELECT * (unqualified star right after SELECT or a comma).
    if (tokens[i].kind == TokenKind::kStar) {
      const bool projection_star =
          i > 0 && (IsKeywordNamed(tokens[i - 1], "select") ||
                    IsKeywordNamed(tokens[i - 1], "distinct") ||
                    tokens[i - 1].punct == ',' || tokens[i - 1].punct == '(');
      const bool count_star = i > 0 && tokens[i - 1].punct == '(';
      if (projection_star && !count_star) {
        for (auto& [name, cols] : a.columns) a.all_columns.insert(name);
      }
      continue;
    }
    // Function call: ident '(' — not a column.
    if (IsIdent(tokens[i]) && i + 1 < tokens.size() &&
        tokens[i + 1].punct == '(') {
      continue;
    }
    // Bare column: resolve against the referenced tables.
    if (IsIdent(tokens[i])) {
      const std::string& name = tokens[i].text;
      if (a.tables.count(name) != 0) continue;  // Table mentioned elsewhere.
      std::string owner;
      for (const auto& [tbl, cols] : a.columns) {
        auto def = catalog_.FindTable(tbl);
        if (def.ok() && def.value()->ColumnIndex(name) >= 0) {
          if (!owner.empty() && owner != tbl) {
            return Status::InvalidArgument("ambiguous column '" + name +
                                           "' in: " + sql);
          }
          owner = tbl;
        }
      }
      if (owner.empty()) {
        return Status::NotFound("unknown column '" + name + "' in: " + sql);
      }
      a.columns[owner].insert(name);
    }
  }

  // Validate qualified columns against the schema.
  for (const auto& [tbl, cols] : a.columns) {
    QCAP_ASSIGN_OR_RETURN(const engine::TableDef* def, catalog_.FindTable(tbl));
    for (const auto& col : cols) {
      if (def->ColumnIndex(col) < 0) {
        return Status::NotFound("unknown column '" + col + "' of '" + tbl +
                                "' in: " + sql);
      }
    }
  }

  Query q;
  q.text = sql;
  q.is_update = a.is_update;
  q.cost = cost;
  for (const auto& [tbl, cols] : a.columns) {
    TableAccess access;
    access.table = tbl;
    if (a.all_columns.count(tbl) == 0) {
      access.columns.assign(cols.begin(), cols.end());
      if (access.columns.empty()) {
        // Referenced but no columns attributed (e.g. bare EXISTS): treat as
        // whole-table access.
      }
    }
    q.accesses.push_back(std::move(access));
  }
  return q;
}

}  // namespace qcap
