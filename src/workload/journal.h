// The query journal J: a multiset of executed queries (Section 3.1).
//
// The journal records each distinguishable query together with its number
// of occurrences j(q). Order is irrelevant for classification, so the
// journal stores (query, count) pairs keyed by query text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/query.h"

namespace qcap {

/// \brief Multiset of executed queries with per-query occurrence counts.
class QueryJournal {
 public:
  QueryJournal() = default;

  /// Records \p count executions of \p query. Repeated calls with the same
  /// query text accumulate counts; the structured access information of the
  /// first registration wins (texts identify queries).
  void Record(const Query& query, uint64_t count = 1);

  /// Number of distinguishable queries |Q|.
  size_t NumDistinct() const { return queries_.size(); }
  /// Total number of recorded executions Σ j(q).
  uint64_t TotalExecutions() const { return total_executions_; }
  /// True iff nothing has been recorded.
  bool empty() const { return queries_.empty(); }

  /// The distinguishable queries, in first-seen order.
  const std::vector<Query>& queries() const { return queries_; }
  /// j(q): occurrences of the i-th distinguishable query.
  uint64_t count(size_t i) const { return counts_[i]; }

  /// Σ j(q)·weight(q) over the whole journal (the denominator of Eq. 4).
  double TotalCost() const;

  /// Restricts the journal to executions whose recorded timestamps fall in
  /// [begin, end). Only meaningful if timestamps were supplied via
  /// RecordAt(); queries recorded without timestamps are excluded.
  QueryJournal Slice(double begin_time, double end_time) const;

  /// Records one execution of \p query at time \p timestamp (seconds).
  /// Timestamped records enable workload segmentation (Section 5).
  void RecordAt(const Query& query, double timestamp);

  /// Earliest and latest recorded timestamps; returns false if none exist.
  bool TimeRange(double* begin_time, double* end_time) const;

 private:
  size_t InternQuery(const Query& query);

  std::vector<Query> queries_;
  std::vector<uint64_t> counts_;
  std::map<std::string, size_t> by_text_;
  std::vector<std::pair<double, size_t>> timeline_;  // (timestamp, query idx)
  uint64_t total_executions_ = 0;
};

}  // namespace qcap
