// Query descriptions as recorded in a query journal.
//
// A query is identified by its text (two queries are distinguishable iff
// they are not textually identical, Section 3.1). For classification, a
// query carries structured access information: which tables, which columns
// of each table, and optionally which horizontal partitions it touches.
#pragma once

#include <string>
#include <vector>

namespace qcap {

/// Access of one query to one table.
struct TableAccess {
  std::string table;
  /// Referenced columns; empty means "all columns of the table".
  std::vector<std::string> columns;
  /// Referenced horizontal partitions (indices); empty means "all".
  std::vector<int> partitions;
};

/// One distinguishable query.
struct Query {
  /// Identity of the query; textually identical queries are the same query.
  std::string text;
  /// Tables/columns/partitions the query references.
  std::vector<TableAccess> accesses;
  /// True for INSERT/UPDATE/DELETE-style requests (update query classes).
  bool is_update = false;
  /// weight(q): measured execution time or optimizer cost estimate of one
  /// execution of the query (Eq. 4 uses j(q) * weight(q)).
  double cost = 1.0;

  /// Convenience factory for a read query touching whole tables.
  static Query Read(std::string text, std::vector<std::string> tables,
                    double cost = 1.0);
  /// Convenience factory for an update query touching whole tables.
  static Query Update(std::string text, std::vector<std::string> tables,
                      double cost = 1.0);
};

}  // namespace qcap
