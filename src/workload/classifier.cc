#include "workload/classifier.h"

#include <algorithm>
#include <map>

namespace qcap {

Classifier::Classifier(const engine::Catalog& catalog, ClassifierOptions options)
    : catalog_(catalog), options_(options) {}

bool Classifier::TableSplitsIntoColumns(const std::string& table) const {
  if (options_.granularity == Granularity::kColumn) return true;
  if (options_.granularity != Granularity::kHybrid) return false;
  auto bytes = catalog_.TableBytes(table);
  return bytes.ok() && bytes.value() >= options_.hybrid_column_threshold_bytes;
}

Status Classifier::BuildFragments(Classification* out) const {
  for (const auto& table : catalog_.tables()) {
    Granularity effective = options_.granularity;
    if (effective == Granularity::kHybrid) {
      effective = TableSplitsIntoColumns(table.name) ? Granularity::kColumn
                                                     : Granularity::kTable;
    }
    switch (effective) {
      case Granularity::kHybrid:  // Resolved above.
      case Granularity::kNone:
      case Granularity::kTable: {
        QCAP_ASSIGN_OR_RETURN(double bytes, catalog_.TableBytes(table.name));
        QCAP_RETURN_NOT_OK(
            out->catalog.Add(table.name, table.name, FragmentKind::kTable, bytes)
                .status());
        break;
      }
      case Granularity::kColumn: {
        for (const auto& col : table.columns) {
          QCAP_ASSIGN_OR_RETURN(double bytes,
                                catalog_.ColumnBytes(table.name, col.name));
          QCAP_RETURN_NOT_OK(out->catalog
                                 .Add(table.name + "." + col.name, table.name,
                                      FragmentKind::kColumn, bytes)
                                 .status());
        }
        break;
      }
      case Granularity::kHorizontal: {
        QCAP_ASSIGN_OR_RETURN(double bytes, catalog_.TableBytes(table.name));
        const int parts = options_.horizontal_partitions;
        for (int p = 0; p < parts; ++p) {
          QCAP_RETURN_NOT_OK(out->catalog
                                 .Add(table.name + "#" + std::to_string(p),
                                      table.name, FragmentKind::kHorizontal,
                                      bytes / parts)
                                 .status());
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<FragmentSet> Classifier::QueryFragments(const Query& q,
                                               const Classification& cls) const {
  FragmentSet set;
  for (const auto& access : q.accesses) {
    QCAP_ASSIGN_OR_RETURN(const engine::TableDef* table,
                          catalog_.FindTable(access.table));
    Granularity effective = options_.granularity;
    if (effective == Granularity::kHybrid) {
      effective = TableSplitsIntoColumns(access.table) ? Granularity::kColumn
                                                       : Granularity::kTable;
    }
    switch (effective) {
      case Granularity::kHybrid:  // Resolved above.
      case Granularity::kNone:
      case Granularity::kTable: {
        QCAP_ASSIGN_OR_RETURN(FragmentId id, cls.catalog.Find(access.table));
        set.push_back(id);
        break;
      }
      case Granularity::kColumn: {
        std::vector<std::string> columns = access.columns;
        if (columns.empty()) {
          for (const auto& col : table->columns) columns.push_back(col.name);
        } else if (options_.include_candidate_keys) {
          for (const auto& key : table->PrimaryKeyColumns()) {
            if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
              columns.push_back(key);
            }
          }
        }
        for (const auto& col : columns) {
          if (table->ColumnIndex(col) < 0) {
            return Status::NotFound("query '" + q.text + "' references column '" +
                                    access.table + "." + col +
                                    "' not in schema");
          }
          QCAP_ASSIGN_OR_RETURN(FragmentId id,
                                cls.catalog.Find(access.table + "." + col));
          set.push_back(id);
        }
        break;
      }
      case Granularity::kHorizontal: {
        std::vector<int> parts = access.partitions;
        if (parts.empty()) {
          for (int p = 0; p < options_.horizontal_partitions; ++p) {
            parts.push_back(p);
          }
        }
        for (int p : parts) {
          if (p < 0 || p >= options_.horizontal_partitions) {
            return Status::OutOfRange("query '" + q.text +
                                      "' references invalid partition " +
                                      std::to_string(p));
          }
          QCAP_ASSIGN_OR_RETURN(
              FragmentId id,
              cls.catalog.Find(access.table + "#" + std::to_string(p)));
          set.push_back(id);
        }
        break;
      }
    }
  }
  NormalizeSet(&set);
  return set;
}

Result<Classification> Classifier::Classify(const QueryJournal& journal) const {
  if (journal.empty()) {
    return Status::InvalidArgument("cannot classify an empty journal");
  }
  if (catalog_.NumTables() == 0) {
    return Status::InvalidArgument("schema catalog has no tables");
  }

  Classification cls;
  QCAP_RETURN_NOT_OK(BuildFragments(&cls));

  // Group queries by (fragment set, is_update). With Granularity::kNone all
  // reads collapse into one class over all fragments (=> full replication).
  struct Key {
    FragmentSet fragments;
    bool is_update;
    bool operator<(const Key& o) const {
      if (is_update != o.is_update) return is_update < o.is_update;
      return fragments < o.fragments;
    }
  };
  std::map<Key, QueryClass> groups;
  std::map<Key, uint64_t> group_counts;

  const auto& queries = journal.queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    FragmentSet frags;
    if (options_.granularity == Granularity::kNone && !q.is_update) {
      // One class referencing everything.
      for (FragmentId id = 0; id < cls.catalog.size(); ++id) {
        frags.push_back(id);
      }
    } else {
      QCAP_ASSIGN_OR_RETURN(frags, QueryFragments(q, cls));
    }
    if (frags.empty()) {
      return Status::InvalidArgument("query '" + q.text +
                                     "' references no fragments");
    }
    Key key{frags, q.is_update};
    auto [it, inserted] = groups.try_emplace(key);
    QueryClass& c = it->second;
    if (inserted) {
      c.fragments = std::move(frags);
      c.is_update = q.is_update;
    }
    c.weight += static_cast<double>(journal.count(i)) * q.cost;
    group_counts[key] += journal.count(i);
    c.members.push_back(i);
  }

  const double total_cost = journal.TotalCost();
  if (total_cost <= 0.0) {
    return Status::InvalidArgument("journal has non-positive total cost");
  }

  for (auto& [key, c] : groups) {
    const uint64_t executions = group_counts[key];
    c.mean_cost = executions > 0
                      ? c.weight / static_cast<double>(executions)
                      : 1.0;
    c.weight /= total_cost;
    if (c.is_update) {
      cls.updates.push_back(std::move(c));
    } else {
      cls.reads.push_back(std::move(c));
    }
  }

  // Stable, readable labels: descending weight within each set.
  auto by_weight = [](const QueryClass& a, const QueryClass& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.fragments < b.fragments;
  };
  std::sort(cls.reads.begin(), cls.reads.end(), by_weight);
  std::sort(cls.updates.begin(), cls.updates.end(), by_weight);
  for (size_t i = 0; i < cls.reads.size(); ++i) {
    cls.reads[i].label = "Q" + std::to_string(i + 1);
  }
  for (size_t i = 0; i < cls.updates.size(); ++i) {
    cls.updates[i].label = "U" + std::to_string(i + 1);
  }

  QCAP_RETURN_NOT_OK(cls.Validate());
  return cls;
}

}  // namespace qcap
