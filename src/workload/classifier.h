// Query classification (Section 3.1): grouping journal queries into query
// classes by the data fragments they reference, at a configurable
// partitioning granularity.
#pragma once

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/journal.h"
#include "workload/query_class.h"

namespace qcap {

/// Partitioning granularity implied by the classification.
enum class Granularity {
  kTable,       ///< Fragments are whole tables (no partitioning).
  kColumn,      ///< Fragments are columns (vertical partitioning).
  kHorizontal,  ///< Fragments are horizontal partitions (predicate-based).
  kHybrid,      ///< Mixture: column fragments for large tables, whole-table
                ///< fragments for small ones (Section 3.1's "mixture of the
                ///< above").
  kNone         ///< All queries fall into one class (=> full replication).
};

/// Options controlling classification.
struct ClassifierOptions {
  Granularity granularity = Granularity::kTable;
  /// For kHorizontal: number of equal-sized partitions per table.
  int horizontal_partitions = 4;
  /// For kColumn: include the owning table's candidate-key columns in every
  /// class so data remains losslessly reconstructible (Section 3.1).
  bool include_candidate_keys = true;
  /// For kHybrid: tables at least this large are split into columns;
  /// smaller tables stay whole (vertically partitioning a tiny dimension
  /// table buys nothing and costs reconstruction work).
  double hybrid_column_threshold_bytes = 64.0 * 1024 * 1024;
};

/// \brief Classifies a query journal against a schema catalog.
///
/// The classifier builds the fragment catalog for the chosen granularity,
/// assigns each distinguishable query to the class of its referenced
/// fragment set (Eq. 2/3), and computes normalized class weights (Eq. 4).
class Classifier {
 public:
  Classifier(const engine::Catalog& catalog, ClassifierOptions options);

  /// Classifies \p journal. Fails if the journal is empty, references
  /// unknown tables/columns, or the schema has no tables.
  Result<Classification> Classify(const QueryJournal& journal) const;

 private:
  Status BuildFragments(Classification* out) const;
  Result<FragmentSet> QueryFragments(const Query& q,
                                     const Classification& cls) const;
  /// Whether \p table is column-fragmented under the current options.
  bool TableSplitsIntoColumns(const std::string& table) const;

  const engine::Catalog& catalog_;
  ClassifierOptions options_;
};

}  // namespace qcap
