// Robustness extension (Section 5): how much workload change an allocation
// tolerates, and how to buy tolerance with zero-weight headroom replicas.
//
// The paper's example: in the Figure 2 four-backend allocation, raising
// query class C's weight from 25% to 27% overloads its only backend and
// drops the maximum achievable speedup from 4 to 3.7. An allocation is
// robust when each backend's classes can be (partially) shifted to other
// backends holding the same data; the algorithm adds zero-weight replicas
// of classes whose shiftable headroom is below a required percentage.
#pragma once

#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// \brief Re-solves the read-load distribution over a *fixed* placement
/// with the exact LP (minimize scale, Eq. 15, subject to Eq. 9/10), i.e.
/// the best the scheduler could do by shifting weights between replicas.
/// Update pinning is kept as-is.
/// \returns the rebalanced allocation (same placement matrix as
/// \p placement, new read-assign matrix).
Result<Allocation> RebalanceReads(const Classification& cls,
                                  const Allocation& placement,
                                  const std::vector<BackendSpec>& backends);

/// \brief Speedup (Eq. 17-19) after read class \p read_index changes weight to \p new_weight
/// (other classes keep theirs; weights are not re-normalized, matching the
/// paper's example arithmetic).
/// With \p allow_shift false, each backend keeps its assigned share of the
/// class scaled proportionally (no rescheduling); with true, the read load
/// is rebalanced optimally over the existing placement first.
Result<double> PerturbedSpeedup(const Classification& cls,
                                const Allocation& alloc,
                                const std::vector<BackendSpec>& backends,
                                size_t read_index, double new_weight,
                                bool allow_shift);

/// \brief Maximum additional weight of read class \p read_index (absolute, on top
/// of its current weight) that optimal shifting over the current placement
/// absorbs without increasing the allocation's scale beyond
/// max(current scale, 1) + epsilon.
Result<double> WeightTolerance(const Classification& cls,
                               const Allocation& alloc,
                               const std::vector<BackendSpec>& backends,
                               size_t read_index);

/// Options for headroom insertion.
struct RobustnessOptions {
  /// Required tolerable weight increase per read class, as a fraction of
  /// the class's weight (e.g. 0.1 = +10% must be absorbable).
  double required_headroom = 0.10;
  /// Safety cap on added replicas.
  size_t max_added_replicas = 64;
};

/// \brief Adds zero-weight replicas (fragments + pinned updates, no read
/// load) of read classes whose tolerance is below the requirement, placing
/// each on the least-loaded backend not yet holding the class, until every
/// class meets the requirement or no placement can improve it — the
/// paper's Section 5 recipe for buying robustness with storage.
/// \returns the padded allocation; its scale never regresses because the
/// added replicas carry no load.
Result<Allocation> AddRobustnessHeadroom(const Classification& cls,
                                         const Allocation& alloc,
                                         const std::vector<BackendSpec>& backends,
                                         const RobustnessOptions& options = {});

}  // namespace qcap
