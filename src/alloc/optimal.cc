#include "alloc/optimal.h"

#include <cmath>

#include "alloc/greedy.h"
#include "model/metrics.h"

namespace qcap {

namespace {

/// Variable layout of the Appendix B program.
struct Layout {
  size_t n, F, R, U;
  size_t a0, lq0, lu0, hq0, hu0, s;

  explicit Layout(size_t n_, size_t F_, size_t R_, size_t U_)
      : n(n_), F(F_), R(R_), U(U_) {
    a0 = 0;
    lq0 = a0 + n * F;
    lu0 = lq0 + n * R;
    hq0 = lu0 + n * U;
    hu0 = hq0 + n * R;
    s = hu0 + n * U;
  }
  size_t total() const { return s + 1; }
  size_t a(size_t i, size_t j) const { return a0 + i * F + j; }
  size_t lq(size_t i, size_t k) const { return lq0 + i * R + k; }
  size_t lu(size_t i, size_t k) const { return lu0 + i * U + k; }
  size_t hq(size_t i, size_t k) const { return hq0 + i * R + k; }
  size_t hu(size_t i, size_t k) const { return hu0 + i * U + k; }
};

/// Builds the shared constraint system (everything except the objective and
/// the optional scale cap).
MilpProblem BuildProgram(const Classification& cls,
                         const std::vector<BackendSpec>& backends,
                         const Layout& lay) {
  MilpProblem prob;
  LinearProgram& lp = prob.lp;
  lp.num_vars = lay.total();
  lp.objective.assign(lp.num_vars, 0.0);

  auto coeffs = [&]() { return std::vector<double>(lp.num_vars, 0.0); };

  // Eq. 38: read classes fully assigned.
  for (size_t k = 0; k < lay.R; ++k) {
    auto c = coeffs();
    for (size_t i = 0; i < lay.n; ++i) c[lay.lq(i, k)] = 1.0;
    lp.AddConstraint(std::move(c), Relation::kEqual, cls.reads[k].weight);
  }
  // Eq. 39: update classes assigned at least once.
  for (size_t k = 0; k < lay.U; ++k) {
    auto c = coeffs();
    for (size_t i = 0; i < lay.n; ++i) c[lay.lu(i, k)] = 1.0;
    lp.AddConstraint(std::move(c), Relation::kGreaterEqual,
                     cls.updates[k].weight);
  }
  // Eq. 40 linking: lq <= weight * hq.
  for (size_t i = 0; i < lay.n; ++i) {
    for (size_t k = 0; k < lay.R; ++k) {
      auto c = coeffs();
      c[lay.lq(i, k)] = 1.0;
      c[lay.hq(i, k)] = -cls.reads[k].weight;
      lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
    }
  }
  // Eq. 41: hu forced by overlapping allocated reads.
  for (size_t k = 0; k < lay.U; ++k) {
    for (size_t m = 0; m < lay.R; ++m) {
      if (!Intersects(cls.updates[k].fragments, cls.reads[m].fragments)) {
        continue;
      }
      for (size_t i = 0; i < lay.n; ++i) {
        auto c = coeffs();
        c[lay.hq(i, m)] = 1.0;
        c[lay.hu(i, k)] = -1.0;
        lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
      }
    }
  }
  // Eq. 42: lu = weight * hu.
  for (size_t i = 0; i < lay.n; ++i) {
    for (size_t k = 0; k < lay.U; ++k) {
      auto c = coeffs();
      c[lay.lu(i, k)] = 1.0;
      c[lay.hu(i, k)] = -cls.updates[k].weight;
      lp.AddConstraint(std::move(c), Relation::kEqual, 0.0);
    }
  }
  // Eq. 43: capacity with scale.
  for (size_t i = 0; i < lay.n; ++i) {
    auto c = coeffs();
    for (size_t k = 0; k < lay.R; ++k) c[lay.lq(i, k)] = 1.0;
    for (size_t k = 0; k < lay.U; ++k) c[lay.lu(i, k)] = 1.0;
    c[lay.s] = -backends[i].relative_load;
    lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
  }
  // Eq. 44/45: fragment placement follows class allocation. The paper
  // states the aggregated form (sum over the class's fragments >= |C|*h);
  // we emit the element-wise disaggregation a_ij >= h_ik, which is
  // equivalent on binaries and has a far tighter LP relaxation (essential
  // for the from-scratch branch-and-bound).
  for (size_t i = 0; i < lay.n; ++i) {
    for (size_t k = 0; k < lay.R; ++k) {
      for (FragmentId j : cls.reads[k].fragments) {
        auto c = coeffs();
        c[lay.hq(i, k)] = 1.0;
        c[lay.a(i, j)] = -1.0;
        lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
      }
    }
    for (size_t k = 0; k < lay.U; ++k) {
      for (FragmentId j : cls.updates[k].fragments) {
        auto c = coeffs();
        c[lay.hu(i, k)] = 1.0;
        c[lay.a(i, j)] = -1.0;
        lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
      }
    }
  }
  // Eq. 10 tightening: storing any fragment of an update class forces the
  // class (ROWA): a[i][j] <= hu[i][k] for j in Ck.
  for (size_t k = 0; k < lay.U; ++k) {
    for (FragmentId j : cls.updates[k].fragments) {
      for (size_t i = 0; i < lay.n; ++i) {
        auto c = coeffs();
        c[lay.a(i, j)] = 1.0;
        c[lay.hu(i, k)] = -1.0;
        lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
      }
    }
  }
  // Data completeness: every fragment stored somewhere.
  for (size_t j = 0; j < lay.F; ++j) {
    auto c = coeffs();
    for (size_t i = 0; i < lay.n; ++i) c[lay.a(i, j)] = 1.0;
    lp.AddConstraint(std::move(c), Relation::kGreaterEqual, 1.0);
  }
  // scale >= 1.
  lp.AddVarBound(lay.s, Relation::kGreaterEqual, 1.0);

  // Binaries: a, hq, hu. The h variables are the real decisions (they force
  // the a's via the linking constraints), so they get branching priority.
  for (size_t i = 0; i < lay.n; ++i) {
    for (size_t j = 0; j < lay.F; ++j) {
      prob.binary_vars.push_back(lay.a(i, j));
      prob.branch_priority.push_back(0);
    }
    for (size_t k = 0; k < lay.R; ++k) {
      prob.binary_vars.push_back(lay.hq(i, k));
      prob.branch_priority.push_back(1);
    }
    for (size_t k = 0; k < lay.U; ++k) {
      prob.binary_vars.push_back(lay.hu(i, k));
      prob.branch_priority.push_back(1);
    }
  }
  return prob;
}

}  // namespace

Result<Allocation> OptimalAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());

  const Layout lay(backends.size(), cls.catalog.size(), cls.reads.size(),
                   cls.updates.size());

  // Heuristic warm start: valid upper bounds on scale and storage.
  double greedy_scale = 0.0;
  double greedy_bytes = 0.0;
  if (options_.greedy_warm_start) {
    GreedyAllocator greedy;
    QCAP_ASSIGN_OR_RETURN(Allocation seed, greedy.Allocate(cls, backends));
    greedy_scale = Scale(seed, backends);
    for (size_t b = 0; b < seed.num_backends(); ++b) {
      greedy_bytes += seed.BackendBytes(b, cls.catalog);
    }
  }
  bool homogeneous = true;
  for (const auto& b : backends) {
    if (std::abs(b.relative_load - backends[0].relative_load) > 1e-12) {
      homogeneous = false;
      break;
    }
  }

  auto decorate = [&](MilpProblem* prob) {
    if (options_.greedy_warm_start) {
      prob->lp.AddVarBound(lay.s, Relation::kLessEqual, greedy_scale + 1e-9);
    }
    if (options_.symmetry_breaking && homogeneous) {
      // Lexicographic pruning: weight the placement row of each backend and
      // require non-increasing row scores. Not a total order over placements
      // but removes the bulk of the n! permutation symmetry.
      for (size_t i = 0; i + 1 < lay.n; ++i) {
        std::vector<double> c(prob->lp.num_vars, 0.0);
        for (size_t j = 0; j < lay.F; ++j) {
          const double w = static_cast<double>(lay.F - j);
          c[lay.a(i, j)] -= w;
          c[lay.a(i + 1, j)] += w;
        }
        prob->lp.AddConstraint(std::move(c), Relation::kLessEqual, 0.0);
      }
    }
  };

  MilpProblem stage1 = BuildProgram(cls, backends, lay);
  stage1.lp.objective[lay.s] = 1.0;
  decorate(&stage1);
  QCAP_ASSIGN_OR_RETURN(LpSolution sol1, SolveMilp(stage1, options_.milp));
  const double opt_scale = sol1.x[lay.s];
  last_scale_ = opt_scale;

  LpSolution final_sol = sol1;
  if (!options_.scale_only) {
    // Sizes are normalized to fractions of the database so the program's
    // coefficients stay well-scaled for the dense simplex.
    const double total_bytes = std::max(cls.catalog.TotalBytes(), 1.0);
    MilpProblem stage2 = BuildProgram(cls, backends, lay);
    for (size_t i = 0; i < lay.n; ++i) {
      for (size_t j = 0; j < lay.F; ++j) {
        stage2.lp.objective[lay.a(i, j)] =
            cls.catalog.Get(static_cast<FragmentId>(j)).size_bytes /
            total_bytes;
      }
    }
    decorate(&stage2);
    stage2.lp.AddVarBound(lay.s, Relation::kLessEqual,
                          opt_scale + options_.scale_slack);
    if (options_.greedy_warm_start && greedy_bytes > 0.0) {
      std::vector<double> c(stage2.lp.num_vars, 0.0);
      for (size_t i = 0; i < lay.n; ++i) {
        for (size_t j = 0; j < lay.F; ++j) {
          c[lay.a(i, j)] =
              cls.catalog.Get(static_cast<FragmentId>(j)).size_bytes /
              total_bytes;
        }
      }
      stage2.lp.AddConstraint(std::move(c), Relation::kLessEqual,
                              greedy_bytes / total_bytes + 1e-9);
    }
    QCAP_ASSIGN_OR_RETURN(final_sol, SolveMilp(stage2, options_.milp));
  }

  Allocation alloc(lay.n, lay.F, lay.R, lay.U);
  for (size_t i = 0; i < lay.n; ++i) {
    for (size_t j = 0; j < lay.F; ++j) {
      if (final_sol.x[lay.a(i, j)] > 0.5) {
        alloc.Place(i, static_cast<FragmentId>(j));
      }
    }
    for (size_t k = 0; k < lay.R; ++k) {
      const double v = final_sol.x[lay.lq(i, k)];
      if (v > 1e-12) alloc.set_read_assign(i, k, v);
    }
    for (size_t k = 0; k < lay.U; ++k) {
      const double v = final_sol.x[lay.lu(i, k)];
      if (v > 1e-12) alloc.set_update_assign(i, k, v);
    }
  }
  return alloc;
}

}  // namespace qcap
