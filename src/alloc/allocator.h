// Allocator interface and helpers shared by all allocation strategies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// \brief Strategy interface: computes a partial replication of the
/// classified workload onto the given backends.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Computes an allocation. Implementations must return allocations that
  /// pass ValidateAllocation().
  virtual Result<Allocation> Allocate(
      const Classification& cls,
      const std::vector<BackendSpec>& backends) = 0;

  /// Human-readable strategy name, e.g. "greedy".
  virtual std::string name() const = 0;
};

namespace alloc_internal {

/// Places every update class whose fragments overlap backend \p b's current
/// fragment set fully onto \p b (fragments + pinned assignment, Eq. 10),
/// iterating to a fixpoint since adding an update's fragments can create
/// new overlaps. Returns the total update weight newly added to \p b.
double CloseUpdatesOnBackend(const Classification& cls, size_t b,
                             Allocation* alloc);

/// Index-accelerated CloseUpdatesOnBackend: identical fixpoint order (each
/// round tests against a snapshot of the row taken at round start, ascending
/// update index) so the accumulated weight is bitwise identical to the
/// unindexed version, but overlap tests are word-parallel and nothing is
/// heap-allocated beyond \p row_scratch, which callers size once and reuse.
double CloseUpdatesOnBackend(const Classification& cls,
                             const ClassificationIndex& index, size_t b,
                             Allocation* alloc, DenseBitset* row_scratch);

/// Runs CloseUpdatesOnBackend for every backend.
void CloseUpdatesEverywhere(const Classification& cls, Allocation* alloc);

/// Ensures data completeness: every fragment not yet stored anywhere is
/// placed on the backend currently storing the fewest bytes that would not
/// pick up new update obligations by storing it (any backend if none
/// qualifies, followed by an update-closure pass).
void PlaceOrphanFragments(const Classification& cls, Allocation* alloc);

/// Backend index with minimal stored bytes.
size_t LeastLoadedBackendByBytes(const Classification& cls,
                                 const Allocation& alloc);

}  // namespace alloc_internal
}  // namespace qcap
