// Random allocation baseline: each read class lands entirely on a uniformly
// random backend (the paper's "random allocation" comparator, Fig. 4a).
#pragma once

#include <cstdint>

#include "alloc/allocator.h"

namespace qcap {

/// \brief Randomized placement of query classes, ignoring load balance.
///
/// Deterministic for a given seed. Update classes follow placement per the
/// ROWA rule (Eq. 10).
class RandomAllocator : public Allocator {
 public:
  explicit RandomAllocator(uint64_t seed) : seed_(seed) {}

  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "random"; }

 private:
  uint64_t seed_;
};

}  // namespace qcap
