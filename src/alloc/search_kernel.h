// Incremental cost accounting for the allocation-search hot path.
//
// SearchKernel bundles the scratch buffers and precomputed indexes the
// memetic search (and any future local-search allocator) needs to score and
// repair candidate allocations without rescanning the whole allocation:
//  - Evaluate reads the Allocation's running aggregates: O(B) instead of
//    O(B·(R+U)) load sums + O(B·F) byte sums,
//  - GarbageCollect edits each backend's row in place using the index's
//    per-read update closures: O(B·(R·F/64 + U)) instead of rebuilding all
//    B rows per backend (O(B²·(F+R+U))) with an O(U²) fixpoint each,
//  - BeginDelta/EvaluateDelta score a trial that differs from a base
//    allocation on a few backends in O(|touched|),
// and none of it heap-allocates on the steady-state path (scratch is sized
// on first use and reused).
//
// A kernel instance is NOT thread-safe (it owns scratch); give each search
// thread / island its own kernel over the same shared ClassificationIndex.
#pragma once

#include <cstddef>
#include <vector>

#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

struct SearchProgress;  // common/stats.h

namespace alloc_internal {

/// Solution cost: lexicographic (scale, stored bytes). Lower is better.
struct SolutionCost {
  double scale = 0.0;
  double bytes = 0.0;

  bool Better(const SolutionCost& other) const {
    if (scale < other.scale - 1e-9) return true;
    if (scale > other.scale + 1e-9) return false;
    return bytes < other.bytes - 1e-6;
  }
};

class SearchKernel {
 public:
  /// \p progress may be null; when set, Evaluate/EvaluateDelta maintain its
  /// counters exactly like the pre-index full evaluation did.
  SearchKernel(const Classification& cls, const ClassificationIndex& index,
               const std::vector<BackendSpec>& backends,
               SearchProgress* progress = nullptr);

  /// Full cost of \p a from the running aggregates. O(B). Requires bound
  /// fragment sizes (Allocation::BindSizes).
  SolutionCost Evaluate(const Allocation& a) const;

  /// Garbage-collects every backend: drops fragments not needed by the
  /// backend's positive read assignments (or the update closure they force),
  /// re-pins update classes, then restores data completeness.
  void GarbageCollect(Allocation* a);

  /// Garbage-collects only backends [begin, end) of \p bs. \p touched is
  /// cleared and receives every backend whose row or load was modified or
  /// inspected for the trial's cost delta: the given backends plus any
  /// orphan-placement targets.
  void GarbageCollectBackends(Allocation* a, const size_t* bs, size_t count,
                              std::vector<size_t>* touched);

  /// Caches \p base's per-backend costs so subsequent EvaluateDelta calls
  /// can score trials against it in O(|touched|). \p base must stay
  /// unchanged until the next BeginDelta.
  void BeginDelta(const Allocation& base, SolutionCost base_cost);

  /// Cost of \p trial, which differs from the BeginDelta base only on the
  /// backends in \p touched. O(|touched|) in the common case (falls back to
  /// one O(B) scan when every top-loaded base backend was touched).
  SolutionCost EvaluateDelta(const Allocation& trial,
                             const std::vector<size_t>& touched) const;

  /// Index-accelerated update-closure fixpoint (identical semantics and
  /// accumulation order as alloc_internal::CloseUpdatesOnBackend).
  double CloseUpdates(Allocation* a, size_t b);

 private:
  void CollectBackend(Allocation* a, size_t b);
  /// Restores data completeness like alloc_internal::PlaceOrphanFragments
  /// (same target choice), recording modified backends in \p touched when
  /// non-null.
  void PlaceOrphans(Allocation* a, std::vector<size_t>* touched);

  const Classification& cls_;
  const ClassificationIndex& index_;
  const std::vector<BackendSpec>& backends_;
  SearchProgress* progress_;

  // Scratch (sized on first use, then reused — no steady-state allocation).
  DenseBitset needed_;
  DenseBitset keep_updates_;
  DenseBitset row_scratch_;

  // Delta-evaluation cache of the base allocation.
  std::vector<double> base_norm_;   // AssignedLoad / relative_load
  std::vector<double> base_bytes_;  // BackendBytes
  double base_bytes_total_ = 0.0;
  size_t top_count_ = 0;      // Valid entries in top_*.
  size_t top_idx_[3] = {};    // Most-loaded base backends, descending.
  double top_val_[3] = {};
};

}  // namespace alloc_internal
}  // namespace qcap
