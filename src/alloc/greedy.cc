#include "alloc/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#ifdef QCAP_GREEDY_TRACE
#include <cstdio>
#endif

namespace qcap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A class pending allocation: index into reads (is_update=false) or
/// updates (is_update=true) of the classification.
struct Pending {
  size_t index = 0;
  bool is_update = false;
};

}  // namespace

Result<Allocation> GreedyAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());

  const size_t n = backends.size();
  const double eps = options_.epsilon;
  // The index memoizes overlaps, bundles and their byte sizes with the same
  // accumulation orders as the Classification helpers, so every comparison
  // below is bitwise identical to the unindexed implementation.
  const ClassificationIndex index(cls);
  Allocation alloc(n, cls.catalog, cls.reads.size(), cls.updates.size());

  // Line 1: C* = CQ ∪ {CU with no overlapping read class}.
  std::vector<Pending> queue;
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    queue.push_back(Pending{r, false});
  }
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    if (index.reads_overlapping_update(u).empty()) {
      queue.push_back(Pending{u, true});
    }
  }

  auto class_of = [&](const Pending& p) -> const QueryClass& {
    return p.is_update ? cls.updates[p.index] : cls.reads[p.index];
  };
  auto class_bits = [&](const Pending& p) -> const DenseBitset& {
    return p.is_update ? index.update_bits(p.index) : index.read_bits(p.index);
  };
  auto overlap_weight = [&](const Pending& p) {
    return p.is_update ? index.update_overlapping_update_weight(p.index)
                       : index.read_overlapping_update_weight(p.index);
  };
  auto bundle_weight = [&](const Pending& p) {
    // weight(C ∪ updates(C)): the class's own weight plus all overlapping
    // update classes (for an update class this includes itself once).
    double w = overlap_weight(p);
    if (!p.is_update) w += class_of(p).weight;
    return w;
  };
  auto bundle_size = [&](const Pending& p) {
    return p.is_update ? index.update_bundle_bytes(p.index)
                       : index.read_bundle_bytes(p.index);
  };
  auto bundle_bits = [&](const Pending& p) -> const DenseBitset& {
    return p.is_update ? index.update_bundle_bits(p.index)
                       : index.read_bundle_bits(p.index);
  };

  // Line 2: initial sort, descending weight x size.
  std::stable_sort(queue.begin(), queue.end(),
                   [&](const Pending& a, const Pending& b) {
                     return bundle_weight(a) * bundle_size(a) >
                            bundle_weight(b) * bundle_size(b);
                   });

  // Lines 3-5: auxiliary state.
  std::vector<double> current_load(n, 0.0);
  std::vector<double> scaled_load(n);
  for (size_t b = 0; b < n; ++b) scaled_load[b] = backends[b].relative_load;
  std::vector<double> rest_weight(cls.reads.size());
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    rest_weight[r] = cls.reads[r].weight;
  }
  DenseBitset row_scratch(cls.catalog.size());

  size_t max_iters = options_.max_iterations;
  if (max_iters == 0) {
    max_iters = 64 * (queue.size() + 1) * (n + 1) + 1024;
  }
  size_t iters = 0;

  // Line 6: main loop.
  while (!queue.empty()) {
    if (++iters > max_iters) {
      return Status::Internal("greedy allocation did not converge");
    }
    const Pending p = queue.front();
    queue.erase(queue.begin());
    const QueryClass& c = class_of(p);

    // Lines 7-9: if all backends are full, scale every backend so it can
    // take its relative share of this class.
    bool all_full = true;
    for (size_t b = 0; b < n; ++b) {
      if (current_load[b] < scaled_load[b] - eps) {
        all_full = false;
        break;
      }
    }
    if (all_full) {
      const double w = p.is_update ? c.weight : cls.reads[p.index].weight;
      for (size_t b = 0; b < n; ++b) {
        scaled_load[b] = current_load[b] + backends[b].relative_load * w;
      }
    }

    // Lines 10-16: difference to each backend, with one refinement over
    // the paper's pseudo-code: before replicating a read class's update
    // bundle onto a new backend, compare against finishing the class on a
    // backend that already holds the bundle. If the holder would end up at
    // a lower relative load than the new backend (which must additionally
    // absorb the replicated update weight), the new backend is excluded.
    // This repairs the misplacement corner case the paper reports for
    // small classes with heavy updates (Section 4.2) without hurting large
    // classes that must spread.
    const DenseBitset& bundle = bundle_bits(p);
    double best_holder_rel = kInf;
    if (!p.is_update) {
      for (size_t b = 0; b < n; ++b) {
        if (alloc.HoldsAllBits(b, bundle)) {
          best_holder_rel = std::min(
              best_holder_rel, (current_load[b] + rest_weight[p.index]) /
                                   backends[b].relative_load);
        }
      }
    }
    std::vector<double> difference(n);
    for (size_t b = 0; b < n; ++b) {
      if (current_load[b] >= scaled_load[b] - eps) {
        difference[b] = kInf;
        continue;
      }
      if (!p.is_update) {
        double added_updates = 0.0;
        for (size_t u : index.read_overlapping_updates(p.index)) {
          if (alloc.update_assign(b, u) <= 0.0) {
            added_updates += cls.updates[u].weight;
          }
        }
        const double candidate_rel =
            (current_load[b] + added_updates + rest_weight[p.index]) /
            backends[b].relative_load;
        if (added_updates > 0.0 && best_holder_rel < candidate_rel - eps) {
          difference[b] = kInf;
          continue;
        }
      }
      if (current_load[b] <= eps) {
        difference[b] = 0.0;
      } else {
        difference[b] = alloc.MissingBytes(b, bundle);
      }
    }

    // Line 17: backend with minimal difference; ties go to the lowest
    // backend index (first fit). This reproduces both the Figure 2 and the
    // Appendix A traces; for heterogeneous clusters, order the backends by
    // descending capacity.
    size_t target = n;
    for (size_t b = 0; b < n; ++b) {
      if (difference[b] == kInf) continue;
      if (target == n || difference[b] < difference[target] - 1e-15) {
        target = b;
      }
    }
    if (target == n) {
      // Every backend is excluded (full, or the class's updates exceed any
      // remaining capacity). Prefer the backend that already stores the
      // class's data bundle (cheapest to overload), then the least
      // relatively loaded one; the read branch below scales it up.
      double best_missing = kInf;
      double best_rel = kInf;
      for (size_t b = 0; b < n; ++b) {
        const double missing = alloc.MissingBytes(b, bundle);
        const double rel = current_load[b] / backends[b].relative_load;
        // Relative tolerance: byte sizes are large and "equal" candidates
        // must tie so the load comparison can break the tie.
        const double tol =
            target == n ? 0.0 : 1e-9 * std::max(1.0, best_missing);
        if (target == n || missing < best_missing - tol ||
            (missing < best_missing + tol && rel < best_rel - eps)) {
          best_missing = missing;
          best_rel = rel;
          target = b;
        }
      }
    }

    // Lines 18-19: place fragments; add not-yet-allocated update load.
    alloc.PlaceBits(target, class_bits(p));
    const double added_updates = alloc_internal::CloseUpdatesOnBackend(
        cls, index, target, &alloc, &row_scratch);
    current_load[target] += added_updates;
#ifdef QCAP_GREEDY_TRACE
    std::fprintf(stderr, "pick %s -> B%zu (cur=%.3f scaled=%.3f addUpd=%.3f)\n",
                 c.label.c_str(), target + 1, current_load[target],
                 scaled_load[target], added_updates);
#endif

    if (p.is_update) {
      // Lines 20-23. (CloseUpdatesOnBackend has already pinned the class.)
      if (current_load[target] > scaled_load[target]) {
        scaled_load[target] = current_load[target];
        // Eq. 15: re-derive the other backends' scaled loads from the new
        // global scale factor.
        double scale = 0.0;
        for (size_t b = 0; b < n; ++b) {
          scale = std::max(scale, current_load[b] / backends[b].relative_load);
        }
        if (scale > 1.0) {
          for (size_t b = 0; b < n; ++b) {
            scaled_load[b] =
                std::max(scaled_load[b], backends[b].relative_load * scale);
          }
        }
      }
      // Update classes are allocated exactly once (further replicas only
      // cost throughput): drop from the queue.
    } else {
      // Lines 24-32.
      const size_t r = p.index;
      if (current_load[target] >= scaled_load[target] - eps) {
        scaled_load[target] = current_load[target] +
                              backends[target].relative_load * c.weight;
      }
      const double room = scaled_load[target] - current_load[target];
      if (rest_weight[r] > room + eps) {
        alloc.add_read_assign(target, r, room);
        rest_weight[r] -= room;
        current_load[target] = scaled_load[target];
        queue.push_back(p);  // Still pending.
      } else {
        alloc.add_read_assign(target, r, rest_weight[r]);
        current_load[target] += rest_weight[r];
        rest_weight[r] = 0.0;
      }
    }

    // Line 33: re-sort pending classes, descending remaining weight
    // (including co-allocated updates) x size.
    std::stable_sort(queue.begin(), queue.end(),
                     [&](const Pending& a, const Pending& b) {
                       const double wa =
                           a.is_update
                               ? bundle_weight(a)
                               : rest_weight[a.index] + overlap_weight(a);
                       const double wb =
                           b.is_update
                               ? bundle_weight(b)
                               : rest_weight[b.index] + overlap_weight(b);
                       return wa * bundle_size(a) > wb * bundle_size(b);
                     });
  }

  alloc_internal::PlaceOrphanFragments(cls, &alloc);
  return alloc;
}

}  // namespace qcap
