// Memetic (evolutionary + local search) allocation improvement
// (Algorithm 2, local searches Eq. 21-26).
//
// Starts from the greedy solution, evolves a population by mutating read
// assignments (update placement is re-derived per ROWA), keeps the best
// 2/3 of parents and 1/3 of offspring each generation, and locally improves
// a random third of the population with the paper's two improvement moves.
#pragma once

#include <cstdint>

#include "alloc/allocator.h"

namespace qcap {

/// Tuning knobs for the memetic allocator.
struct MemeticOptions {
  size_t population_size = 18;   ///< p (multiple of 3 keeps the ratios exact).
  size_t iterations = 60;        ///< Generations.
  uint64_t seed = 42;            ///< Mutation RNG seed.
  /// Maximum local-search sweeps per improve() call.
  size_t improve_passes = 2;
};

/// \brief Algorithm 2: evolutionary programming over allocations with local
/// improvement (a hybrid/memetic heuristic).
class MemeticAllocator : public Allocator {
 public:
  explicit MemeticAllocator(MemeticOptions options = {}) : options_(options) {}

  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "memetic"; }

  /// Improves an existing \p seed_allocation instead of starting from
  /// greedy. Used by benches to ablate greedy vs. memetic quality.
  Result<Allocation> Improve(const Classification& cls,
                             const std::vector<BackendSpec>& backends,
                             const Allocation& seed_allocation);

 private:
  MemeticOptions options_;
};

}  // namespace qcap
