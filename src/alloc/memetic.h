// Memetic (evolutionary + local search) allocation improvement
// (Algorithm 2, local searches Eq. 21-26), parallelized as an island model.
//
// Starts from the greedy solution and evolves `num_islands` independent
// subpopulations. Each island mutates read assignments (update placement is
// re-derived per ROWA), keeps the best 2/3 of parents and 1/3 of offspring
// each generation, and locally improves a random third of its population
// with the paper's two improvement moves. Every `migration_interval`
// generations the islands synchronize and each island's best solution
// migrates to its ring neighbour, replacing the neighbour's worst member.
//
// Determinism contract: island i draws from its own RNG seeded with
// `seed + i`, islands only interact at the (serial) migration barrier, and
// offspring evaluation is a pure function — so for a fixed
// {seed, num_islands, population_size, iterations, migration_interval} the
// result is bit-identical at every thread count, including threads == 1.
#pragma once

#include <cstdint>

#include "alloc/allocator.h"

namespace qcap {

class ThreadPool;       // common/thread_pool.h
struct SearchProgress;  // common/stats.h

/// Tuning knobs for the memetic allocator.
struct MemeticOptions {
  /// Total population p across all islands (a multiple of 3 *per island*
  /// keeps the paper's 2/3 + 1/3 selection ratios exact). Each island
  /// evolves max(3, population_size / num_islands) members.
  size_t population_size = 18;
  /// Generations evolved by every island.
  size_t iterations = 60;
  /// Mutation RNG seed; island i uses `seed + i`.
  uint64_t seed = 42;
  /// Maximum local-search sweeps per improve() call.
  size_t improve_passes = 2;

  // --- Island-model parallelism ---

  /// Independent subpopulations. 1 recovers the classic single-population
  /// evolver; more islands diversify the search and are the unit of
  /// parallel execution.
  size_t num_islands = 4;
  /// Generations between migration barriers. Migration copies each
  /// island's best member to its ring successor. 0 disables migration.
  size_t migration_interval = 15;
  /// Worker threads for the search: islands evolve concurrently and
  /// offspring batches are evaluated in parallel. 1 = fully serial,
  /// 0 = ThreadPool::DefaultThreads(). Ignored when \ref pool is set.
  /// The allocation returned does not depend on this value.
  size_t threads = 1;
  /// External pool to run on instead of spawning a private one. The caller
  /// keeps ownership; the pool must outlive the Allocate()/Improve() call.
  ThreadPool* pool = nullptr;
  /// Optional live progress counters, updated during the search (the
  /// caller may poll from another thread). Not owned.
  SearchProgress* progress = nullptr;
};

/// \brief Algorithm 2: evolutionary programming over allocations with local
/// improvement (a hybrid/memetic heuristic), run as a parallel island model.
///
/// Paper mapping: mutation + (λ+µ) selection implement Algorithm 2's
/// evolutionary loop; the two local searches implement Eq. 21/22
/// (consolidating read classes split across backend pairs) and Eq. 23-26
/// (evacuating reads that pin heavy update replicas). The island
/// decomposition is an implementation choice for multicore hardware; with
/// num_islands = 1 it degenerates to the paper's serial algorithm.
class MemeticAllocator : public Allocator {
 public:
  explicit MemeticAllocator(MemeticOptions options = {}) : options_(options) {}

  /// Runs greedy (Algorithm 1) for the initial solution, then improves it.
  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "memetic"; }

  /// Improves an existing \p seed_allocation instead of starting from
  /// greedy. Used by benches to ablate greedy vs. memetic quality.
  Result<Allocation> Improve(const Classification& cls,
                             const std::vector<BackendSpec>& backends,
                             const Allocation& seed_allocation);

 private:
  MemeticOptions options_;
};

}  // namespace qcap
