// Greedy first-fit allocation heuristic (Algorithm 1 of the paper).
//
// Query classes are allocated heaviest-first (weight including co-allocated
// updates, times data size). Each class goes to the backend with the least
// "difference" (new bytes it would have to store), updates are pinned per
// ROWA, and backend capacities are scaled up only when every backend is
// already at its scaled limit.
#pragma once

#include "alloc/allocator.h"

namespace qcap {

/// Tuning knobs for the greedy heuristic.
struct GreedyOptions {
  /// Numerical slack when comparing loads.
  double epsilon = 1e-12;
  /// Hard cap on main-loop iterations (guards against pathological inputs);
  /// 0 derives a generous bound from the problem size.
  size_t max_iterations = 0;
};

/// \brief Algorithm 1: polynomial-time first-fit allocation.
///
/// Reproduces the paper's greedy trace exactly (the Appendix A worked
/// example is a unit test): classes are placed heaviest-first by
/// weight × data size, each onto the backend where it adds the fewest new
/// bytes among those with spare scaled capacity (Eq. 15/16), updates are
/// pinned per ROWA (Eq. 10), and capacity is relaxed only when every
/// backend is saturated.
class GreedyAllocator : public Allocator {
 public:
  explicit GreedyAllocator(GreedyOptions options = {}) : options_(options) {}

  /// Runs Algorithm 1 on \p cls over \p backends.
  /// \returns an allocation satisfying the validity constraints
  /// (Eq. 8-11), or a Status describing the infeasibility.
  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "greedy"; }

 private:
  GreedyOptions options_;
};

}  // namespace qcap
