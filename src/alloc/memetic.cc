#include "alloc/memetic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "alloc/greedy.h"
#include "alloc/search_kernel.h"
#include "common/stats.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "model/metrics.h"

namespace qcap {

namespace {

using alloc_internal::SearchKernel;
using alloc_internal::SolutionCost;

struct Member {
  Allocation alloc;
  SolutionCost cost;
};

/// One island: an independent subpopulation with its own RNG stream
/// (`opts.seed + island_id`). All mutation/selection state is confined to
/// the island, so islands can evolve on different pool workers without
/// synchronization; they interact only at the serial migration barrier run
/// by the coordinator between epochs. Each island owns a SearchKernel (and
/// therefore its own scratch buffers) over the shared read-only
/// ClassificationIndex.
class Evolver {
 public:
  Evolver(const Classification& cls, const ClassificationIndex& index,
          const std::vector<BackendSpec>& backends, const MemeticOptions& opts,
          uint64_t island_id)
      : cls_(cls),
        index_(index),
        opts_(opts),
        kernel_(cls, index, backends, opts.progress),
        rng_(opts.seed + island_id) {}

  SolutionCost Evaluate(const Allocation& a) const { return kernel_.Evaluate(a); }

  /// Drops every fragment a backend no longer needs for its assigned read
  /// classes (and the update classes forced by what remains), then restores
  /// global data completeness. Edits rows in place via the precomputed
  /// per-read update closures; no allocation rebuild, no O(U²) fixpoint.
  void GarbageCollect(Allocation* a) { kernel_.GarbageCollect(a); }

  // Mutation and the two local-search strategies are the per-trial inner
  // loops of the memetic search. Trials reuse the island's scratch vectors
  // and trial_ allocation; the only allocation is the returned child.
  // qcap-lint: hot-path begin

  Allocation Mutate(const Allocation& parent) {
    Allocation child = parent;
    // Move one random (class, backend) read share to another backend.
    positive_.clear();  // (read class, backend)
    for (size_t r = 0; r < cls_.reads.size(); ++r) {
      for (size_t b = 0; b < child.num_backends(); ++b) {
        // qcap-lint: allow(hot-path-growth) -- positive_ reaches steady-state capacity after the first scan and is reused across trials
        if (child.read_assign(b, r) > 1e-12) positive_.emplace_back(r, b);
      }
    }
    if (positive_.empty() || child.num_backends() < 2) return child;
    const auto [r, b1] = positive_[rng_.NextBounded(positive_.size())];
    size_t b2 = static_cast<size_t>(rng_.NextBounded(child.num_backends() - 1));
    if (b2 >= b1) ++b2;
    const double have = child.read_assign(b1, r);
    const double share =
        rng_.NextBernoulli(0.5) ? have : have * rng_.NextDouble(0.25, 1.0);
    child.add_read_assign(b1, r, -share);
    child.add_read_assign(b2, r, share);
    child.PlaceBits(b2, index_.read_bits(r));
    kernel_.CloseUpdates(&child, b2);
    // The parent is garbage-collected (population invariant), so only the
    // two modified rows can hold junk.
    const size_t touched[2] = {b1, b2};
    kernel_.GarbageCollectBackends(&child, touched, 2, &touched_);
    return child;
  }

  /// Local search strategy 1 (Eq. 21/22): consolidate pairs of read classes
  /// that are split across the same two backends but drag different update
  /// sets, freeing update replicas. The `before` cost is computed lazily,
  /// only once a candidate pair actually exists; each trial reuses the
  /// scratch allocation and is scored via the O(|touched|) delta form.
  bool ImproveSharedPairs(Allocation* a) {
    bool have_before = false;
    SolutionCost before;
    for (size_t b1 = 0; b1 < a->num_backends(); ++b1) {
      for (size_t b2 = b1 + 1; b2 < a->num_backends(); ++b2) {
        shared_.clear();
        for (size_t r = 0; r < cls_.reads.size(); ++r) {
          if (a->read_assign(b1, r) > 1e-12 && a->read_assign(b2, r) > 1e-12) {
            // qcap-lint: allow(hot-path-growth) -- shared_ is cleared scratch bounded by |reads|; capacity is reused
            shared_.push_back(r);
          }
        }
        if (shared_.size() < 2) continue;
        for (size_t i = 0; i < shared_.size(); ++i) {
          for (size_t j = 0; j < shared_.size(); ++j) {
            if (i == j) continue;
            const size_t r1 = shared_[i], r2 = shared_[j];
            if (index_.read_overlapping_updates(r1) ==
                index_.read_overlapping_updates(r2)) {
              continue;
            }
            const double delta =
                std::min(a->read_assign(b2, r1), a->read_assign(b1, r2));
            if (delta <= 1e-12) continue;
            if (!have_before) {
              before = kernel_.Evaluate(*a);
              kernel_.BeginDelta(*a, before);
              have_before = true;
            }
            trial_ = *a;
            trial_.add_read_assign(b2, r1, -delta);
            trial_.add_read_assign(b1, r1, delta);
            trial_.add_read_assign(b1, r2, -delta);
            trial_.add_read_assign(b2, r2, delta);
            const size_t touched[2] = {b1, b2};
            kernel_.GarbageCollectBackends(&trial_, touched, 2, &touched_);
            if (kernel_.EvaluateDelta(trial_, touched_).Better(before)) {
              *a = trial_;
              RecordImprovement();
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  /// Local search strategy 2 (Eq. 23-26): evacuate the read load that pins a
  /// replicated (heavy) update class on one backend over to another backend
  /// already carrying the class, trading lighter replication for it.
  bool ImproveUpdateReplicas(Allocation* a) {
    bool have_before = false;
    SolutionCost before;
    for (size_t u = 0; u < cls_.updates.size(); ++u) {
      holders_.clear();
      for (size_t b = 0; b < a->num_backends(); ++b) {
        // qcap-lint: allow(hot-path-growth) -- holders_ is cleared scratch bounded by num_backends; capacity is reused
        if (a->update_assign(b, u) > 1e-12) holders_.push_back(b);
      }
      if (holders_.size() < 2) continue;
      for (size_t b1 : holders_) {
        for (size_t b2 : holders_) {
          if (b1 == b2) continue;
          if (!have_before) {
            before = kernel_.Evaluate(*a);
            kernel_.BeginDelta(*a, before);
            have_before = true;
          }
          trial_ = *a;
          bool moved = false;
          for (size_t r = 0; r < cls_.reads.size(); ++r) {
            if (trial_.read_assign(b1, r) <= 1e-12) continue;
            if (!Intersects(index_.read_bits(r), index_.update_bits(u))) {
              continue;
            }
            const double w = trial_.read_assign(b1, r);
            trial_.add_read_assign(b1, r, -w);
            trial_.add_read_assign(b2, r, w);
            trial_.PlaceBits(b2, index_.read_bits(r));
            kernel_.CloseUpdates(&trial_, b2);
            moved = true;
          }
          if (!moved) continue;
          const size_t touched[2] = {b1, b2};
          kernel_.GarbageCollectBackends(&trial_, touched, 2, &touched_);
          if (kernel_.EvaluateDelta(trial_, touched_).Better(before)) {
            *a = trial_;
            RecordImprovement();
            return true;
          }
        }
      }
    }
    return false;
  }

  // qcap-lint: hot-path end

  void LocalImprove(Allocation* a) {
    for (size_t pass = 0; pass < opts_.improve_passes; ++pass) {
      const bool improved = ImproveSharedPairs(a) || ImproveUpdateReplicas(a);
      if (!improved) break;
    }
  }

  /// Evolves the island's population for \p generations. Mutation and
  /// selection draw from the island RNG on the calling thread; only the
  /// (pure) offspring evaluations fan out over \p pool, writing each cost
  /// to its own slot, so the outcome is independent of the thread count.
  void EvolveGenerations(std::vector<Member>* population, size_t generations,
                         size_t island_population, ThreadPool* pool) {
    const size_t p = std::max<size_t>(3, island_population);
    for (size_t iter = 0; iter < generations; ++iter) {
      // Offspring: p mutations of random parents (serial: RNG), then a
      // parallel evaluation of the batch.
      std::vector<Allocation> kids;
      kids.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        const Member& parent =
            (*population)[rng_.NextBounded(population->size())];
        kids.push_back(Mutate(parent.alloc));
      }
      std::vector<SolutionCost> costs(p);
      ParallelFor(pool, p,
                  [&](size_t i) { costs[i] = Evaluate(kids[i]); });
      std::vector<Member> offspring;
      offspring.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        offspring.push_back(Member{std::move(kids[i]), costs[i]});
      }
      // (λ+µ) selection: best 2/3 of parents + best 1/3 of offspring.
      // Selection only consumes the kept prefix, so a partial sort to that
      // prefix replaces the two full sorts.
      auto by_cost = [](const Member& x, const Member& y) {
        return x.cost.Better(y.cost);
      };
      const size_t keep_parents = std::min(population->size(), 2 * p / 3);
      const size_t keep_children = std::min(offspring.size(), p - keep_parents);
      std::partial_sort(population->begin(),
                        population->begin() + keep_parents, population->end(),
                        by_cost);
      std::partial_sort(offspring.begin(), offspring.begin() + keep_children,
                        offspring.end(), by_cost);
      std::vector<Member> next;
      next.reserve(keep_parents + keep_children);
      for (size_t i = 0; i < keep_parents; ++i) {
        next.push_back(std::move((*population)[i]));
      }
      for (size_t i = 0; i < keep_children; ++i) {
        next.push_back(std::move(offspring[i]));
      }
      *population = std::move(next);
      // Memetic step: locally improve a random third of the population.
      const size_t improve_count = std::max<size_t>(1, population->size() / 3);
      for (size_t i = 0; i < improve_count; ++i) {
        Member& m = (*population)[rng_.NextBounded(population->size())];
        LocalImprove(&m.alloc);
        m.cost = Evaluate(m.alloc);
      }
      if (opts_.progress != nullptr) {
        opts_.progress->generations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

 private:
  void RecordImprovement() const {
    if (opts_.progress != nullptr) {
      opts_.progress->improvements.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const Classification& cls_;
  const ClassificationIndex& index_;
  const MemeticOptions& opts_;
  SearchKernel kernel_;
  Rng rng_;

  // Reused scratch: candidate lists and the trial allocation. Copy-assigning
  // into trial_ reuses its buffers, so rejected trials cost no allocation.
  std::vector<std::pair<size_t, size_t>> positive_;
  std::vector<size_t> shared_;
  std::vector<size_t> holders_;
  std::vector<size_t> touched_;
  Allocation trial_;
};

/// Coordinates the islands: epochs of independent evolution (parallel over
/// the pool) separated by serial ring migrations of each island's best
/// member. All cross-island decisions happen here, on one thread, from
/// fully evolved island states — thread count never changes the result.
class IslandModel {
 public:
  IslandModel(const Classification& cls, const ClassificationIndex& index,
              const std::vector<BackendSpec>& backends,
              const MemeticOptions& opts)
      : opts_(opts) {
    const size_t n = std::max<size_t>(1, opts.num_islands);
    island_population_ =
        std::max<size_t>(3, opts.population_size / n);
    evolvers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      evolvers_.push_back(std::make_unique<Evolver>(cls, index, backends, opts,
                                                    /*island_id=*/i));
    }
    populations_.resize(n);
  }

  Allocation Run(const Allocation& seed, ThreadPool* pool) {
    const size_t n = evolvers_.size();
    for (size_t i = 0; i < n; ++i) {
      populations_[i].push_back(
          Member{seed, evolvers_[i]->Evaluate(seed)});
    }
    const size_t epoch = opts_.migration_interval == 0
                             ? opts_.iterations
                             : opts_.migration_interval;
    size_t remaining = opts_.iterations;
    while (remaining > 0) {
      const size_t generations = std::min(epoch == 0 ? remaining : epoch,
                                          remaining);
      ParallelFor(pool, n, [&](size_t i) {
        evolvers_[i]->EvolveGenerations(&populations_[i], generations,
                                        island_population_, pool);
      });
      remaining -= generations;
      if (remaining > 0 && n > 1) Migrate();
    }
    // Winner: scan islands in id order; strict Better keeps ties stable.
    const Member* best = nullptr;
    for (const auto& population : populations_) {
      for (const Member& member : population) {
        if (best == nullptr || member.cost.Better(best->cost)) {
          best = &member;
        }
      }
    }
    return best->alloc;
  }

 private:
  static bool ByCost(const Member& x, const Member& y) {
    return x.cost.Better(y.cost);
  }

  /// Ring migration: island i's best member immigrates into island
  /// (i+1) % n, replacing that island's worst member if it improves on it.
  /// Emigrants are snapshotted first so the outcome is order-independent.
  void Migrate() {
    const size_t n = populations_.size();
    std::vector<Member> emigrants;
    emigrants.reserve(n);
    for (const auto& population : populations_) {
      emigrants.push_back(
          *std::min_element(population.begin(), population.end(), ByCost));
    }
    for (size_t i = 0; i < n; ++i) {
      auto& target = populations_[(i + 1) % n];
      auto worst = std::max_element(target.begin(), target.end(), ByCost);
      if (emigrants[i].cost.Better(worst->cost)) {
        *worst = emigrants[i];
        if (opts_.progress != nullptr) {
          opts_.progress->migrations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  const MemeticOptions& opts_;
  size_t island_population_ = 3;
  std::vector<std::unique_ptr<Evolver>> evolvers_;
  std::vector<std::vector<Member>> populations_;
};

}  // namespace

Result<Allocation> MemeticAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  GreedyAllocator greedy;
  QCAP_ASSIGN_OR_RETURN(Allocation seed, greedy.Allocate(cls, backends));
  return Improve(cls, backends, seed);
}

Result<Allocation> MemeticAllocator::Improve(
    const Classification& cls, const std::vector<BackendSpec>& backends,
    const Allocation& seed_allocation) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());
  ThreadPool* pool = options_.pool;
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    const size_t threads = options_.threads == 0 ? ThreadPool::DefaultThreads()
                                                 : options_.threads;
    if (threads > 1) {
      owned = std::make_unique<ThreadPool>(threads);
      pool = owned.get();
    }
  }
  const ClassificationIndex index(cls);
  // Bind fragment sizes (O(1) cost accounting) and garbage-collect the seed
  // once: every population member descends from it, and the search assumes
  // members are collected so trials only need to re-collect touched rows.
  Allocation seed = seed_allocation;
  if (!seed.sizes_bound()) seed.BindSizes(cls.catalog);
  {
    SearchKernel kernel(cls, index, backends, options_.progress);
    kernel.GarbageCollect(&seed);
  }
  IslandModel model(cls, index, backends, options_);
  return model.Run(seed, pool);
}

}  // namespace qcap
