#include "alloc/memetic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "alloc/greedy.h"
#include "cluster/stats.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "model/metrics.h"

namespace qcap {

namespace {

/// Solution cost: lexicographic (scale, stored bytes). Lower is better.
struct Cost {
  double scale = 0.0;
  double bytes = 0.0;

  bool Better(const Cost& other) const {
    if (scale < other.scale - 1e-9) return true;
    if (scale > other.scale + 1e-9) return false;
    return bytes < other.bytes - 1e-6;
  }
};

struct Member {
  Allocation alloc;
  Cost cost;
};

/// One island: an independent subpopulation with its own RNG stream
/// (`opts.seed + island_id`). All mutation/selection state is confined to
/// the island, so islands can evolve on different pool workers without
/// synchronization; they interact only at the serial migration barrier run
/// by the coordinator between epochs.
class Evolver {
 public:
  Evolver(const Classification& cls, const std::vector<BackendSpec>& backends,
          const MemeticOptions& opts, uint64_t island_id)
      : cls_(cls),
        backends_(backends),
        opts_(opts),
        rng_(opts.seed + island_id) {}

  Cost Evaluate(const Allocation& a) const {
    if (opts_.progress != nullptr) {
      opts_.progress->evaluations.fetch_add(1, std::memory_order_relaxed);
    }
    double stored = 0.0;
    for (size_t b = 0; b < a.num_backends(); ++b) {
      stored += a.BackendBytes(b, cls_.catalog);
    }
    Cost cost{Scale(a, backends_), stored};
    if (opts_.progress != nullptr) opts_.progress->RecordScale(cost.scale);
    return cost;
  }

  /// Drops every fragment a backend no longer needs for its assigned read
  /// classes (and the update classes forced by what remains), then restores
  /// global data completeness.
  void GarbageCollect(Allocation* a) const {
    for (size_t b = 0; b < a->num_backends(); ++b) {
      FragmentSet needed;
      for (size_t r = 0; r < cls_.reads.size(); ++r) {
        if (a->read_assign(b, r) > 1e-15) {
          needed = SetUnion(needed, cls_.reads[r].fragments);
        }
      }
      // Fixpoint: update classes overlapping the needed set stay, and keep
      // their full fragment sets.
      bool changed = true;
      std::vector<bool> keep_update(cls_.updates.size(), false);
      while (changed) {
        changed = false;
        for (size_t u = 0; u < cls_.updates.size(); ++u) {
          if (keep_update[u]) continue;
          if (Intersects(cls_.updates[u].fragments, needed)) {
            keep_update[u] = true;
            needed = SetUnion(needed, cls_.updates[u].fragments);
            changed = true;
          }
        }
      }
      // Allocation exposes no per-fragment removal, so the shrink happens
      // by rebuilding this backend's whole row from `needed`.
      RebuildBackendRow(a, b, needed, keep_update);
    }
    alloc_internal::PlaceOrphanFragments(cls_, a);
  }

  Allocation Mutate(const Allocation& parent) {
    Allocation child = parent;
    // Move one random (class, backend) read share to another backend.
    std::vector<std::pair<size_t, size_t>> positive;  // (read class, backend)
    for (size_t r = 0; r < cls_.reads.size(); ++r) {
      for (size_t b = 0; b < child.num_backends(); ++b) {
        if (child.read_assign(b, r) > 1e-12) positive.emplace_back(r, b);
      }
    }
    if (positive.empty() || child.num_backends() < 2) return child;
    const auto [r, b1] = positive[rng_.NextBounded(positive.size())];
    size_t b2 = static_cast<size_t>(rng_.NextBounded(child.num_backends() - 1));
    if (b2 >= b1) ++b2;
    const double have = child.read_assign(b1, r);
    const double share =
        rng_.NextBernoulli(0.5) ? have : have * rng_.NextDouble(0.25, 1.0);
    child.add_read_assign(b1, r, -share);
    child.add_read_assign(b2, r, share);
    child.PlaceSet(b2, cls_.reads[r].fragments);
    alloc_internal::CloseUpdatesOnBackend(cls_, b2, &child);
    GarbageCollect(&child);
    return child;
  }

  /// Local search strategy 1 (Eq. 21/22): consolidate pairs of read classes
  /// that are split across the same two backends but drag different update
  /// sets, freeing update replicas.
  bool ImproveSharedPairs(Allocation* a) const {
    const Cost before = Evaluate(*a);
    for (size_t b1 = 0; b1 < a->num_backends(); ++b1) {
      for (size_t b2 = b1 + 1; b2 < a->num_backends(); ++b2) {
        std::vector<size_t> shared;
        for (size_t r = 0; r < cls_.reads.size(); ++r) {
          if (a->read_assign(b1, r) > 1e-12 && a->read_assign(b2, r) > 1e-12) {
            shared.push_back(r);
          }
        }
        if (shared.size() < 2) continue;
        for (size_t i = 0; i < shared.size(); ++i) {
          for (size_t j = 0; j < shared.size(); ++j) {
            if (i == j) continue;
            const size_t r1 = shared[i], r2 = shared[j];
            if (cls_.OverlappingUpdates(cls_.reads[r1]) ==
                cls_.OverlappingUpdates(cls_.reads[r2])) {
              continue;
            }
            const double delta =
                std::min(a->read_assign(b2, r1), a->read_assign(b1, r2));
            if (delta <= 1e-12) continue;
            Allocation trial = *a;
            trial.add_read_assign(b2, r1, -delta);
            trial.add_read_assign(b1, r1, delta);
            trial.add_read_assign(b1, r2, -delta);
            trial.add_read_assign(b2, r2, delta);
            GarbageCollect(&trial);
            if (Evaluate(trial).Better(before)) {
              *a = std::move(trial);
              RecordImprovement();
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  /// Local search strategy 2 (Eq. 23-26): evacuate the read load that pins a
  /// replicated (heavy) update class on one backend over to another backend
  /// already carrying the class, trading lighter replication for it.
  bool ImproveUpdateReplicas(Allocation* a) const {
    const Cost before = Evaluate(*a);
    for (size_t u = 0; u < cls_.updates.size(); ++u) {
      std::vector<size_t> holders;
      for (size_t b = 0; b < a->num_backends(); ++b) {
        if (a->update_assign(b, u) > 1e-12) holders.push_back(b);
      }
      if (holders.size() < 2) continue;
      for (size_t b1 : holders) {
        for (size_t b2 : holders) {
          if (b1 == b2) continue;
          Allocation trial = *a;
          bool moved = false;
          for (size_t r = 0; r < cls_.reads.size(); ++r) {
            if (trial.read_assign(b1, r) <= 1e-12) continue;
            if (!Intersects(cls_.reads[r].fragments, cls_.updates[u].fragments)) {
              continue;
            }
            const double w = trial.read_assign(b1, r);
            trial.add_read_assign(b1, r, -w);
            trial.add_read_assign(b2, r, w);
            trial.PlaceSet(b2, cls_.reads[r].fragments);
            alloc_internal::CloseUpdatesOnBackend(cls_, b2, &trial);
            moved = true;
          }
          if (!moved) continue;
          GarbageCollect(&trial);
          if (Evaluate(trial).Better(before)) {
            *a = std::move(trial);
            RecordImprovement();
            return true;
          }
        }
      }
    }
    return false;
  }

  void LocalImprove(Allocation* a) const {
    for (size_t pass = 0; pass < opts_.improve_passes; ++pass) {
      const bool improved = ImproveSharedPairs(a) || ImproveUpdateReplicas(a);
      if (!improved) break;
    }
  }

  /// Evolves the island's population for \p generations. Mutation and
  /// selection draw from the island RNG on the calling thread; only the
  /// (pure) offspring evaluations fan out over \p pool, writing each cost
  /// to its own slot, so the outcome is independent of the thread count.
  void EvolveGenerations(std::vector<Member>* population, size_t generations,
                         size_t island_population, ThreadPool* pool) {
    const size_t p = std::max<size_t>(3, island_population);
    for (size_t iter = 0; iter < generations; ++iter) {
      // Offspring: p mutations of random parents (serial: RNG), then a
      // parallel evaluation of the batch.
      std::vector<Allocation> kids;
      kids.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        const Member& parent =
            (*population)[rng_.NextBounded(population->size())];
        kids.push_back(Mutate(parent.alloc));
      }
      std::vector<Cost> costs(p);
      ParallelFor(pool, p,
                  [&](size_t i) { costs[i] = Evaluate(kids[i]); });
      std::vector<Member> offspring;
      offspring.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        offspring.push_back(Member{std::move(kids[i]), costs[i]});
      }
      // (λ+µ) selection: best 2/3 of parents + best 1/3 of offspring.
      auto by_cost = [](const Member& x, const Member& y) {
        return x.cost.Better(y.cost);
      };
      std::sort(population->begin(), population->end(), by_cost);
      std::sort(offspring.begin(), offspring.end(), by_cost);
      std::vector<Member> next;
      const size_t keep_parents = std::min(population->size(), 2 * p / 3);
      const size_t keep_children = std::min(offspring.size(), p - keep_parents);
      for (size_t i = 0; i < keep_parents; ++i) {
        next.push_back(std::move((*population)[i]));
      }
      for (size_t i = 0; i < keep_children; ++i) {
        next.push_back(std::move(offspring[i]));
      }
      *population = std::move(next);
      // Memetic step: locally improve a random third of the population.
      const size_t improve_count = std::max<size_t>(1, population->size() / 3);
      for (size_t i = 0; i < improve_count; ++i) {
        Member& m = (*population)[rng_.NextBounded(population->size())];
        LocalImprove(&m.alloc);
        m.cost = Evaluate(m.alloc);
      }
      if (opts_.progress != nullptr) {
        opts_.progress->generations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

 private:
  void RecordImprovement() const {
    if (opts_.progress != nullptr) {
      opts_.progress->improvements.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RebuildBackendRow(Allocation* a, size_t b, const FragmentSet& needed,
                         const std::vector<bool>& keep_update) const {
    // Allocation exposes no removal, so rebuild the whole structure with
    // this backend's row replaced. Cheap at our problem sizes.
    Allocation fresh(a->num_backends(), a->num_fragments(), a->num_reads(),
                     a->num_updates());
    for (size_t bb = 0; bb < a->num_backends(); ++bb) {
      if (bb == b) {
        fresh.PlaceSet(bb, needed);
        for (size_t r = 0; r < a->num_reads(); ++r) {
          fresh.set_read_assign(bb, r, a->read_assign(bb, r));
        }
        for (size_t u = 0; u < a->num_updates(); ++u) {
          fresh.set_update_assign(
              bb, u, keep_update[u] ? cls_.updates[u].weight : 0.0);
        }
      } else {
        fresh.PlaceSet(bb, a->BackendFragments(bb));
        for (size_t r = 0; r < a->num_reads(); ++r) {
          fresh.set_read_assign(bb, r, a->read_assign(bb, r));
        }
        for (size_t u = 0; u < a->num_updates(); ++u) {
          fresh.set_update_assign(bb, u, a->update_assign(bb, u));
        }
      }
    }
    *a = std::move(fresh);
  }

  const Classification& cls_;
  const std::vector<BackendSpec>& backends_;
  const MemeticOptions& opts_;
  Rng rng_;
};

/// Coordinates the islands: epochs of independent evolution (parallel over
/// the pool) separated by serial ring migrations of each island's best
/// member. All cross-island decisions happen here, on one thread, from
/// fully evolved island states — thread count never changes the result.
class IslandModel {
 public:
  IslandModel(const Classification& cls,
              const std::vector<BackendSpec>& backends,
              const MemeticOptions& opts)
      : opts_(opts) {
    const size_t n = std::max<size_t>(1, opts.num_islands);
    island_population_ =
        std::max<size_t>(3, opts.population_size / n);
    evolvers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      evolvers_.push_back(
          std::make_unique<Evolver>(cls, backends, opts, /*island_id=*/i));
    }
    populations_.resize(n);
  }

  Allocation Run(const Allocation& seed, ThreadPool* pool) {
    const size_t n = evolvers_.size();
    for (size_t i = 0; i < n; ++i) {
      populations_[i].push_back(
          Member{seed, evolvers_[i]->Evaluate(seed)});
    }
    const size_t epoch = opts_.migration_interval == 0
                             ? opts_.iterations
                             : opts_.migration_interval;
    size_t remaining = opts_.iterations;
    while (remaining > 0) {
      const size_t generations = std::min(epoch == 0 ? remaining : epoch,
                                          remaining);
      ParallelFor(pool, n, [&](size_t i) {
        evolvers_[i]->EvolveGenerations(&populations_[i], generations,
                                        island_population_, pool);
      });
      remaining -= generations;
      if (remaining > 0 && n > 1) Migrate();
    }
    // Winner: scan islands in id order; strict Better keeps ties stable.
    const Member* best = nullptr;
    for (const auto& population : populations_) {
      for (const Member& member : population) {
        if (best == nullptr || member.cost.Better(best->cost)) {
          best = &member;
        }
      }
    }
    return best->alloc;
  }

 private:
  static bool ByCost(const Member& x, const Member& y) {
    return x.cost.Better(y.cost);
  }

  /// Ring migration: island i's best member immigrates into island
  /// (i+1) % n, replacing that island's worst member if it improves on it.
  /// Emigrants are snapshotted first so the outcome is order-independent.
  void Migrate() {
    const size_t n = populations_.size();
    std::vector<Member> emigrants;
    emigrants.reserve(n);
    for (const auto& population : populations_) {
      emigrants.push_back(
          *std::min_element(population.begin(), population.end(), ByCost));
    }
    for (size_t i = 0; i < n; ++i) {
      auto& target = populations_[(i + 1) % n];
      auto worst = std::max_element(target.begin(), target.end(), ByCost);
      if (emigrants[i].cost.Better(worst->cost)) {
        *worst = emigrants[i];
        if (opts_.progress != nullptr) {
          opts_.progress->migrations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  const MemeticOptions& opts_;
  size_t island_population_ = 3;
  std::vector<std::unique_ptr<Evolver>> evolvers_;
  std::vector<std::vector<Member>> populations_;
};

}  // namespace

Result<Allocation> MemeticAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  GreedyAllocator greedy;
  QCAP_ASSIGN_OR_RETURN(Allocation seed, greedy.Allocate(cls, backends));
  return Improve(cls, backends, seed);
}

Result<Allocation> MemeticAllocator::Improve(
    const Classification& cls, const std::vector<BackendSpec>& backends,
    const Allocation& seed_allocation) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());
  ThreadPool* pool = options_.pool;
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    const size_t threads = options_.threads == 0 ? ThreadPool::DefaultThreads()
                                                 : options_.threads;
    if (threads > 1) {
      owned = std::make_unique<ThreadPool>(threads);
      pool = owned.get();
    }
  }
  IslandModel model(cls, backends, options_);
  return model.Run(seed_allocation, pool);
}

}  // namespace qcap
