#include "alloc/search_kernel.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "alloc/allocator.h"
#include "common/stats.h"

namespace qcap::alloc_internal {

namespace {

bool ContainsBackend(const std::vector<size_t>& list, size_t b) {
  for (size_t x : list) {
    if (x == b) return true;
  }
  return false;
}

}  // namespace

SearchKernel::SearchKernel(const Classification& cls,
                           const ClassificationIndex& index,
                           const std::vector<BackendSpec>& backends,
                           SearchProgress* progress)
    : cls_(cls), index_(index), backends_(backends), progress_(progress) {
  needed_.Reset(cls.catalog.size());
  keep_updates_.Reset(cls.updates.size());
  row_scratch_.Reset(cls.catalog.size());
  base_norm_.resize(backends.size());
  base_bytes_.resize(backends.size());
}

// The region below is the search's innermost machinery: full/delta cost
// evaluation and per-backend collection run once per trial, millions of
// times per allocation. Convention (CHANGES.md PR 3): zero steady-state
// heap allocation — scratch is sized in the constructor and reused.
// qcap-lint: hot-path begin

SolutionCost SearchKernel::Evaluate(const Allocation& a) const {
  assert(a.sizes_bound());
  if (progress_ != nullptr) {
    progress_->evaluations.fetch_add(1, std::memory_order_relaxed);
  }
  double stored = 0.0;
  double scale = 1.0;
  for (size_t b = 0; b < a.num_backends(); ++b) {
    stored += a.BackendBytes(b, cls_.catalog);
    scale = std::max(scale, a.AssignedLoad(b) / backends_[b].relative_load);
  }
  SolutionCost cost{scale, stored};
  if (progress_ != nullptr) progress_->RecordScale(cost.scale);
  return cost;
}

void SearchKernel::CollectBackend(Allocation* a, size_t b) {
  // needed = ∪ closure_fragments(r) over reads with positive share; the
  // update pins are the union of the corresponding precomputed closures.
  // Reachability distributes over unions, so this equals the per-backend
  // O(U²) fixpoint the pre-index GarbageCollect ran.
  needed_.ClearAll();
  keep_updates_.ClearAll();
  for (size_t r = 0; r < cls_.reads.size(); ++r) {
    if (a->read_assign(b, r) > 1e-15) {
      needed_.UnionWith(index_.read_closure_fragments(r));
      keep_updates_.UnionWith(index_.read_closure_updates(r));
    }
  }
  a->RetainFragments(b, needed_);
  a->PlaceBits(b, needed_);
  for (size_t u = 0; u < cls_.updates.size(); ++u) {
    a->set_update_assign(b, u,
                         keep_updates_.Test(u) ? cls_.updates[u].weight : 0.0);
  }
}

void SearchKernel::GarbageCollect(Allocation* a) {
  for (size_t b = 0; b < a->num_backends(); ++b) CollectBackend(a, b);
  PlaceOrphans(a, nullptr);
}

void SearchKernel::GarbageCollectBackends(Allocation* a, const size_t* bs,
                                          size_t count,
                                          std::vector<size_t>* touched) {
  touched->clear();
  for (size_t i = 0; i < count; ++i) {
    CollectBackend(a, bs[i]);
    // qcap-lint: allow(hot-path-growth) -- touched holds <= num_backends entries; capacity is reached on the first call and reused
    if (!ContainsBackend(*touched, bs[i])) touched->push_back(bs[i]);
  }
  PlaceOrphans(a, touched);
}

void SearchKernel::PlaceOrphans(Allocation* a, std::vector<size_t>* touched) {
  for (FragmentId f = 0; f < a->num_fragments(); ++f) {
    if (a->ReplicaCount(f) > 0) continue;
    size_t target = 0;
    double target_bytes = std::numeric_limits<double>::infinity();
    for (size_t b = 0; b < a->num_backends(); ++b) {
      const double bytes = a->BackendBytes(b, cls_.catalog);
      if (bytes < target_bytes) {
        target_bytes = bytes;
        target = b;
      }
    }
    a->Place(target, f);
    if (index_.fragment_updated(f)) CloseUpdates(a, target);
    if (touched != nullptr && !ContainsBackend(*touched, target)) {
      // qcap-lint: allow(hot-path-growth) -- bounded by num_backends; reuses steady-state capacity
      touched->push_back(target);
    }
  }
}

double SearchKernel::CloseUpdates(Allocation* a, size_t b) {
  return CloseUpdatesOnBackend(cls_, index_, b, a, &row_scratch_);
}

void SearchKernel::BeginDelta(const Allocation& base, SolutionCost base_cost) {
  const size_t n = base.num_backends();
  base_bytes_total_ = base_cost.bytes;
  for (size_t b = 0; b < n; ++b) {
    base_norm_[b] = base.AssignedLoad(b) / backends_[b].relative_load;
    base_bytes_[b] = base.BackendBytes(b, cls_.catalog);
  }
  // Top-3 loaded backends: EvaluateDelta needs the max base load over the
  // untouched backends, and trials touch 2 backends plus the occasional
  // orphan target, so three candidates almost always suffice.
  top_count_ = 0;
  for (size_t b = 0; b < n; ++b) {
    const double v = base_norm_[b];
    size_t k = top_count_ < 3 ? top_count_ : 3;
    while (k > 0 && v > top_val_[k - 1]) --k;
    if (k >= 3) continue;
    for (size_t j = std::min<size_t>(top_count_, 2); j > k; --j) {
      top_val_[j] = top_val_[j - 1];
      top_idx_[j] = top_idx_[j - 1];
    }
    top_val_[k] = v;
    top_idx_[k] = b;
    if (top_count_ < 3) ++top_count_;
  }
}

SolutionCost SearchKernel::EvaluateDelta(
    const Allocation& trial, const std::vector<size_t>& touched) const {
  if (progress_ != nullptr) {
    progress_->evaluations.fetch_add(1, std::memory_order_relaxed);
  }
  double bytes = base_bytes_total_;
  double scale = 1.0;
  for (size_t b : touched) {
    bytes += trial.BackendBytes(b, cls_.catalog) - base_bytes_[b];
    scale = std::max(scale,
                     trial.AssignedLoad(b) / backends_[b].relative_load);
  }
  bool found = false;
  for (size_t k = 0; k < top_count_; ++k) {
    if (!ContainsBackend(touched, top_idx_[k])) {
      scale = std::max(scale, top_val_[k]);
      found = true;
      break;
    }
  }
  if (!found && trial.num_backends() > touched.size()) {
    // Every cached top backend was touched: one fallback scan.
    for (size_t b = 0; b < trial.num_backends(); ++b) {
      if (!ContainsBackend(touched, b)) scale = std::max(scale, base_norm_[b]);
    }
  }
  SolutionCost cost{scale, bytes};
  if (progress_ != nullptr) progress_->RecordScale(cost.scale);
  return cost;
}

// qcap-lint: hot-path end

}  // namespace qcap::alloc_internal
