// Partitioning advisor: picks the classification granularity for a
// workload by actually running the allocator at each candidate granularity
// and comparing the analytical outcomes.
//
// Section 3.1 leaves the granularity choice to the operator ("the
// classification determines the partitioning"); the advisor automates it
// with the paper's own objective order — maximize throughput first, then
// minimize storage.
#pragma once

#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/memetic.h"
#include "engine/catalog.h"
#include "workload/classifier.h"

namespace qcap {

class ThreadPool;  // common/thread_pool.h

/// Options for the advisor.
struct AdvisorOptions {
  /// Granularities to evaluate, in preference order for exact ties.
  std::vector<Granularity> candidates = {Granularity::kTable,
                                         Granularity::kColumn,
                                         Granularity::kHybrid};
  /// Classifier settings shared by all candidates.
  int horizontal_partitions = 4;
  bool include_candidate_keys = true;
  double hybrid_column_threshold_bytes = 64.0 * 1024 * 1024;
  /// Candidates within this relative speedup of the best are considered
  /// throughput ties; the one with the least storage wins among them.
  double speedup_tolerance = 0.02;
  /// Configuration for the advisor-owned memetic allocator, used when the
  /// advisor is constructed without an external allocator. Its
  /// islands/threads knobs make the default advisor path parallel.
  MemeticOptions memetic;
  /// Optional pool: candidate granularities are classified and allocated
  /// concurrently on it. Requires an allocator whose Allocate() is safe to
  /// call from several threads at once (every allocator in this repo except
  /// OptimalAllocator, which caches last_scale()). The chosen candidate is
  /// the same with or without a pool. Not owned.
  ThreadPool* pool = nullptr;
};

/// One evaluated candidate.
struct AdvisorCandidate {
  Granularity granularity = Granularity::kTable;
  Classification classification;
  Allocation allocation;
  double model_speedup = 0.0;
  double degree_of_replication = 0.0;
};

/// Advisor outcome: the chosen candidate plus everything evaluated.
struct AdvisorChoice {
  AdvisorCandidate best;
  std::vector<AdvisorCandidate> evaluated;
};

/// \brief Evaluates candidate granularities and picks the winner.
class PartitioningAdvisor {
 public:
  /// \p allocator computes the allocation for every candidate. Pass
  /// nullptr to let the advisor own a MemeticAllocator configured from
  /// \ref AdvisorOptions::memetic.
  PartitioningAdvisor(const engine::Catalog& catalog, Allocator* allocator,
                      AdvisorOptions options = {});

  /// Classifies \p journal at each candidate granularity, allocates onto
  /// \p backends, validates, and returns the best valid candidate.
  /// Fails if no candidate produces a valid allocation.
  Result<AdvisorChoice> Advise(const QueryJournal& journal,
                               const std::vector<BackendSpec>& backends) const;

 private:
  const engine::Catalog& catalog_;
  Allocator* allocator_;
  AdvisorOptions options_;
  /// Backing storage for the default (memetic) allocator when the caller
  /// passed allocator == nullptr.
  std::unique_ptr<MemeticAllocator> owned_allocator_;
};

}  // namespace qcap
