#include "alloc/random_allocator.h"

#include "common/random.h"

namespace qcap {

Result<Allocation> RandomAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());

  const size_t n = backends.size();
  Allocation alloc(n, cls.catalog.size(), cls.reads.size(), cls.updates.size());
  Rng rng(seed_);

  for (size_t r = 0; r < cls.reads.size(); ++r) {
    const size_t b = static_cast<size_t>(rng.NextBounded(n));
    alloc.PlaceSet(b, cls.reads[r].fragments);
    alloc.set_read_assign(b, r, cls.reads[r].weight);
  }
  // Update classes not touched by any read still need a home.
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    bool placed_anywhere = false;
    for (size_t b = 0; b < n && !placed_anywhere; ++b) {
      placed_anywhere = Intersects(cls.updates[u].fragments,
                                   alloc.BackendFragments(b));
    }
    if (!placed_anywhere) {
      const size_t b = static_cast<size_t>(rng.NextBounded(n));
      alloc.PlaceSet(b, cls.updates[u].fragments);
    }
  }
  alloc_internal::CloseUpdatesEverywhere(cls, &alloc);
  alloc_internal::PlaceOrphanFragments(cls, &alloc);
  return alloc;
}

}  // namespace qcap
