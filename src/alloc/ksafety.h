// K-safe greedy allocation (Appendix C, Algorithm 4).
//
// Ensures every query class is executable on at least k+1 backends and
// every fragment is stored at least k+1 times, so the cluster survives the
// loss of any k backends with no data loss and no reallocation.
#pragma once

#include "alloc/allocator.h"

namespace qcap {

/// Options for the k-safe allocator.
struct KSafetyOptions {
  /// Number of tolerated backend failures; k+1 replicas of every class.
  int k = 1;
  double epsilon = 1e-12;
  size_t max_iterations = 0;  ///< 0 = derive from problem size.
};

/// \brief Algorithm 4: greedy allocation with k+1-fold class replication.
class KSafeGreedyAllocator : public Allocator {
 public:
  explicit KSafeGreedyAllocator(KSafetyOptions options = {})
      : options_(options) {}

  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override {
    return "greedy-k" + std::to_string(options_.k);
  }

 private:
  KSafetyOptions options_;
};

}  // namespace qcap
