// K-safe greedy allocation (Appendix C, Algorithm 4).
//
// Ensures every query class is executable on at least k+1 backends and
// every fragment is stored at least k+1 times, so the cluster survives the
// loss of any k backends with no data loss and no reallocation.
#pragma once

#include "alloc/allocator.h"

namespace qcap {

/// Options for the k-safe allocator.
struct KSafetyOptions {
  /// Number of tolerated backend failures; k+1 replicas of every class.
  int k = 1;
  double epsilon = 1e-12;
  size_t max_iterations = 0;  ///< 0 = derive from problem size.
};

/// \brief Algorithm 4: greedy allocation with k+1-fold class replication.
///
/// Extends Algorithm 1 so the k-safe validity constraints (Eq. 46/47)
/// hold: each read class is spread over at least k+1 backends (its weight
/// split between them) and consequently every fragment has at least k+1
/// replicas. The paper's Algorithm 3 (checking k-safety of an existing
/// allocation) lives in model/validation.h.
class KSafeGreedyAllocator : public Allocator {
 public:
  explicit KSafeGreedyAllocator(KSafetyOptions options = {})
      : options_(options) {}

  /// Runs Algorithm 4 on \p cls over \p backends.
  /// \returns an allocation that survives any \ref KSafetyOptions::k
  /// simultaneous backend failures, or a Status (e.g. fewer than k+1
  /// backends).
  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override {
    return "greedy-k" + std::to_string(options_.k);
  }

 private:
  KSafetyOptions options_;
};

}  // namespace qcap
