#include "alloc/ksafety.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qcap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Pending {
  size_t index = 0;
  bool is_update = false;
  /// True for the zero-weight extra copies added for k-safety (the members
  /// of the multiset Ck in Algorithm 4).
  bool is_replica = false;
};

}  // namespace

Result<Allocation> KSafeGreedyAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());
  const size_t n = backends.size();
  const int k = options_.k;
  if (k < 0) {
    return Status::InvalidArgument("k must be non-negative");
  }
  if (static_cast<size_t>(k) + 1 > n) {
    return Status::InvalidArgument(
        "k-safety of " + std::to_string(k) + " needs at least " +
        std::to_string(k + 1) + " backends, have " + std::to_string(n));
  }

  const double eps = options_.epsilon;
  // Memoized overlaps/bundles with the same accumulation orders as the
  // Classification helpers: comparisons stay bitwise identical.
  const ClassificationIndex index(cls);
  Allocation alloc(n, cls.catalog, cls.reads.size(), cls.updates.size());

  // Lines 1-2: C* plus the initial replica multiset Ck (update classes not
  // covered by any read class need k extra explicit copies).
  std::vector<Pending> queue;
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    queue.push_back(Pending{r, false, false});
  }
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    if (index.reads_overlapping_update(u).empty()) {
      queue.push_back(Pending{u, true, false});
      for (int copy = 0; copy < k; ++copy) {
        queue.push_back(Pending{u, true, true});
      }
    }
  }

  auto class_of = [&](const Pending& p) -> const QueryClass& {
    return p.is_update ? cls.updates[p.index] : cls.reads[p.index];
  };
  auto class_bits = [&](const Pending& p) -> const DenseBitset& {
    return p.is_update ? index.update_bits(p.index) : index.read_bits(p.index);
  };
  auto overlap_weight = [&](const Pending& p) {
    return p.is_update ? index.update_overlapping_update_weight(p.index)
                       : index.read_overlapping_update_weight(p.index);
  };
  auto bundle_weight = [&](const Pending& p) {
    double w = overlap_weight(p);
    if (!p.is_update && !p.is_replica) w += class_of(p).weight;
    return w;
  };
  auto bundle_size = [&](const Pending& p) {
    return p.is_update ? index.update_bundle_bytes(p.index)
                       : index.read_bundle_bytes(p.index);
  };
  auto bundle_bits = [&](const Pending& p) -> const DenseBitset& {
    return p.is_update ? index.update_bundle_bits(p.index)
                       : index.read_bundle_bits(p.index);
  };
  DenseBitset row_scratch(cls.catalog.size());

  std::vector<double> current_load(n, 0.0);
  std::vector<double> scaled_load(n);
  for (size_t b = 0; b < n; ++b) scaled_load[b] = backends[b].relative_load;
  std::vector<double> rest_weight(cls.reads.size());
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    rest_weight[r] = cls.reads[r].weight;
  }
  std::vector<bool> replicas_added(cls.reads.size(), false);

  size_t max_iters = options_.max_iterations;
  if (max_iters == 0) {
    max_iters = 64 * (queue.size() + static_cast<size_t>(k + 1)) *
                    (cls.NumClasses() + 1) * (n + 1) + 1024;
  }
  size_t iters = 0;

  auto resort = [&]() {
    std::stable_sort(queue.begin(), queue.end(),
                     [&](const Pending& a, const Pending& b) {
                       const double wa = (!a.is_update && !a.is_replica)
                                             ? rest_weight[a.index] +
                                                   overlap_weight(a)
                                             : bundle_weight(a);
                       const double wb = (!b.is_update && !b.is_replica)
                                             ? rest_weight[b.index] +
                                                   overlap_weight(b)
                                             : bundle_weight(b);
                       return wa * bundle_size(a) > wb * bundle_size(b);
                     });
  };
  resort();

  while (!queue.empty()) {
    if (++iters > max_iters) {
      return Status::Internal("k-safe greedy allocation did not converge");
    }
    const Pending p = queue.front();
    queue.erase(queue.begin());
    const QueryClass& c = class_of(p);

    // Scale every backend if all are full (Lines 8-10).
    bool all_full = true;
    for (size_t b = 0; b < n; ++b) {
      if (current_load[b] < scaled_load[b] - eps) {
        all_full = false;
        break;
      }
    }
    if (all_full) {
      const double w = std::max(c.weight, 1e-6);
      for (size_t b = 0; b < n; ++b) {
        scaled_load[b] = current_load[b] + backends[b].relative_load * w;
      }
    }

    // Differences (Lines 11-17); replicas must not land on a backend that
    // already holds the class (Line 12).
    const DenseBitset& bundle = bundle_bits(p);
    std::vector<double> difference(n);
    for (size_t b = 0; b < n; ++b) {
      const bool full = current_load[b] >= scaled_load[b] - eps;
      const bool already_holds =
          p.is_replica && alloc.HoldsAllBits(b, class_bits(p));
      if (full || already_holds) {
        difference[b] = kInf;
      } else if (current_load[b] <= eps) {
        difference[b] = 0.0;
      } else {
        difference[b] = alloc.MissingBytes(b, bundle);
      }
    }

    // Minimal difference; ties go to the lowest backend index (first fit).
    size_t target = n;
    for (size_t b = 0; b < n; ++b) {
      if (difference[b] == kInf) continue;
      if (target == n || difference[b] < difference[target] - 1e-15) {
        target = b;
      }
    }
    if (target == n) {
      // All candidates excluded: pick the least relatively loaded backend
      // not already holding the class (for replicas).
      double best = kInf;
      for (size_t b = 0; b < n; ++b) {
        if (p.is_replica && alloc.HoldsAllBits(b, class_bits(p))) continue;
        const double rel = current_load[b] / backends[b].relative_load;
        if (rel < best) {
          best = rel;
          target = b;
        }
      }
      if (target == n) continue;  // Class already everywhere; nothing to add.
    }

    alloc.PlaceBits(target, class_bits(p));
    const double added_updates = alloc_internal::CloseUpdatesOnBackend(
        cls, index, target, &alloc, &row_scratch);
    current_load[target] += added_updates;

    if (p.is_update || p.is_replica) {
      // Lines 21-24: update classes and zero-weight replicas are one-shot.
      if (current_load[target] > scaled_load[target]) {
        scaled_load[target] = current_load[target];
        double scale = 0.0;
        for (size_t b = 0; b < n; ++b) {
          scale = std::max(scale, current_load[b] / backends[b].relative_load);
        }
        if (scale > 1.0) {
          for (size_t b = 0; b < n; ++b) {
            scaled_load[b] =
                std::max(scaled_load[b], backends[b].relative_load * scale);
          }
        }
      }
    } else {
      const size_t r = p.index;
      if (current_load[target] >= scaled_load[target] - eps) {
        scaled_load[target] = current_load[target] +
                              backends[target].relative_load * c.weight;
      }
      const double room = scaled_load[target] - current_load[target];
      if (rest_weight[r] > room + eps) {
        alloc.add_read_assign(target, r, room);
        rest_weight[r] -= room;
        current_load[target] = scaled_load[target];
        queue.push_back(p);
      } else {
        alloc.add_read_assign(target, r, rest_weight[r]);
        current_load[target] += rest_weight[r];
        rest_weight[r] = 0.0;
        // Lines 34-38: append the missing zero-weight replicas of this
        // read class.
        if (!replicas_added[r]) {
          replicas_added[r] = true;
          size_t holders = 0;
          for (size_t b = 0; b < n; ++b) {
            if (alloc.HoldsAllBits(b, class_bits(p))) ++holders;
          }
          for (size_t copy = holders; copy < static_cast<size_t>(k) + 1;
               ++copy) {
            queue.push_back(Pending{r, false, true});
          }
        }
      }
    }
    resort();
  }

  // Eq. 46 for everything not covered by class replication (unreferenced
  // fragments): top up to k+1 copies on the least-loaded backends.
  alloc_internal::PlaceOrphanFragments(cls, &alloc);
  for (FragmentId f = 0; f < alloc.num_fragments(); ++f) {
    while (alloc.ReplicaCount(f) < static_cast<size_t>(k) + 1) {
      size_t target = n;
      double best_bytes = kInf;
      for (size_t b = 0; b < n; ++b) {
        if (alloc.IsPlaced(b, f)) continue;
        const double bytes = alloc.BackendBytes(b, cls.catalog);
        if (bytes < best_bytes) {
          best_bytes = bytes;
          target = b;
        }
      }
      if (target == n) break;  // Already everywhere.
      alloc.Place(target, f);
      alloc_internal::CloseUpdatesOnBackend(cls, index, target, &alloc,
                                            &row_scratch);
    }
  }

  return alloc;
}

}  // namespace qcap
