#include "alloc/allocator.h"

#include <limits>

namespace qcap::alloc_internal {

double CloseUpdatesOnBackend(const Classification& cls, size_t b,
                             Allocation* alloc) {
  double added = 0.0;
  bool changed = true;
  while (changed) {
    changed = false;
    FragmentSet frags = alloc->BackendFragments(b);
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      if (alloc->update_assign(b, u) > 0.0) continue;
      if (Intersects(cls.updates[u].fragments, frags)) {
        alloc->PlaceSet(b, cls.updates[u].fragments);
        alloc->set_update_assign(b, u, cls.updates[u].weight);
        added += cls.updates[u].weight;
        changed = true;
      }
    }
  }
  return added;
}

double CloseUpdatesOnBackend(const Classification& cls,
                             const ClassificationIndex& index, size_t b,
                             Allocation* alloc, DenseBitset* row_scratch) {
  double added = 0.0;
  bool changed = true;
  while (changed) {
    changed = false;
    alloc->SnapshotRow(b, row_scratch);
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      if (alloc->update_assign(b, u) > 0.0) continue;
      if (Intersects(index.update_bits(u), *row_scratch)) {
        alloc->PlaceBits(b, index.update_bits(u));
        alloc->set_update_assign(b, u, cls.updates[u].weight);
        added += cls.updates[u].weight;
        changed = true;
      }
    }
  }
  return added;
}

void CloseUpdatesEverywhere(const Classification& cls, Allocation* alloc) {
  for (size_t b = 0; b < alloc->num_backends(); ++b) {
    CloseUpdatesOnBackend(cls, b, alloc);
  }
}

size_t LeastLoadedBackendByBytes(const Classification& cls,
                                 const Allocation& alloc) {
  size_t best = 0;
  double best_bytes = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    const double bytes = alloc.BackendBytes(b, cls.catalog);
    if (bytes < best_bytes) {
      best_bytes = bytes;
      best = b;
    }
  }
  return best;
}

void PlaceOrphanFragments(const Classification& cls, Allocation* alloc) {
  for (FragmentId f = 0; f < alloc->num_fragments(); ++f) {
    if (alloc->ReplicaCount(f) > 0) continue;
    // Prefer a backend where storing f creates no new update obligation.
    size_t target = alloc->num_backends();
    double target_bytes = std::numeric_limits<double>::infinity();
    bool fragment_updated = false;
    for (const auto& u : cls.updates) {
      if (Contains(u.fragments, f)) {
        fragment_updated = true;
        break;
      }
    }
    for (size_t b = 0; b < alloc->num_backends(); ++b) {
      const double bytes = alloc->BackendBytes(b, cls.catalog);
      if (bytes < target_bytes) {
        target_bytes = bytes;
        target = b;
      }
    }
    alloc->Place(target, f);
    if (fragment_updated) {
      CloseUpdatesOnBackend(cls, target, alloc);
    }
  }
}

}  // namespace qcap::alloc_internal
