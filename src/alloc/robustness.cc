#include "alloc/robustness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "alloc/allocator.h"
#include "model/metrics.h"
#include "solver/simplex.h"

namespace qcap {

namespace {

/// Builds the read-rebalancing LP over a fixed placement:
/// variables lq_(b,r) for capable pairs plus the scale s (last variable);
/// minimize s subject to full assignment and per-backend capacity
/// (update pinning enters as a constant per backend).
struct RebalanceProgram {
  LinearProgram lp;
  /// Variable index of lq for (backend, read) or SIZE_MAX if not capable.
  std::vector<std::vector<size_t>> var;
  size_t s_var = 0;
};

RebalanceProgram BuildRebalance(const Classification& cls,
                                const Allocation& placement,
                                const std::vector<BackendSpec>& backends,
                                const std::vector<double>& read_weights) {
  const size_t n = backends.size();
  RebalanceProgram prog;
  prog.var.assign(n, std::vector<size_t>(cls.reads.size(), SIZE_MAX));
  size_t num_vars = 0;
  for (size_t b = 0; b < n; ++b) {
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (placement.HoldsAll(b, cls.reads[r].fragments)) {
        prog.var[b][r] = num_vars++;
      }
    }
  }
  prog.s_var = num_vars++;
  prog.lp.num_vars = num_vars;
  prog.lp.objective.assign(num_vars, 0.0);
  prog.lp.objective[prog.s_var] = 1.0;

  // Full assignment per read class.
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    std::vector<double> c(num_vars, 0.0);
    bool any = false;
    for (size_t b = 0; b < n; ++b) {
      if (prog.var[b][r] != SIZE_MAX) {
        c[prog.var[b][r]] = 1.0;
        any = true;
      }
    }
    if (any) {
      prog.lp.AddConstraint(std::move(c), Relation::kEqual, read_weights[r]);
    }
  }
  // Capacity: reads + pinned updates <= s * load.
  for (size_t b = 0; b < n; ++b) {
    std::vector<double> c(num_vars, 0.0);
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (prog.var[b][r] != SIZE_MAX) c[prog.var[b][r]] = 1.0;
    }
    c[prog.s_var] = -backends[b].relative_load;
    prog.lp.AddConstraint(std::move(c), Relation::kLessEqual,
                          -placement.AssignedUpdateLoad(b));
  }
  prog.lp.AddVarBound(prog.s_var, Relation::kGreaterEqual, 1.0);
  return prog;
}

Allocation WithReadAssignments(const Classification& cls,
                               const Allocation& placement,
                               const RebalanceProgram& prog,
                               const LpSolution& sol) {
  Allocation out = placement;
  for (size_t b = 0; b < placement.num_backends(); ++b) {
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      const size_t v = prog.var[b][r];
      out.set_read_assign(b, r, v == SIZE_MAX ? 0.0 : sol.x[v]);
    }
  }
  return out;
}

}  // namespace

Result<Allocation> RebalanceReads(const Classification& cls,
                                  const Allocation& placement,
                                  const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  std::vector<double> weights;
  weights.reserve(cls.reads.size());
  for (const auto& r : cls.reads) weights.push_back(r.weight);
  RebalanceProgram prog = BuildRebalance(cls, placement, backends, weights);
  QCAP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(prog.lp));
  return WithReadAssignments(cls, placement, prog, sol);
}

Result<double> PerturbedSpeedup(const Classification& cls,
                                const Allocation& alloc,
                                const std::vector<BackendSpec>& backends,
                                size_t read_index, double new_weight,
                                bool allow_shift) {
  if (read_index >= cls.reads.size()) {
    return Status::InvalidArgument("read class index out of range");
  }
  if (new_weight < 0.0) {
    return Status::InvalidArgument("weight must be non-negative");
  }
  if (!allow_shift) {
    Allocation perturbed = alloc;
    const double old_weight = cls.reads[read_index].weight;
    const double ratio = old_weight > 0.0 ? new_weight / old_weight : 0.0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      perturbed.set_read_assign(b, read_index,
                                alloc.read_assign(b, read_index) * ratio);
    }
    return Speedup(perturbed, backends);
  }
  std::vector<double> weights;
  weights.reserve(cls.reads.size());
  for (const auto& r : cls.reads) weights.push_back(r.weight);
  weights[read_index] = new_weight;
  RebalanceProgram prog = BuildRebalance(cls, alloc, backends, weights);
  QCAP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(prog.lp));
  const Allocation rebalanced = WithReadAssignments(cls, alloc, prog, sol);
  return Speedup(rebalanced, backends);
}

Result<double> WeightTolerance(const Classification& cls,
                               const Allocation& alloc,
                               const std::vector<BackendSpec>& backends,
                               size_t read_index) {
  if (read_index >= cls.reads.size()) {
    return Status::InvalidArgument("read class index out of range");
  }
  // Maximize delta subject to the rebalancing constraints with the scale
  // fixed at max(current, 1): variables lq..., delta (s is replaced by the
  // constant target scale).
  const double target_scale = std::max(1.0, Scale(alloc, backends));
  const size_t n = backends.size();

  std::vector<std::vector<size_t>> var(n,
                                       std::vector<size_t>(cls.reads.size(),
                                                           SIZE_MAX));
  size_t num_vars = 0;
  for (size_t b = 0; b < n; ++b) {
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (alloc.HoldsAll(b, cls.reads[r].fragments)) var[b][r] = num_vars++;
    }
  }
  const size_t delta_var = num_vars++;
  LinearProgram lp;
  lp.num_vars = num_vars;
  lp.objective.assign(num_vars, 0.0);
  lp.objective[delta_var] = -1.0;  // Maximize delta.

  for (size_t r = 0; r < cls.reads.size(); ++r) {
    std::vector<double> c(num_vars, 0.0);
    bool any = false;
    for (size_t b = 0; b < n; ++b) {
      if (var[b][r] != SIZE_MAX) {
        c[var[b][r]] = 1.0;
        any = true;
      }
    }
    if (!any) continue;
    if (r == read_index) c[delta_var] = -1.0;  // Assign weight + delta.
    lp.AddConstraint(std::move(c), Relation::kEqual, cls.reads[r].weight);
  }
  for (size_t b = 0; b < n; ++b) {
    std::vector<double> c(num_vars, 0.0);
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (var[b][r] != SIZE_MAX) c[var[b][r]] = 1.0;
    }
    lp.AddConstraint(std::move(c), Relation::kLessEqual,
                     target_scale * backends[b].relative_load -
                         alloc.AssignedUpdateLoad(b));
  }
  // Delta is bounded by total capacity; keep the LP bounded explicitly.
  lp.AddVarBound(delta_var, Relation::kLessEqual, 1.0);
  QCAP_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  return sol.x[delta_var];
}

Result<Allocation> AddRobustnessHeadroom(
    const Classification& cls, const Allocation& alloc,
    const std::vector<BackendSpec>& backends,
    const RobustnessOptions& options) {
  Allocation out = alloc;
  size_t added = 0;
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    while (added < options.max_added_replicas) {
      QCAP_ASSIGN_OR_RETURN(double tolerance,
                            WeightTolerance(cls, out, backends, r));
      if (tolerance + 1e-12 >=
          options.required_headroom * cls.reads[r].weight) {
        break;
      }
      // Replicate the class's data (and pinned updates) onto the backend
      // with the most spare relative capacity among those lacking it.
      size_t target = out.num_backends();
      double best_spare = -std::numeric_limits<double>::infinity();
      for (size_t b = 0; b < out.num_backends(); ++b) {
        if (out.HoldsAll(b, cls.reads[r].fragments)) continue;
        const double spare =
            backends[b].relative_load - out.AssignedLoad(b);
        if (spare > best_spare) {
          best_spare = spare;
          target = b;
        }
      }
      if (target == out.num_backends()) break;  // Already everywhere.
      out.PlaceSet(target, cls.reads[r].fragments);
      alloc_internal::CloseUpdatesOnBackend(cls, target, &out);
      ++added;
    }
  }
  return out;
}

}  // namespace qcap
