// Full replication: every backend stores the whole database, every update
// runs everywhere (ROWA), and read load is spread to equalize the scaled
// load across (possibly heterogeneous) backends.
#pragma once

#include "alloc/allocator.h"

namespace qcap {

/// \brief The classic fully replicated cluster (Section 2 baseline).
class FullReplicationAllocator : public Allocator {
 public:
  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "full-replication"; }
};

}  // namespace qcap
