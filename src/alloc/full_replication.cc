#include "alloc/full_replication.h"

#include <algorithm>

namespace qcap {

Result<Allocation> FullReplicationAllocator::Allocate(
    const Classification& cls, const std::vector<BackendSpec>& backends) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_RETURN_NOT_OK(cls.Validate());

  const size_t n = backends.size();
  Allocation alloc(n, cls.catalog.size(), cls.reads.size(), cls.updates.size());

  // Everything everywhere.
  for (size_t b = 0; b < n; ++b) {
    for (FragmentId f = 0; f < cls.catalog.size(); ++f) alloc.Place(b, f);
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      alloc.set_update_assign(b, u, cls.updates[u].weight);
    }
  }

  // Distribute read weight to equalize scaled load: each backend carries the
  // full update weight (serial part), so its read budget is
  // s * load(b) - update_weight for the smallest feasible s (waterfill).
  double update_weight = 0.0;
  for (const auto& u : cls.updates) update_weight += u.weight;
  double read_weight = 0.0;
  for (const auto& r : cls.reads) read_weight += r.weight;

  std::vector<double> budget(n, 0.0);
  if (read_weight > 0.0) {
    // With every load(b) > 0 the equalizing s always yields non-negative
    // budgets (update load is identical on all backends), so no clamping
    // loop is needed: s = read_weight + n * update_weight over total load 1.
    const double s = read_weight + static_cast<double>(n) * update_weight;
    for (size_t b = 0; b < n; ++b) {
      budget[b] = std::max(0.0, s * backends[b].relative_load - update_weight);
    }
    // Normalize tiny floating-point drift so budgets sum to read_weight.
    double total_budget = 0.0;
    for (double v : budget) total_budget += v;
    if (total_budget > 0.0) {
      for (double& v : budget) v *= read_weight / total_budget;
    }
  }

  // Every class is spread over every backend in proportion to its read
  // budget: full replication is workload-unaware, so each backend serves
  // each class (this is also what the runtime least-pending-first scheduler
  // does when every backend is capable).
  double total_budget = 0.0;
  for (double v : budget) total_budget += v;
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    for (size_t b = 0; b < n; ++b) {
      const double share =
          total_budget > 0.0
              ? cls.reads[r].weight * budget[b] / total_budget
              : cls.reads[r].weight / static_cast<double>(n);
      alloc.set_read_assign(b, r, share);
    }
  }

  return alloc;
}

}  // namespace qcap
