#include "alloc/advisor.h"

#include "common/logging.h"
#include "model/metrics.h"
#include "model/validation.h"

namespace qcap {

Result<AdvisorChoice> PartitioningAdvisor::Advise(
    const QueryJournal& journal,
    const std::vector<BackendSpec>& backends) const {
  if (allocator_ == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  if (options_.candidates.empty()) {
    return Status::InvalidArgument("no candidate granularities");
  }

  AdvisorChoice choice;
  Status last_error = Status::OK();
  for (Granularity granularity : options_.candidates) {
    ClassifierOptions copts;
    copts.granularity = granularity;
    copts.horizontal_partitions = options_.horizontal_partitions;
    copts.include_candidate_keys = options_.include_candidate_keys;
    copts.hybrid_column_threshold_bytes =
        options_.hybrid_column_threshold_bytes;
    Classifier classifier(catalog_, copts);

    auto cls = classifier.Classify(journal);
    if (!cls.ok()) {
      last_error = cls.status();
      QCAP_LOG(Debug) << "advisor: classification failed: "
                      << last_error.ToString();
      continue;
    }
    auto alloc = allocator_->Allocate(cls.value(), backends);
    if (!alloc.ok()) {
      last_error = alloc.status();
      continue;
    }
    if (Status valid = ValidateAllocation(cls.value(), alloc.value(), backends);
        !valid.ok()) {
      last_error = valid;
      continue;
    }

    AdvisorCandidate candidate;
    candidate.granularity = granularity;
    candidate.model_speedup = Speedup(alloc.value(), backends);
    candidate.degree_of_replication =
        DegreeOfReplication(alloc.value(), cls->catalog);
    candidate.classification = std::move(cls).value();
    candidate.allocation = std::move(alloc).value();
    choice.evaluated.push_back(std::move(candidate));
  }
  if (choice.evaluated.empty()) {
    return Status::Internal("no candidate granularity produced a valid "
                            "allocation; last error: " +
                            last_error.ToString());
  }

  // Objective order (Section 3): throughput first, storage second among
  // near-ties.
  double best_speedup = 0.0;
  for (const auto& candidate : choice.evaluated) {
    best_speedup = std::max(best_speedup, candidate.model_speedup);
  }
  const AdvisorCandidate* winner = nullptr;
  for (const auto& candidate : choice.evaluated) {
    if (candidate.model_speedup <
        best_speedup * (1.0 - options_.speedup_tolerance)) {
      continue;
    }
    if (winner == nullptr ||
        candidate.degree_of_replication < winner->degree_of_replication) {
      winner = &candidate;
    }
  }
  choice.best = *winner;
  return choice;
}

}  // namespace qcap
