#include "alloc/advisor.h"

#include <optional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "model/metrics.h"
#include "model/validation.h"

namespace qcap {

PartitioningAdvisor::PartitioningAdvisor(const engine::Catalog& catalog,
                                         Allocator* allocator,
                                         AdvisorOptions options)
    : catalog_(catalog), allocator_(allocator), options_(std::move(options)) {
  if (allocator_ == nullptr) {
    owned_allocator_ = std::make_unique<MemeticAllocator>(options_.memetic);
    allocator_ = owned_allocator_.get();
  }
}

Result<AdvisorChoice> PartitioningAdvisor::Advise(
    const QueryJournal& journal,
    const std::vector<BackendSpec>& backends) const {
  if (options_.candidates.empty()) {
    return Status::InvalidArgument("no candidate granularities");
  }

  // Each candidate is classified, allocated, and validated independently;
  // results land in the candidate's own slot, so evaluating them on the
  // pool changes nothing about the outcome.
  const size_t n = options_.candidates.size();
  std::vector<std::optional<AdvisorCandidate>> slots(n);
  std::vector<Status> errors(n, Status::OK());
  ParallelFor(options_.pool, n, [&](size_t i) {
    const Granularity granularity = options_.candidates[i];
    ClassifierOptions copts;
    copts.granularity = granularity;
    copts.horizontal_partitions = options_.horizontal_partitions;
    copts.include_candidate_keys = options_.include_candidate_keys;
    copts.hybrid_column_threshold_bytes =
        options_.hybrid_column_threshold_bytes;
    Classifier classifier(catalog_, copts);

    auto cls = classifier.Classify(journal);
    if (!cls.ok()) {
      errors[i] = cls.status();
      QCAP_LOG(Debug) << "advisor: classification failed: "
                      << errors[i].ToString();
      return;
    }
    auto alloc = allocator_->Allocate(cls.value(), backends);
    if (!alloc.ok()) {
      errors[i] = alloc.status();
      return;
    }
    if (Status valid = ValidateAllocation(cls.value(), alloc.value(), backends);
        !valid.ok()) {
      errors[i] = valid;
      return;
    }

    AdvisorCandidate candidate;
    candidate.granularity = granularity;
    candidate.model_speedup = Speedup(alloc.value(), backends);
    candidate.degree_of_replication =
        DegreeOfReplication(alloc.value(), cls->catalog);
    candidate.classification = std::move(cls).value();
    candidate.allocation = std::move(alloc).value();
    slots[i] = std::move(candidate);
  });

  AdvisorChoice choice;
  Status last_error = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    if (slots[i].has_value()) {
      choice.evaluated.push_back(std::move(*slots[i]));
    } else {
      last_error = errors[i];
    }
  }
  if (choice.evaluated.empty()) {
    return Status::Internal("no candidate granularity produced a valid "
                            "allocation; last error: " +
                            last_error.ToString());
  }

  // Objective order (Section 3): throughput first, storage second among
  // near-ties.
  double best_speedup = 0.0;
  for (const auto& candidate : choice.evaluated) {
    best_speedup = std::max(best_speedup, candidate.model_speedup);
  }
  const AdvisorCandidate* winner = nullptr;
  for (const auto& candidate : choice.evaluated) {
    if (candidate.model_speedup <
        best_speedup * (1.0 - options_.speedup_tolerance)) {
      continue;
    }
    if (winner == nullptr ||
        candidate.degree_of_replication < winner->degree_of_replication) {
      winner = &candidate;
    }
  }
  choice.best = *winner;
  return choice;
}

}  // namespace qcap
