// Exact optimal allocation via the Appendix B integer linear program,
// solved with the in-repo simplex + branch-and-bound.
//
// Two-stage optimization, as in the paper: first minimize the scale factor
// (throughput-optimal), then, holding scale at its optimum, minimize the
// total allocated bytes (storage-optimal). Tractable at the sizes the paper
// reports for its LP (<= 7 backends, table-granular fragment counts).
#pragma once

#include "alloc/allocator.h"
#include "solver/milp.h"

namespace qcap {

/// Options for the optimal allocator.
struct OptimalOptions {
  MilpOptions milp;
  /// Skip the second (storage-minimizing) stage.
  bool scale_only = false;
  /// Tolerance added to the optimal scale in the second stage.
  double scale_slack = 1e-6;
  /// Warm start: run the greedy heuristic first and add its scale and
  /// storage as upper-bound constraints. These bounds are valid (a feasible
  /// solution can never be worse than optimal) and prune the symmetric
  /// branch-and-bound tree dramatically on homogeneous clusters.
  bool greedy_warm_start = true;
  /// Break backend permutation symmetry with lexicographic ordering
  /// constraints on the placement matrix (valid for homogeneous backends;
  /// automatically disabled for heterogeneous ones).
  bool symmetry_breaking = true;
};

/// \brief Appendix B: throughput- then storage-optimal allocation.
///
/// Solves the paper's exact integer program (placement variables A,
/// assignment matrices LQ/LU, validity constraints Eq. 8-11) with the
/// in-repo branch-and-bound MILP. Stage 1 minimizes the scale factor
/// (Eq. 15); stage 2 re-solves with scale fixed at the stage-1 optimum
/// (plus \ref OptimalOptions::scale_slack) minimizing stored bytes —
/// the benchmark the heuristics are measured against in Fig. 4(c).
///
/// \warning Allocate() caches last_scale(); unlike the other allocators
/// it is not safe to call concurrently from several threads.
class OptimalAllocator : public Allocator {
 public:
  explicit OptimalAllocator(OptimalOptions options = {})
      : options_(std::move(options)) {}

  /// Solves the two-stage ILP for \p cls over \p backends.
  /// \returns the provably optimal allocation, or a Status when the MILP
  /// node budget (\ref MilpOptions::max_nodes) is exhausted first.
  Result<Allocation> Allocate(const Classification& cls,
                              const std::vector<BackendSpec>& backends) override;
  std::string name() const override { return "optimal"; }

  /// The optimal scale found by the last Allocate() call.
  double last_scale() const { return last_scale_; }

 private:
  OptimalOptions options_;
  double last_scale_ = 1.0;
};

}  // namespace qcap
