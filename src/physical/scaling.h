// Elastic scaling and allocation merging (Section 5).
//
// Scaling recomputes an allocation for the new cluster size and matches it
// onto the existing nodes (empty virtual backends pad the smaller side, as
// in the paper). Merging combines per-segment allocations of a diurnal
// workload into one placement that serves every segment without
// reallocation.
#pragma once

#include <vector>

#include "alloc/allocator.h"
#include "physical/physical_allocator.h"

namespace qcap {

/// Result of planning a cluster resize.
struct ElasticPlan {
  Allocation new_allocation;
  TransitionPlan transition;
};

/// Recomputes the allocation of \p cls for \p target_backends using
/// \p allocator and plans the cost-minimal migration from \p current.
Result<ElasticPlan> PlanElasticTransition(
    const Classification& cls, const Allocation& current,
    const std::vector<BackendSpec>& target_backends, Allocator* allocator,
    const PhysicalAllocator& physical);

/// Reorders the backends of \p alloc by \p perm (new index b hosts what was
/// backend perm[b]).
Allocation PermuteBackends(const Allocation& alloc,
                           const std::vector<size_t>& perm);

/// Merges per-segment allocations (all over the same fragment catalog and
/// backend count) into a single placement: segment i's backends are aligned
/// to segment 0's via min-transfer matching, then placements are unioned.
/// Read/update assignments of the result are taken from segment 0; the
/// runtime scheduler re-balances within the (larger) merged placement.
Result<Allocation> MergeAllocations(const std::vector<Allocation>& segments,
                                    const FragmentCatalog& catalog);

}  // namespace qcap
