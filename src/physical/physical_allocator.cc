#include "physical/physical_allocator.h"

#include <algorithm>

#include "solver/hungarian.h"

namespace qcap {

Result<TransitionPlan> PhysicalAllocator::Plan(
    const Allocation& old_alloc, const Allocation& new_alloc,
    const FragmentCatalog& catalog, bool needs_fragmentation) const {
  if (old_alloc.num_fragments() != new_alloc.num_fragments() ||
      new_alloc.num_fragments() != catalog.size()) {
    return Status::InvalidArgument(
        "old and new allocations must share one fragment catalog");
  }
  const size_t new_n = new_alloc.num_backends();
  const size_t old_n = old_alloc.num_backends();
  if (new_n == 0) {
    return Status::InvalidArgument("new allocation has no backends");
  }
  const size_t n = std::max(new_n, old_n);

  // Cached fragment sets.
  std::vector<FragmentSet> new_frags(new_n), old_frags(old_n);
  for (size_t v = 0; v < new_n; ++v) new_frags[v] = new_alloc.BackendFragments(v);
  for (size_t u = 0; u < old_n; ++u) old_frags[u] = old_alloc.BackendFragments(u);

  // Eq. 27: cost(v,u) = bytes of fragments backend v needs that node u
  // lacks. Rows/columns beyond the real counts are empty virtual backends.
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (size_t v = 0; v < n; ++v) {
    for (size_t u = 0; u < n; ++u) {
      if (v >= new_n) {
        cost[v][u] = 0.0;  // Virtual new backend: node u is decommissioned.
      } else if (u >= old_n) {
        cost[v][u] = catalog.SetBytes(new_frags[v]);  // Fresh node.
      } else {
        cost[v][u] = catalog.SetBytes(SetDifference(new_frags[v], old_frags[u]));
      }
    }
  }

  QCAP_ASSIGN_OR_RETURN(AssignmentResult matching, SolveAssignment(cost));

  TransitionPlan plan;
  plan.source_of.assign(new_n, -1);
  plan.move_bytes.assign(new_n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    const size_t u = matching.assignment[v];
    if (v < new_n) {
      plan.source_of[v] = u < old_n ? static_cast<int>(u) : -1;
      plan.move_bytes[v] = cost[v][u];
      plan.total_bytes += cost[v][u];
      plan.duration_seconds =
          std::max(plan.duration_seconds,
                   cost_model_.BackendSeconds(cost[v][u], needs_fragmentation));
    } else if (u < old_n) {
      plan.decommissioned.push_back(u);
    }
  }
  std::sort(plan.decommissioned.begin(), plan.decommissioned.end());
  return plan;
}

Result<TransitionPlan> PhysicalAllocator::InitialLoad(
    const Allocation& new_alloc, const FragmentCatalog& catalog,
    bool needs_fragmentation) const {
  const Allocation empty(new_alloc.num_backends(), new_alloc.num_fragments(),
                         new_alloc.num_reads(), new_alloc.num_updates());
  return Plan(empty, new_alloc, catalog, needs_fragmentation);
}

}  // namespace qcap
