// ETL cost model for materializing an allocation (Section 3.4, Fig. 4d).
//
// Physical allocation is extract-transport-load: fragments must be
// prepared (extracted/fragmented), shipped over the network, and bulk
// loaded. Rates are configurable; the defaults are calibrated to commodity
// gigabit-cluster hardware like the paper's testbed.
#pragma once

namespace qcap {

/// Throughput parameters of the reallocation pipeline.
struct EtlCostModel {
  /// Fragment preparation (dump + split) rate. Full replication ships whole
  /// database images and skips this stage.
  double prepare_bytes_per_sec = 200.0 * 1024 * 1024;
  /// Network transfer rate per backend.
  double transfer_bytes_per_sec = 110.0 * 1024 * 1024;
  /// Bulk load rate of the backend DBMS (dominant term; includes index
  /// rebuild on the primary keys).
  double load_bytes_per_sec = 25.0 * 1024 * 1024;
  /// Fixed per-backend coordination overhead in seconds.
  double per_backend_overhead_sec = 5.0;

  /// Seconds to materialize \p new_bytes on one backend. \p needs_prepare
  /// is false for full replication (whole-image copy).
  double BackendSeconds(double new_bytes, bool needs_prepare) const {
    if (new_bytes <= 0.0) return 0.0;
    double secs = per_backend_overhead_sec +
                  new_bytes / transfer_bytes_per_sec +
                  new_bytes / load_bytes_per_sec;
    if (needs_prepare) secs += new_bytes / prepare_bytes_per_sec;
    return secs;
  }
};

}  // namespace qcap
