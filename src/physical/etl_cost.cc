#include "physical/etl_cost.h"

// Header-only model; this translation unit anchors the module in the build.
