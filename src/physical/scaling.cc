#include "physical/scaling.h"

#include "solver/hungarian.h"

namespace qcap {

Result<ElasticPlan> PlanElasticTransition(
    const Classification& cls, const Allocation& current,
    const std::vector<BackendSpec>& target_backends, Allocator* allocator,
    const PhysicalAllocator& physical) {
  if (allocator == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  ElasticPlan plan;
  QCAP_ASSIGN_OR_RETURN(plan.new_allocation,
                        allocator->Allocate(cls, target_backends));
  QCAP_ASSIGN_OR_RETURN(
      plan.transition,
      physical.Plan(current, plan.new_allocation, cls.catalog));
  return plan;
}

Allocation PermuteBackends(const Allocation& alloc,
                           const std::vector<size_t>& perm) {
  Allocation out(alloc.num_backends(), alloc.num_fragments(),
                 alloc.num_reads(), alloc.num_updates());
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    const size_t src = perm[b];
    out.PlaceSet(b, alloc.BackendFragments(src));
    for (size_t r = 0; r < alloc.num_reads(); ++r) {
      out.set_read_assign(b, r, alloc.read_assign(src, r));
    }
    for (size_t u = 0; u < alloc.num_updates(); ++u) {
      out.set_update_assign(b, u, alloc.update_assign(src, u));
    }
  }
  return out;
}

Result<Allocation> MergeAllocations(const std::vector<Allocation>& segments,
                                    const FragmentCatalog& catalog) {
  if (segments.empty()) {
    return Status::InvalidArgument("no segment allocations to merge");
  }
  const size_t n = segments[0].num_backends();
  for (const auto& s : segments) {
    if (s.num_backends() != n || s.num_fragments() != catalog.size()) {
      return Status::InvalidArgument(
          "segment allocations must share backend count and catalog");
    }
  }

  Allocation merged = segments[0];
  for (size_t s = 1; s < segments.size(); ++s) {
    // Align segment s's backends to the merged placement: cost of hosting
    // segment-backend v on merged-backend u is the bytes u still lacks.
    std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
    for (size_t v = 0; v < n; ++v) {
      const FragmentSet frags = segments[s].BackendFragments(v);
      for (size_t u = 0; u < n; ++u) {
        cost[v][u] =
            catalog.SetBytes(SetDifference(frags, merged.BackendFragments(u)));
      }
    }
    QCAP_ASSIGN_OR_RETURN(AssignmentResult matching, SolveAssignment(cost));
    for (size_t v = 0; v < n; ++v) {
      merged.PlaceSet(matching.assignment[v], segments[s].BackendFragments(v));
    }
  }
  return merged;
}

}  // namespace qcap
