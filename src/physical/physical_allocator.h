// Physical allocation (Section 3.4): matching a newly computed allocation
// onto the currently installed one with minimal data movement, using the
// Hungarian method on the bipartite transfer-cost graph (Eq. 27).
#pragma once

#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "physical/etl_cost.h"
#include "workload/fragment.h"

namespace qcap {

/// A materialization plan: which physical node hosts which new backend, and
/// what it costs.
struct TransitionPlan {
  /// For each new-allocation backend: index of the physical (old) node it
  /// is mapped to, or -1 for a freshly provisioned node.
  std::vector<int> source_of;
  /// Physical nodes with no successor in the new allocation (scale-in).
  std::vector<size_t> decommissioned;
  /// Bytes each new backend must receive (fragments it lacks).
  std::vector<double> move_bytes;
  /// Σ move_bytes.
  double total_bytes = 0.0;
  /// Wall-clock estimate: backends load in parallel, so the duration is the
  /// maximum per-backend ETL time.
  double duration_seconds = 0.0;
};

/// \brief Plans cost-minimal materialization of allocations, including
/// scale-out (new > old, padded with empty virtual sources) and scale-in
/// (new < old, surplus nodes decommissioned).
class PhysicalAllocator {
 public:
  explicit PhysicalAllocator(EtlCostModel cost_model = {})
      : cost_model_(cost_model) {}

  /// Plans the transition from \p old_alloc to \p new_alloc. Both must use
  /// the same fragment catalog. \p needs_fragmentation selects whether the
  /// prepare stage applies (true for partial replication).
  Result<TransitionPlan> Plan(const Allocation& old_alloc,
                              const Allocation& new_alloc,
                              const FragmentCatalog& catalog,
                              bool needs_fragmentation = true) const;

  /// Plans loading \p new_alloc onto empty nodes (initial deployment).
  Result<TransitionPlan> InitialLoad(const Allocation& new_alloc,
                                     const FragmentCatalog& catalog,
                                     bool needs_fragmentation = true) const;

  const EtlCostModel& cost_model() const { return cost_model_; }

 private:
  EtlCostModel cost_model_;
};

}  // namespace qcap
