// Machine-readable JSON exports of classifications and allocations, for
// dashboards and external tooling (the human-readable counterpart lives in
// model/report.h).
#pragma once

#include <string>
#include <vector>

#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Serializes the classification: fragments (name/table/bytes) and classes
/// (label/kind/weight/fragment ids).
std::string ClassificationToJson(const Classification& cls);

/// Serializes the allocation: headline metrics, per-backend placement and
/// assignments, and the replica histogram.
std::string AllocationToJson(const Classification& cls,
                             const Allocation& alloc,
                             const std::vector<BackendSpec>& backends);

namespace json_internal {
/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string Escape(const std::string& s);
}  // namespace json_internal

}  // namespace qcap
