#include "model/report.h"

#include <cstdarg>
#include <cstdio>

#include "common/strings.h"
#include "model/metrics.h"

namespace qcap {

namespace {

void Append(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
}

}  // namespace

std::string RenderClassificationReport(const Classification& cls) {
  std::string out = "# Classification\n\n";
  Append(&out, "%zu fragments, %zu read classes, %zu update classes, %s\n\n",
         cls.catalog.size(), cls.reads.size(), cls.updates.size(),
         FormatBytes(cls.catalog.TotalBytes()).c_str());
  Append(&out, "%-8s %-6s %8s %10s %12s %10s\n", "class", "kind", "weight",
         "fragments", "bytes", "upd-drag");
  auto row = [&](const QueryClass& c) {
    Append(&out, "%-8s %-6s %8s %10zu %12s %10s\n", c.label.c_str(),
           c.is_update ? "update" : "read", FormatPercent(c.weight, 1).c_str(),
           c.fragments.size(),
           FormatBytes(cls.catalog.SetBytes(c.fragments)).c_str(),
           FormatPercent(cls.OverlappingUpdateWeight(c), 1).c_str());
  };
  for (const auto& c : cls.reads) row(c);
  for (const auto& c : cls.updates) row(c);
  return out;
}

std::string RenderAllocationReport(const Classification& cls,
                                   const Allocation& alloc,
                                   const std::vector<BackendSpec>& backends) {
  std::string out = "# Allocation\n\n";
  Append(&out, "scale %.3f | model speedup %.2f of %zu | replication %.2fx | "
               "balance deviation %.2f\n\n",
         Scale(alloc, backends), Speedup(alloc, backends),
         alloc.num_backends(), DegreeOfReplication(alloc, cls.catalog),
         BalanceDeviation(alloc, backends));

  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    Append(&out, "## %s  (capacity %s)\n",
           backends[b].name.empty() ? ("B" + std::to_string(b + 1)).c_str()
                                    : backends[b].name.c_str(),
           FormatPercent(backends[b].relative_load, 1).c_str());
    Append(&out, "load %s (reads %s, updates %s), stores %s in %zu fragments\n",
           FormatPercent(alloc.AssignedLoad(b), 1).c_str(),
           FormatPercent(alloc.AssignedReadLoad(b), 1).c_str(),
           FormatPercent(alloc.AssignedUpdateLoad(b), 1).c_str(),
           FormatBytes(alloc.BackendBytes(b, cls.catalog)).c_str(),
           alloc.BackendFragments(b).size());
    std::vector<std::string> parts;
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (alloc.read_assign(b, r) > 0.0) {
        parts.push_back(cls.reads[r].label + " " +
                        FormatPercent(alloc.read_assign(b, r), 1));
      }
    }
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      if (alloc.update_assign(b, u) > 0.0) {
        parts.push_back(cls.updates[u].label + " " +
                        FormatPercent(alloc.update_assign(b, u), 1));
      }
    }
    Append(&out, "classes: %s\n\n",
           parts.empty() ? "(none)" : Join(parts, ", ").c_str());
  }

  out += "## Replication histogram\n";
  const auto hist = ReplicationHistogram(alloc);
  for (size_t k = 0; k < hist.size(); ++k) {
    if (hist[k] == 0) continue;
    Append(&out, "%zu replica%s: %zu fragment%s\n", k, k == 1 ? "" : "s",
           hist[k], hist[k] == 1 ? "" : "s");
  }
  return out;
}

}  // namespace qcap
