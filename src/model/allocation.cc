#include "model/allocation.h"

#include <cassert>

#include "common/strings.h"

namespace qcap {

Allocation::Allocation(size_t num_backends, size_t num_fragments,
                       size_t num_reads, size_t num_updates)
    : num_backends_(num_backends),
      num_fragments_(num_fragments),
      num_reads_(num_reads),
      num_updates_(num_updates),
      words_per_backend_((num_fragments + 63) / 64),
      placed_(num_backends * words_per_backend_, 0),
      read_assign_(num_backends * num_reads, 0.0),
      update_assign_(num_backends * num_updates, 0.0),
      read_load_(num_backends, 0.0),
      update_load_(num_backends, 0.0),
      replica_count_(num_fragments, 0) {}

Allocation::Allocation(size_t num_backends, const FragmentCatalog& catalog,
                       size_t num_reads, size_t num_updates)
    : Allocation(num_backends, catalog.size(), num_reads, num_updates) {
  BindSizes(catalog);
}

void Allocation::BindSizes(const FragmentCatalog& catalog) {
  assert(catalog.size() == num_fragments_);
  auto sizes = std::make_shared<std::vector<double>>();
  sizes->reserve(num_fragments_);
  for (const Fragment& f : catalog.fragments()) sizes->push_back(f.size_bytes);
  frag_bytes_ = std::move(sizes);
  // Recompute the per-backend byte aggregates from scratch (ascending
  // fragment id, matching the unbound scan order).
  bytes_.assign(num_backends_, 0.0);
  for (size_t b = 0; b < num_backends_; ++b) {
    for (FragmentId f = 0; f < num_fragments_; ++f) {
      if (IsPlaced(b, f)) bytes_[b] += frag_size(f);
    }
  }
}

void Allocation::Place(size_t b, FragmentId f) {
  assert(b < num_backends_ && f < num_fragments_);
  uint64_t& word = row(b)[f >> 6];
  const uint64_t bit = uint64_t{1} << (f & 63);
  if ((word & bit) != 0) return;
  word |= bit;
  ++replica_count_[f];
  if (frag_bytes_ != nullptr) bytes_[b] += frag_size(f);
}

void Allocation::PlaceSet(size_t b, const FragmentSet& set) {
  for (FragmentId f : set) Place(b, f);
}

void Allocation::PlaceBits(size_t b, const DenseBitset& bits) {
  assert(bits.num_bits() == num_fragments_);
  uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    uint64_t added = bits.words()[w] & ~r[w];
    while (added != 0) {
      const FragmentId f =
          static_cast<FragmentId>(w * 64 + __builtin_ctzll(added));
      ++replica_count_[f];
      if (frag_bytes_ != nullptr) bytes_[b] += frag_size(f);
      added &= added - 1;
    }
    r[w] |= bits.words()[w];
  }
}

void Allocation::RetainFragments(size_t b, const DenseBitset& keep) {
  assert(keep.num_bits() == num_fragments_);
  uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    uint64_t removed = r[w] & ~keep.words()[w];
    while (removed != 0) {
      const FragmentId f =
          static_cast<FragmentId>(w * 64 + __builtin_ctzll(removed));
      --replica_count_[f];
      if (frag_bytes_ != nullptr) bytes_[b] -= frag_size(f);
      removed &= removed - 1;
    }
    r[w] &= keep.words()[w];
  }
}

void Allocation::ClearBackendRow(size_t b) {
  assert(b < num_backends_);
  uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    uint64_t removed = r[w];
    while (removed != 0) {
      --replica_count_[w * 64 + __builtin_ctzll(removed)];
      removed &= removed - 1;
    }
    r[w] = 0;
  }
  for (size_t c = 0; c < num_reads_; ++c) read_assign_[b * num_reads_ + c] = 0.0;
  for (size_t c = 0; c < num_updates_; ++c) {
    update_assign_[b * num_updates_ + c] = 0.0;
  }
  // Exact reset: clearing a row is the one mutation that zeroes the
  // backend's aggregates outright instead of subtracting deltas.
  read_load_[b] = 0.0;
  update_load_[b] = 0.0;
  if (frag_bytes_ != nullptr) bytes_[b] = 0.0;
}

bool Allocation::IsPlaced(size_t b, FragmentId f) const {
  assert(b < num_backends_ && f < num_fragments_);
  return (row(b)[f >> 6] >> (f & 63)) & uint64_t{1};
}

FragmentSet Allocation::BackendFragments(size_t b) const {
  FragmentSet out;
  const uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    uint64_t bits = r[w];
    while (bits != 0) {
      out.push_back(static_cast<FragmentId>(w * 64 + __builtin_ctzll(bits)));
      bits &= bits - 1;
    }
  }
  return out;
}

void Allocation::SnapshotRow(size_t b, DenseBitset* out) const {
  out->AssignWords(row(b), words_per_backend_, num_fragments_);
}

bool Allocation::HoldsAll(size_t b, const FragmentSet& set) const {
  for (FragmentId f : set) {
    if (!IsPlaced(b, f)) return false;
  }
  return true;
}

bool Allocation::HoldsAllBits(size_t b, const DenseBitset& set) const {
  assert(set.num_bits() == num_fragments_);
  const uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    if ((set.words()[w] & ~r[w]) != 0) return false;
  }
  return true;
}

bool Allocation::RowIntersects(size_t b, const DenseBitset& set) const {
  assert(set.num_bits() == num_fragments_);
  const uint64_t* r = row(b);
  for (size_t w = 0; w < words_per_backend_; ++w) {
    if ((set.words()[w] & r[w]) != 0) return true;
  }
  return false;
}

size_t Allocation::ReplicaCount(FragmentId f) const {
  assert(f < num_fragments_);
  return replica_count_[f];
}

double Allocation::BackendBytes(size_t b, const FragmentCatalog& catalog) const {
  if (frag_bytes_ != nullptr) {
    assert(catalog.size() == num_fragments_);
    (void)catalog;
    return bytes_[b];
  }
  double total = 0.0;
  for (FragmentId f = 0; f < num_fragments_; ++f) {
    if (IsPlaced(b, f)) total += catalog.Get(f).size_bytes;
  }
  return total;
}

double Allocation::MissingBytes(size_t b, const DenseBitset& want) const {
  assert(frag_bytes_ != nullptr && want.num_bits() == num_fragments_);
  const uint64_t* r = row(b);
  double total = 0.0;
  for (size_t w = 0; w < words_per_backend_; ++w) {
    uint64_t missing = want.words()[w] & ~r[w];
    while (missing != 0) {
      total += frag_size(
          static_cast<FragmentId>(w * 64 + __builtin_ctzll(missing)));
      missing &= missing - 1;
    }
  }
  return total;
}

double Allocation::read_assign(size_t b, size_t read_class) const {
  assert(b < num_backends_ && read_class < num_reads_);
  return read_assign_[b * num_reads_ + read_class];
}

void Allocation::set_read_assign(size_t b, size_t read_class, double value) {
  assert(b < num_backends_ && read_class < num_reads_);
  double& slot = read_assign_[b * num_reads_ + read_class];
  read_load_[b] += value - slot;
  slot = value;
}

void Allocation::add_read_assign(size_t b, size_t read_class, double delta) {
  assert(b < num_backends_ && read_class < num_reads_);
  read_assign_[b * num_reads_ + read_class] += delta;
  read_load_[b] += delta;
}

double Allocation::update_assign(size_t b, size_t update_class) const {
  assert(b < num_backends_ && update_class < num_updates_);
  return update_assign_[b * num_updates_ + update_class];
}

void Allocation::set_update_assign(size_t b, size_t update_class, double value) {
  assert(b < num_backends_ && update_class < num_updates_);
  double& slot = update_assign_[b * num_updates_ + update_class];
  update_load_[b] += value - slot;
  slot = value;
}

double Allocation::AssignedLoad(size_t b) const {
  return AssignedReadLoad(b) + AssignedUpdateLoad(b);
}

double Allocation::AssignedReadLoad(size_t b) const {
  assert(b < num_backends_);
  return read_load_[b];
}

double Allocation::AssignedUpdateLoad(size_t b) const {
  assert(b < num_backends_);
  return update_load_[b];
}

double Allocation::TotalReadAssign(size_t read_class) const {
  double total = 0.0;
  for (size_t b = 0; b < num_backends_; ++b) total += read_assign(b, read_class);
  return total;
}

std::string Allocation::ToString(const Classification& cls) const {
  std::string out = "Allocation over " + std::to_string(num_backends_) +
                    " backends\n";
  for (size_t b = 0; b < num_backends_; ++b) {
    out += "  B" + std::to_string(b + 1) + ": load=" +
           FormatPercent(AssignedLoad(b)) + " [";
    std::vector<std::string> parts;
    for (size_t r = 0; r < num_reads_; ++r) {
      if (read_assign(b, r) > 0.0) {
        parts.push_back(cls.reads[r].label + "=" +
                        FormatPercent(read_assign(b, r)));
      }
    }
    for (size_t u = 0; u < num_updates_; ++u) {
      if (update_assign(b, u) > 0.0) {
        parts.push_back(cls.updates[u].label + "=" +
                        FormatPercent(update_assign(b, u)));
      }
    }
    out += Join(parts, " ") + "] fragments={";
    parts.clear();
    for (FragmentId f : BackendFragments(b)) {
      parts.push_back(cls.catalog.Get(f).name);
    }
    out += Join(parts, ",") + "}\n";
  }
  return out;
}

}  // namespace qcap
