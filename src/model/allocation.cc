#include "model/allocation.h"

#include <cassert>

#include "common/strings.h"

namespace qcap {

Allocation::Allocation(size_t num_backends, size_t num_fragments,
                       size_t num_reads, size_t num_updates)
    : num_backends_(num_backends),
      num_fragments_(num_fragments),
      num_reads_(num_reads),
      num_updates_(num_updates),
      placed_(num_backends * num_fragments, 0),
      read_assign_(num_backends * num_reads, 0.0),
      update_assign_(num_backends * num_updates, 0.0) {}

void Allocation::Place(size_t b, FragmentId f) {
  assert(b < num_backends_ && f < num_fragments_);
  placed_[b * num_fragments_ + f] = 1;
}

void Allocation::PlaceSet(size_t b, const FragmentSet& set) {
  for (FragmentId f : set) Place(b, f);
}

bool Allocation::IsPlaced(size_t b, FragmentId f) const {
  assert(b < num_backends_ && f < num_fragments_);
  return placed_[b * num_fragments_ + f] != 0;
}

FragmentSet Allocation::BackendFragments(size_t b) const {
  FragmentSet out;
  for (FragmentId f = 0; f < num_fragments_; ++f) {
    if (IsPlaced(b, f)) out.push_back(f);
  }
  return out;
}

bool Allocation::HoldsAll(size_t b, const FragmentSet& set) const {
  for (FragmentId f : set) {
    if (!IsPlaced(b, f)) return false;
  }
  return true;
}

size_t Allocation::ReplicaCount(FragmentId f) const {
  size_t count = 0;
  for (size_t b = 0; b < num_backends_; ++b) {
    if (IsPlaced(b, f)) ++count;
  }
  return count;
}

double Allocation::BackendBytes(size_t b, const FragmentCatalog& catalog) const {
  double total = 0.0;
  for (FragmentId f = 0; f < num_fragments_; ++f) {
    if (IsPlaced(b, f)) total += catalog.Get(f).size_bytes;
  }
  return total;
}

double Allocation::read_assign(size_t b, size_t read_class) const {
  assert(b < num_backends_ && read_class < num_reads_);
  return read_assign_[b * num_reads_ + read_class];
}

void Allocation::set_read_assign(size_t b, size_t read_class, double value) {
  assert(b < num_backends_ && read_class < num_reads_);
  read_assign_[b * num_reads_ + read_class] = value;
}

void Allocation::add_read_assign(size_t b, size_t read_class, double delta) {
  assert(b < num_backends_ && read_class < num_reads_);
  read_assign_[b * num_reads_ + read_class] += delta;
}

double Allocation::update_assign(size_t b, size_t update_class) const {
  assert(b < num_backends_ && update_class < num_updates_);
  return update_assign_[b * num_updates_ + update_class];
}

void Allocation::set_update_assign(size_t b, size_t update_class, double value) {
  assert(b < num_backends_ && update_class < num_updates_);
  update_assign_[b * num_updates_ + update_class] = value;
}

double Allocation::AssignedLoad(size_t b) const {
  return AssignedReadLoad(b) + AssignedUpdateLoad(b);
}

double Allocation::AssignedReadLoad(size_t b) const {
  double total = 0.0;
  for (size_t r = 0; r < num_reads_; ++r) total += read_assign(b, r);
  return total;
}

double Allocation::AssignedUpdateLoad(size_t b) const {
  double total = 0.0;
  for (size_t u = 0; u < num_updates_; ++u) total += update_assign(b, u);
  return total;
}

double Allocation::TotalReadAssign(size_t read_class) const {
  double total = 0.0;
  for (size_t b = 0; b < num_backends_; ++b) total += read_assign(b, read_class);
  return total;
}

std::string Allocation::ToString(const Classification& cls) const {
  std::string out = "Allocation over " + std::to_string(num_backends_) +
                    " backends\n";
  for (size_t b = 0; b < num_backends_; ++b) {
    out += "  B" + std::to_string(b + 1) + ": load=" +
           FormatPercent(AssignedLoad(b)) + " [";
    std::vector<std::string> parts;
    for (size_t r = 0; r < num_reads_; ++r) {
      if (read_assign(b, r) > 0.0) {
        parts.push_back(cls.reads[r].label + "=" +
                        FormatPercent(read_assign(b, r)));
      }
    }
    for (size_t u = 0; u < num_updates_; ++u) {
      if (update_assign(b, u) > 0.0) {
        parts.push_back(cls.updates[u].label + "=" +
                        FormatPercent(update_assign(b, u)));
      }
    }
    out += Join(parts, " ") + "] fragments={";
    parts.clear();
    for (FragmentId f : BackendFragments(b)) {
      parts.push_back(cls.catalog.Get(f).name);
    }
    out += Join(parts, ",") + "}\n";
  }
  return out;
}

}  // namespace qcap
