// Validity checks for allocations (Eq. 8-11 and data completeness).
#pragma once

#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Options for allocation validation.
struct ValidationOptions {
  /// Numerical tolerance for weight comparisons.
  double epsilon = 1e-6;
  /// Require every fragment (even ones unreferenced by any class) to be
  /// stored on at least one backend, so the distributed database is
  /// complete.
  bool require_complete_data = true;
  /// Require every query class (and every fragment) on at least k+1
  /// backends (Appendix C, Eq. 46/47). 0 disables the k-safety check.
  int k_safety = 0;
};

/// \brief Checks that \p alloc is a valid allocation of \p cls onto
/// \p backends:
///  - dimensions match;
///  - assign(C,B) > 0 implies C ⊆ fragments(B)           (Eq. 8)
///  - every read class is fully assigned: Σ_B = weight   (Eq. 9)
///  - every update class is assigned with weight(C) to exactly the backends
///    storing overlapping data, and to no others          (Eq. 10)
///  - every update class is assigned at least once        (Eq. 11)
///  - optionally: data completeness and k-safety          (Eq. 46/47)
Status ValidateAllocation(const Classification& cls, const Allocation& alloc,
                          const std::vector<BackendSpec>& backends,
                          const ValidationOptions& options = {});

}  // namespace qcap
