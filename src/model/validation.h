// Validity checks for allocations (Eq. 8-11 and data completeness).
#pragma once

#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Options for allocation validation.
struct ValidationOptions {
  /// Numerical tolerance for weight comparisons.
  double epsilon = 1e-6;
  /// Require every fragment (even ones unreferenced by any class) to be
  /// stored on at least one backend, so the distributed database is
  /// complete.
  bool require_complete_data = true;
  /// Require every query class (and every fragment) on at least k+1
  /// backends (Appendix C, Eq. 46/47). 0 disables the k-safety check.
  int k_safety = 0;
};

/// \brief Checks that \p alloc is a valid allocation of \p cls onto
/// \p backends:
///  - dimensions match;
///  - assign(C,B) > 0 implies C ⊆ fragments(B)           (Eq. 8)
///  - every read class is fully assigned: Σ_B = weight   (Eq. 9)
///  - every update class is assigned with weight(C) to exactly the backends
///    storing overlapping data, and to no others          (Eq. 10)
///  - every update class is assigned at least once        (Eq. 11)
///  - optionally: data completeness and k-safety          (Eq. 46/47)
Status ValidateAllocation(const Classification& cls, const Allocation& alloc,
                          const std::vector<BackendSpec>& backends,
                          const ValidationOptions& options = {});

/// \brief Algorithm 3 (Appendix C): checks k-safety of an existing
/// allocation restricted to the backends still \p alive.
///
/// The surviving sub-cluster must keep every read class executable on at
/// least k+1 alive backends, every update class allocated on at least k+1
/// alive backends, and every fragment stored on at least k+1 alive
/// backends (Eq. 46/47). With k = 0 this degenerates to "every class is
/// still servable and no data was lost" — the condition the self-healing
/// controller re-checks after each detected crash. \p alive must have one
/// entry per allocation backend.
Status CheckKSafety(const Classification& cls, const Allocation& alloc,
                    const std::vector<bool>& alive, int k);

}  // namespace qcap
