// Human-readable reports of classifications and allocations, for operators
// inspecting what the allocator decided and why.
#pragma once

#include <string>
#include <vector>

#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Renders the classification: per-class label, kind, weight, fragment
/// count and bytes, and the overlapping update weight.
std::string RenderClassificationReport(const Classification& cls);

/// Renders the allocation: headline metrics (scale, speedup, degree of
/// replication, balance), one section per backend (load split, stored
/// bytes, fragments), and the replica histogram.
std::string RenderAllocationReport(const Classification& cls,
                                   const Allocation& alloc,
                                   const std::vector<BackendSpec>& backends);

}  // namespace qcap
