// Analytical metrics of the CDBS processing model (Sections 2, 3.2.1):
// scale, speedup, theoretical speedup bounds, degree of replication,
// balance deviation, and replication histograms.
#pragma once

#include <cstddef>
#include <vector>

#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// scale (Eq. 15): max over backends of assignedLoad(B) / load(B), floored
/// at 1 (an allocation can never beat perfectly balanced).
double Scale(const Allocation& alloc, const std::vector<BackendSpec>& backends);

/// Speedup of an allocation (Eq. 18/19): |B| / scale. In a homogeneous
/// cluster this equals 1 / scaledLoad of the most loaded backend.
double Speedup(const Allocation& alloc, const std::vector<BackendSpec>& backends);

/// Theoretical maximum speedup of a workload (Eq. 17):
/// 1 / max_C Σ_{CU ∈ updates(C)} weight(CU). Returns +infinity for
/// read-only workloads (no update class overlaps anything).
double TheoreticalMaxSpeedup(const Classification& cls);

/// Amdahl prediction for full replication on \p nodes backends (Eq. 1):
/// parallel fraction = total read weight, serial = total update weight.
double AmdahlFullReplicationSpeedup(const Classification& cls, size_t nodes);

/// Degree of replication r (Eq. 28): total stored bytes over database bytes.
/// Fragments never placed contribute 0 to the numerator.
double DegreeOfReplication(const Allocation& alloc, const FragmentCatalog& catalog);

/// Balance deviation (Fig. 4j): max over backends of
/// |assignedLoad/load - avg| / avg where avg is the mean normalized load.
/// 0 = perfectly balanced; ~1 when one backend is idle.
double BalanceDeviation(const Allocation& alloc,
                        const std::vector<BackendSpec>& backends);

/// Replica-count histogram (Figs. 4k/4l): result[k] = number of fragments
/// stored on exactly k backends, for k in [0, num_backends].
std::vector<size_t> ReplicationHistogram(const Allocation& alloc);

/// Replica-count histogram aggregated to whole tables: a table's replica
/// count is the maximum replica count over its fragments.
std::vector<size_t> TableReplicationHistogram(const Allocation& alloc,
                                              const FragmentCatalog& catalog);

}  // namespace qcap
