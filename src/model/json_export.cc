#include "model/json_export.h"

#include <cstdio>

#include "model/metrics.h"

namespace qcap {

namespace json_internal {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace json_internal

namespace {

using json_internal::Escape;

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string ClassJson(const Classification& cls, const QueryClass& c) {
  std::string out = "{";
  out += "\"label\":\"" + Escape(c.label) + "\",";
  out += std::string("\"kind\":\"") + (c.is_update ? "update" : "read") + "\",";
  out += "\"weight\":" + Num(c.weight) + ",";
  out += "\"mean_cost\":" + Num(c.mean_cost) + ",";
  out += "\"bytes\":" + Num(cls.catalog.SetBytes(c.fragments)) + ",";
  out += "\"fragments\":[";
  for (size_t i = 0; i < c.fragments.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(c.fragments[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string ClassificationToJson(const Classification& cls) {
  std::string out = "{\"fragments\":[";
  for (size_t f = 0; f < cls.catalog.size(); ++f) {
    const Fragment& fragment = cls.catalog.Get(static_cast<FragmentId>(f));
    if (f > 0) out += ",";
    out += "{\"id\":" + std::to_string(fragment.id) + ",\"name\":\"" +
           Escape(fragment.name) + "\",\"table\":\"" + Escape(fragment.table) +
           "\",\"bytes\":" + Num(fragment.size_bytes) + "}";
  }
  out += "],\"reads\":[";
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    if (r > 0) out += ",";
    out += ClassJson(cls, cls.reads[r]);
  }
  out += "],\"updates\":[";
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    if (u > 0) out += ",";
    out += ClassJson(cls, cls.updates[u]);
  }
  out += "],\"total_bytes\":" + Num(cls.catalog.TotalBytes()) + "}";
  return out;
}

std::string AllocationToJson(const Classification& cls,
                             const Allocation& alloc,
                             const std::vector<BackendSpec>& backends) {
  std::string out = "{\"metrics\":{";
  out += "\"scale\":" + Num(Scale(alloc, backends)) + ",";
  out += "\"speedup\":" + Num(Speedup(alloc, backends)) + ",";
  out += "\"degree_of_replication\":" +
         Num(DegreeOfReplication(alloc, cls.catalog)) + ",";
  out += "\"balance_deviation\":" + Num(BalanceDeviation(alloc, backends));
  out += "},\"backends\":[";
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    if (b > 0) out += ",";
    out += "{\"name\":\"" + Escape(backends[b].name) + "\",";
    out += "\"relative_load\":" + Num(backends[b].relative_load) + ",";
    out += "\"assigned_load\":" + Num(alloc.AssignedLoad(b)) + ",";
    out += "\"stored_bytes\":" + Num(alloc.BackendBytes(b, cls.catalog)) + ",";
    out += "\"fragments\":[";
    const FragmentSet fragments = alloc.BackendFragments(b);
    for (size_t i = 0; i < fragments.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(fragments[i]);
    }
    out += "],\"read_assign\":{";
    bool first = true;
    for (size_t r = 0; r < cls.reads.size(); ++r) {
      if (alloc.read_assign(b, r) <= 0.0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + Escape(cls.reads[r].label) +
             "\":" + Num(alloc.read_assign(b, r));
    }
    out += "},\"update_assign\":{";
    first = true;
    for (size_t u = 0; u < cls.updates.size(); ++u) {
      if (alloc.update_assign(b, u) <= 0.0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + Escape(cls.updates[u].label) +
             "\":" + Num(alloc.update_assign(b, u));
    }
    out += "}}";
  }
  out += "],\"replica_histogram\":[";
  const auto hist = ReplicationHistogram(alloc);
  for (size_t k = 0; k < hist.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(hist[k]);
  }
  out += "]}";
  return out;
}

}  // namespace qcap
