// The allocation data structure: which fragments live on which backend, and
// how much of each query class's weight each backend handles (the assign
// function of Eq. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/fragment.h"
#include "workload/query_class.h"

namespace qcap {

/// \brief A partial replication: per-backend fragment placement plus the
/// per-class load assignment matrices LQ and LU (Appendix B notation).
class Allocation {
 public:
  Allocation() = default;

  /// Creates an empty allocation for \p num_backends backends over
  /// \p num_fragments fragments with \p num_reads read classes and
  /// \p num_updates update classes.
  Allocation(size_t num_backends, size_t num_fragments, size_t num_reads,
             size_t num_updates);

  size_t num_backends() const { return num_backends_; }
  size_t num_fragments() const { return num_fragments_; }
  size_t num_reads() const { return num_reads_; }
  size_t num_updates() const { return num_updates_; }

  // --- Fragment placement (allocation matrix A) ---

  /// Places fragment \p f on backend \p b (idempotent).
  void Place(size_t b, FragmentId f);
  /// Places every fragment of \p set on backend \p b.
  void PlaceSet(size_t b, const FragmentSet& set);
  /// True iff fragment \p f is on backend \p b.
  bool IsPlaced(size_t b, FragmentId f) const;
  /// fragments(B): the sorted fragment set of backend \p b.
  FragmentSet BackendFragments(size_t b) const;
  /// True iff all fragments of \p set are on backend \p b.
  bool HoldsAll(size_t b, const FragmentSet& set) const;
  /// Number of backends holding fragment \p f.
  size_t ReplicaCount(FragmentId f) const;
  /// Total bytes stored on backend \p b according to \p catalog.
  double BackendBytes(size_t b, const FragmentCatalog& catalog) const;

  // --- Load assignment (matrices LQ / LU) ---

  double read_assign(size_t b, size_t read_class) const;
  void set_read_assign(size_t b, size_t read_class, double value);
  void add_read_assign(size_t b, size_t read_class, double delta);

  double update_assign(size_t b, size_t update_class) const;
  void set_update_assign(size_t b, size_t update_class, double value);

  /// assignedLoad(B) (Eq. 14): total read + update weight on backend \p b.
  double AssignedLoad(size_t b) const;
  /// Total read weight assigned to backend \p b.
  double AssignedReadLoad(size_t b) const;
  /// Total update weight assigned to backend \p b.
  double AssignedUpdateLoad(size_t b) const;
  /// Σ_b read_assign(b, read_class).
  double TotalReadAssign(size_t read_class) const;

  /// Renders a compact table of placements and assignments for debugging.
  std::string ToString(const Classification& cls) const;

 private:
  size_t num_backends_ = 0;
  size_t num_fragments_ = 0;
  size_t num_reads_ = 0;
  size_t num_updates_ = 0;
  std::vector<uint8_t> placed_;        // num_backends x num_fragments
  std::vector<double> read_assign_;    // num_backends x num_reads
  std::vector<double> update_assign_;  // num_backends x num_updates
};

}  // namespace qcap
