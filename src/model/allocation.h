// The allocation data structure: which fragments live on which backend, and
// how much of each query class's weight each backend handles (the assign
// function of Eq. 8).
//
// Placement rows are stored as word-packed bitsets and every mutation keeps
// per-backend running aggregates (assigned read/update load, stored bytes
// when fragment sizes are bound, per-fragment replica counts) so the search
// hot path reads Scale/BackendBytes/ReplicaCount in O(1) per backend instead
// of rescanning the matrices. Aggregates are maintained incrementally with
// exact deltas; they can drift from a from-scratch recompute by a few ulps
// after long mutation sequences (the property tests pin the drift < 1e-9).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/fragment.h"
#include "workload/query_class.h"

namespace qcap {

/// \brief A partial replication: per-backend fragment placement plus the
/// per-class load assignment matrices LQ and LU (Appendix B notation).
class Allocation {
 public:
  Allocation() = default;

  /// Creates an empty allocation for \p num_backends backends over
  /// \p num_fragments fragments with \p num_reads read classes and
  /// \p num_updates update classes.
  Allocation(size_t num_backends, size_t num_fragments, size_t num_reads,
             size_t num_updates);

  /// Same, but also binds the catalog's fragment sizes so per-backend byte
  /// totals are maintained incrementally (BackendBytes becomes O(1)).
  Allocation(size_t num_backends, const FragmentCatalog& catalog,
             size_t num_reads, size_t num_updates);

  size_t num_backends() const { return num_backends_; }
  size_t num_fragments() const { return num_fragments_; }
  size_t num_reads() const { return num_reads_; }
  size_t num_updates() const { return num_updates_; }

  /// Binds \p catalog's fragment sizes to this allocation (recomputing the
  /// per-backend byte aggregates once); subsequent placement mutations keep
  /// them current in O(1). Copies share the bound sizes.
  void BindSizes(const FragmentCatalog& catalog);
  /// True iff fragment sizes are bound (BackendBytes reads the aggregate).
  bool sizes_bound() const { return frag_bytes_ != nullptr; }

  // --- Fragment placement (allocation matrix A) ---

  /// Places fragment \p f on backend \p b (idempotent).
  void Place(size_t b, FragmentId f);
  /// Places every fragment of \p set on backend \p b.
  void PlaceSet(size_t b, const FragmentSet& set);
  /// Places every fragment of \p bits on backend \p b.
  void PlaceBits(size_t b, const DenseBitset& bits);
  /// Removes every fragment of backend \p b that is not in \p keep.
  void RetainFragments(size_t b, const DenseBitset& keep);
  /// Empties backend \p b: no fragments, all assignments zero. Resets the
  /// backend's aggregates exactly (no accumulated drift survives).
  void ClearBackendRow(size_t b);
  /// True iff fragment \p f is on backend \p b.
  bool IsPlaced(size_t b, FragmentId f) const;
  /// fragments(B): the sorted fragment set of backend \p b.
  FragmentSet BackendFragments(size_t b) const;
  /// Copies backend \p b's placement row into \p out (resized to fit).
  void SnapshotRow(size_t b, DenseBitset* out) const;
  /// True iff all fragments of \p set are on backend \p b.
  bool HoldsAll(size_t b, const FragmentSet& set) const;
  /// True iff all fragments of \p set are on backend \p b (word-parallel).
  bool HoldsAllBits(size_t b, const DenseBitset& set) const;
  /// True iff backend \p b stores any fragment of \p set (word-parallel).
  bool RowIntersects(size_t b, const DenseBitset& set) const;
  /// Number of backends holding fragment \p f. O(1).
  size_t ReplicaCount(FragmentId f) const;
  /// Total bytes stored on backend \p b according to \p catalog. O(1) when
  /// sizes are bound (the bound sizes take precedence over \p catalog,
  /// which must then describe the same fragments).
  double BackendBytes(size_t b, const FragmentCatalog& catalog) const;
  /// Bytes of \p want's fragments missing from backend \p b, summed in
  /// ascending fragment id order. Requires bound sizes.
  double MissingBytes(size_t b, const DenseBitset& want) const;

  // --- Load assignment (matrices LQ / LU) ---

  double read_assign(size_t b, size_t read_class) const;
  void set_read_assign(size_t b, size_t read_class, double value);
  void add_read_assign(size_t b, size_t read_class, double delta);

  double update_assign(size_t b, size_t update_class) const;
  void set_update_assign(size_t b, size_t update_class, double value);

  /// assignedLoad(B) (Eq. 14): total read + update weight on backend \p b.
  /// O(1) via the running aggregates.
  double AssignedLoad(size_t b) const;
  /// Total read weight assigned to backend \p b. O(1).
  double AssignedReadLoad(size_t b) const;
  /// Total update weight assigned to backend \p b. O(1).
  double AssignedUpdateLoad(size_t b) const;
  /// Σ_b read_assign(b, read_class).
  double TotalReadAssign(size_t read_class) const;

  /// Renders a compact table of placements and assignments for debugging.
  std::string ToString(const Classification& cls) const;

 private:
  double frag_size(FragmentId f) const { return (*frag_bytes_)[f]; }
  uint64_t* row(size_t b) { return placed_.data() + b * words_per_backend_; }
  const uint64_t* row(size_t b) const {
    return placed_.data() + b * words_per_backend_;
  }

  size_t num_backends_ = 0;
  size_t num_fragments_ = 0;
  size_t num_reads_ = 0;
  size_t num_updates_ = 0;
  size_t words_per_backend_ = 0;
  std::vector<uint64_t> placed_;       // num_backends x words_per_backend
  std::vector<double> read_assign_;    // num_backends x num_reads
  std::vector<double> update_assign_;  // num_backends x num_updates

  // Running aggregates, maintained by every mutator.
  std::vector<double> read_load_;        // per backend
  std::vector<double> update_load_;      // per backend
  std::vector<double> bytes_;            // per backend (valid iff sizes bound)
  std::vector<uint32_t> replica_count_;  // per fragment

  // Bound fragment sizes (shared across copies; null = not bound).
  std::shared_ptr<const std::vector<double>> frag_bytes_;
};

}  // namespace qcap
