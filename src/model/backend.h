// Backend specifications: processing shares of the cluster nodes.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace qcap {

/// One backend DBMS in the cluster, described by its relative query
/// processing performance (Eq. 7: loads over all backends sum to 1).
struct BackendSpec {
  /// Relative performance share in (0, 1].
  double relative_load = 0.0;
  /// Optional display name, e.g. "B1".
  std::string name;
};

/// Creates \p n equal backends ("B1".."Bn") with load 1/n each.
std::vector<BackendSpec> HomogeneousBackends(size_t n);

/// Creates backends from raw performance shares; shares are normalized to
/// sum to 1. Fails if empty or any share is <= 0.
Result<std::vector<BackendSpec>> HeterogeneousBackends(
    const std::vector<double>& shares);

/// Checks loads are positive and sum to 1 (Eq. 7).
Status ValidateBackends(const std::vector<BackendSpec>& backends);

}  // namespace qcap
