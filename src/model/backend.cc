#include "model/backend.h"

#include <cmath>

namespace qcap {

std::vector<BackendSpec> HomogeneousBackends(size_t n) {
  std::vector<BackendSpec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(BackendSpec{1.0 / static_cast<double>(n),
                              "B" + std::to_string(i + 1)});
  }
  return out;
}

Result<std::vector<BackendSpec>> HeterogeneousBackends(
    const std::vector<double>& shares) {
  if (shares.empty()) {
    return Status::InvalidArgument("at least one backend share required");
  }
  double total = 0.0;
  for (double s : shares) {
    if (s <= 0.0) {
      return Status::InvalidArgument("backend shares must be positive");
    }
    total += s;
  }
  std::vector<BackendSpec> out;
  out.reserve(shares.size());
  for (size_t i = 0; i < shares.size(); ++i) {
    out.push_back(BackendSpec{shares[i] / total, "B" + std::to_string(i + 1)});
  }
  return out;
}

Status ValidateBackends(const std::vector<BackendSpec>& backends) {
  if (backends.empty()) {
    return Status::InvalidArgument("no backends");
  }
  double total = 0.0;
  for (const auto& b : backends) {
    if (b.relative_load <= 0.0) {
      return Status::InvalidArgument("backend '" + b.name +
                                     "' has non-positive load");
    }
    total += b.relative_load;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("backend loads sum to " +
                                   std::to_string(total) + ", expected 1");
  }
  return Status::OK();
}

}  // namespace qcap
