#include "model/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace qcap {

double Scale(const Allocation& alloc, const std::vector<BackendSpec>& backends) {
  double scale = 1.0;
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    scale = std::max(scale, alloc.AssignedLoad(b) / backends[b].relative_load);
  }
  return scale;
}

double Speedup(const Allocation& alloc, const std::vector<BackendSpec>& backends) {
  return static_cast<double>(alloc.num_backends()) / Scale(alloc, backends);
}

double TheoreticalMaxSpeedup(const Classification& cls) {
  double max_update_weight = 0.0;
  auto consider = [&](const QueryClass& c) {
    max_update_weight = std::max(max_update_weight, cls.OverlappingUpdateWeight(c));
  };
  for (const auto& c : cls.reads) consider(c);
  for (const auto& c : cls.updates) consider(c);
  if (max_update_weight <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / max_update_weight;
}

double AmdahlFullReplicationSpeedup(const Classification& cls, size_t nodes) {
  double serial = 0.0;
  for (const auto& u : cls.updates) serial += u.weight;
  const double parallel = 1.0 - serial;
  return 1.0 / (parallel / static_cast<double>(nodes) + serial);
}

double DegreeOfReplication(const Allocation& alloc,
                           const FragmentCatalog& catalog) {
  const double db_bytes = catalog.TotalBytes();
  if (db_bytes <= 0.0) return 0.0;
  double stored = 0.0;
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    stored += alloc.BackendBytes(b, catalog);
  }
  return stored / db_bytes;
}

double BalanceDeviation(const Allocation& alloc,
                        const std::vector<BackendSpec>& backends) {
  const size_t n = alloc.num_backends();
  if (n == 0) return 0.0;
  std::vector<double> normalized(n);
  double sum = 0.0;
  for (size_t b = 0; b < n; ++b) {
    normalized[b] = alloc.AssignedLoad(b) / backends[b].relative_load;
    sum += normalized[b];
  }
  const double avg = sum / static_cast<double>(n);
  if (avg <= 0.0) return 0.0;
  double max_dev = 0.0;
  for (double v : normalized) {
    max_dev = std::max(max_dev, std::abs(v - avg) / avg);
  }
  return max_dev;
}

std::vector<size_t> ReplicationHistogram(const Allocation& alloc) {
  std::vector<size_t> hist(alloc.num_backends() + 1, 0);
  for (FragmentId f = 0; f < alloc.num_fragments(); ++f) {
    hist[alloc.ReplicaCount(f)]++;
  }
  return hist;
}

std::vector<size_t> TableReplicationHistogram(const Allocation& alloc,
                                              const FragmentCatalog& catalog) {
  std::map<std::string, size_t> per_table;
  for (FragmentId f = 0; f < alloc.num_fragments(); ++f) {
    const auto& frag = catalog.Get(f);
    size_t replicas = alloc.ReplicaCount(f);
    auto [it, inserted] = per_table.try_emplace(frag.table, replicas);
    if (!inserted) it->second = std::max(it->second, replicas);
  }
  std::vector<size_t> hist(alloc.num_backends() + 1, 0);
  for (const auto& [table, replicas] : per_table) {
    hist[replicas]++;
  }
  return hist;
}

}  // namespace qcap
