#include "model/validation.h"

#include <cmath>

namespace qcap {

Status ValidateAllocation(const Classification& cls, const Allocation& alloc,
                          const std::vector<BackendSpec>& backends,
                          const ValidationOptions& options) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  if (alloc.num_backends() != backends.size()) {
    return Status::InvalidArgument("allocation has " +
                                   std::to_string(alloc.num_backends()) +
                                   " backends, specs have " +
                                   std::to_string(backends.size()));
  }
  if (alloc.num_fragments() != cls.catalog.size() ||
      alloc.num_reads() != cls.reads.size() ||
      alloc.num_updates() != cls.updates.size()) {
    return Status::InvalidArgument(
        "allocation dimensions do not match classification");
  }

  const double eps = options.epsilon;

  // Eq. 8 + Eq. 9: read classes fully assigned, only to backends holding
  // their data.
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    const QueryClass& c = cls.reads[r];
    double assigned = 0.0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      const double a = alloc.read_assign(b, r);
      if (a < -eps) {
        return Status::InvalidArgument("negative assignment of " + c.label);
      }
      if (a > eps && !alloc.HoldsAll(b, c.fragments)) {
        return Status::InvalidArgument(
            "read class " + c.label + " assigned to backend " +
            std::to_string(b + 1) + " which lacks referenced fragments");
      }
      assigned += a;
    }
    if (std::abs(assigned - c.weight) > eps) {
      return Status::InvalidArgument(
          "read class " + c.label + " assigned " + std::to_string(assigned) +
          " of weight " + std::to_string(c.weight));
    }
  }

  // Eq. 10 + Eq. 11: update classes pinned to every backend with
  // overlapping data; at least one replica.
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    const QueryClass& c = cls.updates[u];
    size_t replicas = 0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      const double a = alloc.update_assign(b, u);
      const bool overlaps = Intersects(c.fragments, alloc.BackendFragments(b));
      if (overlaps) {
        if (std::abs(a - c.weight) > eps) {
          return Status::InvalidArgument(
              "update class " + c.label + " must carry weight " +
              std::to_string(c.weight) + " on backend " + std::to_string(b + 1) +
              " (has " + std::to_string(a) + ")");
        }
        // ROWA execution requires the full referenced data, not only the
        // overlapping part.
        if (!alloc.HoldsAll(b, c.fragments)) {
          return Status::InvalidArgument(
              "backend " + std::to_string(b + 1) + " stores part of " +
              c.label + "'s data but not all of it");
        }
        ++replicas;
      } else if (a > eps) {
        return Status::InvalidArgument(
            "update class " + c.label + " assigned to backend " +
            std::to_string(b + 1) + " without overlapping data");
      }
    }
    if (replicas == 0) {
      return Status::InvalidArgument("update class " + c.label +
                                     " is not allocated anywhere");
    }
    if (options.k_safety > 0 &&
        replicas < static_cast<size_t>(options.k_safety) + 1) {
      return Status::InvalidArgument(
          "update class " + c.label + " has " + std::to_string(replicas) +
          " replicas, k-safety requires " +
          std::to_string(options.k_safety + 1));
    }
  }

  // k-safety for read classes (Eq. 47): the class must be *executable* on
  // at least k+1 backends (all fragments present).
  if (options.k_safety > 0) {
    for (const auto& c : cls.reads) {
      size_t capable = 0;
      for (size_t b = 0; b < alloc.num_backends(); ++b) {
        if (alloc.HoldsAll(b, c.fragments)) ++capable;
      }
      if (capable < static_cast<size_t>(options.k_safety) + 1) {
        return Status::InvalidArgument(
            "read class " + c.label + " executable on " +
            std::to_string(capable) + " backends, k-safety requires " +
            std::to_string(options.k_safety + 1));
      }
    }
  }

  // Data completeness (and Eq. 46 when k_safety > 0).
  if (options.require_complete_data) {
    const size_t min_replicas =
        options.k_safety > 0 ? static_cast<size_t>(options.k_safety) + 1 : 1;
    for (FragmentId f = 0; f < alloc.num_fragments(); ++f) {
      const size_t replicas = alloc.ReplicaCount(f);
      if (replicas < min_replicas) {
        return Status::InvalidArgument(
            "fragment '" + cls.catalog.Get(f).name + "' stored on " +
            std::to_string(replicas) + " backends, required " +
            std::to_string(min_replicas));
      }
    }
  }

  return Status::OK();
}

Status CheckKSafety(const Classification& cls, const Allocation& alloc,
                    const std::vector<bool>& alive, int k) {
  if (alive.size() != alloc.num_backends()) {
    return Status::InvalidArgument(
        "alive mask has " + std::to_string(alive.size()) + " entries for " +
        std::to_string(alloc.num_backends()) + " backends");
  }
  if (k < 0) {
    return Status::InvalidArgument("k must be >= 0");
  }
  if (alloc.num_fragments() != cls.catalog.size() ||
      alloc.num_reads() != cls.reads.size() ||
      alloc.num_updates() != cls.updates.size()) {
    return Status::InvalidArgument(
        "allocation dimensions do not match classification");
  }
  const size_t required = static_cast<size_t>(k) + 1;

  for (const QueryClass& c : cls.reads) {
    size_t capable = 0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      if (alive[b] && alloc.HoldsAll(b, c.fragments)) ++capable;
    }
    if (capable < required) {
      return Status::Infeasible(
          "read class " + c.label + " executable on " +
          std::to_string(capable) + " surviving backends, k=" +
          std::to_string(k) + " requires " + std::to_string(required));
    }
  }
  for (const QueryClass& c : cls.updates) {
    size_t capable = 0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      if (alive[b] && alloc.HoldsAll(b, c.fragments)) ++capable;
    }
    if (capable < required) {
      return Status::Infeasible(
          "update class " + c.label + " executable on " +
          std::to_string(capable) + " surviving backends, k=" +
          std::to_string(k) + " requires " + std::to_string(required));
    }
  }
  for (FragmentId f = 0; f < alloc.num_fragments(); ++f) {
    size_t replicas = 0;
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      if (alive[b] && alloc.IsPlaced(b, f)) ++replicas;
    }
    if (replicas < required) {
      return Status::Infeasible(
          "fragment '" + cls.catalog.Get(f).name + "' stored on " +
          std::to_string(replicas) + " surviving backends, k=" +
          std::to_string(k) + " requires " + std::to_string(required));
    }
  }
  return Status::OK();
}

}  // namespace qcap
