// Thin RAII wrappers over POSIX TCP sockets for the serving layer
// (docs/SERVING.md): a move-only connected `Socket`, a bound/listening
// `Listener`, and nothing else. All calls are Status-based (the library
// never throws) and restart on EINTR; everything speaks blocking I/O
// unless a caller flips a socket non-blocking for use in a poll loop.
//
// This is deliberately the only file pair in the repo that touches
// <sys/socket.h>: the session, framing, and dispatch layers above it are
// plain byte-buffer code and stay testable without a network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace qcap::net {

/// \brief Move-only owner of one connected TCP socket file descriptor.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of \p fd (-1 = empty).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to \p host:\p port (dotted-quad IPv4, e.g. "127.0.0.1").
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

  /// True while the socket holds an open descriptor.
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all \p n bytes (looping over short writes). With the socket in
  /// non-blocking mode a would-block condition is reported as
  /// ResourceExhausted after writing \p *written bytes.
  Status SendAll(const void* data, size_t n, size_t* written = nullptr);

  /// Reads up to \p n bytes. Returns the byte count; 0 means orderly EOF.
  /// In non-blocking mode a would-block condition returns ResourceExhausted.
  Result<size_t> RecvSome(void* buf, size_t n);

  /// Switches O_NONBLOCK on or off.
  Status SetNonBlocking(bool enabled);
  /// Disables Nagle batching (TCP_NODELAY) — one frame, one segment.
  Status SetNoDelay(bool enabled);

  /// Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// \brief A bound, listening TCP socket accepting `Socket` sessions.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens on \p host:\p port with SO_REUSEADDR. Port 0 asks
  /// the kernel for an ephemeral port; the actual port is in port().
  static Result<Listener> BindTcp(const std::string& host, uint16_t port,
                                  int backlog = 64);

  /// The locally bound port (resolved even when bound with port 0).
  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Accepts one pending connection. In non-blocking mode "no connection
  /// waiting" is reported as ResourceExhausted.
  Result<Socket> Accept();

  /// Switches O_NONBLOCK on the listening descriptor.
  Status SetNonBlocking(bool enabled);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace qcap::net
