// The serving layer's routing brain (docs/SERVING.md): parses one
// wire-protocol request line, routes SUBMITs through the same
// `Scheduler::PickReadBackend` / `PendingIndex` machinery the simulator
// uses, applies per-class token-bucket admission control, and renders the
// STATS / METRICS / HEALTH observability surfaces.
//
// All mutable state sits behind one routing lock: the poll loop executes
// requests strictly in arrival order, and any other thread (the embedding
// program, a metrics scraper using the in-process API) can take consistent
// snapshots concurrently. The dispatcher itself never reads a clock —
// callers pass monotonic seconds in — so its behaviour for a given request
// sequence with given timestamps is fully deterministic and the routing
// decisions are bit-identical to direct `Scheduler` calls on the same
// class sequence (pinned by serving_integration_test and bench_serving).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/scheduler.h"
#include "common/annotations.h"
#include "common/stats.h"
#include "common/status.h"
#include "net/token_bucket.h"

namespace qcap::net {

/// Admission-control knobs (see docs/SERVING.md, "Deployment & tuning").
struct ServingLimits {
  /// Sustained SUBMIT budget per query class, requests/second.
  /// <= 0 disables admission control entirely.
  double rate_limit_qps = 0.0;
  /// Instantaneous burst per class, tokens. <= 0 defaults to
  /// max(1, rate_limit_qps): one second of budget, at least one request.
  double rate_limit_burst = 0.0;
};

/// Consistent snapshot of the dispatcher's counters.
struct ServingCounters {
  uint64_t requests_total = 0;    ///< Every frame executed, all verbs.
  uint64_t reads_routed = 0;      ///< SUBMIT R answered with a backend.
  uint64_t updates_routed = 0;    ///< SUBMIT U answered with targets.
  uint64_t rejected = 0;          ///< SUBMITs denied by admission control.
  uint64_t unservable = 0;        ///< SUBMITs with no live capable backend.
  uint64_t bad_requests = 0;      ///< Parse/validation failures.
  uint64_t done_acks = 0;         ///< DONE completions applied.
  uint64_t reloads = 0;           ///< Routing-table hot-swaps applied.
  uint64_t routing_generation = 1;  ///< Bumped by every successful swap.
  std::vector<size_t> pending;    ///< Per-backend outstanding depth.
  std::vector<bool> alive;        ///< Per-backend liveness.
  std::vector<double> degrade;    ///< Per-backend straggler factor (1 = ok).
};

/// A (Classification, Allocation) pair a RELOAD provider hands back; the
/// dispatcher builds its replacement routing table from it (nothing is
/// retained after the swap — Scheduler::Build copies what it needs).
struct RoutingTable {
  Classification cls;
  Allocation alloc;
};

/// \brief Thread-safe request executor over one (Classification,
/// Allocation) routing table.
class Dispatcher {
 public:
  /// Builds the routing table (fails like Scheduler::Build when some class
  /// has no capable backend). Returned by pointer: the routing lock makes
  /// the dispatcher immovable.
  static Result<std::unique_ptr<Dispatcher>> Create(
      const Classification& cls, const Allocation& alloc,
      const ServingLimits& limits);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Outcome of executing one request frame.
  struct Reply {
    std::string text;          ///< Response payload (one frame).
    bool close_session = false;  ///< QUIT: flush the reply, then close.
    bool routed = false;       ///< A SUBMIT that reached the scheduler —
                               ///< the caller should time it and call
                               ///< RecordRoutingLatency.
  };

  /// Parses and executes one request line. \p now_seconds is monotonic
  /// time with a caller-chosen origin (used for admission-control refill
  /// and uptime reporting).
  Reply Execute(std::string_view request, double now_seconds)
      QCAP_EXCLUDES(lock_);

  /// Adds one routing-latency sample (seconds) to the percentile
  /// accumulator feeding METRICS.
  void RecordRoutingLatency(double seconds) QCAP_EXCLUDES(lock_);

  /// Counter snapshot under the routing lock.
  ServingCounters Snapshot() const QCAP_EXCLUDES(lock_);

  /// Atomically replaces the routing table (the serving half of the
  /// adaptive control loop's migration cut-over). Builds the new scheduler
  /// first — on failure the old table keeps serving untouched. On success:
  ///  - tie-rotation state carries over, so decisions for classes whose
  ///    candidate sets are unchanged are bit-identical across the swap
  ///    boundary (pinned by control_loop_test);
  ///  - per-backend pending depth, liveness, and degrade factors carry
  ///    over by index; backends added by a scale-out join alive and idle,
  ///    backends dropped by a scale-in are forgotten;
  ///  - admission buckets keep their fill level for existing classes (the
  ///    budget already spent is workload state, not routing state), new
  ///    classes start with a full bucket;
  ///  - the routing generation is bumped (METRICS: qcap_routing_generation).
  /// Thread-safe: callers may swap while the poll loop executes traffic.
  Status SwapRouting(const Classification& cls, const Allocation& alloc)
      QCAP_EXCLUDES(lock_);

  /// Handler behind the RELOAD wire verb: maps the verb's tag argument to
  /// a replacement routing table (e.g. by re-running the allocator).
  /// Without a provider, RELOAD answers ERR NO_PROVIDER.
  using ReloadProvider =
      std::function<Result<RoutingTable>(std::string_view tag)>;
  void SetReloadProvider(ReloadProvider provider) QCAP_EXCLUDES(lock_);

  /// Current routing-table generation (1 until the first swap).
  uint64_t routing_generation() const QCAP_EXCLUDES(lock_);

  /// Routing-table shape. A SwapRouting can change all three, so the
  /// reads take the routing lock (they are observability calls, not
  /// hot-path ones).
  size_t num_backends() const QCAP_EXCLUDES(lock_);
  size_t num_read_classes() const QCAP_EXCLUDES(lock_);
  size_t num_update_classes() const QCAP_EXCLUDES(lock_);

 private:
  Dispatcher(Scheduler scheduler, size_t num_backends, size_t num_reads,
             size_t num_updates, const ServingLimits& limits);

  // Verb handlers; all run under lock_.
  Reply Submit(const std::vector<std::string>& args, double now_seconds)
      QCAP_REQUIRES(lock_);
  Reply Done(const std::vector<std::string>& args) QCAP_REQUIRES(lock_);
  Reply Fault(const std::vector<std::string>& args) QCAP_REQUIRES(lock_);
  Reply Reload(const std::vector<std::string>& args) QCAP_REQUIRES(lock_);
  std::string StatsLine() const QCAP_REQUIRES(lock_);
  std::string MetricsText(double now_seconds) QCAP_REQUIRES(lock_);
  std::string HealthLine(double now_seconds) const QCAP_REQUIRES(lock_);
  /// SwapRouting's body; runs under lock_.
  Status SwapRoutingLocked(const Classification& cls, const Allocation& alloc)
      QCAP_REQUIRES(lock_);

  mutable Mutex lock_;  ///< The single routing lock.
  Scheduler scheduler_ QCAP_GUARDED_BY(lock_);
  size_t num_backends_ QCAP_GUARDED_BY(lock_);
  size_t num_reads_ QCAP_GUARDED_BY(lock_);
  size_t num_updates_ QCAP_GUARDED_BY(lock_);
  /// Immutable after construction (a swap re-reads, never re-writes it).
  ServingLimits limits_;
  /// Per-backend outstanding request depth; a crashed backend's slot holds
  /// PendingIndex::kDeadKey so it loses every least-pending comparison.
  std::vector<size_t> pending_ QCAP_GUARDED_BY(lock_);
  std::vector<bool> alive_ QCAP_GUARDED_BY(lock_);
  /// Per-backend straggler factor (FAULT DEGRADE); informational — routing
  /// stays least-pending-first, mirroring the simulator, where degrade
  /// slows service times but never changes dispatch policy.
  std::vector<double> degrade_ QCAP_GUARDED_BY(lock_);
  /// One bucket per class (reads then updates); empty = admission off.
  std::vector<TokenBucket> buckets_ QCAP_GUARDED_BY(lock_);
  ReloadProvider reload_provider_ QCAP_GUARDED_BY(lock_);
  ServingCounters counters_ QCAP_GUARDED_BY(lock_);
  /// Routing-latency samples; shares SimStats' percentile machinery.
  ResponseAccumulator latency_ QCAP_GUARDED_BY(lock_);
  std::vector<double> percentile_scratch_ QCAP_GUARDED_BY(lock_);
};

}  // namespace qcap::net
