// qcap_serve: the networked query-routing front door (docs/SERVING.md).
//
// A `QueryRoutingServer` turns an installed (Classification, Allocation)
// pair — typically `Controller::current()` — into a long-running TCP
// service speaking the length-prefixed line protocol: SUBMIT a query
// class, get back the backend(s) the QCAP scheduler routes it to, plus
// STATS / METRICS / HEALTH observability and FAULT injection.
//
// Architecture (the paper's Figure 3 middleware, reduced to its routing
// role): one I/O thread runs a poll(2) event loop over the listener and
// every client session. Sessions are buffered — bytes in, frames decoded
// incrementally, responses queued on a per-session write buffer flushed
// under POLLOUT — so a slow client never blocks the loop. Request
// execution goes through the shared `Dispatcher` under its single routing
// lock, which is what lets the embedding program take live snapshots from
// other threads while traffic flows.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "net/dispatcher.h"
#include "net/frame.h"
#include "net/socket.h"

namespace qcap::net {

/// Serving configuration (docs/SERVING.md, "Deployment & tuning").
struct ServerOptions {
  /// Bind address; serving is loopback-only by default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  uint16_t port = 0;
  /// Concurrent session ceiling; further connections are accepted and
  /// immediately closed after an `ERR BUSY` frame.
  size_t max_sessions = 64;
  /// Per-frame payload ceiling; a client declaring more gets
  /// `ERR FRAME_TOO_LARGE` and the session is closed (framing cannot
  /// resynchronize after a length lie).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-class token-bucket admission control.
  ServingLimits limits;
};

/// \brief Poll-loop TCP server routing query classes via the Dispatcher.
class QueryRoutingServer {
 public:
  /// Builds the routing table and binds the listening socket (the port is
  /// final after Create; Start only begins serving).
  static Result<std::unique_ptr<QueryRoutingServer>> Create(
      const Classification& cls, const Allocation& alloc,
      const ServerOptions& options);

  /// Stops and joins the I/O thread if still running.
  ~QueryRoutingServer();

  QueryRoutingServer(const QueryRoutingServer&) = delete;
  QueryRoutingServer& operator=(const QueryRoutingServer&) = delete;

  /// Spawns the I/O thread. Fails if already started.
  Status Start();

  /// Signals the I/O thread, closes every session, joins. Idempotent.
  void Stop();

  /// The bound TCP port (resolved even when options.port was 0).
  uint16_t port() const { return listener_.port(); }

  /// The shared routing state — safe to snapshot from any thread.
  Dispatcher& dispatcher() { return *dispatcher_; }
  const Dispatcher& dispatcher() const { return *dispatcher_; }

  /// Sessions accepted over the server's lifetime / open right now.
  uint64_t sessions_accepted() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  size_t open_sessions() const {
    return open_sessions_.load(std::memory_order_relaxed);
  }

 private:
  /// One buffered client session owned by the poll loop.
  struct Session {
    Socket sock;
    FrameDecoder decoder;
    std::string outbuf;      ///< Encoded responses not yet written.
    size_t out_offset = 0;   ///< Prefix of outbuf already sent.
    bool closing = false;    ///< Flush outbuf, then close.
    explicit Session(Socket s, size_t max_frame)
        : sock(std::move(s)), decoder(max_frame) {}
  };

  QueryRoutingServer(std::unique_ptr<Dispatcher> dispatcher,
                     Listener listener, const ServerOptions& options);

  void Loop();
  void AcceptPending();
  /// Reads, decodes, executes; returns false when the session must close
  /// immediately (EOF / error).
  bool ServiceReadable(Session* session);
  /// Flushes the write buffer; returns false on a fatal write error.
  bool FlushWrites(Session* session);
  /// Monotonic seconds since Start (the one wall-clock source).
  double NowSeconds() const;

  std::unique_ptr<Dispatcher> dispatcher_;
  Listener listener_;
  ServerOptions options_;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<size_t> open_sessions_{0};
  int wake_pipe_[2] = {-1, -1};  ///< Stop() writes a byte to wake poll().
  /// Session table: written only by the IO thread inside Loop();
  /// Start()/Stop() touch it only before the thread starts / after it
  /// joins, so no lock is needed.
  QCAP_THREAD_CONFINED("io_thread_")
  std::vector<std::unique_ptr<Session>> sessions_;
  /// steady_clock origin captured by Start (epoch nanoseconds); written
  /// once before io_thread_ spawns, read-only afterwards.
  QCAP_THREAD_CONFINED("io_thread_")
  int64_t start_ns_ = 0;
};

}  // namespace qcap::net
