// Minimal blocking client for the qcap_serve wire protocol
// (docs/SERVING.md): one connection, one in-flight request. This is what
// the load generator, the integration tests, and embedding programs use;
// it is also the reference implementation for writing a client in any
// other language — connect TCP, write `u32-be length + payload`, read one
// frame back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace qcap::net {

/// \brief Blocking request/response client over one server session.
class Client {
 public:
  /// Connects to a running server (Nagle disabled: one frame per segment).
  static Result<Client> Connect(const std::string& host, uint16_t port) {
    QCAP_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectTcp(host, port));
    QCAP_RETURN_NOT_OK(sock.SetNoDelay(true));
    return Client(std::move(sock));
  }

  /// Sends one request line and returns the server's response payload.
  /// NotFound means the server closed the connection (e.g. after QUIT or a
  /// framing violation).
  Result<std::string> Call(std::string_view request) {
    QCAP_RETURN_NOT_OK(WriteFrame(&sock_, request));
    return ReadFrame(&sock_, &decoder_);
  }

  /// Reads one more frame without sending (responses queued before a
  /// close, e.g. the error frame preceding a forced disconnect).
  Result<std::string> ReadResponse() { return ReadFrame(&sock_, &decoder_); }

  Socket& socket() { return sock_; }

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
  FrameDecoder decoder_;
};

}  // namespace qcap::net
