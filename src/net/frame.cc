#include "net/frame.h"

#include <cstring>

namespace qcap::net {

namespace {

constexpr size_t kHeaderBytes = 4;

uint32_t DecodeLength(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  const char header[kHeaderBytes] = {
      static_cast<char>((n >> 24) & 0xff), static_cast<char>((n >> 16) & 0xff),
      static_cast<char>((n >> 8) & 0xff), static_cast<char>(n & 0xff)};
  out->append(header, kHeaderBytes);
  out->append(payload.data(), payload.size());
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (poisoned_) return;
  // Compact the consumed prefix before growing: a long-lived session keeps
  // the buffer at O(one frame), not O(stream).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::Pop FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Pop::kError;
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return Pop::kNeedMore;
  const uint32_t length = DecodeLength(buffer_.data() + consumed_);
  if (length > max_payload_) {
    poisoned_ = true;
    return Pop::kError;
  }
  if (available < kHeaderBytes + length) return Pop::kNeedMore;
  payload->assign(buffer_, consumed_ + kHeaderBytes, length);
  consumed_ += kHeaderBytes + length;
  return Pop::kFrame;
}

Status WriteFrame(Socket* sock, std::string_view payload) {
  std::string wire;
  wire.reserve(payload.size() + kHeaderBytes);
  AppendFrame(&wire, payload);
  return sock->SendAll(wire.data(), wire.size());
}

Result<std::string> ReadFrame(Socket* sock, FrameDecoder* decoder) {
  std::string payload;
  char chunk[4096];
  while (true) {
    switch (decoder->Next(&payload)) {
      case FrameDecoder::Pop::kFrame:
        return payload;
      case FrameDecoder::Pop::kError:
        return Status::InvalidArgument("oversized frame from peer");
      case FrameDecoder::Pop::kNeedMore:
        break;
    }
    QCAP_ASSIGN_OR_RETURN(size_t n, sock->RecvSome(chunk, sizeof(chunk)));
    if (n == 0) {
      return Status::NotFound("connection closed before a complete frame");
    }
    decoder->Feed(chunk, n);
  }
}

}  // namespace qcap::net
