// Length-prefixed framing for the qcap_serve wire protocol
// (docs/SERVING.md): every message — request or response — is one frame,
//
//   +----------------------+----------------------+
//   | length N (u32, BE)   | payload (N bytes)    |
//   +----------------------+----------------------+
//
// where the payload is a UTF-8 text line (no terminator). The decoder is
// incremental: feed it whatever the socket produced, pop zero or more
// complete frames. A declared length above the configured maximum poisons
// the decoder permanently — a client that lies about lengths is not
// resynchronizable, so the session must be closed (the server answers
// `ERR FRAME_TOO_LARGE` first; see the protocol spec).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/annotations.h"
#include "common/status.h"
#include "net/socket.h"

namespace qcap::net {

/// Default ceiling on one frame's payload size. Requests are one short
/// line; responses are at most a metrics page. 64 KiB is generous.
constexpr size_t kDefaultMaxFrameBytes = 64 * 1024;

/// Appends the framed encoding of \p payload (4-byte big-endian length +
/// bytes) to \p *out.
void AppendFrame(std::string* out, std::string_view payload);

/// \brief Incremental decoder for a stream of length-prefixed frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = kDefaultMaxFrameBytes)
      : max_payload_(max_payload_bytes) {}

  /// Appends \p n raw stream bytes to the internal buffer.
  void Feed(const char* data, size_t n);

  /// Outcome of one Next() attempt.
  enum class Pop {
    kFrame,     ///< *payload holds the next complete frame's payload.
    kNeedMore,  ///< The buffered bytes end mid-frame; feed more.
    kError,     ///< Oversized declared length; the stream is unusable.
  };

  /// Pops the next complete frame into \p *payload. Once kError is
  /// returned every further call returns kError (sticky poisoning).
  Pop Next(std::string* payload);

  /// True once the decoder hit an oversized frame.
  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed by popped frames.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  size_t max_payload_bytes() const { return max_payload_; }

 private:
  // One decoder per session, driven exclusively by the server's poll
  // thread (audited for the lock-discipline pass: no cross-thread access,
  // so the state is confined rather than guarded).
  QCAP_THREAD_CONFINED("owning session's poll thread")
  size_t max_payload_;
  QCAP_THREAD_CONFINED("owning session's poll thread")
  std::string buffer_;
  QCAP_THREAD_CONFINED("owning session's poll thread")
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  QCAP_THREAD_CONFINED("owning session's poll thread")
  bool poisoned_ = false;
};

/// Sends one framed \p payload over a blocking socket.
Status WriteFrame(Socket* sock, std::string_view payload);

/// Reads one complete frame from a blocking socket through \p *decoder
/// (which carries partial bytes across calls). Returns the payload;
/// NotFound on orderly EOF before a complete frame, InvalidArgument when
/// the peer sent an oversized frame.
Result<std::string> ReadFrame(Socket* sock, FrameDecoder* decoder);

}  // namespace qcap::net
