// Deterministic token-bucket rate limiter for per-class admission control
// (docs/SERVING.md, "Admission control"). Time is an explicit parameter —
// the bucket never reads a clock — so refill behaviour is exactly
// reproducible in tests and the server owns the single wall-clock read per
// request.
#pragma once

#include <algorithm>

namespace qcap::net {

/// \brief Token bucket: capacity `burst`, refilling at `rate` tokens/s.
///
/// A request costs one token. The bucket starts full, so a fresh class can
/// burst up to `burst` requests instantly; sustained throughput converges
/// to `rate` requests/second. Fractional tokens accumulate (two 0.5-token
/// refills admit one request), and the balance is capped at `burst` so
/// idle time cannot bank unbounded credit.
class TokenBucket {
 public:
  /// \p rate_per_second must be > 0; \p burst is clamped to >= 1 token.
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)) {}

  /// Admits one request at time \p now_seconds (monotonic, same origin
  /// across calls). Returns false — and consumes nothing — when less than
  /// one token is available.
  bool TryAcquire(double now_seconds) {
    Refill(now_seconds);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Currently banked tokens after refilling to \p now_seconds.
  double TokensAt(double now_seconds) {
    Refill(now_seconds);
    return tokens_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now_seconds) {
    if (now_seconds > last_refill_) {
      tokens_ = std::min(burst_, tokens_ + (now_seconds - last_refill_) * rate_);
    }
    // Time moving backwards (caller bug) refills nothing but still
    // advances the mark, so a later correct timestamp resumes cleanly.
    last_refill_ = std::max(last_refill_, now_seconds);
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
};

}  // namespace qcap::net
