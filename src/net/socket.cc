#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qcap::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetFlag(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port) {
  QCAP_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect " + host + ":" + std::to_string(port));
  return sock;
}

Status Socket::SendAll(const void* data, size_t n, size_t* written) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (written != nullptr) *written = done;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::ResourceExhausted("send would block");
      }
      return Errno("send");
    }
    done += static_cast<size_t>(rc);
  }
  if (written != nullptr) *written = done;
  return Status::OK();
}

Result<size_t> Socket::RecvSome(void* buf, size_t n) {
  while (true) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc >= 0) return static_cast<size_t>(rc);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("recv would block");
    }
    return Errno("recv");
  }
}

Status Socket::SetNonBlocking(bool enabled) { return SetFlag(fd_, enabled); }

Status Socket::SetNoDelay(bool enabled) {
  const int flag = enabled ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener::~Listener() { Close(); }

Result<Listener> Listener::BindTcp(const std::string& host, uint16_t port,
                                   int backlog) {
  QCAP_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("no pending connection");
    }
    return Errno("accept");
  }
}

Status Listener::SetNonBlocking(bool enabled) { return SetFlag(fd_, enabled); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace qcap::net
