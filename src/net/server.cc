// qcap-lint: allow-file(nondeterministic-call) -- the serving layer routes
// real network traffic: admission-control refill, uptime, and routing
// latency are measured against the process's monotonic clock, outside the
// simulated-time determinism surface (see docs/SERVING.md).
#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <poll.h>
#include <unistd.h>

namespace qcap::net {

namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::unique_ptr<QueryRoutingServer>> QueryRoutingServer::Create(
    const Classification& cls, const Allocation& alloc,
    const ServerOptions& options) {
  QCAP_ASSIGN_OR_RETURN(std::unique_ptr<Dispatcher> dispatcher,
                        Dispatcher::Create(cls, alloc, options.limits));
  QCAP_ASSIGN_OR_RETURN(Listener listener,
                        Listener::BindTcp(options.host, options.port));
  QCAP_RETURN_NOT_OK(listener.SetNonBlocking(true));
  return std::unique_ptr<QueryRoutingServer>(new QueryRoutingServer(
      std::move(dispatcher), std::move(listener), options));
}

QueryRoutingServer::QueryRoutingServer(std::unique_ptr<Dispatcher> dispatcher,
                                       Listener listener,
                                       const ServerOptions& options)
    : dispatcher_(std::move(dispatcher)),
      listener_(std::move(listener)),
      options_(options) {}

QueryRoutingServer::~QueryRoutingServer() { Stop(); }

Status QueryRoutingServer::Start() {
  if (running_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  if (::pipe(wake_pipe_) != 0) {
    running_.store(false);
    return Status::Internal("pipe() failed");
  }
  start_ns_ = MonotonicNanos();
  io_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void QueryRoutingServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the poll loop; it observes running_ == false and drains out.
  const char byte = 'q';
  [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  if (io_thread_.joinable()) io_thread_.join();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  sessions_.clear();
  open_sessions_.store(0, std::memory_order_relaxed);
}

double QueryRoutingServer::NowSeconds() const {
  return static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
}

void QueryRoutingServer::AcceptPending() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // EAGAIN: nothing else pending
    Socket sock = std::move(accepted).value();
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (sock.SetNonBlocking(true).ok()) (void)sock.SetNoDelay(true);
    auto session =
        std::make_unique<Session>(std::move(sock), options_.max_frame_bytes);
    if (sessions_.size() >= options_.max_sessions) {
      // Over the session ceiling: answer ERR BUSY and flush-close.
      AppendFrame(&session->outbuf,
                  "ERR BUSY session limit " +
                      std::to_string(options_.max_sessions) + " reached");
      session->closing = true;
    }
    sessions_.push_back(std::move(session));
    open_sessions_.store(sessions_.size(), std::memory_order_relaxed);
  }
}

bool QueryRoutingServer::ServiceReadable(Session* session) {
  char chunk[16 * 1024];
  while (true) {
    Result<size_t> got = session->sock.RecvSome(chunk, sizeof(chunk));
    if (!got.ok()) {
      // Would-block: everything currently available has been consumed.
      return got.status().IsResourceExhausted();
    }
    if (*got == 0) return false;  // orderly EOF
    session->decoder.Feed(chunk, *got);
    std::string payload;
    while (true) {
      const FrameDecoder::Pop pop = session->decoder.Next(&payload);
      if (pop == FrameDecoder::Pop::kNeedMore) break;
      if (pop == FrameDecoder::Pop::kError) {
        AppendFrame(&session->outbuf,
                    "ERR FRAME_TOO_LARGE max payload " +
                        std::to_string(options_.max_frame_bytes) + " bytes");
        session->closing = true;
        return true;  // flush the error, then close
      }
      const double start = NowSeconds();
      Dispatcher::Reply reply = dispatcher_->Execute(payload, start);
      if (reply.routed) {
        dispatcher_->RecordRoutingLatency(NowSeconds() - start);
      }
      AppendFrame(&session->outbuf, reply.text);
      if (reply.close_session) {
        session->closing = true;
        return true;
      }
    }
    if (session->closing) return true;
  }
}

bool QueryRoutingServer::FlushWrites(Session* session) {
  const size_t todo = session->outbuf.size() - session->out_offset;
  if (todo == 0) return true;
  size_t written = 0;
  const Status st = session->sock.SendAll(
      session->outbuf.data() + session->out_offset, todo, &written);
  session->out_offset += written;
  if (session->out_offset == session->outbuf.size()) {
    session->outbuf.clear();
    session->out_offset = 0;
  }
  if (st.ok() || st.IsResourceExhausted()) return true;
  return false;  // broken pipe etc.
}

void QueryRoutingServer::Loop() {
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listener_.fd(), POLLIN, 0});
    // Sessions polled this round; AcceptPending may append more below,
    // and those have no pollfd until the next iteration.
    const size_t polled = sessions_.size();
    for (const auto& session : sessions_) {
      short events = POLLIN;
      if (session->out_offset < session->outbuf.size()) events |= POLLOUT;
      fds.push_back({session->sock.fd(), events, 0});
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/1000) < 0) continue;
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[16];
      [[maybe_unused]] ssize_t rc = ::read(wake_pipe_[0], drain, sizeof(drain));
    }
    if ((fds[1].revents & POLLIN) != 0) AcceptPending();
    // Service the polled sessions; collect the dead ones after the sweep.
    for (size_t i = 0; i < polled; ++i) {
      Session* session = sessions_[i].get();
      const short revents = fds[2 + i].revents;
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && !session->closing && (revents & POLLIN) != 0) {
        alive = ServiceReadable(session);
      }
      if (alive) alive = FlushWrites(session);
      const bool drained = session->out_offset >= session->outbuf.size();
      if (!alive || (session->closing && drained)) {
        sessions_[i].reset();
      }
    }
    sessions_.erase(
        std::remove(sessions_.begin(), sessions_.end(), nullptr),
        sessions_.end());
    open_sessions_.store(sessions_.size(), std::memory_order_relaxed);
  }
  sessions_.clear();
  open_sessions_.store(0, std::memory_order_relaxed);
}

}  // namespace qcap::net
