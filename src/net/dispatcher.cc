#include "net/dispatcher.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cluster/pending_index.h"

namespace qcap::net {

namespace {

/// Splits on runs of spaces/tabs (the protocol grammar allows one or more
/// separators; leading/trailing whitespace is ignored).
std::vector<std::string> SplitFields(std::string_view line) {
  std::vector<std::string> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.emplace_back(line.substr(start, i - start));
  }
  return fields;
}

bool ParseIndex(std::string_view token, size_t* out) {
  if (token.empty()) return false;
  size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  *out = value;
  return true;
}

/// Parses a class token `R<i>` / `U<j>`.
bool ParseClassToken(std::string_view token, bool* is_read, size_t* index) {
  if (token.size() < 2 || (token[0] != 'R' && token[0] != 'U')) return false;
  *is_read = token[0] == 'R';
  return ParseIndex(token.substr(1), index);
}

/// Shortest round-trippable rendering for metrics values (latencies are
/// microseconds; fixed 3-digit formatting would flatten them to 0).
std::string FormatMetric(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

constexpr size_t kDead = static_cast<size_t>(PendingIndex::kDeadKey);

}  // namespace

Result<std::unique_ptr<Dispatcher>> Dispatcher::Create(
    const Classification& cls, const Allocation& alloc,
    const ServingLimits& limits) {
  QCAP_ASSIGN_OR_RETURN(Scheduler scheduler, Scheduler::Build(cls, alloc));
  return std::unique_ptr<Dispatcher>(
      new Dispatcher(std::move(scheduler), alloc.num_backends(),
                     cls.reads.size(), cls.updates.size(), limits));
}

Dispatcher::Dispatcher(Scheduler scheduler, size_t num_backends,
                       size_t num_reads, size_t num_updates,
                       const ServingLimits& limits)
    : scheduler_(std::move(scheduler)),
      num_backends_(num_backends),
      num_reads_(num_reads),
      num_updates_(num_updates),
      limits_(limits),
      pending_(num_backends, 0),
      alive_(num_backends, true),
      degrade_(num_backends, 1.0) {
  if (limits.rate_limit_qps > 0.0) {
    const double burst = limits.rate_limit_burst > 0.0
                             ? limits.rate_limit_burst
                             : std::max(1.0, limits.rate_limit_qps);
    buckets_.reserve(num_reads_ + num_updates_);
    for (size_t c = 0; c < num_reads_ + num_updates_; ++c) {
      buckets_.emplace_back(limits.rate_limit_qps, burst);
    }
  }
  latency_.Reserve(1 << 16);
}

Dispatcher::Reply Dispatcher::Execute(std::string_view request,
                                      double now_seconds) {
  MutexLock guard(lock_);
  ++counters_.requests_total;
  const std::vector<std::string> fields = SplitFields(request);
  auto bad = [this](const std::string& msg) {
    ++counters_.bad_requests;
    return Reply{"ERR BAD_REQUEST " + msg, false, false};
  };
  if (fields.empty()) return bad("empty request");
  const std::string& verb = fields[0];
  if (verb == "SUBMIT") return Submit(fields, now_seconds);
  if (verb == "DONE") return Done(fields);
  if (verb == "STATS") return Reply{StatsLine(), false, false};
  if (verb == "METRICS") {
    return Reply{"OK METRICS\n" + MetricsText(now_seconds), false, false};
  }
  if (verb == "HEALTH") return Reply{HealthLine(now_seconds), false, false};
  if (verb == "FAULT") return Fault(fields);
  if (verb == "RELOAD") return Reload(fields);
  if (verb == "QUIT") return Reply{"OK BYE", true, false};
  return bad("unknown verb '" + verb + "'");
}

Dispatcher::Reply Dispatcher::Submit(const std::vector<std::string>& args,
                                     double now_seconds) {
  bool is_read = false;
  size_t index = 0;
  if (args.size() != 2 || !ParseClassToken(args[1], &is_read, &index)) {
    ++counters_.bad_requests;
    return {"ERR BAD_REQUEST usage: SUBMIT R<i>|U<j>", false, false};
  }
  const size_t limit = is_read ? num_reads_ : num_updates_;
  if (index >= limit) {
    ++counters_.bad_requests;
    return {"ERR BAD_CLASS " + args[1] + " out of range (have " +
                std::to_string(num_reads_) + " reads, " +
                std::to_string(num_updates_) + " updates)",
            false, false};
  }
  if (!buckets_.empty()) {
    const size_t bucket = is_read ? index : num_reads_ + index;
    if (!buckets_[bucket].TryAcquire(now_seconds)) {
      ++counters_.rejected;
      return {"ERR RATE_LIMITED class=" + args[1], false, false};
    }
  }
  if (is_read) {
    const size_t pick = scheduler_.PickReadBackend(index, pending_);
    if (pick == PendingIndex::kNone) {
      ++counters_.unservable;
      return {"ERR UNSERVABLE no live backend holds " + args[1] + "'s data",
              false, true};
    }
    ++pending_[pick];
    ++counters_.reads_routed;
    return {"OK BACKEND " + std::to_string(pick), false, true};
  }
  const std::vector<size_t>& targets = scheduler_.UpdateTargets(index);
  std::string reply = "OK BACKENDS";
  size_t routed = 0;
  for (size_t t : targets) {
    if (!alive_[t]) continue;  // dead replica: owes the update as lag
    ++pending_[t];
    ++routed;
    reply += ' ';
    reply += std::to_string(t);
  }
  if (routed == 0) {
    ++counters_.unservable;
    return {"ERR UNSERVABLE every replica of " + args[1] + " is down", false,
            true};
  }
  ++counters_.updates_routed;
  return {reply, false, true};
}

Dispatcher::Reply Dispatcher::Done(const std::vector<std::string>& args) {
  size_t backend = 0;
  if (args.size() != 2 || !ParseIndex(args[1], &backend)) {
    ++counters_.bad_requests;
    return {"ERR BAD_REQUEST usage: DONE <backend>", false, false};
  }
  if (backend >= num_backends_) {
    ++counters_.bad_requests;
    return {"ERR BAD_BACKEND " + args[1] + " out of range (have " +
                std::to_string(num_backends_) + ")",
            false, false};
  }
  // A completion for a crashed backend, or one the server never routed
  // (e.g. the backend crashed and its depth was reset), is acknowledged
  // but changes nothing — the client cannot know the server lost the slot.
  if (!alive_[backend] || pending_[backend] == 0) {
    return {"OK DONE stale", false, false};
  }
  --pending_[backend];
  ++counters_.done_acks;
  return {"OK DONE", false, false};
}

Dispatcher::Reply Dispatcher::Fault(const std::vector<std::string>& args) {
  const bool is_degrade = args.size() >= 2 && args[1] == "DEGRADE";
  size_t backend = 0;
  const size_t want_args = is_degrade ? 4u : 3u;
  if (args.size() != want_args ||
      (args[1] != "CRASH" && args[1] != "RECOVER" && !is_degrade) ||
      !ParseIndex(args[2], &backend)) {
    ++counters_.bad_requests;
    return {"ERR BAD_REQUEST usage: FAULT CRASH|RECOVER <backend> | "
            "FAULT DEGRADE <backend> <factor>",
            false, false};
  }
  if (backend >= num_backends_) {
    ++counters_.bad_requests;
    return {"ERR BAD_BACKEND " + args[2] + " out of range (have " +
                std::to_string(num_backends_) + ")",
            false, false};
  }
  if (args[1] == "CRASH") {
    // Idempotent: crashing a dead backend re-asserts the state. The dead
    // key makes the backend lose every least-pending comparison, exactly
    // like the simulator's crash handling (which also clears any straggler
    // state on crash).
    alive_[backend] = false;
    pending_[backend] = kDead;
    degrade_[backend] = 1.0;
    return {"OK FAULT crashed " + std::to_string(backend), false, false};
  }
  if (is_degrade) {
    // Straggler injection, mirroring FaultEvent::kDegrade: the backend
    // keeps serving at `factor` times its nominal service time; 1 restores
    // full speed. Routing policy is unchanged (the simulator's dispatch
    // also ignores degrade — slow backends shed load through their pending
    // depth), so this is observability plus parity with FaultPlan chaos
    // scripts, exposed as qcap_backend_degrade in METRICS.
    const double factor = std::atof(args[3].c_str());
    if (!(factor > 0.0) || !std::isfinite(factor)) {
      ++counters_.bad_requests;
      return {"ERR BAD_REQUEST degrade factor must be finite and > 0", false,
              false};
    }
    if (!alive_[backend]) {
      ++counters_.bad_requests;
      return {"ERR BAD_REQUEST cannot degrade a crashed backend", false,
              false};
    }
    degrade_[backend] = factor;
    return {"OK FAULT degraded " + std::to_string(backend) + " factor " +
                FormatMetric(factor),
            false, false};
  }
  // Recovery rejoins with an empty queue (the crash destroyed its work)
  // and at full speed.
  alive_[backend] = true;
  pending_[backend] = 0;
  degrade_[backend] = 1.0;
  return {"OK FAULT recovered " + std::to_string(backend), false, false};
}

Dispatcher::Reply Dispatcher::Reload(const std::vector<std::string>& args) {
  if (args.size() > 2) {
    ++counters_.bad_requests;
    return {"ERR BAD_REQUEST usage: RELOAD [tag]", false, false};
  }
  if (!reload_provider_) {
    return {"ERR NO_PROVIDER this server has no reload provider installed",
            false, false};
  }
  const std::string tag = args.size() == 2 ? args[1] : "";
  // The provider runs under the routing lock: the poll loop is the only
  // traffic source, and it is the caller — a swap mid-request cannot
  // happen. Embedders registering slow providers accept the serving pause
  // (documented in SERVING.md).
  Result<RoutingTable> table = reload_provider_(tag);
  if (!table.ok()) {
    return {"ERR RELOAD_FAILED " + table.status().message(), false, false};
  }
  if (Status swapped = SwapRoutingLocked(table->cls, table->alloc);
      !swapped.ok()) {
    return {"ERR RELOAD_FAILED " + swapped.message(), false, false};
  }
  return {"OK RELOAD generation=" + std::to_string(counters_.routing_generation) +
              " backends=" + std::to_string(num_backends_) +
              " read_classes=" + std::to_string(num_reads_) +
              " update_classes=" + std::to_string(num_updates_),
          false, false};
}

Status Dispatcher::SwapRoutingLocked(const Classification& cls,
                                     const Allocation& alloc) {
  QCAP_ASSIGN_OR_RETURN(Scheduler next, Scheduler::Build(cls, alloc));
  // Tie-rotation state survives the swap: for a class whose candidate set
  // is unchanged, the pick sequence continues exactly as if no swap had
  // happened (every SUBMIT R advances rotation by one, swapped or not).
  next.set_rotation(scheduler_.rotation());
  scheduler_ = std::move(next);
  const size_t backends = alloc.num_backends();
  // Backends are identified by index across the swap: surviving indices
  // keep their pending depth, liveness (a crashed backend stays crashed,
  // kDead key and all), and degrade factor; scale-out joiners start alive
  // and idle; scale-in leavers are dropped.
  pending_.resize(backends, 0);
  alive_.resize(backends, true);
  degrade_.resize(backends, 1.0);
  num_backends_ = backends;
  num_reads_ = cls.reads.size();
  num_updates_ = cls.updates.size();
  if (limits_.rate_limit_qps > 0.0) {
    // Existing classes keep their bucket fill (spent budget is workload
    // state, not routing state); new classes start with a full bucket.
    const double burst = limits_.rate_limit_burst > 0.0
                             ? limits_.rate_limit_burst
                             : std::max(1.0, limits_.rate_limit_qps);
    buckets_.resize(num_reads_ + num_updates_,
                    TokenBucket(limits_.rate_limit_qps, burst));
  }
  ++counters_.reloads;
  ++counters_.routing_generation;
  return Status::OK();
}

Status Dispatcher::SwapRouting(const Classification& cls,
                               const Allocation& alloc) {
  MutexLock guard(lock_);
  return SwapRoutingLocked(cls, alloc);
}

void Dispatcher::SetReloadProvider(ReloadProvider provider) {
  MutexLock guard(lock_);
  reload_provider_ = std::move(provider);
}

uint64_t Dispatcher::routing_generation() const {
  MutexLock guard(lock_);
  return counters_.routing_generation;
}

size_t Dispatcher::num_backends() const {
  MutexLock guard(lock_);
  return num_backends_;
}

size_t Dispatcher::num_read_classes() const {
  MutexLock guard(lock_);
  return num_reads_;
}

size_t Dispatcher::num_update_classes() const {
  MutexLock guard(lock_);
  return num_updates_;
}

std::string Dispatcher::StatsLine() const {
  std::string out = "OK STATS requests=" +
                    std::to_string(counters_.requests_total) +
                    " reads=" + std::to_string(counters_.reads_routed) +
                    " updates=" + std::to_string(counters_.updates_routed) +
                    " rejected=" + std::to_string(counters_.rejected) +
                    " unservable=" + std::to_string(counters_.unservable) +
                    " bad=" + std::to_string(counters_.bad_requests) +
                    " done=" + std::to_string(counters_.done_acks);
  out += " pending=";
  for (size_t b = 0; b < num_backends_; ++b) {
    if (b > 0) out += ',';
    out += std::to_string(alive_[b] ? pending_[b] : 0);
  }
  out += " alive=";
  for (size_t b = 0; b < num_backends_; ++b) {
    if (b > 0) out += ',';
    out += alive_[b] ? '1' : '0';
  }
  out += " generation=" + std::to_string(counters_.routing_generation);
  return out;
}

std::string Dispatcher::MetricsText(double now_seconds) {
  const uint64_t routed = counters_.reads_routed + counters_.updates_routed;
  const double qps =
      now_seconds > 0.0 ? static_cast<double>(routed) / now_seconds : 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Shares SimStats' nearest-rank percentile machinery; on an idle server
  // the accumulator is empty and the hardened path reports zeros.
  latency_.Percentiles(&percentile_scratch_, &p50, &p95, &p99);
  std::string out;
  out.reserve(512 + num_backends_ * 64);
  out += "qcap_uptime_seconds " + FormatMetric(now_seconds) + "\n";
  out += "qcap_requests_total " + std::to_string(counters_.requests_total) +
         "\n";
  out += "qcap_reads_routed_total " + std::to_string(counters_.reads_routed) +
         "\n";
  out += "qcap_updates_routed_total " +
         std::to_string(counters_.updates_routed) + "\n";
  out += "qcap_rejected_total " + std::to_string(counters_.rejected) + "\n";
  out += "qcap_unservable_total " + std::to_string(counters_.unservable) +
         "\n";
  out += "qcap_bad_requests_total " + std::to_string(counters_.bad_requests) +
         "\n";
  out += "qcap_done_total " + std::to_string(counters_.done_acks) + "\n";
  out += "qcap_queries_per_second " + FormatMetric(qps) + "\n";
  out += "qcap_routing_latency_seconds{quantile=\"0.50\"} " +
         FormatMetric(p50) + "\n";
  out += "qcap_routing_latency_seconds{quantile=\"0.95\"} " +
         FormatMetric(p95) + "\n";
  out += "qcap_routing_latency_seconds{quantile=\"0.99\"} " +
         FormatMetric(p99) + "\n";
  out += "qcap_routing_latency_seconds_max " + FormatMetric(latency_.max()) +
         "\n";
  out += "qcap_routing_latency_samples " + std::to_string(latency_.count()) +
         "\n";
  for (size_t b = 0; b < num_backends_; ++b) {
    out += "qcap_backend_pending{backend=\"" + std::to_string(b) + "\"} " +
           std::to_string(alive_[b] ? pending_[b] : 0) + "\n";
  }
  for (size_t b = 0; b < num_backends_; ++b) {
    out += "qcap_backend_alive{backend=\"" + std::to_string(b) + "\"} " +
           std::string(alive_[b] ? "1" : "0") + "\n";
  }
  for (size_t b = 0; b < num_backends_; ++b) {
    out += "qcap_backend_degrade{backend=\"" + std::to_string(b) + "\"} " +
           FormatMetric(degrade_[b]) + "\n";
  }
  out += "qcap_routing_generation " +
         std::to_string(counters_.routing_generation) + "\n";
  out += "qcap_reloads_total " + std::to_string(counters_.reloads) + "\n";
  return out;
}

std::string Dispatcher::HealthLine(double now_seconds) const {
  size_t alive = 0;
  for (bool a : alive_) {
    if (a) ++alive;
  }
  return "OK HEALTH backends=" + std::to_string(num_backends_) +
         " alive=" + std::to_string(alive) +
         " read_classes=" + std::to_string(num_reads_) +
         " update_classes=" + std::to_string(num_updates_) +
         " uptime_seconds=" + FormatMetric(now_seconds) +
         " generation=" + std::to_string(counters_.routing_generation);
}

void Dispatcher::RecordRoutingLatency(double seconds) {
  MutexLock guard(lock_);
  latency_.Add(seconds);
}

ServingCounters Dispatcher::Snapshot() const {
  MutexLock guard(lock_);
  ServingCounters out = counters_;
  out.pending.resize(num_backends_);
  out.alive.resize(num_backends_);
  out.degrade.resize(num_backends_);
  for (size_t b = 0; b < num_backends_; ++b) {
    out.pending[b] = alive_[b] ? pending_[b] : 0;
    out.alive[b] = alive_[b];
    out.degrade[b] = degrade_[b];
  }
  return out;
}

}  // namespace qcap::net
